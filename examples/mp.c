/* Figure 1: message passing through a flag. TSO-correct, WMM-broken
 * until `atomig port` promotes the flag accesses to seq_cst. */
int flag;
int msg;

void writer(long unused) {
  msg = 42;
  flag = 1;
}

int main() {
  long t = spawn(writer, 0);
  while (flag != 1) { }
  assert(msg == 42);
  join(t);
  return 0;
}
