//! End-to-end Figure 2 workflow on a synthetic application: compile,
//! analyze, transform, and compare against the naive port.
//!
//! Run with: `cargo run --example port_pipeline`

use atomig_core::{naive_port, AtomigConfig, BarrierCensus, Pipeline};
use atomig_workloads::synth::{generate, GenConfig};

fn main() {
    let app = generate(GenConfig {
        mp_waiters: 6,
        tas_locks: 4,
        seqlocks: 2,
        atomics: 6,
        volatiles: 3,
        asm_fences: 2,
        decoys: 6,
        plain_funcs: 40,
        seed: 2024,
    });
    println!(
        "generated application: {} SLOC, {} planted spinloops, {} optimistic loops",
        app.sloc,
        app.config.expected_spinloops(),
        app.config.expected_optiloops()
    );

    let module = atomig_frontc::compile(&app.source, "synthapp").expect("compiles");
    println!(
        "compiled: {} functions, {} instructions",
        module.funcs.len(),
        module.inst_count()
    );

    // AtoMig port.
    let mut ported = module.clone();
    let mut cfg = AtomigConfig::full();
    cfg.inline = false; // keep the census exact for the comparison below
    let report = Pipeline::new(cfg).port_module(&mut ported);
    println!("\n{report}");
    assert_eq!(report.spinloops, app.config.expected_spinloops() as usize);
    assert_eq!(report.optiloops, app.config.expected_optiloops() as usize);

    // Naive port for comparison.
    let mut naive = module.clone();
    naive_port(&mut naive);
    let naive_census = BarrierCensus::of(&naive);
    println!(
        "\nnaive port would create {} implicit barriers — {:.1}x AtoMig's {}",
        naive_census.implicit,
        naive_census.implicit as f64 / report.after.implicit.max(1) as f64,
        report.after.implicit
    );
    assert!(naive_census.implicit > report.after.implicit);
}
