//! Quickstart: port the paper's Figure 1/5 message-passing program from
//! TSO to WMM and prove the port correct.
//!
//! Run with: `cargo run --example quickstart`

use atomig_core::{AtomigConfig, Pipeline};
use atomig_wmm::{Checker, ModelKind};

const LEGACY_X86_SOURCE: &str = r#"
    int flag;
    int msg;

    void writer(long unused) {
        msg = 42;
        flag = 1;       /* publish */
    }

    int main() {
        long t = spawn(writer, 0);
        while (flag == 0) { }     /* spin until published */
        assert(msg == 42);        /* fails on WMM without barriers! */
        join(t);
        return 0;
    }
"#;

fn main() {
    // 1. Compile the legacy program (clang -O0 style lowering).
    let original = atomig_frontc::compile(LEGACY_X86_SOURCE, "mp").expect("compiles");

    // 2. It is correct on its home memory model (x86-TSO)...
    let tso = Checker::new(ModelKind::Tso).check(&original, "main");
    println!("original under TSO : {tso}");
    assert!(tso.passed());

    // 3. ...but recompiling for a weak-memory CPU breaks it.
    let wmm = Checker::new(ModelKind::Arm).check(&original, "main");
    println!("original under WMM : {wmm}");
    assert!(wmm.violation.is_some(), "expected the WMM bug to show");

    // 4. Port it with AtoMig: spinloop detection finds the flag wait,
    //    alias exploration marks the writer's store, both become SC.
    let mut ported = original.clone();
    let report = Pipeline::new(AtomigConfig::full()).port_module(&mut ported);
    println!("\n{report}\n");

    // 5. The ported program is correct under WMM.
    let fixed = Checker::new(ModelKind::Arm).check(&ported, "main");
    println!("ported under WMM   : {fixed}");
    assert!(fixed.passed());

    // 6. Show what changed.
    println!("\n--- ported module (note the seq_cst accesses to @flag) ---");
    print!("{}", atomig_mir::printer::print_module(&ported));
}
