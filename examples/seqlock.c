/* Figure 6: a sequence counter protecting a payload. The reader's
 * optimistic retry loop needs explicit fences, which `atomig port`
 * inserts before the in-loop control loads and after the writer's
 * counter increments. */
int seq;
int payload;

void writer(long v) {
  seq = seq + 1;
  payload = v;
  seq = seq + 1;
}

int reader() {
  int s;
  int data;
  do {
    s = seq;
    data = payload;
  } while (s % 2 != 0 || s != seq);
  return data;
}

int main() {
  long t = spawn(writer, 7);
  int d = reader();
  join(t);
  assert(d == 0 || d == 7);
  return 0;
}
