//! The MariaDB lf-hash WMM bug (Figure 7, MDEV-27088), reproduced and
//! fixed automatically.
//!
//! `l_find` takes an optimistic snapshot of a node's (state, key) pair
//! and retries when `state` changed. On a weak-memory machine the key
//! read can pair with a stale state read: the finder sees VALID with a
//! NULL key. AtoMig classifies the snapshot loop as *optimistic* and adds
//! explicit fences — the same fix that was merged into MariaDB.
//!
//! Run with: `cargo run --example mariadb_bug`

use atomig_core::{AtomigConfig, Pipeline, Stage};
use atomig_wmm::{Checker, ModelKind};
use atomig_workloads::lf_hash;

fn main() {
    let src = lf_hash::lf_hash_mc();
    let original = atomig_frontc::compile(&src, "lf_hash").expect("compiles");

    println!("== the hand-ported code MariaDB shipped ==");
    let tso = Checker::new(ModelKind::Tso).check(&original, "main");
    println!("under x86-TSO      : {tso}  (the code is fine on x86)");
    let arm = Checker::new(ModelKind::Arm).check(&original, "main");
    println!("under Arm-like WMM : {arm}  (the MDEV-27088 bug)");
    assert!(tso.passed() && arm.violation.is_some());

    println!("\n== what the intermediate stages would do ==");
    for stage in [Stage::Explicit, Stage::Spin] {
        let mut m = original.clone();
        let cfg = match stage {
            Stage::Explicit => AtomigConfig::explicit_only(),
            _ => AtomigConfig::spin(),
        };
        Pipeline::new(cfg).port_module(&mut m);
        let v = Checker::new(ModelKind::Arm).check(&m, "main");
        println!("{stage:?}: {v}  (insufficient — matches Table 2)");
        assert!(v.violation.is_some());
    }

    println!("\n== the full AtoMig port ==");
    let mut ported = original.clone();
    let report = Pipeline::new(AtomigConfig::full()).port_module(&mut ported);
    println!(
        "detected {} spinloop(s), {} optimistic loop(s); added {} implicit + {} explicit barriers",
        report.spinloops,
        report.optiloops,
        report.implicit_barriers_added,
        report.explicit_barriers_added
    );
    let fixed = Checker::new(ModelKind::Arm).check(&ported, "main");
    println!("under Arm-like WMM : {fixed}");
    assert!(fixed.passed());
    println!("\nThe automatically inserted fences are the fix that was merged into MariaDB.");
}
