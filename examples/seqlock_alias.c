/* A seqlock accessed through handles: the aliasing stress test for
 * sticky-buddy expansion (3.4).
 *
 * `shared` is a real seqlock touched by two threads; `scratch` is a
 * same-typed staging copy that only `main` ever touches, through the
 * same helper signature. Under the paper's type-based alias keys the
 * accesses to both are keyed by identical struct-field offsets, so
 * promoting the shared epoch drags the scratch epoch along with it
 * (over-promotion). The points-to backend (--alias points-to) keeps
 * the two objects apart and leaves `prepare` plain. Both modes must
 * agree on the checker verdict: the original tears lo/hi on Arm, the
 * ported module does not. */
struct seq {
  int epoch;
  int lo;
  int hi;
};

struct seq shared;
struct seq scratch;

/* Single-threaded staging: touches only `scratch`. */
void prepare(struct seq *h, int v) {
  h->epoch = h->epoch + 2;
  h->lo = v;
  h->hi = v;
}

void writer_step(struct seq *h, int v) {
  h->epoch = h->epoch + 1;
  h->lo = v;
  h->hi = v;
  h->epoch = h->epoch + 1;
}

int read_snapshot(struct seq *h) {
  int s;
  int a;
  int b;
  do {
    s = h->epoch;
    a = h->lo;
    b = h->hi;
  } while (s % 2 != 0 || s != h->epoch);
  return a - b;
}

void writer(long v) {
  writer_step(&shared, v);
}

int main() {
  prepare(&scratch, 1);
  long t = spawn(writer, 7);
  int d = read_snapshot(&shared);
  join(t);
  assert(d == 0);
  return 0;
}
