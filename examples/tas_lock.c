/* Figure 4: a test-and-set spinlock guarding a plain counter. The
 * cmpxchg spinloop is detected and the unlock store becomes seq_cst
 * through sticky-buddy expansion ("once atomic, always atomic"). */
int locked;
int counter;

void lock() {
  while (cmpxchg(&locked, 0, 1) != 0) { }
}

void unlock() {
  locked = 0;
}

void worker(long rounds) {
  for (long i = 0; i < rounds; i++) {
    lock();
    counter = counter + 1;
    unlock();
  }
}

int main() {
  long t = spawn(worker, 3);
  worker(3);
  join(t);
  lock();
  int c = counter;
  unlock();
  assert(c == 6);
  return 0;
}
