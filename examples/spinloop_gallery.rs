//! The Figure 3 gallery: which loops are spinloops?
//!
//! Run with: `cargo run --example spinloop_gallery`

use atomig_analysis::InfluenceAnalysis;
use atomig_core::detect_spinloops;

const GALLERY: &[(&str, &str, bool)] = &[
    (
        "spinloop 1: while (flag != DONE) ;",
        r#"
        int flag;
        void spin1() { while (flag != 1) { } }
        "#,
        true,
    ),
    (
        "spinloop 2: constant store cannot influence the exit",
        r#"
        int flag;
        void spin2() {
            int l_flag;
            do { l_flag = 1; } while (l_flag != flag);
        }
        "#,
        true,
    ),
    (
        "spinloop 3: in-loop dependency through a masked copy",
        r#"
        int flag;
        void spin3() {
            int l_flag;
            do { l_flag = flag & 3; } while (l_flag != 2);
        }
        "#,
        true,
    ),
    (
        "non-spinloop: bounded loop with early break",
        r#"
        int flag;
        void notspin1() {
            for (int i = 0; i < 100; i++) {
                if (flag == 1) break;
            }
        }
        "#,
        false,
    ),
    (
        "non-spinloop: exit depends on a local store (i++)",
        r#"
        int turns;
        void notspin2() {
            for (int i = 0; i < turns; i++) { }
        }
        "#,
        false,
    ),
];

fn main() {
    println!("Figure 3: spinloop and non-spinloop examples\n");
    for (label, src, expected) in GALLERY {
        let module = atomig_frontc::compile(src, "gallery").expect("compiles");
        let func = &module.funcs[0];
        let inf = InfluenceAnalysis::new(func);
        let spins = detect_spinloops(func, &inf);
        let detected = !spins.is_empty();
        let verdict = if detected {
            "SPINLOOP "
        } else {
            "not a spinloop"
        };
        println!("{verdict}  <-  {label}");
        assert_eq!(
            detected, *expected,
            "{label}: expected {expected}, detected {detected}"
        );
    }
    println!("\nAll five verdicts match Figure 3.");
}
