//! End-to-end reproduction of every figure in the paper.

use atomig_analysis::InfluenceAnalysis;
use atomig_core::{
    detect_optimistic, detect_spinloops, lint_module, AtomigConfig, LintRule, Pipeline,
};
use atomig_mir::{InstKind, Ordering};
use atomig_wmm::{Checker, ModelKind};

fn compile(src: &str) -> atomig_mir::Module {
    atomig_frontc::compile(src, "figure").expect("figure source compiles")
}

/// Figure 1: the message-passing example reads corrupt data under WMM.
#[test]
fn figure1_message_passing_bug() {
    let m = compile(
        r#"
        int flag; int msg;
        void writer(long u) { msg = 1; flag = 1; }
        int main() {
            long t = spawn(writer, 0);
            while (flag == 0) { }
            assert(msg == 1);
            join(t);
            return 0;
        }
        "#,
    );
    assert!(Checker::new(ModelKind::Tso).check(&m, "main").passed());
    assert!(Checker::new(ModelKind::Arm)
        .check(&m, "main")
        .violation
        .is_some());
}

/// Figure 2: the workflow — compile, analyze, transform, re-verify.
#[test]
fn figure2_workflow_round_trip() {
    let mut m = compile(
        r#"
        int flag; int msg;
        void writer(long u) { msg = 1; flag = 1; }
        int main() {
            long t = spawn(writer, 0);
            while (flag == 0) { }
            assert(msg == 1);
            join(t);
            return 0;
        }
        "#,
    );
    let report = Pipeline::new(AtomigConfig::full()).port_module(&mut m);
    assert!(report.spinloops >= 1);
    atomig_mir::verify_module(&m).expect("transformed module verifies");
    assert!(Checker::new(ModelKind::Arm).check(&m, "main").passed());
}

/// Figure 3: the five loop classifications.
#[test]
fn figure3_spinloop_gallery() {
    let cases = [
        ("int flag; void f() { while (flag != 1) { } }", true),
        (
            "int flag; void f() { int l; do { l = 1; } while (l != flag); }",
            true,
        ),
        (
            "int flag; void f() { int l; do { l = flag & 3; } while (l != 2); }",
            true,
        ),
        (
            "int flag; void f() { for (int i = 0; i < 100; i++) { if (flag == 1) break; } }",
            false,
        ),
        (
            "int turns; void f() { for (int i = 0; i < turns; i++) { } }",
            false,
        ),
    ];
    for (src, expected) in cases {
        let m = compile(src);
        let inf = InfluenceAnalysis::new(&m.funcs[0]);
        let spins = detect_spinloops(&m.funcs[0], &inf);
        assert_eq!(!spins.is_empty(), expected, "case: {src}");
        // The static lint agrees: loops classified as synchronization
        // yield fence-placement findings on the unported module (the spin
        // controls are not SC yet); bounded loops audit clean.
        let lint = lint_module(&m, &AtomigConfig::full());
        assert_eq!(
            lint.count(LintRule::FencePlacement) > 0,
            expected,
            "lint verdict for: {src}\n{lint}"
        );
    }
}

/// Figure 4: the TAS lock — the cmpxchg loop is detected and the unlock
/// store is transformed through alias exploration.
#[test]
fn figure4_tas_lock_transformation() {
    let mut m = compile(
        r#"
        int locked;
        void lock() { while (cmpxchg(&locked, 0, 1) != 0) { } }
        void unlock() { locked = 0; }
        "#,
    );
    let mut cfg = AtomigConfig::full();
    cfg.inline = false;
    let report = Pipeline::new(cfg).port_module(&mut m);
    assert_eq!(report.spinloops, 1);
    let unlock = m.func(m.func_by_name("unlock").unwrap());
    let sc_store = unlock.insts().any(|(_, i)| {
        matches!(
            i.kind,
            InstKind::Store {
                ord: Ordering::SeqCst,
                ..
            }
        )
    });
    assert!(
        sc_store,
        "unlock store must become SC (once atomic, always atomic)"
    );
}

/// Figure 5: message passing — reader loads and writer store of the flag
/// become SC; the msg accesses stay plain.
#[test]
fn figure5_mp_transformation() {
    let mut m = compile(
        r#"
        int flag; int msg;
        int reader() {
            while (flag == 0) { }
            return msg;
        }
        void writer() { msg = 7; flag = 1; }
        "#,
    );
    let mut cfg = AtomigConfig::full();
    cfg.inline = false;
    Pipeline::new(cfg).port_module(&mut m);
    let flag_gid = m.global_by_name("flag").unwrap();
    let msg_gid = m.global_by_name("msg").unwrap();
    for f in &m.funcs {
        for (_, inst) in f.insts() {
            if let Some(addr) = inst.kind.address() {
                if addr == atomig_mir::Value::Global(flag_gid) {
                    assert_eq!(inst.kind.ordering(), Some(Ordering::SeqCst));
                }
                if addr == atomig_mir::Value::Global(msg_gid) {
                    assert_eq!(inst.kind.ordering(), Some(Ordering::NotAtomic));
                }
            }
        }
    }
}

/// Figure 6: the sequence counter gets SC controls plus explicit fences
/// before the in-loop reads and after the writer's increments.
#[test]
fn figure6_seqlock_fences() {
    let mut m = compile(
        r#"
        int flag; int msg;
        int reader() {
            int i; int data;
            do {
                i = flag;
                data = msg;
            } while (i % 2 != 0 || i != flag);
            return data;
        }
        void writer(int v) {
            flag = flag + 1;
            msg = v;
            flag = flag + 1;
        }
        "#,
    );
    let mut cfg = AtomigConfig::full();
    cfg.inline = false;
    let report = Pipeline::new(cfg).port_module(&mut m);
    assert_eq!(report.optiloops, 1);
    // Writer: each flag store is followed by a fence.
    let writer = m.func(m.func_by_name("writer").unwrap());
    let mut store_then_fence = 0;
    for b in &writer.blocks {
        for w in b.insts.windows(2) {
            if matches!(
                w[0].kind,
                InstKind::Store {
                    ord: Ordering::SeqCst,
                    ..
                }
            ) && matches!(w[1].kind, InstKind::Fence { .. })
            {
                store_then_fence += 1;
            }
        }
    }
    assert_eq!(store_then_fence, 2, "fence after each optimistic store");
    // Reader: fences precede the in-loop control loads.
    let reader = m.func(m.func_by_name("reader").unwrap());
    let fences = reader
        .insts()
        .filter(|(_, i)| matches!(i.kind, InstKind::Fence { .. }))
        .count();
    assert!(
        fences >= 2,
        "fences before optimistic control reads, got {fences}"
    );
}

/// Figure 7: the lf-hash bug — detection, classification, fix.
#[test]
fn figure7_lf_hash() {
    let src = atomig_workloads::lf_hash::lf_hash_mc();
    let m = compile(&src);
    // The find loop is a spinloop and optimistic.
    let find = m.func(m.func_by_name("l_find").unwrap());
    let inf = InfluenceAnalysis::new(find);
    let spins = detect_spinloops(find, &inf);
    assert_eq!(spins.len(), 1);
    let optis = detect_optimistic(find, &inf, &spins);
    assert_eq!(optis.len(), 1);
    // Broken originally, fixed by the full port (checked under ARM).
    assert!(Checker::new(ModelKind::Arm)
        .check(&m, "main")
        .violation
        .is_some());
    let mut ported = m.clone();
    Pipeline::new(AtomigConfig::full()).port_module(&mut ported);
    assert!(Checker::new(ModelKind::Arm).check(&ported, "main").passed());

    // The static lint finds the same bug without running the checker: the
    // racy state/key snapshot loads in l_find are flagged on the original
    // module, with source lines attached, and the ported module is clean.
    let lint = lint_module(&m, &AtomigConfig::full());
    let in_find: Vec<_> = lint.lints.iter().filter(|l| l.func == "l_find").collect();
    assert!(
        in_find.len() >= 2,
        "both state and key accesses flagged:\n{lint}"
    );
    assert!(in_find.iter().all(|l| l.span != 0), "findings carry lines");
    let lint_ported = lint_module(&ported, &AtomigConfig::full());
    assert!(
        lint_ported.is_clean(),
        "AtoMig-ported lf_hash audits clean:\n{lint_ported}"
    );
}
