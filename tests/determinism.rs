//! The deterministic-merge contract, end to end: every user-visible
//! artifact — port reports, transformed IR, decision-ledger dumps,
//! metrics JSONL, lint reports, checker verdicts — is byte-identical
//! for any `--jobs` value and across repeated runs.
//!
//! Wall-clock timings are the one inherently nondeterministic field, so
//! each run injects an [`atomig_testutil::ManualClock`] (core API tests)
//! or sets `ATOMIG_DETERMINISTIC=1` (CLI tests), making timing fields a
//! pure function of the number of clock reads.

use atomig_core::trace::{
    decision_event, finding_event, meta_event, phase_event, solver_event, summary_event, to_jsonl,
    Clock,
};
use atomig_core::{lint_module, AliasMode, AtomigConfig, Pipeline};
use atomig_testutil::ManualClock;
use std::sync::Arc;

const SEQLOCK: &str = include_str!("../examples/seqlock_alias.c");

const MP: &str = r#"
    int flag; int msg;
    void writer(long u) { msg = 1; flag = 1; }
    int main() {
        long t = spawn(writer, 0);
        while (flag == 0) { }
        assert(msg == 1);
        join(t);
        return 0;
    }
"#;

fn manual_config(jobs: usize, alias: AliasMode) -> AtomigConfig {
    let mut cfg = AtomigConfig::full();
    cfg.jobs = jobs;
    cfg.alias_mode = alias;
    let clock = Arc::new(ManualClock::new(1000));
    cfg.clock = Clock::from_fn(move || clock.now());
    cfg
}

/// Ports the seqlock example and renders every artifact the CLI can
/// print: the report, the transformed IR, the ledger tree, and the
/// metrics JSONL stream (the same event list `--emit-metrics` writes).
fn port_artifacts(jobs: usize, alias: AliasMode) -> String {
    let mut m = atomig_frontc::compile(SEQLOCK, "seqlock_alias").expect("example compiles");
    let report = Pipeline::new(manual_config(jobs, alias)).port_module(&mut m);
    let mut events = vec![meta_event("port", "seqlock_alias", Some(alias.name()))];
    if let Some(s) = &report.metrics.solver {
        events.push(solver_event(s));
    }
    for p in &report.metrics.phases {
        events.push(phase_event(p));
    }
    for d in report.ledger.decisions() {
        events.push(decision_event(d));
    }
    events.push(summary_event(
        report.metrics.total(),
        vec![("decisions", report.ledger.len().into())],
    ));
    format!(
        "== report ==\n{report}\n== ir ==\n{}\n== ledger ==\n{}\n== metrics ==\n{}",
        atomig_mir::printer::print_module(&m),
        report.ledger.render_tree("seqlock_alias"),
        to_jsonl(&events),
    )
}

fn lint_artifacts(jobs: usize, alias: AliasMode) -> String {
    let m = atomig_frontc::compile(SEQLOCK, "seqlock_alias").expect("example compiles");
    let report = lint_module(&m, &manual_config(jobs, alias));
    let mut events = vec![meta_event("lint", "seqlock_alias", Some(alias.name()))];
    if let Some(s) = &report.metrics.solver {
        events.push(solver_event(s));
    }
    for p in &report.metrics.phases {
        events.push(phase_event(p));
    }
    for l in &report.lints {
        events.push(finding_event(l));
    }
    format!(
        "== report ==\n{report}\n== metrics ==\n{}",
        to_jsonl(&events)
    )
}

#[test]
fn port_artifacts_are_byte_identical_across_jobs_and_runs() {
    for alias in [AliasMode::TypeBased, AliasMode::PointsTo] {
        let want = port_artifacts(1, alias);
        for jobs in [1, 4] {
            for run in 0..2 {
                let got = port_artifacts(jobs, alias);
                assert_eq!(
                    got, want,
                    "port output diverged ({alias:?}, jobs={jobs}, run={run})"
                );
            }
        }
    }
}

#[test]
fn lint_artifacts_are_byte_identical_across_jobs_and_runs() {
    for alias in [AliasMode::TypeBased, AliasMode::PointsTo] {
        let want = lint_artifacts(1, alias);
        for jobs in [1, 4] {
            for run in 0..2 {
                let got = lint_artifacts(jobs, alias);
                assert_eq!(
                    got, want,
                    "lint output diverged ({alias:?}, jobs={jobs}, run={run})"
                );
            }
        }
    }
}

#[test]
fn check_verdicts_and_counts_are_jobs_invariant() {
    // Violating (original) and passing (ported) runs of the same litmus
    // program: verdict string carries states/executions/revisits/peak.
    for ported in [false, true] {
        let mut m = atomig_frontc::compile(MP, "mp").expect("litmus compiles");
        if ported {
            Pipeline::new(manual_config(1, AliasMode::TypeBased)).port_module(&mut m);
        }
        let verdict_at = |jobs: usize| {
            let mut checker = atomig_wmm::Checker::new(atomig_wmm::ModelKind::Arm);
            checker.config.jobs = jobs;
            checker.check(&m, "main").to_string()
        };
        let want = verdict_at(1);
        for jobs in [1, 4] {
            for run in 0..2 {
                assert_eq!(
                    verdict_at(jobs),
                    want,
                    "verdict diverged (ported={ported}, jobs={jobs}, run={run})"
                );
            }
        }
        if ported {
            assert!(want.starts_with("PASS"), "{want}");
        } else {
            assert!(want.contains("VIOLATION"), "{want}");
        }
    }
}

/// The CLI acceptance path: `atomig port seqlock_alias.c --report
/// --emit-metrics` under `ATOMIG_DETERMINISTIC=1` is byte-identical
/// across `--jobs 1`, `--jobs 4`, and repeated runs — including the
/// metrics file on disk.
#[test]
fn cli_port_and_check_are_byte_identical_across_jobs() {
    std::env::set_var("ATOMIG_DETERMINISTIC", "1");
    let run = |argv: &str, source: &str, name: &str| -> String {
        let path = std::env::temp_dir().join(format!(
            "atomig-determinism-{}-{name}.jsonl",
            std::process::id()
        ));
        let path_str = path.to_string_lossy().into_owned();
        let args: Vec<String> = argv
            .split_whitespace()
            .map(String::from)
            .chain(["--emit-metrics".to_string(), path_str.clone()])
            .collect();
        let cmd = atomig_cli::parse_args(&args).expect("parses");
        let out = atomig_cli::execute(&cmd, source, name);
        let text = out.unwrap_or_else(|e| e);
        let metrics = std::fs::read_to_string(&path).expect("metrics written");
        std::fs::remove_file(&path).ok();
        // The printed note names the temp path; strip it so runs with
        // different paths stay comparable.
        let text = text.replace(&path_str, "<metrics>");
        format!("== stdout ==\n{text}\n== metrics ==\n{metrics}")
    };
    for (argv, source, name) in [
        (
            "port seqlock_alias.c --report --trace",
            SEQLOCK,
            "seqlock_alias",
        ),
        ("lint seqlock_alias.c", SEQLOCK, "seqlock_alias"),
        ("check mp.c --model arm --ported", MP, "mp"),
        ("check mp.c --model arm", MP, "mp"),
    ] {
        let want = run(&format!("{argv} --jobs 1"), source, name);
        for jobs in [1, 4] {
            for rerun in 0..2 {
                let got = run(&format!("{argv} --jobs {jobs}"), source, name);
                assert_eq!(got, want, "`{argv}` diverged at jobs={jobs}, run={rerun}");
            }
        }
    }
}

/// The batch leg of the same contract: `atomig batch` over two modules
/// is byte-identical across `--jobs {1,4}` AND across cache temperature
/// — the cold populating run, warm all-hit reruns, and a no-cache run
/// all print the same combined report under `ATOMIG_DETERMINISTIC=1`.
#[test]
fn cli_batch_is_byte_identical_across_jobs_and_cache_temperature() {
    use atomig_cli::{execute_batch, BatchInput, Command};
    std::env::set_var("ATOMIG_DETERMINISTIC", "1");
    let inputs = vec![
        BatchInput {
            name: "mp".into(),
            source: MP.into(),
        },
        BatchInput {
            name: "seqlock_alias".into(),
            source: SEQLOCK.into(),
        },
    ];
    for alias in [AliasMode::TypeBased, AliasMode::PointsTo] {
        let dir = std::env::temp_dir().join(format!(
            "atomig-determinism-batch-{}-{}",
            alias.name(),
            std::process::id()
        ));
        let dir = dir.to_string_lossy().into_owned();
        let cmd = |jobs: usize, no_cache: bool| Command::Batch {
            path: "mem".into(),
            stage: atomig_core::Stage::Full,
            alias,
            jobs: Some(jobs),
            emit_metrics: None,
            cache_dir: (!no_cache).then(|| dir.clone()),
            no_cache,
        };
        // The report header names the cache state, so compare the
        // scheduling-sensitive body below it.
        let body = |out: String| out.split_once('\n').map(|(_, b)| b.to_string()).unwrap();
        let want = body(execute_batch(&cmd(1, true), &inputs).unwrap());
        let cold = body(execute_batch(&cmd(1, false), &inputs).unwrap());
        assert_eq!(cold, want, "{alias:?}: cold cached run diverged");
        for jobs in [1, 4] {
            for rerun in 0..2 {
                let warm = body(execute_batch(&cmd(jobs, false), &inputs).unwrap());
                assert_eq!(
                    warm, want,
                    "{alias:?}: warm batch diverged at jobs={jobs}, run={rerun}"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    // Deliberately left set: the CLI determinism test above also relies
    // on it, and tests in this binary run concurrently.
}
