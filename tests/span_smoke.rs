//! Source spans must flow from MiniC through lowering into printed MIR
//! and survive a parse→print round trip (the textual fixpoint).

#[test]
fn spans_flow_to_printed_mir() {
    let src = "int flag;\nint msg;\nvoid writer() {\n  msg = 1;\n  flag = 1;\n}\n";
    let m = atomig_frontc::compile(src, "t").unwrap();
    let text = atomig_mir::printer::print_module(&m);
    assert!(text.contains("!4"), "store msg stamped line 4:\n{text}");
    assert!(text.contains("!5"), "store flag stamped line 5:\n{text}");
    let m2 = atomig_mir::parse_module(&text).unwrap();
    let text2 = atomig_mir::printer::print_module(&m2);
    assert_eq!(text, text2, "print→parse→print fixpoint with spans");
}

#[test]
fn port_preserves_and_stamps_spans() {
    let src = "int flag;\nint msg;\nvoid writer() {\n  msg = 1;\n  flag = 1;\n}\nvoid reader() {\n  while (flag != 1) {}\n  int m = msg;\n}\n";
    let mut m = atomig_frontc::compile(src, "t").unwrap();
    let report = atomig_core::Pipeline::new(atomig_core::AtomigConfig::full()).port_module(&mut m);
    assert!(report.after.implicit > 0);
    // Inserted fences inherit the span of the access they guard, so every
    // memory access in the ported writer/reader still maps to a line.
    for f in &m.funcs {
        for b in &f.blocks {
            for inst in &b.insts {
                if inst.kind.is_memory_access() {
                    assert_ne!(inst.span, 0, "unstamped access in @{}", f.name);
                }
            }
        }
    }
}
