//! Monotonicity of the Table 2 detection stages: each stage marks at
//! least what the previous one marked, on every bundled workload.

use atomig_core::Stage;
use atomig_workloads::{apps, ck, compile_stage, lf_hash};

fn implicit_added(src: &str, name: &str, stage: Stage) -> (usize, usize) {
    let (_, report) = compile_stage(src, name, stage);
    (
        report.implicit_barriers_added,
        report.explicit_barriers_added,
    )
}

#[test]
fn stages_are_monotone_on_all_workloads() {
    let workloads: Vec<(&str, String)> = vec![
        ("ck_ring", ck::ring_mc()),
        ("ck_spinlock_cas", ck::spinlock_cas_mc()),
        ("ck_spinlock_mcs", ck::spinlock_mcs_mc()),
        ("ck_sequence", ck::sequence_mc()),
        ("lf_hash", lf_hash::lf_hash_mc()),
        ("memcached", apps::app_perf("memcached", 5)),
        ("sqlite", apps::app_perf("sqlite", 5)),
    ];
    for (name, src) in &workloads {
        let (orig_i, orig_e) = implicit_added(src, name, Stage::Original);
        let (expl_i, expl_e) = implicit_added(src, name, Stage::Explicit);
        let (spin_i, spin_e) = implicit_added(src, name, Stage::Spin);
        let (full_i, full_e) = implicit_added(src, name, Stage::Full);
        assert_eq!((orig_i, orig_e), (0, 0), "{name}: original must not mark");
        assert!(
            expl_i <= spin_i,
            "{name}: explicit {expl_i} > spin {spin_i}"
        );
        assert!(spin_i <= full_i, "{name}: spin {spin_i} > full {full_i}");
        assert!(expl_e <= spin_e && spin_e <= full_e, "{name}");
    }
}

#[test]
fn explicit_fences_appear_only_in_full_stage() {
    for (name, src) in [
        ("ck_sequence", ck::sequence_mc()),
        ("lf_hash", lf_hash::lf_hash_mc()),
    ] {
        let (_, spin_e) = implicit_added(&src, name, Stage::Spin);
        let (_, full_e) = implicit_added(&src, name, Stage::Full);
        assert_eq!(spin_e, 0, "{name}: spin stage must not add fences");
        assert!(
            full_e > 0,
            "{name}: full stage must fence optimistic controls"
        );
    }
}
