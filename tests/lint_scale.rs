//! `atomig lint` must stay practical at Table-3 scale: the audit of a
//! synthetic module derived from the largest application profile
//! (MariaDB) has to finish well under the 10-second budget.

use atomig_core::{lint_module, AtomigConfig, LintRule};
use atomig_workloads::profiles;
use atomig_workloads::synth::{generate, GenConfig};
use std::time::Instant;

#[test]
fn lint_scales_to_largest_profile() {
    let profile = profiles::MARIADB;
    let app = generate(GenConfig::from_profile(&profile, 100));
    let m = atomig_frontc::compile(&app.source, "mariadb_synth").expect("synthetic compiles");
    let t0 = Instant::now();
    let report = lint_module(&m, &AtomigConfig::full());
    let elapsed = t0.elapsed();
    assert!(
        elapsed.as_secs_f64() < 10.0,
        "lint took {elapsed:.1?} on {} insts",
        m.inst_count()
    );
    // The generator plants unported synchronization patterns, so the
    // audit of the original module must surface fence-placement work.
    assert!(
        report.count(LintRule::FencePlacement) > 0,
        "synthetic patterns should be flagged"
    );
    assert_eq!(report.funcs, m.funcs.len());
}
