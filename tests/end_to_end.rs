//! Cross-crate integration: frontend -> analysis -> porting -> model
//! checking -> interpretation, over the bundled workloads.

use atomig_core::Stage;
use atomig_wmm::{Checker, CostModel, ModelKind};
use atomig_workloads::{
    apps, ck, clht, compile_atomig, compile_baseline, compile_naive, compile_stage, lf_hash,
    phoenix,
};

/// Every model-checking client in the suite is correct on x86-TSO —
/// these are legacy programs that worked on their home architecture.
#[test]
fn all_mc_clients_correct_under_tso() {
    for (name, src) in [
        ("ck_ring", ck::ring_mc()),
        ("ck_spinlock_cas", ck::spinlock_cas_mc()),
        ("ck_spinlock_mcs", ck::spinlock_mcs_mc()),
        ("ck_sequence", ck::sequence_mc()),
        ("lf_hash", lf_hash::lf_hash_mc()),
    ] {
        let (module, _) = compile_stage(&src, name, Stage::Original);
        let v = Checker::new(ModelKind::Tso).check(&module, "main");
        assert!(v.passed(), "{name}: {v}");
    }
}

/// Every fully ported client is correct under the Arm-flavoured WMM.
#[test]
fn all_ported_clients_correct_under_arm() {
    for (name, src) in [
        ("ck_ring", ck::ring_mc()),
        ("ck_spinlock_cas", ck::spinlock_cas_mc()),
        ("ck_spinlock_mcs", ck::spinlock_mcs_mc()),
        ("ck_sequence", ck::sequence_mc()),
        ("lf_hash", lf_hash::lf_hash_mc()),
    ] {
        let (module, _) = compile_stage(&src, name, Stage::Full);
        let v = Checker::new(ModelKind::Arm).check(&module, "main");
        assert!(v.passed(), "{name}: {v}");
    }
}

/// Ported perf workloads run to completion with their internal
/// assertions intact, under the deterministic interpreter.
#[test]
fn ported_perf_workloads_run_clean() {
    let programs: Vec<(&str, String)> = vec![
        ("ck_ring", ck::ring_perf(30)),
        ("ck_spinlock_cas", ck::spinlock_cas_perf(2, 25)),
        ("ck_spinlock_mcs", ck::spinlock_mcs_perf(2, 15)),
        ("ck_sequence", ck::sequence_perf(15)),
        ("lf_hash", lf_hash::lf_hash_perf(4, 8)),
        ("clht_lb", clht::clht_lb_perf(2, 30)),
        ("clht_lf", clht::clht_lf_perf(2, 30)),
    ];
    for (name, src) in &programs {
        let (module, _) = compile_atomig(src, name);
        let r = atomig_wmm::run_default(&module);
        assert!(r.ok(), "{name}: {:?}", r.failure);
    }
    for name in apps::APPS {
        let (module, _) = compile_atomig(&apps::app_perf(name, 15), name);
        let r = atomig_wmm::run_default(&module);
        assert!(r.ok(), "{name}: {:?}", r.failure);
    }
    for name in phoenix::KERNELS {
        let (module, _) = compile_atomig(&phoenix::kernel(name, 2), name);
        let r = atomig_wmm::run_default(&module);
        assert!(r.ok(), "{name}: {:?}", r.failure);
    }
}

/// The three ports order as the paper's headline claims: AtoMig's cost is
/// at most Naive's on every workload; Lasagne costs the most on compute
/// kernels (explicit fences).
#[test]
fn port_cost_ordering_holds_everywhere() {
    let cm = CostModel::ARMV8;
    for name in apps::APPS {
        let src = apps::app_perf(name, 20);
        let base = compile_baseline(&src, name);
        let (naive, _) = compile_naive(&src, name);
        let (atomig, _) = compile_atomig(&src, name);
        let rb = atomig_wmm::run_default(&base);
        let rn = atomig_wmm::run_default(&naive);
        let ra = atomig_wmm::run_default(&atomig);
        assert!(rb.ok() && rn.ok() && ra.ok(), "{name}");
        let n = cm.slowdown(&rb.stats, &rn.stats);
        let a = cm.slowdown(&rb.stats, &ra.stats);
        assert!(a <= n + 0.02, "{name}: atomig {a} > naive {n}");
    }
}

/// The naive port is itself *correct* (Table 1's "Safe = Y"): the MC
/// clients pass under ARM when naively ported.
#[test]
fn naive_port_is_safe() {
    for (name, src) in [
        ("ck_ring", ck::ring_mc()),
        ("ck_sequence", ck::sequence_mc()),
        ("lf_hash", lf_hash::lf_hash_mc()),
    ] {
        let (module, _) = compile_naive(&src, name);
        let v = Checker::new(ModelKind::Arm).check(&module, "main");
        assert!(v.passed(), "{name} naively ported: {v}");
    }
}

/// Porting twice changes nothing (the paper's sticky marking is
/// idempotent).
#[test]
fn porting_is_idempotent_on_workloads() {
    for (name, src) in [
        ("ck_ring", ck::ring_mc()),
        ("lf_hash", lf_hash::lf_hash_mc()),
        ("memcached", apps::app_perf("memcached", 5)),
    ] {
        let (once, _) = compile_atomig(&src, name);
        let mut twice = once.clone();
        let report =
            atomig_core::Pipeline::new(atomig_core::AtomigConfig::full()).port_module(&mut twice);
        assert_eq!(report.implicit_barriers_added, 0, "{name}: {report}");
        assert_eq!(report.explicit_barriers_added, 0, "{name}");
        // NOTE: inlining already happened in the first port, so the
        // module must be structurally unchanged.
        assert_eq!(once, twice, "{name}: port is not idempotent");
    }
}
