//! The incremental-analysis cache, end to end: warm runs skip exactly
//! the unchanged functions and change no output byte.
//!
//! Invariants exercised here, for both alias backends:
//!
//! * a cold run misses every function and a warm rerun hits every one;
//! * editing one function in a two-function module invalidates only its
//!   fingerprint — the other function still hits;
//! * every rendered artifact (report, transformed IR, ledger tree) is
//!   byte-identical with a cold, warm, or partially-warm cache;
//! * the lint dry run consults the same store as `port`;
//! * `execute_batch` reruns are byte-identical and surface the counters
//!   only through the metrics stream.

use atomig_core::trace::Clock;
use atomig_core::{lint_module, AliasMode, AtomigConfig, Pipeline};
use atomig_testutil::ManualClock;
use std::sync::Arc;

const SEQLOCK: &str = include_str!("../examples/seqlock_alias.c");

/// Two independent functions: editing one must not invalidate the other.
const TWO_FUNCS: &str = r#"
    int flag; int msg; int other;
    void writer(long u) { msg = 1; flag = 1; }
    int reader() {
        while (flag == 0) { }
        return msg;
    }
    int untouched() { other = other + 1; return other; }
"#;

/// `TWO_FUNCS` with only `untouched` edited.
const TWO_FUNCS_EDITED: &str = r#"
    int flag; int msg; int other;
    void writer(long u) { msg = 1; flag = 1; }
    int reader() {
        while (flag == 0) { }
        return msg;
    }
    int untouched() { other = other + 2; return other; }
"#;

fn tmp_dir(tag: &str) -> String {
    let d = std::env::temp_dir().join(format!("atomig-cache-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d.to_string_lossy().into_owned()
}

fn config(alias: AliasMode, cache_dir: Option<&str>) -> AtomigConfig {
    let mut cfg = AtomigConfig::full();
    cfg.alias_mode = alias;
    // Inlining copies callee bodies into callers, which would let one
    // edit ripple into other functions' fingerprints; keep functions
    // independent so the invalidation counts below are exact.
    cfg.inline = false;
    let clock = Arc::new(ManualClock::new(1000));
    cfg.clock = Clock::from_fn(move || clock.now());
    if let Some(d) = cache_dir {
        cfg.cache = Some(Arc::new(
            atomig_cache::CacheStore::open(Some(d)).expect("cache opens"),
        ));
    }
    cfg
}

/// Ports `source` and renders every printable artifact plus the counters.
fn port(source: &str, alias: AliasMode, dir: Option<&str>) -> (String, Option<(usize, usize)>) {
    let mut m = atomig_frontc::compile(source, "m").expect("compiles");
    let report = Pipeline::new(config(alias, dir)).port_module(&mut m);
    let text = format!(
        "== report ==\n{report}\n== ir ==\n{}\n== ledger ==\n{}",
        atomig_mir::printer::print_module(&m),
        report.ledger.render_tree("m"),
    );
    (text, report.metrics.cache.map(|c| (c.hits, c.misses)))
}

#[test]
fn warm_runs_hit_every_function_and_change_no_byte() {
    for alias in [AliasMode::TypeBased, AliasMode::PointsTo] {
        let dir = tmp_dir(&format!("warm-{}", alias.name()));
        let (no_cache, counters) = port(SEQLOCK, alias, None);
        assert_eq!(counters, None, "no store configured, no counters");
        let (cold, counters) = port(SEQLOCK, alias, Some(&dir));
        let (hits, misses) = counters.expect("store configured");
        assert_eq!(hits, 0, "{alias:?}");
        assert!(misses > 1, "{alias:?}: expected several functions");
        let (warm, counters) = port(SEQLOCK, alias, Some(&dir));
        assert_eq!(counters, Some((misses, 0)), "{alias:?}: warm = all hits");
        assert_eq!(cold, no_cache, "{alias:?}: caching must not alter output");
        assert_eq!(cold, warm, "{alias:?}: warm must be byte-identical");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn editing_one_function_invalidates_only_its_fingerprint() {
    for alias in [AliasMode::TypeBased, AliasMode::PointsTo] {
        let dir = tmp_dir(&format!("edit-{}", alias.name()));
        let (_, counters) = port(TWO_FUNCS, alias, Some(&dir));
        let (_, misses) = counters.unwrap();
        assert!(misses >= 3, "writer, reader, untouched all analyzed");
        // Rerun with one function edited: exactly one miss.
        let (warm_edited, counters) = port(TWO_FUNCS_EDITED, alias, Some(&dir));
        assert_eq!(
            counters,
            Some((misses - 1, 1)),
            "{alias:?}: only `untouched` may re-analyze"
        );
        // The partially-warm report matches a from-scratch analysis of
        // the edited module byte for byte.
        let (cold_edited, _) = port(TWO_FUNCS_EDITED, alias, None);
        assert_eq!(warm_edited, cold_edited, "{alias:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn lint_dry_run_shares_the_port_cache() {
    for alias in [AliasMode::TypeBased, AliasMode::PointsTo] {
        let dir = tmp_dir(&format!("lint-{}", alias.name()));
        let m = atomig_frontc::compile(SEQLOCK, "m").expect("compiles");
        let cold = lint_module(&m, &config(alias, Some(&dir)));
        let c = cold.metrics.cache.expect("counters present");
        assert_eq!(c.hits, 0, "{alias:?}");
        assert!(c.misses > 0, "{alias:?}");
        let warm = lint_module(&m, &config(alias, Some(&dir)));
        let w = warm.metrics.cache.expect("counters present");
        assert_eq!((w.hits, w.misses), (c.misses, 0), "{alias:?}");
        assert_eq!(cold.to_string(), warm.to_string(), "{alias:?}");
        // The lint dry run mirrors `port` detection exactly, so a port
        // over the same module is already fully warm too.
        let (_, counters) = port(SEQLOCK, alias, Some(&dir));
        assert_eq!(counters, Some((c.misses, 0)), "{alias:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn corrupt_store_contents_degrade_to_misses() {
    let dir = tmp_dir("corrupt");
    let (cold, counters) = port(SEQLOCK, AliasMode::TypeBased, Some(&dir));
    let (_, misses) = counters.unwrap();
    // Truncate every stored artifact; decoding fails closed and the run
    // re-analyzes everything, output unchanged.
    let version_dir = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.is_dir())
        .expect("version dir exists");
    for entry in std::fs::read_dir(&version_dir).unwrap() {
        std::fs::write(entry.unwrap().path(), "garbage").unwrap();
    }
    let (rerun, counters) = port(SEQLOCK, AliasMode::TypeBased, Some(&dir));
    assert_eq!(counters, Some((0, misses)), "all artifacts re-derived");
    assert_eq!(cold, rerun);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_is_byte_identical_cold_and_warm_for_both_backends() {
    use atomig_cli::{execute_batch, BatchInput, Command};
    std::env::set_var("ATOMIG_DETERMINISTIC", "1");
    let inputs = vec![
        BatchInput {
            name: "two_funcs".into(),
            source: TWO_FUNCS.into(),
        },
        BatchInput {
            name: "seqlock_alias".into(),
            source: SEQLOCK.into(),
        },
    ];
    for alias in [AliasMode::TypeBased, AliasMode::PointsTo] {
        let dir = tmp_dir(&format!("batch-{}", alias.name()));
        let metrics_path = format!("{dir}/run.jsonl");
        let cmd = |jobs: usize| Command::Batch {
            path: "mem".into(),
            stage: atomig_core::Stage::Full,
            alias,
            jobs: Some(jobs),
            emit_metrics: Some(metrics_path.clone()),
            cache_dir: Some(format!("{dir}/store")),
            no_cache: false,
        };
        let cold = execute_batch(&cmd(1), &inputs).unwrap();
        let cold_metrics = std::fs::read_to_string(&metrics_path).unwrap();
        let cold_tally = atomig_core::validate_metrics_jsonl(&cold_metrics).unwrap();
        assert!(cold_tally.cache_misses > 0, "{alias:?}: {cold_metrics}");
        assert_eq!(cold_tally.cache_hits, 0, "{alias:?}");
        for jobs in [1, 4] {
            let warm = execute_batch(&cmd(jobs), &inputs).unwrap();
            assert_eq!(cold, warm, "{alias:?}: warm batch diverged at jobs={jobs}");
            let tally = atomig_core::validate_metrics_jsonl(
                &std::fs::read_to_string(&metrics_path).unwrap(),
            )
            .unwrap();
            assert_eq!(
                (tally.cache_hits, tally.cache_misses),
                (cold_tally.cache_misses, 0),
                "{alias:?}: zero re-analysis at jobs={jobs}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    std::env::remove_var("ATOMIG_DETERMINISTIC");
}
