//! Property-based tests over the whole stack (proptest).

use atomig_core::{AtomigConfig, BarrierCensus, Pipeline};
use atomig_workloads::synth::{generate, GenConfig};
use proptest::prelude::*;

/// A random arithmetic expression with its expected (wrapping) value —
/// the oracle for the frontend+interpreter differential test.
#[derive(Debug, Clone)]
enum Expr {
    Lit(i64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self) -> i64 {
        match self {
            Expr::Lit(v) => *v,
            Expr::Add(a, b) => a.eval().wrapping_add(b.eval()),
            Expr::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            Expr::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
            Expr::And(a, b) => a.eval() & b.eval(),
            Expr::Or(a, b) => a.eval() | b.eval(),
            Expr::Xor(a, b) => a.eval() ^ b.eval(),
        }
    }

    fn to_c(&self) -> String {
        match self {
            Expr::Lit(v) if *v < 0 => format!("(0 - {})", v.unsigned_abs()),
            Expr::Lit(v) => v.to_string(),
            Expr::Add(a, b) => format!("({} + {})", a.to_c(), b.to_c()),
            Expr::Sub(a, b) => format!("({} - {})", a.to_c(), b.to_c()),
            Expr::Mul(a, b) => format!("({} * {})", a.to_c(), b.to_c()),
            Expr::And(a, b) => format!("({} & {})", a.to_c(), b.to_c()),
            Expr::Or(a, b) => format!("({} | {})", a.to_c(), b.to_c()),
            Expr::Xor(a, b) => format!("({} ^ {})", a.to_c(), b.to_c()),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (-1_000_000i64..1_000_000).prop_map(Expr::Lit);
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

fn arb_gen_config() -> impl Strategy<Value = GenConfig> {
    (
        1u32..6,
        1u32..5,
        0u32..4,
        0u32..6,
        0u32..4,
        0u32..3,
        0u32..6,
        0u32..12,
        any::<u64>(),
    )
        .prop_map(
            |(mp, tas, seq, at, vol, asm, dec, plain, seed)| GenConfig {
                mp_waiters: mp,
                tas_locks: tas,
                seqlocks: seq,
                atomics: at,
                volatiles: vol,
                asm_fences: asm,
                decoys: dec,
                plain_funcs: plain,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Frontend + interpreter differential test: MiniC arithmetic agrees
    /// with a Rust-side oracle on wrapping i64 semantics.
    #[test]
    fn interpreter_matches_arithmetic_oracle(e in arb_expr()) {
        let expected = e.eval();
        let src = format!("int main() {{ long v = {}; print(v); return 0; }}", e.to_c());
        let m = atomig_frontc::compile(&src, "arith").expect("compiles");
        let r = atomig_wmm::run_default(&m);
        prop_assert!(r.ok(), "{:?}", r.failure);
        prop_assert_eq!(r.output, vec![expected]);
    }

    /// Any generated codebase survives the full round trip: compile,
    /// verify, print, re-parse, re-print to a fixpoint.
    #[test]
    fn mir_textual_roundtrip(cfg in arb_gen_config()) {
        let app = generate(cfg);
        let m = atomig_frontc::compile(&app.source, "synth").expect("compiles");
        atomig_mir::verify_module(&m).expect("verifies");
        // Parsing alpha-renames instruction ids into textual order, so
        // the fixpoint is reached after one normalization round.
        let text1 = atomig_mir::printer::print_module(&m);
        let m2 = atomig_mir::parse_module(&text1).expect("reparses");
        atomig_mir::verify_module(&m2).expect("reparse verifies");
        prop_assert_eq!(m2.inst_count(), m.inst_count());
        let text2 = atomig_mir::printer::print_module(&m2);
        let m3 = atomig_mir::parse_module(&text2).expect("normal form reparses");
        prop_assert_eq!(atomig_mir::printer::print_module(&m3), text2);
        prop_assert_eq!(m3.globals, m2.globals);
        prop_assert_eq!(m3.structs, m2.structs);
    }

    /// Porting any generated codebase: finds exactly the planted
    /// patterns, never decreases the barrier census, verifies, and is
    /// idempotent.
    #[test]
    fn pipeline_is_sound_on_generated_codebases(cfg in arb_gen_config()) {
        let app = generate(cfg);
        let mut m = atomig_frontc::compile(&app.source, "synth").expect("compiles");
        let before = BarrierCensus::of(&m);
        let mut pcfg = AtomigConfig::full();
        pcfg.inline = false;
        let report = Pipeline::new(pcfg.clone()).port_module(&mut m);
        atomig_mir::verify_module(&m).expect("ported module verifies");
        prop_assert_eq!(report.spinloops, cfg.expected_spinloops() as usize);
        prop_assert_eq!(report.optiloops, cfg.expected_optiloops() as usize);
        let after = BarrierCensus::of(&m);
        prop_assert!(after.implicit >= before.implicit);
        prop_assert!(after.explicit >= before.explicit);
        // Idempotence.
        let snapshot = m.clone();
        let again = Pipeline::new(pcfg).port_module(&mut m);
        prop_assert_eq!(again.implicit_barriers_added, 0);
        prop_assert_eq!(again.explicit_barriers_added, 0);
        prop_assert_eq!(m, snapshot);
    }

    /// The frontend never panics on arbitrary input: it returns an error
    /// or a verified module.
    #[test]
    fn frontend_total_on_garbage(src in "[ -~\\n]{0,200}") {
        match atomig_frontc::compile(&src, "fuzz") {
            Ok(m) => { atomig_mir::verify_module(&m).expect("accepted module verifies"); }
            Err(e) => { prop_assert!(!e.is_empty()); }
        }
    }

    /// The MIR text parser never panics on arbitrary input.
    #[test]
    fn mir_parser_total_on_garbage(src in "[ -~\\n]{0,200}") {
        let _ = atomig_mir::parse_module(&src);
    }

    /// Inlining preserves behaviour: a deterministic program prints the
    /// same outputs before and after `inline_module` (differential test
    /// against the interpreter).
    #[test]
    fn inlining_preserves_behaviour(
        seeds in proptest::collection::vec(0i64..1000, 1..5),
        plain in 2u32..6,
        gseed in any::<u64>(),
    ) {
        let app = generate(GenConfig {
            mp_waiters: 1,
            tas_locks: 1,
            seqlocks: 1,
            atomics: 2,
            volatiles: 1,
            asm_fences: 1,
            decoys: 2,
            plain_funcs: plain,
            seed: gseed,
        });
        let mut driver = String::from("int main() {\n");
        for (i, s) in seeds.iter().enumerate() {
            let f = i as u32 % plain;
            driver.push_str(&format!(
                "    print(compute_{f}({s}, {}));\n",
                s * 3 + 1
            ));
        }
        driver.push_str("    return 0;\n}\n");
        let src = format!("{}\n{}", app.source, driver);
        let m1 = atomig_frontc::compile(&src, "diff").expect("compiles");
        let r1 = atomig_wmm::run_default(&m1);
        prop_assert!(r1.ok(), "{:?}", r1.failure);

        let mut m2 = m1.clone();
        let inlined =
            atomig_analysis::inline_module(&mut m2, &atomig_analysis::InlineOptions::default());
        atomig_mir::verify_module(&m2).expect("inlined module verifies");
        let r2 = atomig_wmm::run_default(&m2);
        prop_assert!(r2.ok(), "{:?}", r2.failure);
        prop_assert_eq!(&r1.output, &r2.output, "inlined {} call sites", inlined);
    }

    /// The AtoMig transformation preserves single-threaded behaviour:
    /// barriers change ordering constraints, never values.
    #[test]
    fn porting_preserves_sequential_behaviour(
        seeds in proptest::collection::vec(0i64..1000, 1..4),
        gseed in any::<u64>(),
    ) {
        let app = generate(GenConfig {
            mp_waiters: 1,
            tas_locks: 1,
            seqlocks: 1,
            atomics: 1,
            volatiles: 1,
            asm_fences: 1,
            decoys: 2,
            plain_funcs: 3,
            seed: gseed,
        });
        let mut driver = String::from("int main() {\n");
        for (i, s) in seeds.iter().enumerate() {
            let f = i as u32 % 3;
            driver.push_str(&format!("    print(compute_{f}({s}, {s}));\n"));
            driver.push_str(&format!("    tas_update_0({s});\n"));
            driver.push_str("    sl_write_0(7);\n    print(sl_read_0());\n");
        }
        driver.push_str("    return 0;\n}\n");
        let src = format!("{}\n{}", app.source, driver);
        let original = atomig_frontc::compile(&src, "port-diff").expect("compiles");
        let r1 = atomig_wmm::run_default(&original);
        prop_assert!(r1.ok(), "{:?}", r1.failure);

        let mut ported = original.clone();
        Pipeline::new(AtomigConfig::full()).port_module(&mut ported);
        let r2 = atomig_wmm::run_default(&ported);
        prop_assert!(r2.ok(), "{:?}", r2.failure);
        prop_assert_eq!(&r1.output, &r2.output);
    }
}
