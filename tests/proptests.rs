//! Seeded generative tests over the whole stack.
//!
//! Formerly written with `proptest`; rewritten as deterministic seeded
//! loops over [`atomig_testutil::Rng`] so the suite builds with no
//! external dependencies. Each property runs a fixed number of cases
//! derived from a fixed seed — failures are reproducible directly from
//! the case index printed in the assertion message.

use atomig_core::{AtomigConfig, BarrierCensus, Pipeline};
use atomig_testutil::Rng;
use atomig_workloads::synth::{generate, GenConfig};

/// A random arithmetic expression with its expected (wrapping) value —
/// the oracle for the frontend+interpreter differential test.
#[derive(Debug, Clone)]
enum Expr {
    Lit(i64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self) -> i64 {
        match self {
            Expr::Lit(v) => *v,
            Expr::Add(a, b) => a.eval().wrapping_add(b.eval()),
            Expr::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            Expr::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
            Expr::And(a, b) => a.eval() & b.eval(),
            Expr::Or(a, b) => a.eval() | b.eval(),
            Expr::Xor(a, b) => a.eval() ^ b.eval(),
        }
    }

    fn to_c(&self) -> String {
        match self {
            Expr::Lit(v) if *v < 0 => format!("(0 - {})", v.unsigned_abs()),
            Expr::Lit(v) => v.to_string(),
            Expr::Add(a, b) => format!("({} + {})", a.to_c(), b.to_c()),
            Expr::Sub(a, b) => format!("({} - {})", a.to_c(), b.to_c()),
            Expr::Mul(a, b) => format!("({} * {})", a.to_c(), b.to_c()),
            Expr::And(a, b) => format!("({} & {})", a.to_c(), b.to_c()),
            Expr::Or(a, b) => format!("({} | {})", a.to_c(), b.to_c()),
            Expr::Xor(a, b) => format!("({} ^ {})", a.to_c(), b.to_c()),
        }
    }
}

fn gen_expr(rng: &mut Rng, depth: u32) -> Expr {
    if depth == 0 || rng.gen_ratio(1, 4) {
        return Expr::Lit(rng.gen_range(-1_000_000..1_000_000));
    }
    let a = Box::new(gen_expr(rng, depth - 1));
    let b = Box::new(gen_expr(rng, depth - 1));
    match rng.gen_usize(6) {
        0 => Expr::Add(a, b),
        1 => Expr::Sub(a, b),
        2 => Expr::Mul(a, b),
        3 => Expr::And(a, b),
        4 => Expr::Or(a, b),
        _ => Expr::Xor(a, b),
    }
}

fn gen_config(rng: &mut Rng) -> GenConfig {
    GenConfig {
        mp_waiters: rng.gen_range(1..6) as u32,
        tas_locks: rng.gen_range(1..5) as u32,
        seqlocks: rng.gen_range(0..4) as u32,
        atomics: rng.gen_range(0..6) as u32,
        volatiles: rng.gen_range(0..4) as u32,
        asm_fences: rng.gen_range(0..3) as u32,
        decoys: rng.gen_range(0..6) as u32,
        plain_funcs: rng.gen_range(0..12) as u32,
        seed: rng.next_u64(),
    }
}

/// Random printable-ASCII garbage (plus newlines) for totality fuzzing.
fn gen_garbage(rng: &mut Rng) -> String {
    let len = rng.gen_usize(201);
    (0..len)
        .map(|_| {
            if rng.gen_ratio(1, 16) {
                '\n'
            } else {
                (0x20 + rng.gen_usize(0x5f) as u8) as char
            }
        })
        .collect()
}

/// Frontend + interpreter differential test: MiniC arithmetic agrees
/// with a Rust-side oracle on wrapping i64 semantics.
#[test]
fn interpreter_matches_arithmetic_oracle() {
    let mut rng = Rng::new(0xA217);
    for case in 0..48 {
        let e = gen_expr(&mut rng, 4);
        let expected = e.eval();
        let src = format!(
            "int main() {{ long v = {}; print(v); return 0; }}",
            e.to_c()
        );
        let m = atomig_frontc::compile(&src, "arith").expect("compiles");
        let r = atomig_wmm::run_default(&m);
        assert!(r.ok(), "case {case}: {:?}", r.failure);
        assert_eq!(r.output, vec![expected], "case {case}: {src}");
    }
}

/// Any generated codebase survives the full round trip: compile,
/// verify, print, re-parse, re-print to a fixpoint.
#[test]
fn mir_textual_roundtrip() {
    let mut rng = Rng::new(0xB0B2);
    for case in 0..24 {
        let cfg = gen_config(&mut rng);
        let app = generate(cfg);
        let m = atomig_frontc::compile(&app.source, "synth").expect("compiles");
        atomig_mir::verify_module(&m).expect("verifies");
        // Parsing alpha-renames instruction ids into textual order, so
        // the fixpoint is reached after one normalization round.
        let text1 = atomig_mir::printer::print_module(&m);
        let m2 = atomig_mir::parse_module(&text1).expect("reparses");
        atomig_mir::verify_module(&m2).expect("reparse verifies");
        assert_eq!(m2.inst_count(), m.inst_count(), "case {case}");
        let text2 = atomig_mir::printer::print_module(&m2);
        let m3 = atomig_mir::parse_module(&text2).expect("normal form reparses");
        assert_eq!(atomig_mir::printer::print_module(&m3), text2, "case {case}");
        assert_eq!(m3.globals, m2.globals);
        assert_eq!(m3.structs, m2.structs);
    }
}

fn assert_pipeline_sound(cfg: GenConfig, what: &str) {
    let app = generate(cfg);
    let mut m = atomig_frontc::compile(&app.source, "synth").expect("compiles");
    let before = BarrierCensus::of(&m);
    let mut pcfg = AtomigConfig::full();
    pcfg.inline = false;
    let report = Pipeline::new(pcfg.clone()).port_module(&mut m);
    atomig_mir::verify_module(&m).expect("ported module verifies");
    assert_eq!(
        report.spinloops,
        cfg.expected_spinloops() as usize,
        "{what}: {cfg:?}"
    );
    assert_eq!(
        report.optiloops,
        cfg.expected_optiloops() as usize,
        "{what}: {cfg:?}"
    );
    let after = BarrierCensus::of(&m);
    assert!(after.implicit >= before.implicit, "{what}");
    assert!(after.explicit >= before.explicit, "{what}");
    // Idempotence.
    let snapshot = m.clone();
    let again = Pipeline::new(pcfg).port_module(&mut m);
    assert_eq!(again.implicit_barriers_added, 0, "{what}");
    assert_eq!(again.explicit_barriers_added, 0, "{what}");
    assert_eq!(m, snapshot, "{what}");
}

/// Porting any generated codebase: finds exactly the planted
/// patterns, never decreases the barrier census, verifies, and is
/// idempotent.
#[test]
fn pipeline_is_sound_on_generated_codebases() {
    let mut rng = Rng::new(0xC3D1);
    for case in 0..24 {
        let cfg = gen_config(&mut rng);
        assert_pipeline_sound(cfg, &format!("case {case}"));
    }
}

/// The shrunk case proptest recorded in `tests/proptests.proptest-regressions`
/// before the suite went dependency-free.
///
/// Root cause of the "seed tests failing" state this case was found in:
/// the workspace declared registry dependencies (`rand`, `proptest`,
/// `criterion`) with no lockfile or vendored sources, so in an offline
/// environment `cargo build` itself failed and every test failed with it.
/// The shrunk `GenConfig` is the *smallest* generated program — one MP
/// waiter spin plus one TAS lock, no decoys masking them — i.e. the first
/// case any run reaches once shrinking kicks in, which is why it is the one
/// the regression file recorded. Against the current detector it passes:
/// the MP wait loop and the TAS acquire loop (whose control is the cmpxchg
/// in the loop *condition*, an RMW rather than a load) are both classified,
/// `expected_spinloops() == 2` holds, and the port is idempotent. Pinned
/// here deterministically so any future detector change that miscounts the
/// minimal pattern pair fails immediately, without generative search.
#[test]
fn pipeline_regression_minimal_mp_plus_tas() {
    assert_pipeline_sound(
        GenConfig {
            mp_waiters: 1,
            tas_locks: 1,
            seqlocks: 0,
            atomics: 0,
            volatiles: 0,
            asm_fences: 0,
            decoys: 0,
            plain_funcs: 0,
            seed: 0,
        },
        "shrunk regression",
    );
}

/// The frontend never panics on arbitrary input: it returns an error
/// or a verified module.
#[test]
fn frontend_total_on_garbage() {
    let mut rng = Rng::new(0xD00D);
    for case in 0..256 {
        let src = gen_garbage(&mut rng);
        match atomig_frontc::compile(&src, "fuzz") {
            Ok(m) => {
                atomig_mir::verify_module(&m).expect("accepted module verifies");
            }
            Err(e) => {
                assert!(!e.is_empty(), "case {case}");
            }
        }
    }
}

/// The MIR text parser never panics on arbitrary input.
#[test]
fn mir_parser_total_on_garbage() {
    let mut rng = Rng::new(0xE11E);
    for _ in 0..256 {
        let src = gen_garbage(&mut rng);
        let _ = atomig_mir::parse_module(&src);
    }
}

/// Inlining preserves behaviour: a deterministic program prints the
/// same outputs before and after `inline_module` (differential test
/// against the interpreter).
#[test]
fn inlining_preserves_behaviour() {
    let mut rng = Rng::new(0xF00F);
    for case in 0..12 {
        let plain = rng.gen_range(2..6) as u32;
        let app = generate(GenConfig {
            mp_waiters: 1,
            tas_locks: 1,
            seqlocks: 1,
            atomics: 2,
            volatiles: 1,
            asm_fences: 1,
            decoys: 2,
            plain_funcs: plain,
            seed: rng.next_u64(),
        });
        let n_seeds = 1 + rng.gen_usize(4);
        let mut driver = String::from("int main() {\n");
        for i in 0..n_seeds {
            let s = rng.gen_range(0..1000);
            let f = i as u32 % plain;
            driver.push_str(&format!("    print(compute_{f}({s}, {}));\n", s * 3 + 1));
        }
        driver.push_str("    return 0;\n}\n");
        let src = format!("{}\n{}", app.source, driver);
        let m1 = atomig_frontc::compile(&src, "diff").expect("compiles");
        let r1 = atomig_wmm::run_default(&m1);
        assert!(r1.ok(), "case {case}: {:?}", r1.failure);

        let mut m2 = m1.clone();
        let inlined =
            atomig_analysis::inline_module(&mut m2, &atomig_analysis::InlineOptions::default());
        atomig_mir::verify_module(&m2).expect("inlined module verifies");
        let r2 = atomig_wmm::run_default(&m2);
        assert!(r2.ok(), "case {case}: {:?}", r2.failure);
        assert_eq!(
            &r1.output, &r2.output,
            "case {case}: inlined {inlined} call sites"
        );
    }
}

/// The AtoMig transformation preserves single-threaded behaviour:
/// barriers change ordering constraints, never values.
#[test]
fn porting_preserves_sequential_behaviour() {
    let mut rng = Rng::new(0xAB1E);
    for case in 0..12 {
        let app = generate(GenConfig {
            mp_waiters: 1,
            tas_locks: 1,
            seqlocks: 1,
            atomics: 1,
            volatiles: 1,
            asm_fences: 1,
            decoys: 2,
            plain_funcs: 3,
            seed: rng.next_u64(),
        });
        let n_seeds = 1 + rng.gen_usize(3);
        let mut driver = String::from("int main() {\n");
        for i in 0..n_seeds {
            let s = rng.gen_range(0..1000);
            let f = i % 3;
            driver.push_str(&format!("    print(compute_{f}({s}, {s}));\n"));
            driver.push_str(&format!("    tas_update_0({s});\n"));
            driver.push_str("    sl_write_0(7);\n    print(sl_read_0());\n");
        }
        driver.push_str("    return 0;\n}\n");
        let src = format!("{}\n{}", app.source, driver);
        let original = atomig_frontc::compile(&src, "port-diff").expect("compiles");
        let r1 = atomig_wmm::run_default(&original);
        assert!(r1.ok(), "case {case}: {:?}", r1.failure);

        let mut ported = original.clone();
        Pipeline::new(AtomigConfig::full()).port_module(&mut ported);
        let r2 = atomig_wmm::run_default(&ported);
        assert!(r2.ok(), "case {case}: {:?}", r2.failure);
        assert_eq!(&r1.output, &r2.output, "case {case}");
    }
}
