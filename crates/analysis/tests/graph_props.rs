//! Property-based tests of the CFG, dominator, and loop machinery on
//! randomly generated control-flow graphs.

use atomig_analysis::{find_loops, Cfg, DomTree};
use atomig_mir::{Block, BlockId, Function, Terminator, Type, Value};
use proptest::prelude::*;

/// Builds a function whose CFG is given by `(kind, t1, t2)` per block:
/// kind 0 = Ret, 1 = Br(t1), 2 = CondBr(t1, t2).
fn build_cfg(spec: &[(u8, usize, usize)]) -> Function {
    let n = spec.len().max(1);
    let mut f = Function::new("g", vec![], Type::Void);
    f.blocks.clear();
    for (i, &(kind, t1, t2)) in spec.iter().enumerate() {
        let term = match kind % 3 {
            0 => Terminator::Ret(None),
            1 => Terminator::Br(BlockId((t1 % n) as u32)),
            _ => Terminator::CondBr {
                cond: Value::Const(1),
                then_bb: BlockId((t1 % n) as u32),
                else_bb: BlockId((t2 % n) as u32),
            },
        };
        f.blocks.push(Block {
            name: format!("b{i}"),
            insts: vec![],
            term,
        });
    }
    if f.blocks.is_empty() {
        f.blocks.push(Block {
            name: "b0".into(),
            insts: vec![],
            term: Terminator::Ret(None),
        });
    }
    f
}

fn arb_cfg() -> impl Strategy<Value = Vec<(u8, usize, usize)>> {
    proptest::collection::vec((0u8..3, 0usize..12, 0usize..12), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The entry dominates every reachable block; the immediate dominator
    /// dominates its block; dominance is acyclic towards the entry.
    #[test]
    fn dominator_invariants(spec in arb_cfg()) {
        let f = build_cfg(&spec);
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&cfg);
        for &b in cfg.rpo() {
            prop_assert!(dom.dominates(BlockId(0), b), "entry must dominate {b}");
            let idom = dom.idom(b).expect("reachable blocks have an idom");
            prop_assert!(dom.dominates(idom, b));
            if b != BlockId(0) {
                prop_assert!(idom != b, "only the entry self-dominates");
                // Walking idoms terminates at the entry.
                let mut cur = b;
                let mut steps = 0;
                while cur != BlockId(0) {
                    cur = dom.idom(cur).expect("chain stays reachable");
                    steps += 1;
                    prop_assert!(steps <= f.blocks.len(), "idom chain cycles");
                }
            }
        }
    }

    /// Every predecessor edge has a matching successor edge and both ends
    /// in range.
    #[test]
    fn cfg_edges_are_symmetric(spec in arb_cfg()) {
        let f = build_cfg(&spec);
        let cfg = Cfg::new(&f);
        for b in f.block_ids() {
            for &s in cfg.succs(b) {
                prop_assert!((s.0 as usize) < f.blocks.len());
                prop_assert!(cfg.preds(s).contains(&b));
            }
            for &p in cfg.preds(b) {
                prop_assert!(cfg.succs(p).contains(&b));
            }
        }
    }

    /// Natural loops: the header dominates every body block, the header is
    /// in its own body, and some body block branches back to the header.
    #[test]
    fn natural_loop_invariants(spec in arb_cfg()) {
        let f = build_cfg(&spec);
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&cfg);
        for l in find_loops(&f, &cfg, &dom) {
            prop_assert!(l.body.contains(&l.header));
            for &b in &l.body {
                prop_assert!(dom.dominates(l.header, b), "{} !dom {b}", l.header);
            }
            let has_backedge = l
                .body
                .iter()
                .any(|&b| f.block(b).term.successors().contains(&l.header));
            prop_assert!(has_backedge, "loop at {} has no backedge", l.header);
            for exit in &l.exits {
                prop_assert!(l.body.contains(&exit.block));
                prop_assert!(!l.body.contains(&exit.exit_bb));
                prop_assert!(l.body.contains(&exit.continue_bb));
            }
        }
    }
}
