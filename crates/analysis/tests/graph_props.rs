//! Seeded generative tests of the CFG, dominator, and loop machinery on
//! randomly generated control-flow graphs (deterministic, offline-only).

use atomig_analysis::{find_loops, Cfg, DomTree};
use atomig_mir::{Block, BlockId, Function, Terminator, Type, Value};
use atomig_testutil::Rng;

/// Builds a function whose CFG is given by `(kind, t1, t2)` per block:
/// kind 0 = Ret, 1 = Br(t1), 2 = CondBr(t1, t2).
fn build_cfg(spec: &[(u8, usize, usize)]) -> Function {
    let n = spec.len().max(1);
    let mut f = Function::new("g", vec![], Type::Void);
    f.blocks.clear();
    for (i, &(kind, t1, t2)) in spec.iter().enumerate() {
        let term = match kind % 3 {
            0 => Terminator::Ret(None),
            1 => Terminator::Br(BlockId((t1 % n) as u32)),
            _ => Terminator::CondBr {
                cond: Value::Const(1),
                then_bb: BlockId((t1 % n) as u32),
                else_bb: BlockId((t2 % n) as u32),
            },
        };
        f.blocks.push(Block {
            name: format!("b{i}"),
            insts: vec![],
            term,
        });
    }
    if f.blocks.is_empty() {
        f.blocks.push(Block {
            name: "b0".into(),
            insts: vec![],
            term: Terminator::Ret(None),
        });
    }
    f
}

fn gen_spec(rng: &mut Rng) -> Vec<(u8, usize, usize)> {
    let len = 1 + rng.gen_usize(11);
    (0..len)
        .map(|_| (rng.gen_usize(3) as u8, rng.gen_usize(12), rng.gen_usize(12)))
        .collect()
}

/// The entry dominates every reachable block; the immediate dominator
/// dominates its block; dominance is acyclic towards the entry.
#[test]
fn dominator_invariants() {
    let mut rng = Rng::new(0x0D01);
    for case in 0..256 {
        let spec = gen_spec(&mut rng);
        let f = build_cfg(&spec);
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&cfg);
        for &b in cfg.rpo() {
            assert!(
                dom.dominates(BlockId(0), b),
                "case {case}: entry must dominate {b}"
            );
            let idom = dom.idom(b).expect("reachable blocks have an idom");
            assert!(dom.dominates(idom, b), "case {case}");
            if b != BlockId(0) {
                assert!(idom != b, "case {case}: only the entry self-dominates");
                // Walking idoms terminates at the entry.
                let mut cur = b;
                let mut steps = 0;
                while cur != BlockId(0) {
                    cur = dom.idom(cur).expect("chain stays reachable");
                    steps += 1;
                    assert!(steps <= f.blocks.len(), "case {case}: idom chain cycles");
                }
            }
        }
    }
}

/// Every predecessor edge has a matching successor edge and both ends
/// in range.
#[test]
fn cfg_edges_are_symmetric() {
    let mut rng = Rng::new(0x0D02);
    for case in 0..256 {
        let spec = gen_spec(&mut rng);
        let f = build_cfg(&spec);
        let cfg = Cfg::new(&f);
        for b in f.block_ids() {
            for &s in cfg.succs(b) {
                assert!((s.0 as usize) < f.blocks.len(), "case {case}");
                assert!(cfg.preds(s).contains(&b), "case {case}");
            }
            for &p in cfg.preds(b) {
                assert!(cfg.succs(p).contains(&b), "case {case}");
            }
        }
    }
}

/// Natural loops: the header dominates every body block, the header is
/// in its own body, and some body block branches back to the header.
#[test]
fn natural_loop_invariants() {
    let mut rng = Rng::new(0x0D03);
    for case in 0..256 {
        let spec = gen_spec(&mut rng);
        let f = build_cfg(&spec);
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&cfg);
        for l in find_loops(&f, &cfg, &dom) {
            assert!(l.body.contains(&l.header), "case {case}");
            for &b in &l.body {
                assert!(
                    dom.dominates(l.header, b),
                    "case {case}: {} !dom {b}",
                    l.header
                );
            }
            let has_backedge = l
                .body
                .iter()
                .any(|&b| f.block(b).term.successors().contains(&l.header));
            assert!(
                has_backedge,
                "case {case}: loop at {} has no backedge",
                l.header
            );
            for exit in &l.exits {
                assert!(l.body.contains(&exit.block), "case {case}");
                assert!(!l.body.contains(&exit.exit_bb), "case {case}");
                assert!(l.body.contains(&exit.continue_bb), "case {case}");
            }
        }
    }
}
