//! Escape analysis: which stack slots stay private to the function?
//!
//! The paper (§3.3): "A memory access is non-local in a function if it may
//! also be accessed from outside that function; e.g., a global variable, a
//! function argument passed by reference, or a stack variable whose address
//! is taken and escapes the function scope."

use atomig_mir::{Function, InstId, InstKind, Terminator, Value};
use std::collections::{HashMap, HashSet};

/// Escape information for one function.
#[derive(Debug, Clone)]
pub struct EscapeInfo {
    /// Allocas whose address escapes the function.
    escaping: HashSet<InstId>,
    /// All alloca instruction ids.
    allocas: HashSet<InstId>,
    /// `value -> root alloca` cache for address chasing.
    roots: HashMap<InstId, Option<InstId>>,
}

impl EscapeInfo {
    /// Computes escape information for `func`.
    pub fn new(func: &Function) -> EscapeInfo {
        let index = func.inst_index();
        let allocas: HashSet<InstId> = index
            .iter()
            .filter(|(_, k)| matches!(k, InstKind::Alloca { .. }))
            .map(|(id, _)| *id)
            .collect();

        // Chase a value back through gep/cast to its root alloca (if any).
        let mut roots: HashMap<InstId, Option<InstId>> = HashMap::new();
        fn root_of(
            v: Value,
            index: &HashMap<InstId, &InstKind>,
            allocas: &HashSet<InstId>,
            roots: &mut HashMap<InstId, Option<InstId>>,
            depth: u32,
        ) -> Option<InstId> {
            if depth == 0 {
                return None;
            }
            let id = v.as_inst()?;
            if let Some(r) = roots.get(&id) {
                return *r;
            }
            let r = match index.get(&id) {
                Some(InstKind::Alloca { .. }) if allocas.contains(&id) => Some(id),
                Some(InstKind::Gep { base, .. }) => {
                    root_of(*base, index, allocas, roots, depth - 1)
                }
                Some(InstKind::Cast { value, .. }) => {
                    root_of(*value, index, allocas, roots, depth - 1)
                }
                _ => None,
            };
            roots.insert(id, r);
            r
        }

        // A use escapes the slot when the *address value* flows somewhere
        // we cannot see: stored as data, passed to a call, or returned.
        let mut escaping = HashSet::new();
        {
            let mut mark = |v: Value| {
                if let Some(a) = root_of(v, &index, &allocas, &mut roots, 32) {
                    escaping.insert(a);
                }
            };
            for (_, inst) in func.insts() {
                match &inst.kind {
                    InstKind::Store { val, .. } => mark(*val),
                    InstKind::Call { args, .. } => {
                        for a in args {
                            mark(*a);
                        }
                    }
                    InstKind::Cmpxchg { expected, new, .. } => {
                        mark(*expected);
                        mark(*new);
                    }
                    InstKind::Rmw { val, .. } => mark(*val),
                    _ => {}
                }
            }
            for b in func.block_ids() {
                if let Terminator::Ret(Some(v)) = func.block(b).term {
                    mark(v);
                }
            }
        }

        // Pre-warm the root cache for all address operands so later queries
        // are pure lookups (the paper caches its scope queries, §3.5).
        for (_, inst) in func.insts() {
            if let Some(ptr) = inst.kind.address() {
                root_of(ptr, &index, &allocas, &mut roots, 32);
            }
        }

        EscapeInfo {
            escaping,
            allocas,
            roots,
        }
    }

    /// Whether `id` is an alloca whose address never escapes.
    pub fn is_private_slot(&self, id: InstId) -> bool {
        self.allocas.contains(&id) && !self.escaping.contains(&id)
    }

    /// The root private alloca behind an address value, if any.
    pub fn private_root(&self, ptr: Value) -> Option<InstId> {
        match ptr {
            Value::Inst(id) => {
                let root = if self.allocas.contains(&id) {
                    Some(id)
                } else {
                    self.roots.get(&id).copied().flatten()
                }?;
                self.is_private_slot(root).then_some(root)
            }
            _ => None,
        }
    }

    /// Whether an access through `ptr` is **non-local** in the paper's
    /// sense: not provably confined to a private stack slot.
    pub fn is_nonlocal(&self, ptr: Value) -> bool {
        self.private_root(ptr).is_none()
    }

    /// Number of escaping allocas (diagnostics).
    pub fn escaping_count(&self) -> usize {
        self.escaping.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomig_mir::parse_module;

    fn info_of(src: &str) -> (atomig_mir::Module, EscapeInfo) {
        let m = parse_module(src).unwrap();
        let info = EscapeInfo::new(&m.funcs[0]);
        (m, info)
    }

    #[test]
    fn private_local_variable() {
        let (m, info) = info_of(
            r#"
            fn @f() : i32 {
            bb0:
              %x = alloca i32
              store i32 5, %x
              %v = load i32, %x
              ret %v
            }
            "#,
        );
        let f = &m.funcs[0];
        let alloca_id = f.blocks[0].insts[0].id;
        assert!(info.is_private_slot(alloca_id));
        assert!(!info.is_nonlocal(Value::Inst(alloca_id)));
    }

    #[test]
    fn address_passed_to_call_escapes() {
        let (m, info) = info_of(
            r#"
            fn @g(%p: ptr i32) : void {
            bb0:
              ret
            }
            fn @f() : void {
            bb0:
              %x = alloca i32
              call void @g(%x)
              ret
            }
            "#,
        );
        // info is for @g (funcs[0]); recompute for @f.
        let info_f = EscapeInfo::new(&m.funcs[1]);
        let alloca_id = m.funcs[1].blocks[0].insts[0].id;
        assert!(!info_f.is_private_slot(alloca_id));
        assert!(info_f.is_nonlocal(Value::Inst(alloca_id)));
        drop(info);
    }

    #[test]
    fn address_stored_to_memory_escapes() {
        let (m, info) = info_of(
            r#"
            global @p: ptr i32 = 0
            fn @f() : void {
            bb0:
              %x = alloca i32
              store ptr i32 %x, @p
              ret
            }
            "#,
        );
        let alloca_id = m.funcs[0].blocks[0].insts[0].id;
        assert!(info.is_nonlocal(Value::Inst(alloca_id)));
    }

    #[test]
    fn returned_address_escapes() {
        let (m, info) = info_of(
            r#"
            fn @f() : ptr i32 {
            bb0:
              %x = alloca i32
              ret %x
            }
            "#,
        );
        let alloca_id = m.funcs[0].blocks[0].insts[0].id;
        assert!(info.is_nonlocal(Value::Inst(alloca_id)));
    }

    #[test]
    fn gep_into_private_array_stays_local() {
        let (m, info) = info_of(
            r#"
            fn @f() : void {
            bb0:
              %a = alloca [4 x i32]
              %e = gep [4 x i32], %a, 0, 2
              store i32 1, %e
              ret
            }
            "#,
        );
        let f = &m.funcs[0];
        let gep = f.blocks[0].insts[1].id;
        assert!(!info.is_nonlocal(Value::Inst(gep)));
        assert_eq!(
            info.private_root(Value::Inst(gep)),
            Some(f.blocks[0].insts[0].id)
        );
    }

    #[test]
    fn globals_and_params_are_nonlocal() {
        let (_, info) = info_of(
            r#"
            global @g: i32 = 0
            fn @f(%p: ptr i32) : void {
            bb0:
              %v = load i32, %p
              %w = load i32, @g
              ret
            }
            "#,
        );
        assert!(info.is_nonlocal(Value::Param(0)));
        assert!(info.is_nonlocal(Value::Global(atomig_mir::GlobalId(0))));
    }

    #[test]
    fn pointer_passed_through_call_and_returned_is_nonlocal() {
        // The identity function hands the address straight back, but the
        // caller's slot already escaped at the call site, and the
        // returned pointer has no visible private root.
        let (m, _info) = info_of(
            r#"
            fn @id(%p: ptr i32) : ptr i32 {
            bb0:
              ret %p
            }
            fn @f() : i32 {
            bb0:
              %x = alloca i32
              %p = call ptr i32 @id(%x)
              store i32 1, %p
              %v = load i32, %x
              ret %v
            }
            "#,
        );
        let f = &m.funcs[1];
        let info_f = EscapeInfo::new(f);
        let alloca_id = f.blocks[0].insts[0].id;
        let call_id = f.blocks[0].insts[1].id;
        assert!(!info_f.is_private_slot(alloca_id));
        assert!(info_f.is_nonlocal(Value::Inst(alloca_id)));
        assert!(info_f.is_nonlocal(Value::Inst(call_id)));
        assert_eq!(info_f.private_root(Value::Inst(call_id)), None);
    }

    #[test]
    fn access_through_returned_pointer_is_nonlocal() {
        let (m, _info) = info_of(
            r#"
            global @cell: i32 = 0
            fn @mk() : ptr i32 {
            bb0:
              ret @cell
            }
            fn @f() : i32 {
            bb0:
              %p = call ptr i32 @mk()
              %v = load i32, %p
              ret %v
            }
            "#,
        );
        let info_f = EscapeInfo::new(&m.funcs[1]);
        let call_id = m.funcs[1].blocks[0].insts[0].id;
        assert!(info_f.is_nonlocal(Value::Inst(call_id)));
        assert_eq!(info_f.private_root(Value::Inst(call_id)), None);
    }

    #[test]
    fn cmpxchg_operand_escapes_the_slot() {
        // Publishing the slot's address as a cmpxchg operand makes it
        // reachable from whoever reads @owner.
        let (m, info) = info_of(
            r#"
            global @owner: ptr i32 = 0
            fn @f() : void {
            bb0:
              %x = alloca i32
              %old = cmpxchg ptr i32 @owner, %x, %x seq_cst
              ret
            }
            "#,
        );
        let alloca_id = m.funcs[0].blocks[0].insts[0].id;
        assert!(!info.is_private_slot(alloca_id));
        assert!(info.is_nonlocal(Value::Inst(alloca_id)));
    }

    #[test]
    fn escape_via_gep_of_address() {
        // Passing &x[1] to a call escapes x.
        let (m, info) = info_of(
            r#"
            fn @g(%p: ptr i32) : void {
            bb0:
              ret
            }
            fn @f() : void {
            bb0:
              %a = alloca [4 x i32]
              %e = gep [4 x i32], %a, 0, 1
              call void @g(%e)
              ret
            }
            "#,
        );
        let info_f = EscapeInfo::new(&m.funcs[1]);
        let alloca_id = m.funcs[1].blocks[0].insts[0].id;
        assert!(info_f.is_nonlocal(Value::Inst(alloca_id)));
        drop(info);
    }
}
