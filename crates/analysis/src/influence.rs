//! The scoped *instruction-influence analysis* of §3.5.
//!
//! Given a value (typically a loop exit condition), compute the closure of
//! instructions it transitively depends on, flowing through `-O0` stack
//! slots: a load from a private slot depends on the stores to that slot
//! (within a caller-chosen scope — a loop body or the whole function).
//! The closure records which **non-local** memory reads feed the value;
//! those are the paper's *spin control* candidates.

use crate::escape::EscapeInfo;
use atomig_mir::{BlockId, Function, InstId, InstKind, Value};
use std::collections::{BTreeSet, HashMap, HashSet};

/// The dependency closure of a value.
#[derive(Debug, Clone, Default)]
pub struct DepSet {
    /// Every instruction in the closure.
    pub insts: HashSet<InstId>,
    /// Reads (load/cmpxchg/rmw) of non-local memory in the closure.
    pub nonlocal_reads: HashSet<InstId>,
    /// Private stack slots (alloca ids) read by the closure.
    pub local_slots_read: HashSet<InstId>,
    /// Whether the closure passes through an opaque call result. Calls may
    /// read shared state, so this conservatively counts as a non-local
    /// dependency (the inliner usually removes these first).
    pub has_opaque: bool,
}

impl DepSet {
    /// Whether the value has any non-local dependency (§3.3's spinloop
    /// requirement on exit conditions).
    pub fn has_nonlocal(&self) -> bool {
        !self.nonlocal_reads.is_empty() || self.has_opaque
    }

    /// Merges another closure into this one.
    pub fn merge(&mut self, other: DepSet) {
        self.insts.extend(other.insts);
        self.nonlocal_reads.extend(other.nonlocal_reads);
        self.local_slots_read.extend(other.local_slots_read);
        self.has_opaque |= other.has_opaque;
    }
}

/// Per-function influence analysis with precomputed slot/store maps.
///
/// Construction is `O(instructions)`; queries walk only the relevant
/// use-def chains. The paper caches exactly this information to keep
/// repeated queries cheap (§3.5).
#[derive(Debug)]
pub struct InfluenceAnalysis<'f> {
    func: &'f Function,
    index: HashMap<InstId, &'f InstKind>,
    block_of: HashMap<InstId, BlockId>,
    escape: EscapeInfo,
    /// Private slot -> store instructions writing it.
    slot_stores: HashMap<InstId, Vec<InstId>>,
}

impl<'f> InfluenceAnalysis<'f> {
    /// Builds the analysis for `func`.
    pub fn new(func: &'f Function) -> InfluenceAnalysis<'f> {
        let index = func.inst_index();
        let escape = EscapeInfo::new(func);
        let mut block_of = HashMap::new();
        let mut slot_stores: HashMap<InstId, Vec<InstId>> = HashMap::new();
        for (b, inst) in func.insts() {
            block_of.insert(inst.id, b);
            if let InstKind::Store { ptr, .. } = &inst.kind {
                if let Some(slot) = escape.private_root(*ptr) {
                    slot_stores.entry(slot).or_default().push(inst.id);
                }
            }
        }
        InfluenceAnalysis {
            func,
            index,
            block_of,
            escape,
            slot_stores,
        }
    }

    /// The underlying escape information.
    pub fn escape(&self) -> &EscapeInfo {
        &self.escape
    }

    /// The function under analysis.
    pub fn func(&self) -> &'f Function {
        self.func
    }

    /// The block containing instruction `id`.
    pub fn block_of(&self, id: InstId) -> Option<BlockId> {
        self.block_of.get(&id).copied()
    }

    /// Computes the dependency closure of `v`.
    ///
    /// When `scope` is `Some(blocks)`, stores into private stack slots are
    /// followed only if they occur inside `blocks` — the fine-grained
    /// scoping of §3.5 (e.g. "just within the loop").
    pub fn value_deps(&self, v: Value, scope: Option<&BTreeSet<BlockId>>) -> DepSet {
        let mut out = DepSet::default();
        let mut visited: HashSet<InstId> = HashSet::new();
        let mut work: Vec<Value> = vec![v];
        while let Some(v) = work.pop() {
            let id = match v.as_inst() {
                Some(id) => id,
                None => continue,
            };
            if !visited.insert(id) {
                continue;
            }
            out.insts.insert(id);
            let kind = match self.index.get(&id) {
                Some(k) => *k,
                None => continue,
            };
            match kind {
                InstKind::Load { ptr, .. } => {
                    self.visit_read(id, *ptr, scope, &mut out, &mut work);
                    work.push(*ptr);
                }
                InstKind::Cmpxchg {
                    ptr, expected, new, ..
                } => {
                    self.visit_read(id, *ptr, scope, &mut out, &mut work);
                    work.push(*ptr);
                    work.push(*expected);
                    work.push(*new);
                }
                InstKind::Rmw { ptr, val, .. } => {
                    self.visit_read(id, *ptr, scope, &mut out, &mut work);
                    work.push(*ptr);
                    work.push(*val);
                }
                InstKind::Call { args, .. } => {
                    out.has_opaque = true;
                    work.extend(args.iter().copied());
                }
                InstKind::Alloca { .. } => {
                    // The address itself is a constant; no dependencies.
                }
                other => work.extend(other.operands()),
            }
        }
        out
    }

    fn visit_read(
        &self,
        read_id: InstId,
        ptr: Value,
        scope: Option<&BTreeSet<BlockId>>,
        out: &mut DepSet,
        work: &mut Vec<Value>,
    ) {
        match self.escape.private_root(ptr) {
            None => {
                out.nonlocal_reads.insert(read_id);
            }
            Some(slot) => {
                out.local_slots_read.insert(slot);
                if let Some(stores) = self.slot_stores.get(&slot) {
                    for &sid in stores {
                        if let Some(sc) = scope {
                            match self.block_of.get(&sid) {
                                Some(b) if sc.contains(b) => {}
                                _ => continue,
                            }
                        }
                        if out.insts.insert(sid) {
                            if let Some(InstKind::Store { val, ptr, .. }) = self.index.get(&sid) {
                                work.push(*val);
                                work.push(*ptr);
                            }
                        }
                    }
                }
            }
        }
    }

    /// The dependency closure of a *store*: its value and address deps.
    /// Used by spinloop rule (2): stores without non-local dependencies
    /// that influence the exit condition disqualify the loop.
    pub fn store_deps(&self, store_id: InstId, scope: Option<&BTreeSet<BlockId>>) -> DepSet {
        let mut out = DepSet::default();
        if let Some(InstKind::Store { val, ptr, .. }) = self.index.get(&store_id) {
            out.merge(self.value_deps(*val, scope));
            out.merge(self.value_deps(*ptr, scope));
            // A store whose *target* is non-local memory counts as having a
            // non-local dependency (its effect is shared).
            if self.escape.private_root(*ptr).is_none() {
                out.has_opaque = true;
            }
        }
        out
    }

    /// The private slot a store writes to, if any.
    pub fn store_target_slot(&self, store_id: InstId) -> Option<InstId> {
        match self.index.get(&store_id) {
            Some(InstKind::Store { ptr, .. }) => self.escape.private_root(*ptr),
            _ => None,
        }
    }

    /// Whether a store writes a compile-time constant (the paper's
    /// "constant store" exemption in spinloop rule (2), Figure 3).
    pub fn store_is_constant(&self, store_id: InstId) -> bool {
        matches!(
            self.index.get(&store_id),
            Some(InstKind::Store { val, .. }) if val.is_const()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomig_mir::parse_module;

    /// Figure 3, spinloop 3: condition depends on a local that copies a
    /// masked non-local value inside the loop.
    #[test]
    fn chases_through_stack_slot_within_scope() {
        let m = parse_module(
            r#"
            global @flag: i32 = 0
            fn @f() : void {
            entry:
              %lflag = alloca i32
              br loop
            loop:
              %fv = load i32, @flag
              %masked = and %fv, 3
              store i32 %masked, %lflag
              %lv = load i32, %lflag
              %c = cmp ne %lv, 2
              condbr %c, loop, exit
            exit:
              ret
            }
            "#,
        )
        .unwrap();
        let f = &m.funcs[0];
        let inf = InfluenceAnalysis::new(f);
        let cond = f.blocks[1].insts.last().unwrap().id;
        let scope: BTreeSet<BlockId> = [BlockId(1)].into_iter().collect();
        let deps = inf.value_deps(Value::Inst(cond), Some(&scope));
        assert!(deps.has_nonlocal());
        assert_eq!(deps.nonlocal_reads.len(), 1);
        // The non-local read is the load of @flag.
        let nl = *deps.nonlocal_reads.iter().next().unwrap();
        assert_eq!(nl, f.blocks[1].insts[0].id);
        assert_eq!(deps.local_slots_read.len(), 1);
    }

    /// Figure 3, non-spinloop 2: `for (i = 0; i < turns; i++)`.
    #[test]
    fn local_counter_store_has_no_nonlocal_deps() {
        let m = parse_module(
            r#"
            global @turns: i32 = 7
            fn @f() : void {
            entry:
              %i = alloca i32
              store i32 0, %i
              br header
            header:
              %iv = load i32, %i
              %tv = load i32, @turns
              %c = cmp lt %iv, %tv
              condbr %c, latch, exit
            latch:
              %iv2 = load i32, %i
              %inc = add %iv2, 1
              store i32 %inc, %i
              br header
            exit:
              ret
            }
            "#,
        )
        .unwrap();
        let f = &m.funcs[0];
        let inf = InfluenceAnalysis::new(f);
        let scope: BTreeSet<BlockId> = [BlockId(1), BlockId(2)].into_iter().collect();
        // Exit condition depends on @turns (non-local) and slot i.
        let cond = f.blocks[1].insts[2].id;
        let deps = inf.value_deps(Value::Inst(cond), Some(&scope));
        assert!(deps.has_nonlocal());
        assert_eq!(deps.local_slots_read.len(), 1);
        // The i++ store: only local deps, not constant, targets slot i.
        let inc_store = f.blocks[2].insts[2].id;
        let sdeps = inf.store_deps(inc_store, Some(&scope));
        assert!(!sdeps.has_nonlocal());
        assert!(!inf.store_is_constant(inc_store));
        let slot = inf.store_target_slot(inc_store).unwrap();
        assert!(deps.local_slots_read.contains(&slot));
    }

    /// Figure 3, spinloop 2: constant stores are recognized.
    #[test]
    fn constant_store_detected() {
        let m = parse_module(
            r#"
            global @flag: i32 = 0
            fn @f() : void {
            entry:
              %lflag = alloca i32
              br loop
            loop:
              store i32 1, %lflag
              %lv = load i32, %lflag
              %fv = load i32, @flag
              %c = cmp ne %lv, %fv
              condbr %c, loop, exit
            exit:
              ret
            }
            "#,
        )
        .unwrap();
        let f = &m.funcs[0];
        let inf = InfluenceAnalysis::new(f);
        let const_store = f.blocks[1].insts[0].id;
        assert!(inf.store_is_constant(const_store));
        let sdeps = inf.store_deps(const_store, None);
        assert!(!sdeps.has_nonlocal());
    }

    #[test]
    fn scope_excludes_out_of_loop_stores() {
        let m = parse_module(
            r#"
            global @x: i32 = 0
            fn @f() : void {
            entry:
              %l = alloca i32
              %xv = load i32, @x
              store i32 %xv, %l
              br loop
            loop:
              %lv = load i32, %l
              %c = cmp ne %lv, 0
              condbr %c, loop, exit
            exit:
              ret
            }
            "#,
        )
        .unwrap();
        let f = &m.funcs[0];
        let inf = InfluenceAnalysis::new(f);
        let cond = f.blocks[1].insts[1].id;
        let scope: BTreeSet<BlockId> = [BlockId(1)].into_iter().collect();
        // Loop-scoped: the store (and its @x load) is outside -> no
        // non-local deps visible.
        let deps = inf.value_deps(Value::Inst(cond), Some(&scope));
        assert!(!deps.has_nonlocal());
        // Function-scoped: the @x load is reachable.
        let deps_full = inf.value_deps(Value::Inst(cond), None);
        assert!(deps_full.has_nonlocal());
    }

    #[test]
    fn call_results_are_opaque_nonlocal() {
        let m = parse_module(
            r#"
            fn @get() : i32 {
            bb0:
              ret 0
            }
            fn @f() : void {
            entry:
              br loop
            loop:
              %v = call i32 @get()
              %c = cmp eq %v, 0
              condbr %c, loop, exit
            exit:
              ret
            }
            "#,
        )
        .unwrap();
        let f = &m.funcs[1];
        let inf = InfluenceAnalysis::new(f);
        let cond = f.blocks[1].insts[1].id;
        let deps = inf.value_deps(Value::Inst(cond), None);
        assert!(deps.has_opaque);
        assert!(deps.has_nonlocal());
        assert!(deps.nonlocal_reads.is_empty());
    }

    #[test]
    fn cmpxchg_on_global_is_nonlocal_read() {
        let m = parse_module(
            r#"
            global @lock: i32 = 0
            fn @f() : void {
            entry:
              br spin
            spin:
              %old = cmpxchg i32 @lock, 0, 1 seq_cst
              %c = cmp ne %old, 0
              condbr %c, spin, exit
            exit:
              ret
            }
            "#,
        )
        .unwrap();
        let f = &m.funcs[0];
        let inf = InfluenceAnalysis::new(f);
        let cond = f.blocks[1].insts[1].id;
        let deps = inf.value_deps(Value::Inst(cond), None);
        assert_eq!(deps.nonlocal_reads.len(), 1);
        assert!(deps.nonlocal_reads.contains(&f.blocks[1].insts[0].id));
    }

    #[test]
    fn store_to_nonlocal_memory_counts_as_nonlocal_dep() {
        let m = parse_module(
            r#"
            global @x: i32 = 0
            fn @f() : void {
            bb0:
              store i32 1, @x
              ret
            }
            "#,
        )
        .unwrap();
        let f = &m.funcs[0];
        let inf = InfluenceAnalysis::new(f);
        let sid = f.blocks[0].insts[0].id;
        assert!(inf.store_deps(sid, None).has_nonlocal());
        assert_eq!(inf.store_target_slot(sid), None);
    }
}
