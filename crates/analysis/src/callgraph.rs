//! Call graph construction.

use atomig_mir::{Callee, FuncId, InstKind, Module};
use std::collections::HashSet;

/// The static call graph of a module (direct calls only; spawn targets are
/// recorded as edges too, since the spawned function runs the same code).
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// `callees[f]` = functions directly called (or spawned) by `f`.
    callees: Vec<Vec<FuncId>>,
    /// `callers[f]` = functions calling `f`.
    callers: Vec<Vec<FuncId>>,
}

impl CallGraph {
    /// Builds the call graph of `m`.
    pub fn new(m: &Module) -> CallGraph {
        let n = m.funcs.len();
        let mut callees = vec![Vec::new(); n];
        let mut callers = vec![Vec::new(); n];
        for fid in m.func_ids() {
            let f = m.func(fid);
            let mut seen = HashSet::new();
            for (_, inst) in f.insts() {
                if let InstKind::Call { callee, args, .. } = &inst.kind {
                    let mut add = |target: FuncId| {
                        if seen.insert(target) {
                            callees[fid.0 as usize].push(target);
                            callers[target.0 as usize].push(fid);
                        }
                    };
                    if let Callee::Func(target) = callee {
                        add(*target);
                    }
                    // Function references passed as arguments (spawn).
                    for a in args {
                        if let atomig_mir::Value::Func(target) = a {
                            add(*target);
                        }
                    }
                }
            }
        }
        CallGraph { callees, callers }
    }

    /// Functions called by `f`.
    pub fn callees(&self, f: FuncId) -> &[FuncId] {
        &self.callees[f.0 as usize]
    }

    /// Functions calling `f`.
    pub fn callers(&self, f: FuncId) -> &[FuncId] {
        &self.callers[f.0 as usize]
    }

    /// Whether `f` (transitively) calls itself.
    pub fn is_recursive(&self, f: FuncId) -> bool {
        let mut visited = HashSet::new();
        let mut stack: Vec<FuncId> = self.callees(f).to_vec();
        while let Some(g) = stack.pop() {
            if g == f {
                return true;
            }
            if visited.insert(g) {
                stack.extend(self.callees(g).iter().copied());
            }
        }
        false
    }

    /// A bottom-up (callees before callers) ordering of all functions.
    /// Cycles are broken arbitrarily.
    pub fn bottom_up_order(&self) -> Vec<FuncId> {
        let n = self.callees.len();
        let mut order = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 = new, 1 = open, 2 = done
        for start in 0..n {
            if state[start] != 0 {
                continue;
            }
            let mut stack: Vec<(FuncId, usize)> = vec![(FuncId(start as u32), 0)];
            state[start] = 1;
            while let Some(&mut (f, ref mut i)) = stack.last_mut() {
                let cs = &self.callees[f.0 as usize];
                if *i < cs.len() {
                    let c = cs[*i];
                    *i += 1;
                    if state[c.0 as usize] == 0 {
                        state[c.0 as usize] = 1;
                        stack.push((c, 0));
                    }
                } else {
                    state[f.0 as usize] = 2;
                    order.push(f);
                    stack.pop();
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomig_mir::parse_module;

    const SRC: &str = r#"
    fn @leaf() : void {
    bb0:
      ret
    }
    fn @mid() : void {
    bb0:
      call void @leaf()
      ret
    }
    fn @top() : void {
    bb0:
      call void @mid()
      call void @leaf()
      ret
    }
    "#;

    #[test]
    fn edges() {
        let m = parse_module(SRC).unwrap();
        let cg = CallGraph::new(&m);
        assert_eq!(cg.callees(FuncId(2)), &[FuncId(1), FuncId(0)]);
        assert_eq!(cg.callers(FuncId(0)), &[FuncId(1), FuncId(2)]);
        assert!(cg.callees(FuncId(0)).is_empty());
    }

    #[test]
    fn bottom_up_puts_leaf_first() {
        let m = parse_module(SRC).unwrap();
        let cg = CallGraph::new(&m);
        let order = cg.bottom_up_order();
        let pos = |f: FuncId| order.iter().position(|x| *x == f).unwrap();
        assert!(pos(FuncId(0)) < pos(FuncId(1)));
        assert!(pos(FuncId(1)) < pos(FuncId(2)));
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn recursion_detected() {
        let m = parse_module(
            r#"
            fn @a() : void {
            bb0:
              call void @b()
              ret
            }
            fn @b() : void {
            bb0:
              call void @a()
              ret
            }
            fn @c() : void {
            bb0:
              ret
            }
            "#,
        )
        .unwrap();
        let cg = CallGraph::new(&m);
        assert!(cg.is_recursive(FuncId(0)));
        assert!(cg.is_recursive(FuncId(1)));
        assert!(!cg.is_recursive(FuncId(2)));
    }

    #[test]
    fn spawn_target_is_an_edge() {
        let m = parse_module(
            r#"
            fn @worker(%a: i64) : void {
            bb0:
              ret
            }
            fn @main() : void {
            bb0:
              %t = call i64 @spawn(@worker, 0)
              call void @join(%t)
              ret
            }
            "#,
        )
        .unwrap();
        let cg = CallGraph::new(&m);
        assert_eq!(cg.callees(FuncId(1)), &[FuncId(0)]);
    }
}
