//! # atomig-analysis
//!
//! The static-analysis substrate of the AtoMig reproduction: everything the
//! paper's passes need from LLVM's analysis infrastructure, rebuilt on
//! [`atomig_mir`]:
//!
//! * [`mod@cfg`] — control-flow graph (predecessors/successors, reverse
//!   post-order),
//! * [`dom`] — dominator tree (Cooper–Harvey–Kennedy),
//! * [`loops`] — natural-loop detection with loop exits and exit
//!   conditions, the entry point of the paper's spinloop analysis (§3.3),
//! * [`escape`] — escape analysis classifying accesses as local (provably
//!   confined to a non-escaping stack slot) or *non-local* in the paper's
//!   sense ("may also be accessed from outside that function"),
//! * [`influence`] — the scoped, cached *instruction-influence analysis*
//!   of §3.5: which (non-local) memory reads a value transitively depends
//!   on, flowing through `-O0` stack slots,
//! * [`callgraph`] and [`inline`] — call graph and the bottom-up inliner
//!   the paper applies so loops spanning several functions become
//!   analyzable intra-procedurally (§3.5),
//! * [`pointsto`] — the Andersen-style inter-procedural points-to analysis
//!   the paper deliberately *skips* for scalability (§3.4/§3.5), built here
//!   so the precision/scalability trade-off can be measured.

pub mod callgraph;
pub mod cfg;
pub mod dom;
pub mod escape;
pub mod influence;
pub mod inline;
pub mod loops;
pub mod pointsto;
pub mod reach;

pub use callgraph::CallGraph;
pub use cfg::Cfg;
pub use dom::DomTree;
pub use escape::EscapeInfo;
pub use influence::{DepSet, InfluenceAnalysis};
pub use inline::{inline_module, InlineOptions};
pub use loops::{find_loops, LoopExit, NaturalLoop};
pub use pointsto::{Cell, CellId, ObjBase, PointsTo, PointsToStats};
pub use reach::ThreadReach;
