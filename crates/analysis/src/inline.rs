//! A bottom-up function inliner.
//!
//! The paper inlines functions "where possible beforehand" so that loops
//! spanning multiple functions become visible to the intra-procedural
//! spinloop analysis (§3.5). This inliner processes callees before callers
//! and inlines direct calls to small, non-recursive functions.

use crate::callgraph::CallGraph;
use atomig_mir::{
    Block, BlockId, Callee, FuncId, Function, GepIndex, Inst, InstId, InstKind, Module, Terminator,
    Type, Value,
};
use std::collections::HashMap;

/// Inlining thresholds.
#[derive(Debug, Clone)]
pub struct InlineOptions {
    /// Maximum callee size (instructions) eligible for inlining.
    pub max_callee_insts: usize,
    /// Maximum caller size; callers beyond this stop growing.
    pub max_caller_insts: usize,
    /// Fixpoint rounds (inlining exposes new call sites).
    pub max_rounds: u32,
}

impl Default for InlineOptions {
    fn default() -> Self {
        InlineOptions {
            max_callee_insts: 80,
            max_caller_insts: 50_000,
            max_rounds: 4,
        }
    }
}

/// Inlines eligible call sites module-wide. Returns the number of call
/// sites inlined.
pub fn inline_module(m: &mut Module, opts: &InlineOptions) -> usize {
    let mut total = 0;
    for _ in 0..opts.max_rounds {
        let cg = CallGraph::new(m);
        let order = cg.bottom_up_order();
        let mut round = 0;
        for fid in order {
            round += inline_into(m, fid, &cg, opts);
        }
        if round == 0 {
            break;
        }
        total += round;
    }
    total
}

/// Inlines eligible call sites inside one caller. Returns count inlined.
fn inline_into(m: &mut Module, caller_id: FuncId, cg: &CallGraph, opts: &InlineOptions) -> usize {
    let mut count = 0;
    loop {
        if m.func(caller_id).inst_count() >= opts.max_caller_insts {
            return count;
        }
        // Find the next eligible call site.
        let site = find_site(m, caller_id, cg, opts);
        let (block, pos, callee_id) = match site {
            Some(s) => s,
            None => return count,
        };
        inline_one(m, caller_id, block, pos, callee_id);
        count += 1;
    }
}

fn find_site(
    m: &Module,
    caller_id: FuncId,
    cg: &CallGraph,
    opts: &InlineOptions,
) -> Option<(BlockId, usize, FuncId)> {
    let caller = m.func(caller_id);
    for b in caller.block_ids() {
        for (pos, inst) in caller.block(b).insts.iter().enumerate() {
            if let InstKind::Call {
                callee: Callee::Func(target),
                ..
            } = &inst.kind
            {
                if *target == caller_id || cg.is_recursive(*target) {
                    continue;
                }
                let callee = m.func(*target);
                if callee.inst_count() <= opts.max_callee_insts && !callee.blocks.is_empty() {
                    return Some((b, pos, *target));
                }
            }
        }
    }
    None
}

fn remap_value(v: Value, args: &[Value], inst_off: u32) -> Value {
    match v {
        Value::Param(i) => args[i as usize],
        Value::Inst(id) => Value::Inst(InstId(id.0 + inst_off)),
        other => other,
    }
}

fn remap_kind(kind: &InstKind, args: &[Value], inst_off: u32) -> InstKind {
    let r = |v: Value| remap_value(v, args, inst_off);
    match kind {
        InstKind::Alloca { ty, name } => InstKind::Alloca {
            ty: ty.clone(),
            name: name.clone(),
        },
        InstKind::Load {
            ptr,
            ty,
            ord,
            volatile,
        } => InstKind::Load {
            ptr: r(*ptr),
            ty: ty.clone(),
            ord: *ord,
            volatile: *volatile,
        },
        InstKind::Store {
            ptr,
            val,
            ty,
            ord,
            volatile,
        } => InstKind::Store {
            ptr: r(*ptr),
            val: r(*val),
            ty: ty.clone(),
            ord: *ord,
            volatile: *volatile,
        },
        InstKind::Cmpxchg {
            ptr,
            expected,
            new,
            ty,
            ord,
        } => InstKind::Cmpxchg {
            ptr: r(*ptr),
            expected: r(*expected),
            new: r(*new),
            ty: ty.clone(),
            ord: *ord,
        },
        InstKind::Rmw {
            op,
            ptr,
            val,
            ty,
            ord,
        } => InstKind::Rmw {
            op: *op,
            ptr: r(*ptr),
            val: r(*val),
            ty: ty.clone(),
            ord: *ord,
        },
        InstKind::Fence { ord } => InstKind::Fence { ord: *ord },
        InstKind::Gep {
            base,
            base_ty,
            indices,
        } => InstKind::Gep {
            base: r(*base),
            base_ty: base_ty.clone(),
            indices: indices
                .iter()
                .map(|i| match i {
                    GepIndex::Const(c) => GepIndex::Const(*c),
                    GepIndex::Dyn(v) => GepIndex::Dyn(r(*v)),
                })
                .collect(),
        },
        InstKind::Bin { op, lhs, rhs } => InstKind::Bin {
            op: *op,
            lhs: r(*lhs),
            rhs: r(*rhs),
        },
        InstKind::Cmp { pred, lhs, rhs } => InstKind::Cmp {
            pred: *pred,
            lhs: r(*lhs),
            rhs: r(*rhs),
        },
        InstKind::Cast { value, to } => InstKind::Cast {
            value: r(*value),
            to: to.clone(),
        },
        InstKind::Call {
            callee,
            args: a,
            ret_ty,
        } => InstKind::Call {
            callee: *callee,
            args: a.iter().map(|v| r(*v)).collect(),
            ret_ty: ret_ty.clone(),
        },
    }
}

/// Rewrites every use of `from` to `to` in a function.
fn replace_uses(f: &mut Function, from: InstId, to: Value) {
    let subst = |v: &mut Value| {
        if *v == Value::Inst(from) {
            *v = to;
        }
    };
    for b in 0..f.blocks.len() {
        for inst in &mut f.blocks[b].insts {
            match &mut inst.kind {
                InstKind::Load { ptr, .. } => subst(ptr),
                InstKind::Store { ptr, val, .. } => {
                    subst(ptr);
                    subst(val);
                }
                InstKind::Cmpxchg {
                    ptr, expected, new, ..
                } => {
                    subst(ptr);
                    subst(expected);
                    subst(new);
                }
                InstKind::Rmw { ptr, val, .. } => {
                    subst(ptr);
                    subst(val);
                }
                InstKind::Gep { base, indices, .. } => {
                    subst(base);
                    for i in indices {
                        if let GepIndex::Dyn(v) = i {
                            subst(v);
                        }
                    }
                }
                InstKind::Bin { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => {
                    subst(lhs);
                    subst(rhs);
                }
                InstKind::Cast { value, .. } => subst(value),
                InstKind::Call { args, .. } => {
                    for a in args {
                        subst(a);
                    }
                }
                InstKind::Alloca { .. } | InstKind::Fence { .. } => {}
            }
        }
        match &mut f.blocks[b].term {
            Terminator::CondBr { cond, .. } => subst(cond),
            Terminator::Ret(Some(v)) => subst(v),
            _ => {}
        }
    }
}

fn inline_one(m: &mut Module, caller_id: FuncId, block: BlockId, pos: usize, callee_id: FuncId) {
    let callee = m.func(callee_id).clone();
    let caller = m.func_mut(caller_id);

    // Remove the call instruction; remember its pieces.
    let call_inst = caller.block_mut(block).insts.remove(pos);
    let (args, ret_ty) = match call_inst.kind {
        InstKind::Call { args, ret_ty, .. } => (args, ret_ty),
        _ => unreachable!("inline_one called on a non-call"),
    };

    let inst_off = caller.next_inst;
    caller.next_inst += callee.next_inst;
    let block_off = caller.blocks.len() as u32;

    // Continuation block: tail of the split block + original terminator.
    let cont_id = BlockId(block_off);
    let tail: Vec<Inst> = caller.block_mut(block).insts.split_off(pos);
    let orig_term = std::mem::replace(
        &mut caller.block_mut(block).term,
        Terminator::Br(BlockId(block_off + 1)), // callee entry comes next
    );
    caller.blocks.push(Block {
        name: format!("inline.cont.{}", call_inst.id.0),
        insts: tail,
        term: orig_term,
    });

    // Return slot for non-void callees.
    let ret_slot = if ret_ty != Type::Void {
        let slot_id = caller.fresh_inst_id();
        caller.blocks[0].insts.insert(
            0,
            Inst::with_span(
                slot_id,
                InstKind::Alloca {
                    ty: ret_ty.clone(),
                    name: format!("inline.ret.{}", call_inst.id.0),
                },
                call_inst.span,
            ),
        );
        Some(Value::Inst(slot_id))
    } else {
        None
    };

    // Clone callee blocks, remapping values/ids/blocks.
    let remap_block = |b: BlockId| BlockId(b.0 + block_off + 1);
    for cb in &callee.blocks {
        let mut insts: Vec<Inst> = Vec::with_capacity(cb.insts.len());
        for inst in &cb.insts {
            insts.push(Inst::with_span(
                InstId(inst.id.0 + inst_off),
                remap_kind(&inst.kind, &args, inst_off),
                inst.span,
            ));
        }
        let term = match &cb.term {
            Terminator::Br(t) => Terminator::Br(remap_block(*t)),
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => Terminator::CondBr {
                cond: remap_value(*cond, &args, inst_off),
                then_bb: remap_block(*then_bb),
                else_bb: remap_block(*else_bb),
            },
            Terminator::Ret(v) => {
                if let (Some(slot), Some(v)) = (ret_slot, v) {
                    insts.push(Inst::with_span(
                        caller.fresh_inst_id(),
                        InstKind::Store {
                            ptr: slot,
                            val: remap_value(*v, &args, inst_off),
                            ty: ret_ty.clone(),
                            ord: atomig_mir::Ordering::NotAtomic,
                            volatile: false,
                        },
                        call_inst.span,
                    ));
                }
                Terminator::Br(cont_id)
            }
            Terminator::Unreachable => Terminator::Unreachable,
        };
        caller.blocks.push(Block {
            name: format!("inline.{}.{}", callee.name, cb.name),
            insts,
            term,
        });
    }

    // Replace uses of the call result with a load from the return slot.
    if let Some(slot) = ret_slot {
        let load_id = caller.fresh_inst_id();
        caller.block_mut(cont_id).insts.insert(
            0,
            Inst::with_span(
                load_id,
                InstKind::Load {
                    ptr: slot,
                    ty: ret_ty,
                    ord: atomig_mir::Ordering::NotAtomic,
                    volatile: false,
                },
                call_inst.span,
            ),
        );
        replace_uses(caller, call_inst.id, Value::Inst(load_id));
    }
}

/// Counts call sites to module-defined functions (diagnostics/tests).
pub fn direct_call_count(m: &Module) -> usize {
    let mut n = 0;
    for f in &m.funcs {
        for (_, inst) in f.insts() {
            if matches!(
                inst.kind,
                InstKind::Call {
                    callee: Callee::Func(_),
                    ..
                }
            ) {
                n += 1;
            }
        }
    }
    n
}

/// A map from function name to id for tests and tools.
pub fn func_name_map(m: &Module) -> HashMap<String, FuncId> {
    m.func_ids()
        .map(|id| (m.func(id).name.clone(), id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomig_mir::{parse_module, verify_module};

    #[test]
    fn inlines_simple_leaf() {
        let mut m = parse_module(
            r#"
            global @x: i32 = 0
            fn @get() : i32 {
            bb0:
              %v = load i32, @x
              ret %v
            }
            fn @main() : i32 {
            bb0:
              %r = call i32 @get()
              %s = add %r, 1
              ret %s
            }
            "#,
        )
        .unwrap();
        let n = inline_module(&mut m, &InlineOptions::default());
        assert_eq!(n, 1);
        assert_eq!(direct_call_count(&m), 0);
        verify_module(&m).unwrap();
        // main now contains the load from @x directly.
        let main = m.func(m.func_by_name("main").unwrap());
        let has_load = main.insts().any(|(_, i)| {
            matches!(
                i.kind,
                InstKind::Load {
                    ptr: Value::Global(_),
                    ..
                }
            )
        });
        assert!(has_load);
    }

    #[test]
    fn inlines_void_callee_with_branches() {
        let mut m = parse_module(
            r#"
            global @x: i32 = 0
            fn @maybe_set(%c: i1) : void {
            bb0:
              condbr %c, yes, no
            yes:
              store i32 1, @x
              br no
            no:
              ret
            }
            fn @main(%c: i1) : void {
            bb0:
              call void @maybe_set(%c)
              store i32 2, @x
              ret
            }
            "#,
        )
        .unwrap();
        assert_eq!(inline_module(&mut m, &InlineOptions::default()), 1);
        verify_module(&m).unwrap();
        let main = m.func(m.func_by_name("main").unwrap());
        // The conditional store was inlined; the tail store survives.
        let stores = main.insts().filter(|(_, i)| i.kind.may_write()).count();
        assert_eq!(stores, 2);
        assert!(main.blocks.len() >= 4);
    }

    #[test]
    fn exposes_cross_function_loop() {
        // A spinloop whose condition reads through a getter: after
        // inlining, the loop body contains the non-local load directly.
        let mut m = parse_module(
            r#"
            global @flag: i32 = 0
            fn @get_flag() : i32 {
            bb0:
              %v = load i32, @flag
              ret %v
            }
            fn @wait() : void {
            entry:
              br loop
            loop:
              %r = call i32 @get_flag()
              %c = cmp eq %r, 0
              condbr %c, loop, exit
            exit:
              ret
            }
            "#,
        )
        .unwrap();
        assert_eq!(inline_module(&mut m, &InlineOptions::default()), 1);
        verify_module(&m).unwrap();
        let wait = m.func(m.func_by_name("wait").unwrap());
        // The @flag load is now inside @wait.
        let has_flag_load = wait.insts().any(
            |(_, i)| matches!(i.kind, InstKind::Load { ptr: Value::Global(g), .. } if g.0 == 0),
        );
        assert!(has_flag_load);
        assert_eq!(direct_call_count(&m), 0);
    }

    #[test]
    fn recursive_functions_not_inlined() {
        let mut m = parse_module(
            r#"
            fn @rec(%n: i32) : i32 {
            bb0:
              %c = cmp le %n, 0
              condbr %c, base, rec_case
            base:
              ret 0
            rec_case:
              %n1 = sub %n, 1
              %r = call i32 @rec(%n1)
              ret %r
            }
            fn @main() : i32 {
            bb0:
              %r = call i32 @rec(5)
              ret %r
            }
            "#,
        )
        .unwrap();
        assert_eq!(inline_module(&mut m, &InlineOptions::default()), 0);
        assert_eq!(direct_call_count(&m), 2);
    }

    #[test]
    fn size_threshold_respected() {
        let mut m = parse_module(
            r#"
            global @x: i32 = 0
            fn @big() : void {
            bb0:
              %a = load i32, @x
              %b = load i32, @x
              %c = load i32, @x
              ret
            }
            fn @main() : void {
            bb0:
              call void @big()
              ret
            }
            "#,
        )
        .unwrap();
        let opts = InlineOptions {
            max_callee_insts: 2,
            ..Default::default()
        };
        assert_eq!(inline_module(&mut m, &opts), 0);
        assert_eq!(direct_call_count(&m), 1);
    }

    #[test]
    fn nested_inlining_reaches_fixpoint() {
        let mut m = parse_module(
            r#"
            global @x: i32 = 0
            fn @leaf() : i32 {
            bb0:
              %v = load i32, @x
              ret %v
            }
            fn @mid() : i32 {
            bb0:
              %v = call i32 @leaf()
              ret %v
            }
            fn @top() : i32 {
            bb0:
              %v = call i32 @mid()
              ret %v
            }
            "#,
        )
        .unwrap();
        let n = inline_module(&mut m, &InlineOptions::default());
        assert!(n >= 2);
        assert_eq!(direct_call_count(&m), 0);
        verify_module(&m).unwrap();
    }
}
