//! Thread-spawn reachability.
//!
//! [`CallGraph`](crate::CallGraph) deliberately merges direct-call and
//! spawn edges — fine for inlining order, useless for concurrency
//! reasoning. This pass re-classifies the edges: a *thread root* is
//! `main` (or any function nobody calls or spawns) plus every function
//! passed to the `spawn` builtin, and each root's *thread context* is
//! the set of functions reachable from it through **direct call edges
//! only**. A function reachable from two distinct roots can execute on
//! two threads concurrently, which is what the race-candidate lint rule
//! needs to know.
//!
//! This is a sound over-approximation in the usual may-analysis sense:
//! it ignores argument values, `join` ordering, and whether a spawn site
//! is actually executed, so it may report concurrency that a scheduler
//! can never realize — but it never misses a function a thread could
//! reach through direct calls.

use atomig_mir::{Builtin, Callee, FuncId, InstKind, Module, Value};
use std::collections::HashSet;

/// Which thread roots can reach each function via direct calls.
#[derive(Debug)]
pub struct ThreadReach {
    /// Thread entry points: `main` plus every spawn target.
    pub roots: Vec<FuncId>,
    /// `reached_by[f.0]` = indices into `roots` whose context includes `f`.
    reached_by: Vec<Vec<usize>>,
}

impl ThreadReach {
    /// Computes reachability for `m`.
    pub fn new(m: &Module) -> ThreadReach {
        let n = m.funcs.len();
        // Direct-call edges only; spawn targets collected separately.
        let mut calls: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        let mut spawn_targets: Vec<FuncId> = Vec::new();
        for (i, f) in m.funcs.iter().enumerate() {
            for b in &f.blocks {
                for inst in &b.insts {
                    if let InstKind::Call { callee, args, .. } = &inst.kind {
                        match callee {
                            Callee::Func(t) => calls[i].push(*t),
                            Callee::Builtin(Builtin::Spawn) => {
                                for a in args {
                                    if let Value::Func(t) = a {
                                        spawn_targets.push(*t);
                                    }
                                }
                            }
                            Callee::Builtin(_) => {}
                        }
                    }
                }
            }
        }

        let mut roots: Vec<FuncId> = Vec::new();
        if let Some(main) = m.func_by_name("main") {
            roots.push(main);
        } else {
            // No `main`: treat every function nobody calls or spawns as a
            // root, so library-style modules still get audited.
            let mut called: HashSet<FuncId> = spawn_targets.iter().copied().collect();
            for cs in &calls {
                called.extend(cs.iter().copied());
            }
            for f in m.func_ids() {
                if !called.contains(&f) {
                    roots.push(f);
                }
            }
        }
        for t in &spawn_targets {
            if !roots.contains(t) {
                roots.push(*t);
            }
        }

        let mut reached_by: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (ri, root) in roots.iter().enumerate() {
            let mut seen = vec![false; n];
            let mut work = vec![*root];
            while let Some(f) = work.pop() {
                if std::mem::replace(&mut seen[f.0 as usize], true) {
                    continue;
                }
                reached_by[f.0 as usize].push(ri);
                work.extend(calls[f.0 as usize].iter().copied());
            }
        }
        ThreadReach { roots, reached_by }
    }

    /// How many distinct thread roots can reach `f` via direct calls.
    pub fn context_count(&self, f: FuncId) -> usize {
        self.reached_by[f.0 as usize].len()
    }

    /// Whether `f` can run on two threads concurrently (reached by ≥2
    /// roots, or reached by a root that is spawned more than once).
    pub fn is_concurrent(&self, f: FuncId) -> bool {
        self.context_count(f) >= 2
    }

    /// The root functions whose thread contexts include `f`.
    pub fn roots_reaching(&self, f: FuncId) -> impl Iterator<Item = FuncId> + '_ {
        self.reached_by[f.0 as usize]
            .iter()
            .map(move |&ri| self.roots[ri])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomig_frontc::compile;

    fn reach_of(src: &str) -> (Module, ThreadReach) {
        let m = compile(src, "t").unwrap();
        let r = ThreadReach::new(&m);
        (m, r)
    }

    #[test]
    fn spawned_worker_is_a_second_context() {
        let (m, r) = reach_of(
            r#"
            int x;
            void helper() { x = 1; }
            void worker(long arg) { helper(); }
            void lonely() { }
            int main() {
              long t = spawn(worker, 0);
              helper();
              join(t);
              return 0;
            }
            "#,
        );
        let main = m.func_by_name("main").unwrap();
        let worker = m.func_by_name("worker").unwrap();
        let helper = m.func_by_name("helper").unwrap();
        let lonely = m.func_by_name("lonely").unwrap();
        assert_eq!(r.roots, vec![main, worker]);
        // helper is called from both thread contexts.
        assert!(r.is_concurrent(helper));
        assert_eq!(r.context_count(worker), 1, "spawn edge is not a call edge");
        assert_eq!(r.context_count(lonely), 0);
        assert!(!r.is_concurrent(main));
    }

    #[test]
    fn no_main_falls_back_to_uncalled_roots() {
        let (m, r) = reach_of(
            r#"
            int x;
            void inner() { x = 1; }
            void api_a() { inner(); }
            void api_b() { inner(); }
            "#,
        );
        let a = m.func_by_name("api_a").unwrap();
        let b = m.func_by_name("api_b").unwrap();
        let inner = m.func_by_name("inner").unwrap();
        assert!(r.roots.contains(&a) && r.roots.contains(&b));
        assert!(!r.roots.contains(&inner));
        assert!(r.is_concurrent(inner));
    }

    #[test]
    fn call_only_module_is_single_context() {
        let (m, r) = reach_of(
            r#"
            int x;
            void leaf() { x = 1; }
            int main() { leaf(); leaf(); return 0; }
            "#,
        );
        let leaf = m.func_by_name("leaf").unwrap();
        assert_eq!(r.context_count(leaf), 1);
        assert!(!r.is_concurrent(leaf));
    }
}
