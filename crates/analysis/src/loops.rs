//! Natural-loop detection.
//!
//! The paper's definitions (§3.3): "A loop is identified by its loop header,
//! a node in a program's CFG that has an incoming backedge, and contains all
//! nodes that are dominated by the loop header and which have a path back to
//! the loop header. A loop exit condition is any condition on a branch that
//! exits the loop."

use crate::cfg::Cfg;
use crate::dom::DomTree;
use atomig_mir::{BlockId, Function, Terminator, Value};
use std::collections::BTreeSet;

/// One way out of a loop: a conditional branch in the body with one
/// successor outside the loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopExit {
    /// Block containing the exiting branch.
    pub block: BlockId,
    /// The branch condition value.
    pub cond: Value,
    /// The in-loop successor (where the loop continues).
    pub continue_bb: BlockId,
    /// The out-of-loop successor.
    pub exit_bb: BlockId,
}

/// A natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header.
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub body: BTreeSet<BlockId>,
    /// All exit conditions.
    pub exits: Vec<LoopExit>,
}

impl NaturalLoop {
    /// Whether `b` belongs to the loop body.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }
}

/// Finds all natural loops of `func`. Loops sharing a header are merged
/// (as LLVM's `LoopInfo` does for multiple backedges).
pub fn find_loops(func: &Function, cfg: &Cfg, dom: &DomTree) -> Vec<NaturalLoop> {
    // Collect backedges t -> h where h dominates t.
    let mut headers: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
    for b in func.block_ids() {
        if !cfg.is_reachable(b) {
            continue;
        }
        for s in cfg.succs(b) {
            if dom.dominates(*s, b) {
                match headers.iter_mut().find(|(h, _)| h == s) {
                    Some((_, tails)) => tails.push(b),
                    None => headers.push((*s, vec![b])),
                }
            }
        }
    }

    let mut loops = Vec::new();
    for (header, tails) in headers {
        // Body: header plus everything that reaches a tail without passing
        // through the header (standard natural-loop construction).
        let mut body: BTreeSet<BlockId> = BTreeSet::new();
        body.insert(header);
        let mut stack: Vec<BlockId> = Vec::new();
        for t in tails {
            if body.insert(t) {
                stack.push(t);
            }
        }
        while let Some(b) = stack.pop() {
            for &p in cfg.preds(b) {
                if cfg.is_reachable(p) && body.insert(p) {
                    stack.push(p);
                }
            }
        }

        // Exits: conditional branches with exactly one successor outside.
        let mut exits = Vec::new();
        for &b in &body {
            if let Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } = func.block(b).term
            {
                let t_in = body.contains(&then_bb);
                let e_in = body.contains(&else_bb);
                match (t_in, e_in) {
                    (true, false) => exits.push(LoopExit {
                        block: b,
                        cond,
                        continue_bb: then_bb,
                        exit_bb: else_bb,
                    }),
                    (false, true) => exits.push(LoopExit {
                        block: b,
                        cond,
                        continue_bb: else_bb,
                        exit_bb: then_bb,
                    }),
                    _ => {}
                }
            }
        }
        loops.push(NaturalLoop {
            header,
            body,
            exits,
        });
    }
    loops.sort_by_key(|l| l.header);
    loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomig_mir::parse_module;

    fn loops_of(src: &str) -> Vec<NaturalLoop> {
        let m = parse_module(src).unwrap();
        let f = &m.funcs[0];
        let cfg = Cfg::new(f);
        let dom = DomTree::new(&cfg);
        find_loops(f, &cfg, &dom)
    }

    #[test]
    fn simple_while_loop() {
        let ls = loops_of(
            r#"
            global @flag: i32 = 0
            fn @f() : void {
            entry:
              br header
            header:
              %v = load i32, @flag
              %c = cmp eq %v, 0
              condbr %c, header, exit
            exit:
              ret
            }
            "#,
        );
        assert_eq!(ls.len(), 1);
        let l = &ls[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.body.len(), 1);
        assert_eq!(l.exits.len(), 1);
        assert_eq!(l.exits[0].exit_bb, BlockId(2));
        assert_eq!(l.exits[0].continue_bb, BlockId(1));
    }

    #[test]
    fn do_while_with_body_blocks() {
        let ls = loops_of(
            r#"
            global @x: i32 = 0
            fn @f(%c: i1) : void {
            entry:
              br body
            body:
              condbr %c, then, latch
            then:
              br latch
            latch:
              %v = load i32, @x
              %e = cmp ne %v, 0
              condbr %e, body, exit
            exit:
              ret
            }
            "#,
        );
        assert_eq!(ls.len(), 1);
        let l = &ls[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.body.len(), 3); // body, then, latch
        assert_eq!(l.exits.len(), 1);
        assert_eq!(l.exits[0].block, BlockId(3));
    }

    #[test]
    fn nested_loops_found_separately() {
        let ls = loops_of(
            r#"
            fn @f(%a: i1, %b: i1) : void {
            entry:
              br outer
            outer:
              br inner
            inner:
              condbr %a, inner, outer_latch
            outer_latch:
              condbr %b, outer, exit
            exit:
              ret
            }
            "#,
        );
        assert_eq!(ls.len(), 2);
        let outer = ls.iter().find(|l| l.header == BlockId(1)).unwrap();
        let inner = ls.iter().find(|l| l.header == BlockId(2)).unwrap();
        assert!(outer.body.contains(&BlockId(2)));
        assert!(outer.body.contains(&BlockId(3)));
        assert_eq!(inner.body.len(), 1);
    }

    #[test]
    fn two_exit_conditions() {
        // for (i = 0; i < 100; i++) if (flag == DONE) break;
        let ls = loops_of(
            r#"
            global @flag: i32 = 0
            fn @f() : void {
            entry:
              %i = alloca i32
              store i32 0, %i
              br header
            header:
              %iv = load i32, %i
              %c = cmp lt %iv, 100
              condbr %c, body, exit
            body:
              %fv = load i32, @flag
              %d = cmp eq %fv, 1
              condbr %d, exit, latch
            latch:
              %iv2 = load i32, %i
              %inc = add %iv2, 1
              store i32 %inc, %i
              br header
            exit:
              ret
            }
            "#,
        );
        assert_eq!(ls.len(), 1);
        assert_eq!(ls[0].exits.len(), 2);
    }

    #[test]
    fn multiple_backedges_merge() {
        let ls = loops_of(
            r#"
            fn @f(%a: i1, %b: i1) : void {
            entry:
              br h
            h:
              condbr %a, t1, t2
            t1:
              condbr %b, h, exit
            t2:
              br h
            exit:
              ret
            }
            "#,
        );
        assert_eq!(ls.len(), 1);
        assert_eq!(ls[0].body.len(), 3);
    }

    #[test]
    fn no_loops_in_straightline_code() {
        let ls = loops_of(
            r#"
            fn @f() : void {
            a:
              br b
            b:
              ret
            }
            "#,
        );
        assert!(ls.is_empty());
    }
}
