//! Control-flow graph utilities.

use atomig_mir::{BlockId, Function};

/// Predecessor/successor structure and traversal orders of a function.
///
/// # Examples
///
/// ```
/// use atomig_mir::parse_module;
/// use atomig_analysis::Cfg;
///
/// let m = parse_module(r#"
/// fn @f(%c: i1) : void {
/// bb0:
///   condbr %c, bb1, bb2
/// bb1:
///   br bb2
/// bb2:
///   ret
/// }
/// "#)?;
/// let cfg = Cfg::new(&m.funcs[0]);
/// assert_eq!(cfg.preds(atomig_mir::BlockId(2)).len(), 2);
/// # Ok::<(), atomig_mir::parser::ParseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cfg {
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
    rpo_index: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG of `func`.
    pub fn new(func: &Function) -> Cfg {
        let n = func.blocks.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for b in func.block_ids() {
            for s in func.block(b).term.successors() {
                succs[b.0 as usize].push(s);
                preds[s.0 as usize].push(b);
            }
        }
        // Post-order DFS from the entry.
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
        if n > 0 {
            visited[0] = true;
        }
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let ss = &succs[b.0 as usize];
            if *i < ss.len() {
                let next = ss[*i];
                *i += 1;
                if !visited[next.0 as usize] {
                    visited[next.0 as usize] = true;
                    stack.push((next, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.0 as usize] = i;
        }
        Cfg {
            preds,
            succs,
            rpo,
            rpo_index,
        }
    }

    /// Predecessors of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.0 as usize]
    }

    /// Successors of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.0 as usize]
    }

    /// Blocks reachable from the entry, in reverse post-order.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `b` in the reverse post-order, or `None` if unreachable.
    pub fn rpo_index(&self, b: BlockId) -> Option<usize> {
        let i = self.rpo_index[b.0 as usize];
        (i != usize::MAX).then_some(i)
    }

    /// Whether `b` is reachable from the entry block.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index(b).is_some()
    }

    /// Number of blocks (including unreachable ones).
    pub fn block_count(&self) -> usize {
        self.preds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomig_mir::parse_module;

    fn cfg_of(src: &str) -> Cfg {
        let m = parse_module(src).unwrap();
        Cfg::new(&m.funcs[0])
    }

    #[test]
    fn diamond() {
        let cfg = cfg_of(
            r#"
            fn @f(%c: i1) : void {
            a:
              condbr %c, b, c
            b:
              br d
            c:
              br d
            d:
              ret
            }
            "#,
        );
        assert_eq!(cfg.succs(BlockId(0)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds(BlockId(3)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.rpo()[0], BlockId(0));
        assert_eq!(*cfg.rpo().last().unwrap(), BlockId(3));
        assert!(cfg.is_reachable(BlockId(3)));
    }

    #[test]
    fn self_loop() {
        let cfg = cfg_of(
            r#"
            fn @f(%c: i1) : void {
            a:
              condbr %c, a, b
            b:
              ret
            }
            "#,
        );
        assert!(cfg.preds(BlockId(0)).contains(&BlockId(0)));
        assert_eq!(cfg.rpo().len(), 2);
    }

    #[test]
    fn unreachable_block_excluded_from_rpo() {
        let cfg = cfg_of(
            r#"
            fn @f() : void {
            a:
              ret
            dead:
              ret
            }
            "#,
        );
        assert_eq!(cfg.rpo().len(), 1);
        assert!(!cfg.is_reachable(BlockId(1)));
        assert_eq!(cfg.block_count(), 2);
    }

    #[test]
    fn rpo_visits_loop_header_before_body() {
        let cfg = cfg_of(
            r#"
            fn @f(%c: i1) : void {
            entry:
              br header
            header:
              condbr %c, body, exit
            body:
              br header
            exit:
              ret
            }
            "#,
        );
        let h = cfg.rpo_index(BlockId(1)).unwrap();
        let b = cfg.rpo_index(BlockId(2)).unwrap();
        assert!(h < b);
    }
}
