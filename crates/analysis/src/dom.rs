//! Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.

use crate::cfg::Cfg;
use atomig_mir::BlockId;

/// The dominator tree of a function's CFG.
///
/// Only reachable blocks participate; queries involving unreachable blocks
/// return `false`/`None`.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator per block (`idom[entry] == entry`).
    idom: Vec<Option<BlockId>>,
}

impl DomTree {
    /// Computes dominators over `cfg`.
    pub fn new(cfg: &Cfg) -> DomTree {
        let n = cfg.block_count();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if n == 0 {
            return DomTree { idom };
        }
        let entry = BlockId(0);
        idom[0] = Some(entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            // Walk up by RPO index until the fingers meet.
            while a != b {
                let (ai, bi) = (
                    cfg.rpo_index(a).expect("reachable"),
                    cfg.rpo_index(b).expect("reachable"),
                );
                if ai > bi {
                    a = idom[a.0 as usize].expect("processed");
                } else {
                    b = idom[b.0 as usize].expect("processed");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo().iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if !cfg.is_reachable(p) || idom[p.0 as usize].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b.0 as usize] != new_idom {
                    idom[b.0 as usize] = new_idom;
                    changed = true;
                }
            }
        }
        DomTree { idom }
    }

    /// The immediate dominator of `b` (`entry` for the entry block), or
    /// `None` for unreachable blocks.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(b.0 as usize).copied().flatten()
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(next) if next != cur => cur = next,
                _ => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomig_mir::parse_module;

    fn dom_of(src: &str) -> (Cfg, DomTree) {
        let m = parse_module(src).unwrap();
        let cfg = Cfg::new(&m.funcs[0]);
        let dt = DomTree::new(&cfg);
        (cfg, dt)
    }

    #[test]
    fn diamond_dominators() {
        let (_, dt) = dom_of(
            r#"
            fn @f(%c: i1) : void {
            a:
              condbr %c, b, c
            b:
              br d
            c:
              br d
            d:
              ret
            }
            "#,
        );
        assert_eq!(dt.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dt.idom(BlockId(2)), Some(BlockId(0)));
        // d's idom is a, not b or c.
        assert_eq!(dt.idom(BlockId(3)), Some(BlockId(0)));
        assert!(dt.dominates(BlockId(0), BlockId(3)));
        assert!(!dt.dominates(BlockId(1), BlockId(3)));
        assert!(dt.dominates(BlockId(3), BlockId(3)));
    }

    #[test]
    fn loop_header_dominates_body() {
        let (_, dt) = dom_of(
            r#"
            fn @f(%c: i1) : void {
            entry:
              br header
            header:
              condbr %c, body, exit
            body:
              br header
            exit:
              ret
            }
            "#,
        );
        assert!(dt.dominates(BlockId(1), BlockId(2)));
        assert!(dt.dominates(BlockId(1), BlockId(3)));
        assert_eq!(dt.idom(BlockId(2)), Some(BlockId(1)));
    }

    #[test]
    fn unreachable_has_no_idom() {
        let (_, dt) = dom_of(
            r#"
            fn @f() : void {
            a:
              ret
            dead:
              ret
            }
            "#,
        );
        assert_eq!(dt.idom(BlockId(1)), None);
        assert!(!dt.dominates(BlockId(0), BlockId(1)));
    }

    #[test]
    fn nested_loops() {
        let (_, dt) = dom_of(
            r#"
            fn @f(%c: i1) : void {
            entry:
              br outer
            outer:
              condbr %c, inner, exit
            inner:
              condbr %c, inner, latch
            latch:
              br outer
            exit:
              ret
            }
            "#,
        );
        assert!(dt.dominates(BlockId(1), BlockId(2)));
        assert!(dt.dominates(BlockId(2), BlockId(3)));
        assert!(dt.dominates(BlockId(1), BlockId(4)));
    }
}
