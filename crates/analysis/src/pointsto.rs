//! Andersen-style inter-procedural points-to analysis.
//!
//! The paper deliberately *rejects* a precise points-to analysis in favor
//! of the scalable type-based alias keys of §3.4 ("a precise
//! inter-procedural alias analysis exhausts memory on our targets"). This
//! module implements the road not taken so the trade-off can be measured:
//! an inclusion-based (Andersen) analysis that is
//!
//! * **field-sensitive** — abstract objects are split into cells by
//!   constant field path, so `n->state` and `n->key` do not alias,
//! * **flow-insensitive** — one constraint system per module, no program
//!   points,
//! * **context-insensitive** — call edges merge all call sites, and
//! * **inter-procedural** — parameter/return binding over direct calls
//!   plus `spawn` argument binding, so pointers that travel through
//!   threads (and through integer casts, as in the lf-hash workload) are
//!   still tracked.
//!
//! Constraint generation walks every MIR instruction once: `alloca` and
//! `malloc` introduce objects (address-of constraints), `cast`/`bin` are
//! copies, `load`/`store` are the complex dereference constraints, and
//! `gep` appends field paths. The system is solved with a worklist over
//! sparse bitsets; complex constraints add new copy edges as points-to
//! sets grow, which is the textbook O(n³) bound — in practice the MIR
//! modules here are `-O0`-style and converge in a small number of
//! iterations per node.

use crate::escape::EscapeInfo;
use atomig_mir::{
    Builtin, Callee, FuncId, Function, GlobalId, InstId, InstKind, Module, Terminator, Value,
};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::time::{Duration, Instant};

/// Field paths longer than this are truncated into summary cells, which
/// bounds the cell universe and guarantees termination even when GEPs
/// feed each other through memory cycles.
const MAX_PATH: usize = 8;

/// Wildcard path element standing for a dynamically computed index.
pub const ANY_INDEX: i64 = -1;

/// The allocation site an abstract memory cell belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObjBase {
    /// A module global.
    Global(GlobalId),
    /// A stack slot, identified by its `alloca` instruction.
    Stack(FuncId, InstId),
    /// A heap object, one per static `malloc` call site.
    Heap(FuncId, InstId),
}

/// An abstract memory cell: an object base plus a constant field path
/// (`ANY_INDEX` marks dynamically indexed steps).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cell {
    /// The allocation site.
    pub base: ObjBase,
    /// Field/element path below the base.
    pub path: Vec<i64>,
    /// The path was truncated at [`MAX_PATH`]: this cell summarizes the
    /// entire subtree below `path`.
    pub summary: bool,
}

/// Index of an interned [`Cell`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

/// A sparse bitset: 64-bit blocks keyed by block index in a `BTreeMap`,
/// so iteration order (and therefore everything derived from the solver)
/// is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseBitSet {
    blocks: BTreeMap<u32, u64>,
    len: usize,
}

impl SparseBitSet {
    /// Inserts a bit; returns whether it was newly set.
    pub fn insert(&mut self, bit: u32) -> bool {
        let word = self.blocks.entry(bit / 64).or_insert(0);
        let mask = 1u64 << (bit % 64);
        if *word & mask == 0 {
            *word |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Whether the bit is set.
    pub fn contains(&self, bit: u32) -> bool {
        self.blocks
            .get(&(bit / 64))
            .is_some_and(|w| w & (1u64 << (bit % 64)) != 0)
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds every bit of `other`; returns whether anything was added.
    pub fn union_with(&mut self, other: &SparseBitSet) -> bool {
        let mut changed = false;
        for (&k, &w) in &other.blocks {
            let slot = self.blocks.entry(k).or_insert(0);
            let added = w & !*slot;
            if added != 0 {
                *slot |= added;
                self.len += added.count_ones() as usize;
                changed = true;
            }
        }
        changed
    }

    /// Set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.blocks.iter().flat_map(|(&k, &w)| {
            (0..64u32)
                .filter(move |b| w & (1u64 << b) != 0)
                .map(move |b| k * 64 + b)
        })
    }

    /// Bits set in `self` but not in `other`, ascending.
    pub fn difference(&self, other: &SparseBitSet) -> Vec<u32> {
        let mut out = Vec::new();
        for (&k, &w) in &self.blocks {
            let theirs = other.blocks.get(&k).copied().unwrap_or(0);
            let mut d = w & !theirs;
            while d != 0 {
                let b = d.trailing_zeros();
                out.push(k * 64 + b);
                d &= d - 1;
            }
        }
        out
    }
}

/// Solver statistics, reported by the ablation harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct PointsToStats {
    /// Constraint-graph nodes (SSA vars, params, returns, cell contents).
    pub nodes: usize,
    /// Distinct abstract memory cells.
    pub cells: usize,
    /// Base constraints generated from the MIR.
    pub constraints: usize,
    /// Worklist pops until fixpoint.
    pub iterations: usize,
    /// Fixpoint passes: the maximum number of times any single node was
    /// re-popped from the worklist (1 means one sweep sufficed).
    pub passes: usize,
    /// Wall-clock time of constraint generation + solving.
    pub solve_time: Duration,
}

/// Nodes of the constraint graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum NodeKey {
    /// The SSA result of an instruction.
    Var(FuncId, InstId),
    /// A function parameter.
    Param(FuncId, u32),
    /// A function's return value.
    Ret(FuncId),
    /// The contents of a memory cell (created lazily by load/store).
    Content(CellId),
    /// A literal address operand (`@g` used as a value).
    Lit(CellId),
}

/// A value operand that resolves to a constraint node, named symbolically
/// so constraint *generation* can run per function on worker threads
/// without touching the solver's interning tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RawNode {
    /// The SSA result of an instruction.
    Var(FuncId, InstId),
    /// A function parameter.
    Param(FuncId, u32),
    /// A global used as a literal address.
    Global(GlobalId),
}

/// One base constraint, generated in parallel and applied sequentially in
/// `FuncId` order. The apply step replays the exact node- and
/// cell-interning order of the old single-threaded generator, so solver
/// statistics (constraints, iterations, passes) are unchanged for any job
/// count.
#[derive(Debug, Clone)]
enum RawConstraint {
    /// `alloca`: a stack object and its address-of constraint.
    StackObj { f: FuncId, i: InstId },
    /// `malloc`: a heap object per static call site.
    HeapObj { f: FuncId, i: InstId },
    /// `dst ⊇ *(pts p)`.
    Load { p: RawNode, dst: RawNode },
    /// `*(pts p) ⊇ src`.
    Store { p: RawNode, src: RawNode },
    /// A store with only one resolvable side: no constraint, but the old
    /// generator still interned the node, which later phases may look up.
    Touch { n: RawNode },
    /// `cmpxchg`/`rmw`: a load of the old contents plus, when the value
    /// operand resolves, a store of the new one.
    LoadStore {
        p: RawNode,
        dst: RawNode,
        src: Option<RawNode>,
    },
    /// `dst ⊇ { c.path ++ path | c ∈ pts base }`.
    Gep {
        base: RawNode,
        dst: RawNode,
        path: Vec<i64>,
    },
    /// `cast`: a type-agnostic copy.
    Copy { src: RawNode, dst: RawNode },
    /// Pointer ± integer arithmetic: the destination node exists even
    /// when no operand resolves, matching the old generator.
    Bin { dst: RawNode, ops: Vec<RawNode> },
    /// A direct call: argument-to-parameter binds plus the return bind.
    Call {
        binds: Vec<(RawNode, u32)>,
        target: FuncId,
        dst: RawNode,
    },
    /// `spawn(@fn, arg)` binds the argument to the target's first
    /// parameter.
    SpawnBind { src: RawNode, target: FuncId },
    /// `ret v` binds the value to the function's return node.
    RetBind { src: RawNode, f: FuncId },
}

/// The node a value resolves to, or `None` for non-pointers. Mirrors
/// `Solver::node_of` without interning anything.
fn raw_of(f: FuncId, v: Value) -> Option<RawNode> {
    match v {
        Value::Inst(id) => Some(RawNode::Var(f, id)),
        Value::Param(i) => Some(RawNode::Param(f, i)),
        Value::Global(g) => Some(RawNode::Global(g)),
        Value::Const(_) | Value::Null | Value::Func(_) => None,
    }
}

/// Generates the base constraints of one function. Pure — safe to run
/// for many functions in parallel.
fn gen_func(fid: FuncId, func: &Function) -> Vec<RawConstraint> {
    let mut out = Vec::new();
    for (_, inst) in func.insts() {
        let var = RawNode::Var(fid, inst.id);
        match &inst.kind {
            InstKind::Alloca { .. } => out.push(RawConstraint::StackObj { f: fid, i: inst.id }),
            InstKind::Load { ptr, .. } => {
                if let Some(p) = raw_of(fid, *ptr) {
                    out.push(RawConstraint::Load { p, dst: var });
                }
            }
            InstKind::Store { ptr, val, .. } => match (raw_of(fid, *ptr), raw_of(fid, *val)) {
                (Some(p), Some(s)) => out.push(RawConstraint::Store { p, src: s }),
                (Some(n), None) | (None, Some(n)) => out.push(RawConstraint::Touch { n }),
                (None, None) => {}
            },
            InstKind::Cmpxchg { ptr, new, .. } => {
                // The result is the old contents; on success the `new`
                // value is stored.
                if let Some(p) = raw_of(fid, *ptr) {
                    out.push(RawConstraint::LoadStore {
                        p,
                        dst: var,
                        src: raw_of(fid, *new),
                    });
                }
            }
            InstKind::Rmw { ptr, val, .. } => {
                // `xchg` stores the operand verbatim; the arithmetic ops
                // over-approximate.
                if let Some(p) = raw_of(fid, *ptr) {
                    out.push(RawConstraint::LoadStore {
                        p,
                        dst: var,
                        src: raw_of(fid, *val),
                    });
                }
            }
            InstKind::Gep { base, indices, .. } => {
                // The leading index scales whole objects (LLVM semantics)
                // and is dropped, which also makes pointer arithmetic
                // `p + n` alias `p` — sound for a may-analysis.
                let path: Vec<i64> = indices
                    .iter()
                    .skip(1)
                    .map(|i| i.as_const().unwrap_or(ANY_INDEX))
                    .collect();
                if let Some(b) = raw_of(fid, *base) {
                    out.push(RawConstraint::Gep {
                        base: b,
                        dst: var,
                        path,
                    });
                }
            }
            InstKind::Cast { value, .. } => {
                // Type-agnostic copy: pointers survive laundering through
                // integers (`(long)p` … `(T*)v`).
                if let Some(s) = raw_of(fid, *value) {
                    out.push(RawConstraint::Copy { src: s, dst: var });
                }
            }
            InstKind::Bin { op, lhs, rhs, .. } => {
                // Pointer ± integer arithmetic on laundered pointers:
                // propagate through add/sub only.
                if matches!(op, atomig_mir::BinOp::Add | atomig_mir::BinOp::Sub) {
                    out.push(RawConstraint::Bin {
                        dst: var,
                        ops: [*lhs, *rhs]
                            .into_iter()
                            .filter_map(|v| raw_of(fid, v))
                            .collect(),
                    });
                }
            }
            InstKind::Cmp { .. } | InstKind::Fence { .. } => {}
            InstKind::Call { callee, args, .. } => match callee {
                Callee::Func(t) => out.push(RawConstraint::Call {
                    binds: args
                        .iter()
                        .enumerate()
                        .filter_map(|(j, a)| raw_of(fid, *a).map(|s| (s, j as u32)))
                        .collect(),
                    target: *t,
                    dst: var,
                }),
                Callee::Builtin(Builtin::Malloc) => {
                    out.push(RawConstraint::HeapObj { f: fid, i: inst.id })
                }
                Callee::Builtin(Builtin::Spawn) => {
                    if let (Some(Value::Func(t)), Some(a)) = (args.first(), args.get(1)) {
                        if let Some(s) = raw_of(fid, *a) {
                            out.push(RawConstraint::SpawnBind { src: s, target: *t });
                        }
                    }
                }
                Callee::Builtin(_) => {}
            },
        }
    }
    for b in func.block_ids() {
        if let Terminator::Ret(Some(v)) = &func.block(b).term {
            if let Some(s) = raw_of(fid, *v) {
                out.push(RawConstraint::RetBind { src: s, f: fid });
            }
        }
    }
    out
}

struct Solver {
    cells: Vec<Cell>,
    cell_ids: HashMap<Cell, CellId>,
    nodes: Vec<NodeKey>,
    node_ids: HashMap<NodeKey, u32>,
    /// Solved points-to set (cell ids) per node.
    pts: Vec<SparseBitSet>,
    /// Portion of `pts` already pushed through complex constraints.
    done: Vec<SparseBitSet>,
    copy_out: Vec<Vec<u32>>,
    copy_seen: HashSet<(u32, u32)>,
    /// `p -> dst`: `dst ⊇ *(pts p)`.
    load_out: Vec<Vec<u32>>,
    /// `p -> src`: `*(pts p) ⊇ src`.
    store_in: Vec<Vec<u32>>,
    /// `p -> (dst, path)`: `dst ⊇ { c.path ++ path | c ∈ pts p }`.
    gep_out: Vec<Vec<(u32, Vec<i64>)>>,
    worklist: Vec<u32>,
    queued: Vec<bool>,
    /// Pops of each node, for the fixpoint-pass statistic.
    pops: Vec<u32>,
    stats: PointsToStats,
}

impl Solver {
    fn new() -> Solver {
        Solver {
            cells: Vec::new(),
            cell_ids: HashMap::new(),
            nodes: Vec::new(),
            node_ids: HashMap::new(),
            pts: Vec::new(),
            done: Vec::new(),
            copy_out: Vec::new(),
            copy_seen: HashSet::new(),
            load_out: Vec::new(),
            store_in: Vec::new(),
            gep_out: Vec::new(),
            worklist: Vec::new(),
            queued: Vec::new(),
            pops: Vec::new(),
            stats: PointsToStats::default(),
        }
    }

    fn intern_cell(&mut self, cell: Cell) -> CellId {
        if let Some(&id) = self.cell_ids.get(&cell) {
            return id;
        }
        let id = CellId(self.cells.len() as u32);
        self.cells.push(cell.clone());
        self.cell_ids.insert(cell, id);
        id
    }

    fn base_cell(&mut self, base: ObjBase) -> CellId {
        self.intern_cell(Cell {
            base,
            path: Vec::new(),
            summary: false,
        })
    }

    fn node(&mut self, key: NodeKey) -> u32 {
        if let Some(&n) = self.node_ids.get(&key) {
            return n;
        }
        let n = self.nodes.len() as u32;
        self.nodes.push(key);
        self.node_ids.insert(key, n);
        self.pts.push(SparseBitSet::default());
        self.done.push(SparseBitSet::default());
        self.copy_out.push(Vec::new());
        self.load_out.push(Vec::new());
        self.store_in.push(Vec::new());
        self.gep_out.push(Vec::new());
        self.queued.push(false);
        self.pops.push(0);
        if let NodeKey::Lit(c) = key {
            self.pts[n as usize].insert(c.0);
            self.enqueue(n);
        }
        n
    }

    fn enqueue(&mut self, n: u32) {
        if !self.queued[n as usize] {
            self.queued[n as usize] = true;
            self.worklist.push(n);
        }
    }

    fn add_pts(&mut self, n: u32, c: CellId) {
        self.stats.constraints += 1;
        if self.pts[n as usize].insert(c.0) {
            self.enqueue(n);
        }
    }

    /// Adds the subset edge `dst ⊇ src` and propagates the current set.
    fn add_copy(&mut self, src: u32, dst: u32) {
        if src == dst || !self.copy_seen.insert((src, dst)) {
            return;
        }
        self.copy_out[src as usize].push(dst);
        if !self.pts[src as usize].is_empty() {
            let src_set = self.pts[src as usize].clone();
            if self.pts[dst as usize].union_with(&src_set) {
                self.enqueue(dst);
            }
        }
    }

    /// `cell` viewed through a GEP that appends `path`.
    fn gep_cell(&mut self, cell: CellId, path: &[i64]) -> CellId {
        let c = &self.cells[cell.0 as usize];
        if c.summary || path.is_empty() {
            return cell;
        }
        let mut new_path = c.path.clone();
        new_path.extend_from_slice(path);
        let summary = new_path.len() > MAX_PATH;
        if summary {
            new_path.truncate(MAX_PATH);
        }
        let base = c.base;
        self.intern_cell(Cell {
            base,
            path: new_path,
            summary,
        })
    }

    /// Interns the node behind a symbolic operand (mirrors `node_of` for
    /// the resolvable cases).
    fn raw_node(&mut self, r: RawNode) -> u32 {
        match r {
            RawNode::Var(f, i) => self.node(NodeKey::Var(f, i)),
            RawNode::Param(f, i) => self.node(NodeKey::Param(f, i)),
            RawNode::Global(g) => {
                let c = self.base_cell(ObjBase::Global(g));
                self.node(NodeKey::Lit(c))
            }
        }
    }

    /// Installs one generated constraint. Node/cell interning order — and
    /// with it every downstream statistic — matches the old sequential
    /// generator exactly.
    fn apply(&mut self, c: &RawConstraint) {
        match c {
            RawConstraint::StackObj { f, i } => {
                let c = self.base_cell(ObjBase::Stack(*f, *i));
                let n = self.node(NodeKey::Var(*f, *i));
                self.add_pts(n, c);
            }
            RawConstraint::HeapObj { f, i } => {
                let c = self.base_cell(ObjBase::Heap(*f, *i));
                let n = self.node(NodeKey::Var(*f, *i));
                self.add_pts(n, c);
            }
            RawConstraint::Load { p, dst } => {
                let p = self.raw_node(*p);
                let dst = self.raw_node(*dst);
                self.load_out[p as usize].push(dst);
                self.stats.constraints += 1;
            }
            RawConstraint::Store { p, src } => {
                let p = self.raw_node(*p);
                let s = self.raw_node(*src);
                self.store_in[p as usize].push(s);
                self.stats.constraints += 1;
            }
            RawConstraint::Touch { n } => {
                self.raw_node(*n);
            }
            RawConstraint::LoadStore { p, dst, src } => {
                let p = self.raw_node(*p);
                let dst = self.raw_node(*dst);
                self.load_out[p as usize].push(dst);
                self.stats.constraints += 1;
                if let Some(src) = src {
                    let s = self.raw_node(*src);
                    self.store_in[p as usize].push(s);
                    self.stats.constraints += 1;
                }
            }
            RawConstraint::Gep { base, dst, path } => {
                let b = self.raw_node(*base);
                let dst = self.raw_node(*dst);
                self.gep_out[b as usize].push((dst, path.clone()));
                self.stats.constraints += 1;
            }
            RawConstraint::Copy { src, dst } => {
                let s = self.raw_node(*src);
                let dst = self.raw_node(*dst);
                self.add_copy(s, dst);
                self.stats.constraints += 1;
            }
            RawConstraint::Bin { dst, ops } => {
                let dst = self.raw_node(*dst);
                for op in ops {
                    let s = self.raw_node(*op);
                    self.add_copy(s, dst);
                    self.stats.constraints += 1;
                }
            }
            RawConstraint::Call { binds, target, dst } => {
                for (src, j) in binds {
                    let s = self.raw_node(*src);
                    let p = self.node(NodeKey::Param(*target, *j));
                    self.add_copy(s, p);
                    self.stats.constraints += 1;
                }
                let r = self.node(NodeKey::Ret(*target));
                let dst = self.raw_node(*dst);
                self.add_copy(r, dst);
                self.stats.constraints += 1;
            }
            RawConstraint::SpawnBind { src, target } => {
                let s = self.raw_node(*src);
                let p = self.node(NodeKey::Param(*target, 0));
                self.add_copy(s, p);
                self.stats.constraints += 1;
            }
            RawConstraint::RetBind { src, f } => {
                let s = self.raw_node(*src);
                let r = self.node(NodeKey::Ret(*f));
                self.add_copy(s, r);
                self.stats.constraints += 1;
            }
        }
    }

    /// Walks every function's instructions — in parallel across `jobs`
    /// workers — and installs the resulting constraints sequentially in
    /// `FuncId` order, so the constraint system is identical for any job
    /// count.
    fn generate(&mut self, m: &Module, jobs: usize) {
        let fids: Vec<FuncId> = m.func_ids().collect();
        let pool = atomig_par::WorkerPool::new(jobs);
        let batches = pool.map(&fids, |_, &fid| gen_func(fid, m.func(fid)));
        for batch in &batches {
            for c in batch {
                self.apply(c);
            }
        }
    }

    fn solve(&mut self) {
        while let Some(n) = self.worklist.pop() {
            self.queued[n as usize] = false;
            self.stats.iterations += 1;
            self.pops[n as usize] += 1;
            let delta = self.pts[n as usize].difference(&self.done[n as usize]);
            if delta.is_empty() {
                continue;
            }
            self.done[n as usize] = self.pts[n as usize].clone();
            // Simple edges: push the delta to all copy successors.
            let copies = self.copy_out[n as usize].clone();
            for dst in copies {
                let mut changed = false;
                for &c in &delta {
                    changed |= self.pts[dst as usize].insert(c);
                }
                if changed {
                    self.enqueue(dst);
                }
            }
            // Complex edges: each new pointee materializes copy edges
            // from/to its contents node, or a derived field cell.
            let geps = self.gep_out[n as usize].clone();
            let loads = self.load_out[n as usize].clone();
            let stores = self.store_in[n as usize].clone();
            for &c in &delta {
                for (dst, path) in &geps {
                    let fc = self.gep_cell(CellId(c), path);
                    if self.pts[*dst as usize].insert(fc.0) {
                        self.enqueue(*dst);
                    }
                }
                if !loads.is_empty() || !stores.is_empty() {
                    let content = self.node(NodeKey::Content(CellId(c)));
                    for &dst in &loads {
                        self.add_copy(content, dst);
                    }
                    for &src in &stores {
                        self.add_copy(src, content);
                    }
                }
            }
        }
        self.stats.passes = self.pops.iter().copied().max().unwrap_or(0) as usize;
    }
}

/// The solved analysis: per-access cell sets plus overlap queries.
#[derive(Debug)]
pub struct PointsTo {
    cells: Vec<Cell>,
    /// Whether each cell may be visible to more than one thread (globals,
    /// heap objects, and *escaping* stack slots).
    shareable: Vec<bool>,
    /// Resolved cells of every memory access's address operand.
    access_cells: HashMap<(FuncId, InstId), Vec<CellId>>,
    /// Solver statistics.
    pub stats: PointsToStats,
}

impl PointsTo {
    /// Generates and solves the constraint system for `m` on one thread.
    pub fn analyze(m: &Module) -> PointsTo {
        PointsTo::analyze_with_jobs(m, 1)
    }

    /// Like [`PointsTo::analyze`], but generates constraints with up to
    /// `jobs` workers. The solved system — including every statistic —
    /// is identical for any job count; only wall time differs.
    pub fn analyze_with_jobs(m: &Module, jobs: usize) -> PointsTo {
        let t0 = Instant::now();
        let mut s = Solver::new();
        s.generate(m, jobs);
        s.solve();

        // Resolve every memory access to its address cells.
        let mut access_cells: HashMap<(FuncId, InstId), Vec<CellId>> = HashMap::new();
        for fid in m.func_ids() {
            let func = m.func(fid);
            for (_, inst) in func.insts() {
                if !inst.kind.is_memory_access() {
                    continue;
                }
                let cells: Vec<CellId> = match inst.kind.address() {
                    Some(Value::Global(g)) => vec![s.base_cell(ObjBase::Global(g))],
                    Some(Value::Inst(id)) => s
                        .node_ids
                        .get(&NodeKey::Var(fid, id))
                        .map(|&n| s.pts[n as usize].iter().map(CellId).collect())
                        .unwrap_or_default(),
                    Some(Value::Param(i)) => s
                        .node_ids
                        .get(&NodeKey::Param(fid, i))
                        .map(|&n| s.pts[n as usize].iter().map(CellId).collect())
                        .unwrap_or_default(),
                    _ => Vec::new(),
                };
                access_cells.insert((fid, inst.id), cells);
            }
        }

        // A stack cell is shareable only if its alloca escapes; globals
        // and heap objects always are.
        let mut escapes: HashMap<FuncId, EscapeInfo> = HashMap::new();
        let shareable: Vec<bool> = s
            .cells
            .iter()
            .map(|c| match c.base {
                ObjBase::Global(_) | ObjBase::Heap(..) => true,
                ObjBase::Stack(f, id) => {
                    let info = escapes
                        .entry(f)
                        .or_insert_with(|| EscapeInfo::new(m.func(f)));
                    !info.is_private_slot(id)
                }
            })
            .collect();

        let mut stats = s.stats;
        stats.nodes = s.nodes.len();
        stats.cells = s.cells.len();
        stats.solve_time = t0.elapsed();
        PointsTo {
            cells: s.cells,
            shareable,
            access_cells,
            stats,
        }
    }

    /// The cells the address operand of access `(f, i)` may point to.
    /// Empty when the pointer is statically unresolvable (e.g. a library
    /// entry point's parameter no caller binds).
    pub fn cells_of_access(&self, f: FuncId, i: InstId) -> &[CellId] {
        self.access_cells
            .get(&(f, i))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The interned cell behind an id.
    pub fn cell(&self, c: CellId) -> &Cell {
        &self.cells[c.0 as usize]
    }

    /// Number of distinct cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Whether a cell may be visible to more than one thread.
    pub fn is_shareable(&self, c: CellId) -> bool {
        self.shareable[c.0 as usize]
    }

    /// May the two cells overlap in memory? Same allocation site, and the
    /// common prefix of the field paths is element-wise compatible
    /// (`ANY_INDEX` matches anything). A shorter path denotes the
    /// enclosing object and conservatively overlaps its fields, as do
    /// summary cells.
    pub fn cells_overlap(&self, a: CellId, b: CellId) -> bool {
        let (ca, cb) = (self.cell(a), self.cell(b));
        if ca.base != cb.base {
            return false;
        }
        let n = ca.path.len().min(cb.path.len());
        for i in 0..n {
            let (x, y) = (ca.path[i], cb.path[i]);
            if x != y && x != ANY_INDEX && y != ANY_INDEX {
                return false;
            }
        }
        true
    }

    /// Whether any pair of cells from the two sets may overlap.
    pub fn sets_overlap(&self, a: &[CellId], b: &[CellId]) -> bool {
        a.iter()
            .any(|&x| b.iter().any(|&y| self.cells_overlap(x, y)))
    }

    /// Whether the accesses `(f1, i1)` and `(f2, i2)` may touch the same
    /// memory.
    pub fn accesses_alias(&self, f1: FuncId, i1: InstId, f2: FuncId, i2: InstId) -> bool {
        self.sets_overlap(self.cells_of_access(f1, i1), self.cells_of_access(f2, i2))
    }

    /// A human-readable description of a cell against the module that was
    /// analyzed (global / function names instead of raw ids).
    pub fn describe_cell(&self, m: &Module, c: CellId) -> String {
        let cell = self.cell(c);
        let mut s = match cell.base {
            ObjBase::Global(g) => m.globals[g.0 as usize].name.clone(),
            ObjBase::Stack(f, id) => format!("stack@{}:%t{}", m.func(f).name, id.0),
            ObjBase::Heap(f, id) => format!("heap@{}:%t{}", m.func(f).name, id.0),
        };
        if !cell.path.is_empty() {
            s.push_str(&format!("{:?}", cell.path));
        }
        if cell.summary {
            s.push('…');
        }
        s
    }
}

impl fmt::Display for PointsToStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} cells, {} constraints, {} iterations, {} passes, {:.1?}",
            self.nodes, self.cells, self.constraints, self.iterations, self.passes, self.solve_time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn first_access(m: &Module, fname: &str, nth: usize) -> (FuncId, InstId) {
        let fid = m.func_by_name(fname).unwrap();
        let id = m
            .func(fid)
            .insts()
            .filter(|(_, i)| i.kind.is_memory_access())
            .nth(nth)
            .map(|(_, i)| i.id)
            .unwrap();
        (fid, id)
    }

    #[test]
    fn globals_alias_across_functions_but_not_each_other() {
        let m = atomig_mir::parse_module(
            r#"
            global @flag: i32 = 0
            global @msg: i32 = 0
            fn @r() : i32 {
            bb0:
              %f = load i32, @flag
              %v = load i32, @msg
              ret %v
            }
            fn @w() : void {
            bb0:
              store i32 1, @flag
              ret
            }
            "#,
        )
        .unwrap();
        let pt = PointsTo::analyze(&m);
        let (rf, flag_load) = first_access(&m, "r", 0);
        let (_, msg_load) = first_access(&m, "r", 1);
        let (wf, flag_store) = first_access(&m, "w", 0);
        assert!(pt.accesses_alias(rf, flag_load, wf, flag_store));
        assert!(!pt.accesses_alias(rf, msg_load, wf, flag_store));
    }

    #[test]
    fn struct_fields_are_distinguished_through_calls() {
        // A heap node flows into `use_node` via a direct call; its two
        // fields must not alias each other, but the same field accessed
        // in caller and callee must.
        let m = atomig_frontc::compile(
            r#"
            struct Node { long state; long key; };
            long use_node(struct Node *n) { return n->state; }
            int main() {
              struct Node *n = (struct Node*)malloc(2);
              n->key = 7;
              n->state = 1;
              long s = use_node(n);
              return (int)s;
            }
            "#,
            "t",
        )
        .unwrap();
        let pt = PointsTo::analyze(&m);
        // The callee's only heap access is the `n->state` load (the other
        // loads/stores hit the -O0 parameter slot).
        let uf = m.func_by_name("use_node").unwrap();
        let callee_state_load = m
            .func(uf)
            .insts()
            .filter(|(_, i)| matches!(i.kind, InstKind::Load { .. }))
            .find(|(_, i)| {
                pt.cells_of_access(uf, i.id)
                    .iter()
                    .any(|&c| matches!(pt.cell(c).base, ObjBase::Heap(..)))
            })
            .map(|(_, i)| i.id)
            .unwrap();
        let main = m.func_by_name("main").unwrap();
        // Find main's key store and state store by span order: the key
        // store comes first in the source.
        let stores: Vec<InstId> = m
            .func(main)
            .insts()
            .filter(|(_, i)| {
                matches!(&i.kind, InstKind::Store { ptr, .. } if matches!(ptr, Value::Inst(_)))
                    && pt
                        .cells_of_access(main, i.id)
                        .iter()
                        .any(|&c| matches!(pt.cell(c).base, ObjBase::Heap(..)))
            })
            .map(|(_, i)| i.id)
            .collect();
        assert_eq!(stores.len(), 2, "key + state stores resolve to the heap");
        let key_store = stores[0];
        let state_store = stores[1];
        assert!(!pt.accesses_alias(main, key_store, main, state_store));
        assert!(pt.accesses_alias(uf, callee_state_load, main, state_store));
        assert!(!pt.accesses_alias(uf, callee_state_load, main, key_store));
    }

    #[test]
    fn pointer_survives_integer_cast_through_spawn() {
        // The lf-hash pattern: a heap pointer is laundered through a
        // `long`, crosses a spawn edge, and is cast back in the thread.
        let m = atomig_frontc::compile(
            r#"
            struct Node { long state; long key; };
            void deleter(long addr) {
              struct Node *n = (struct Node*)addr;
              n->key = 0;
            }
            int main() {
              struct Node *n = (struct Node*)malloc(2);
              n->key = 77;
              long t = spawn(deleter, (long)n);
              join(t);
              return 0;
            }
            "#,
            "t",
        )
        .unwrap();
        let pt = PointsTo::analyze(&m);
        let main = m.func_by_name("main").unwrap();
        let del = m.func_by_name("deleter").unwrap();
        let heap_store = |f: FuncId| {
            m.func(f)
                .insts()
                .filter(|(_, i)| matches!(i.kind, InstKind::Store { .. }))
                .find(|(_, i)| {
                    pt.cells_of_access(f, i.id)
                        .iter()
                        .any(|&c| matches!(pt.cell(c).base, ObjBase::Heap(..)))
                })
                .map(|(_, i)| i.id)
                .unwrap()
        };
        let main_key = heap_store(main);
        let del_key = heap_store(del);
        assert!(
            pt.accesses_alias(main, main_key, del, del_key),
            "the key field aliases across the spawn edge"
        );
    }

    #[test]
    fn distinct_malloc_sites_do_not_alias() {
        let m = atomig_frontc::compile(
            r#"
            int main() {
              long *a = (long*)malloc(1);
              long *b = (long*)malloc(1);
              *a = 1;
              *b = 2;
              return 0;
            }
            "#,
            "t",
        )
        .unwrap();
        let pt = PointsTo::analyze(&m);
        let main = m.func_by_name("main").unwrap();
        let heap_stores: Vec<InstId> = m
            .func(main)
            .insts()
            .filter(|(_, i)| matches!(i.kind, InstKind::Store { .. }))
            .filter(|(_, i)| {
                pt.cells_of_access(main, i.id)
                    .iter()
                    .any(|&c| matches!(pt.cell(c).base, ObjBase::Heap(..)))
            })
            .map(|(_, i)| i.id)
            .collect();
        assert_eq!(heap_stores.len(), 2);
        assert!(!pt.accesses_alias(main, heap_stores[0], main, heap_stores[1]));
    }

    #[test]
    fn pointer_through_memory_cell() {
        // &g is stored into a global pointer slot; a load through the
        // slot must alias direct accesses of g.
        let m = atomig_mir::parse_module(
            r#"
            global @g: i32 = 0
            global @slot: ptr i32 = 0
            fn @setup() : void {
            bb0:
              store ptr i32 @g, @slot
              ret
            }
            fn @use() : i32 {
            bb0:
              %p = load ptr i32, @slot
              %v = load i32, %p
              ret %v
            }
            fn @direct() : void {
            bb0:
              store i32 9, @g
              ret
            }
            "#,
        )
        .unwrap();
        let pt = PointsTo::analyze(&m);
        let (uf, indirect_load) = first_access(&m, "use", 1);
        let (df, direct_store) = first_access(&m, "direct", 0);
        let (_, slot_load) = first_access(&m, "use", 0);
        assert!(pt.accesses_alias(uf, indirect_load, df, direct_store));
        assert!(!pt.accesses_alias(uf, slot_load, df, direct_store));
    }

    #[test]
    fn returned_pointer_binds_to_caller() {
        let m = atomig_mir::parse_module(
            r#"
            global @g: i32 = 0
            fn @get() : ptr i32 {
            bb0:
              ret @g
            }
            fn @use() : i32 {
            bb0:
              %p = call ptr i32 @get()
              %v = load i32, %p
              ret %v
            }
            "#,
        )
        .unwrap();
        let pt = PointsTo::analyze(&m);
        let (uf, v_load) = first_access(&m, "use", 0);
        let cells = pt.cells_of_access(uf, v_load);
        assert_eq!(cells.len(), 1);
        assert_eq!(
            pt.cell(cells[0]).base,
            ObjBase::Global(atomig_mir::GlobalId(0))
        );
    }

    #[test]
    fn dynamic_index_wildcards_overlap_constant_indices() {
        let m = atomig_mir::parse_module(
            r#"
            global @table: [8 x i64] = 0
            fn @any(%i: i64) : i64 {
            bb0:
              %a = gep [8 x i64], @table, 0, %i
              %v = load i64, %a
              ret %v
            }
            fn @third() : void {
            bb0:
              %a = gep [8 x i64], @table, 0, 3
              store i64 1, %a
              ret
            }
            "#,
        )
        .unwrap();
        let pt = PointsTo::analyze(&m);
        let (af, any_load) = first_access(&m, "any", 0);
        let (tf, third_store) = first_access(&m, "third", 0);
        assert!(pt.accesses_alias(af, any_load, tf, third_store));
    }

    #[test]
    fn private_stack_cells_are_not_shareable() {
        let m = atomig_mir::parse_module(
            r#"
            fn @g(%p: ptr i32) : void {
            bb0:
              store i32 1, %p
              ret
            }
            fn @f() : i32 {
            bb0:
              %private = alloca i32
              %escaped = alloca i32
              store i32 0, %private
              call void @g(%escaped)
              %v = load i32, %private
              ret %v
            }
            "#,
        )
        .unwrap();
        let pt = PointsTo::analyze(&m);
        let ff = m.func_by_name("f").unwrap();
        let (_, priv_store) = first_access(&m, "f", 0);
        let priv_cells = pt.cells_of_access(ff, priv_store);
        assert_eq!(priv_cells.len(), 1);
        assert!(!pt.is_shareable(priv_cells[0]));
        // The escaped slot is accessed in @g through the bound parameter.
        let (gf, g_store) = first_access(&m, "g", 0);
        let g_cells = pt.cells_of_access(gf, g_store);
        assert_eq!(g_cells.len(), 1);
        assert!(pt.is_shareable(g_cells[0]));
        assert!(matches!(pt.cell(g_cells[0]).base, ObjBase::Stack(..)));
    }

    #[test]
    fn path_truncation_terminates_and_summarizes() {
        // A gep feeding itself through a memory cell would grow paths
        // forever without the MAX_PATH cap.
        let m = atomig_mir::parse_module(
            r#"
            struct %N { i64, ptr %N }
            global @head: ptr %N = 0
            fn @walk() : void {
            bb0:
              %p = load ptr %N, @head
              br loop
            loop:
              %q = gep %N, %p, 0, 1
              %n = load ptr %N, %q
              store ptr %N %n, @head
              br loop
            }
            "#,
        )
        .unwrap();
        let pt = PointsTo::analyze(&m);
        assert!(pt.stats.cells < 100, "cell universe stays bounded");
    }

    /// The deterministic-merge contract: parallel constraint generation
    /// produces the same solved system — including every statistic — as
    /// the sequential path.
    #[test]
    fn parallel_generation_matches_sequential_exactly() {
        let m = atomig_frontc::compile(
            r#"
            struct Node { long state; long key; };
            long use_node(struct Node *n) { return n->state; }
            void deleter(long addr) {
              struct Node *n = (struct Node*)addr;
              n->key = 0;
            }
            int main() {
              struct Node *n = (struct Node*)malloc(2);
              n->key = 7;
              n->state = 1;
              long s = use_node(n);
              long t = spawn(deleter, (long)n);
              join(t);
              return (int)s;
            }
            "#,
            "t",
        )
        .unwrap();
        let seq = PointsTo::analyze(&m);
        for jobs in [2, 4, 8] {
            let par = PointsTo::analyze_with_jobs(&m, jobs);
            assert_eq!(par.stats.nodes, seq.stats.nodes, "jobs={jobs}");
            assert_eq!(par.stats.cells, seq.stats.cells, "jobs={jobs}");
            assert_eq!(par.stats.constraints, seq.stats.constraints, "jobs={jobs}");
            assert_eq!(par.stats.iterations, seq.stats.iterations, "jobs={jobs}");
            assert_eq!(par.stats.passes, seq.stats.passes, "jobs={jobs}");
            assert_eq!(par.access_cells, seq.access_cells, "jobs={jobs}");
            assert_eq!(par.cells, seq.cells, "jobs={jobs}");
            assert_eq!(par.shareable, seq.shareable, "jobs={jobs}");
        }
    }

    #[test]
    fn sparse_bitset_basics() {
        let mut a = SparseBitSet::default();
        assert!(a.insert(3));
        assert!(!a.insert(3));
        assert!(a.insert(64));
        assert!(a.insert(1000));
        assert_eq!(a.len(), 3);
        assert!(a.contains(64) && !a.contains(65));
        let mut b = SparseBitSet::default();
        b.insert(64);
        b.insert(2);
        assert_eq!(a.difference(&b), vec![3, 1000]);
        assert!(b.union_with(&a));
        assert!(!b.union_with(&a));
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![2, 3, 64, 1000]);
    }
}
