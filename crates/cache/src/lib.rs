//! A zero-dependency content-addressed on-disk artifact store.
//!
//! Project-scale migration lives or dies on not redoing work: one edited
//! function must not force re-analysis of the other ten thousand. This
//! crate supplies the storage half of that contract — a flat directory of
//! fingerprint-named payload files — and stays deliberately generic: keys
//! are [`Fingerprint`]s, payloads are opaque strings. What goes *into* a
//! fingerprint (function MIR, config knobs) and how payloads are encoded
//! (the `atomig_core::json` wire format) is decided by the analysis
//! layers above, which keeps this crate dependency-free in both
//! directions.
//!
//! Layout on disk:
//!
//! ```text
//! $ATOMIG_CACHE_DIR/            (default .atomig-cache/)
//!   v1/                         one subdirectory per FORMAT_VERSION
//!     8f3a…c2.json              one payload per fingerprint
//! ```
//!
//! Versioning doubles as the eviction policy: [`CacheStore::open`]
//! creates the current `v<N>/` subdirectory and deletes every other
//! versioned subdirectory, counting the entries it removed. Writes are
//! temp-file-plus-rename so concurrent workers (or processes) never
//! observe a torn payload; two writers racing on one fingerprint write
//! identical bytes by construction, so either rename winning is fine.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// On-disk format version. Bump when the artifact schema or the
/// fingerprint recipe changes incompatibly; stale `v<old>/` trees are
/// evicted on the next [`CacheStore::open`].
pub const FORMAT_VERSION: u32 = 1;

/// The environment variable overriding the default cache directory.
pub const CACHE_DIR_VAR: &str = "ATOMIG_CACHE_DIR";

/// The default cache directory, relative to the working directory.
pub const DEFAULT_DIR: &str = ".atomig-cache";

/// A stable 64-bit content fingerprint (FNV-1a over length-delimited
/// parts, so `["ab", ""]` and `["a", "b"]` hash differently).
///
/// # Examples
///
/// ```
/// use atomig_cache::Fingerprint;
/// let a = Fingerprint::of(&["seed", "fn body"]);
/// assert_eq!(a, Fingerprint::of(&["seed", "fn body"]));
/// assert_ne!(a, Fingerprint::of(&["seed", "fn bodY"]));
/// assert_eq!(a.hex().len(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fingerprint {
    /// Fingerprints a sequence of parts. Part boundaries are significant.
    pub fn of(parts: &[&str]) -> Fingerprint {
        let mut h = FNV_OFFSET;
        for part in parts {
            for &b in part.as_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
            // Delimiter byte outside the UTF-8 continuation range keeps
            // part boundaries from cancelling out.
            h ^= 0xff;
            h = h.wrapping_mul(FNV_PRIME);
        }
        Fingerprint(h)
    }

    /// The fixed-width lowercase hex form used as the on-disk file stem.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The directory a store would open with no explicit override:
/// `$ATOMIG_CACHE_DIR` when set and non-empty, else [`DEFAULT_DIR`].
pub fn default_dir() -> String {
    std::env::var(CACHE_DIR_VAR)
        .ok()
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| DEFAULT_DIR.to_string())
}

/// A point-in-time snapshot of a store's lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a payload.
    pub hits: usize,
    /// Lookups that found nothing.
    pub misses: usize,
    /// Payloads written.
    pub stores: usize,
    /// Stale-version entries deleted when the store was opened.
    pub evictions: usize,
}

/// A content-addressed store rooted at one directory.
///
/// All operations are `&self` and thread-safe: counters are atomics and
/// writes go through temp-file-plus-rename, so a `WorkerPool` can share
/// one store across workers without coordination.
#[derive(Debug)]
pub struct CacheStore {
    root: PathBuf,
    dir: PathBuf,
    hits: AtomicUsize,
    misses: AtomicUsize,
    stores: AtomicUsize,
    evictions: usize,
    tmp_seq: AtomicUsize,
}

impl CacheStore {
    /// Opens (creating if needed) the store at `dir`, falling back to
    /// [`default_dir`] when `None`. Entries persisted under any other
    /// [`FORMAT_VERSION`] are evicted and counted.
    ///
    /// # Errors
    ///
    /// Returns a message when the versioned directory cannot be created.
    pub fn open(dir: Option<&str>) -> Result<CacheStore, String> {
        let root = PathBuf::from(match dir {
            Some(d) if !d.is_empty() => d.to_string(),
            _ => default_dir(),
        });
        let versioned = root.join(format!("v{FORMAT_VERSION}"));
        fs::create_dir_all(&versioned)
            .map_err(|e| format!("cache: cannot create `{}`: {e}", versioned.display()))?;
        let mut evictions = 0;
        if let Ok(entries) = fs::read_dir(&root) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                let stale_version = name.starts_with('v')
                    && name[1..].chars().all(|c| c.is_ascii_digit())
                    && *name != *format!("v{FORMAT_VERSION}");
                if !stale_version {
                    continue;
                }
                let p = entry.path();
                if p.is_dir() {
                    evictions += fs::read_dir(&p).map(|d| d.flatten().count()).unwrap_or(0);
                    let _ = fs::remove_dir_all(&p);
                }
            }
        }
        Ok(CacheStore {
            root,
            dir: versioned,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            stores: AtomicUsize::new(0),
            evictions,
            tmp_seq: AtomicUsize::new(0),
        })
    }

    /// The store's root directory (the one `$ATOMIG_CACHE_DIR` names).
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_of(&self, key: Fingerprint) -> PathBuf {
        self.dir.join(format!("{}.json", key.hex()))
    }

    /// The payload stored under `key`, if any.
    pub fn get(&self, key: Fingerprint) -> Option<String> {
        match fs::read_to_string(self.path_of(key)) {
            Ok(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `payload` under `key` (atomic rename; last writer wins).
    /// I/O failure is silent by design — a cache that cannot persist
    /// degrades to a miss on the next run, it must not fail the analysis.
    pub fn put(&self, key: Fingerprint, payload: &str) {
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!("{}.tmp.{}.{seq}", key.hex(), std::process::id()));
        if fs::write(&tmp, payload).is_ok() && fs::rename(&tmp, self.path_of(key)).is_ok() {
            self.stores.fetch_add(1, Ordering::Relaxed);
        } else {
            let _ = fs::remove_file(&tmp);
        }
    }

    /// Entries evicted from stale format versions when this store opened.
    pub fn evictions(&self) -> usize {
        self.evictions
    }

    /// A snapshot of the lifetime counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            evictions: self.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let p =
            std::env::temp_dir().join(format!("atomig-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn fingerprints_are_stable_and_boundary_sensitive() {
        let a = Fingerprint::of(&["cfg", "body"]);
        assert_eq!(a, Fingerprint::of(&["cfg", "body"]));
        assert_ne!(a, Fingerprint::of(&["cfgbody"]));
        assert_ne!(a, Fingerprint::of(&["cfg", "body", ""]));
        assert_ne!(Fingerprint::of(&["ab", ""]), Fingerprint::of(&["a", "b"]));
        assert_eq!(a.hex(), format!("{a}"));
    }

    #[test]
    fn round_trips_payloads_and_counts() {
        let dir = scratch("roundtrip");
        let store = CacheStore::open(Some(&dir.to_string_lossy())).unwrap();
        let key = Fingerprint::of(&["k"]);
        assert_eq!(store.get(key), None);
        store.put(key, "{\"v\":1}");
        assert_eq!(store.get(key).as_deref(), Some("{\"v\":1}"));
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.stores, s.evictions), (1, 1, 1, 0));

        // A second store over the same directory sees the entry.
        let reopened = CacheStore::open(Some(&dir.to_string_lossy())).unwrap();
        assert_eq!(reopened.get(key).as_deref(), Some("{\"v\":1}"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_keys_do_not_collide_on_disk() {
        let dir = scratch("keys");
        let store = CacheStore::open(Some(&dir.to_string_lossy())).unwrap();
        let a = Fingerprint::of(&["a"]);
        let b = Fingerprint::of(&["b"]);
        store.put(a, "A");
        store.put(b, "B");
        assert_eq!(store.get(a).as_deref(), Some("A"));
        assert_eq!(store.get(b).as_deref(), Some("B"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_format_versions_are_evicted_on_open() {
        let dir = scratch("evict");
        let stale = dir.join("v0");
        fs::create_dir_all(&stale).unwrap();
        fs::write(stale.join("dead.json"), "{}").unwrap();
        fs::write(stale.join("beef.json"), "{}").unwrap();
        // Unversioned siblings are left alone.
        fs::create_dir_all(dir.join("vault")).unwrap();
        let store = CacheStore::open(Some(&dir.to_string_lossy())).unwrap();
        assert_eq!(store.evictions(), 2);
        assert!(!stale.exists());
        assert!(dir.join("vault").exists());
        assert!(dir.join(format!("v{FORMAT_VERSION}")).is_dir());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn env_var_supplies_the_default_directory() {
        std::env::set_var(CACHE_DIR_VAR, "/tmp/atomig-cache-env-test");
        assert_eq!(default_dir(), "/tmp/atomig-cache-env-test");
        std::env::set_var(CACHE_DIR_VAR, "");
        assert_eq!(default_dir(), DEFAULT_DIR);
        std::env::remove_var(CACHE_DIR_VAR);
        assert_eq!(default_dir(), DEFAULT_DIR);
    }

    #[test]
    fn concurrent_puts_and_gets_are_safe() {
        let dir = scratch("parallel");
        let store = CacheStore::open(Some(&dir.to_string_lossy())).unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let store = &store;
                s.spawn(move || {
                    for i in 0..32 {
                        let key = Fingerprint::of(&["shared", &(i % 8).to_string()]);
                        store.put(key, &format!("payload-{}", i % 8));
                        let _ = store.get(key);
                        let _ = t;
                    }
                });
            }
        });
        for i in 0..8 {
            let key = Fingerprint::of(&["shared", &i.to_string()]);
            assert_eq!(
                store.get(key).as_deref(),
                Some(format!("payload-{i}").as_str())
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
