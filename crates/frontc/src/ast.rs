//! The MiniC abstract syntax tree.

/// A C-level type expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CType {
    /// `void`.
    Void,
    /// `char` (8-bit).
    Char,
    /// `short` (16-bit).
    Short,
    /// `int` (32-bit).
    Int,
    /// `long` (64-bit).
    Long,
    /// `struct Name`.
    Struct(String),
    /// `T*`.
    Ptr(Box<CType>),
    /// `T name[N]` — only at declaration sites.
    Array(Box<CType>, u32),
}

impl CType {
    /// `T*`.
    pub fn ptr(self) -> CType {
        CType::Ptr(Box::new(self))
    }
}

/// Qualifiers on a declaration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Quals {
    /// `volatile`.
    pub volatile: bool,
    /// `_Atomic` / `atomic`.
    pub atomic: bool,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    LAnd,
    /// `||` (short-circuit)
    LOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `!`
    Not,
    /// `~`
    BitNot,
    /// `*`
    Deref,
    /// `&`
    AddrOf,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Variable reference.
    Ident(String),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Assignment `lhs = rhs` (also compound `op=`, with `op` set).
    Assign {
        /// Target lvalue.
        lhs: Box<Expr>,
        /// Source value.
        rhs: Box<Expr>,
        /// `Some(op)` for compound assignments.
        op: Option<BinaryOp>,
    },
    /// Pre/post increment/decrement.
    IncDec {
        /// Target lvalue.
        target: Box<Expr>,
        /// +1 or -1.
        delta: i64,
        /// Prefix (`++x`) or postfix (`x++`).
        prefix: bool,
    },
    /// Function or builtin call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Array subscript `base[index]`.
    Index {
        /// Array or pointer expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Member access `base.field` or `base->field`.
    Member {
        /// Struct expression.
        base: Box<Expr>,
        /// Field name.
        field: String,
        /// `->` (true) vs `.` (false).
        arrow: bool,
    },
    /// Ternary `cond ? t : e`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Then value.
        then_e: Box<Expr>,
        /// Else value.
        else_e: Box<Expr>,
    },
    /// Inline assembly `asm("...")`.
    Asm(String),
    /// `sizeof(T)` — in MiniC, the number of *slots* the type occupies
    /// (the flat memory model's unit), suitable for `malloc`.
    SizeOf(CType),
    /// A cast `(T)expr`.
    Cast {
        /// Target type.
        ty: CType,
        /// Operand.
        expr: Box<Expr>,
    },
}

/// A statement together with the 1-based source line it starts on
/// (`0` = unknown, e.g. synthesized nodes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// 1-based source line of the statement's first token.
    pub line: u32,
    /// The statement proper.
    pub kind: StmtKind,
}

impl Stmt {
    /// Wraps `kind` with an unknown source line.
    pub fn new(kind: StmtKind) -> Stmt {
        Stmt { line: 0, kind }
    }

    /// Wraps `kind` with a source line.
    pub fn at(line: u32, kind: StmtKind) -> Stmt {
        Stmt { line, kind }
    }
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// Local declaration with optional initializer.
    Decl {
        /// Declared type.
        ty: CType,
        /// Qualifiers.
        quals: Quals,
        /// Name.
        name: String,
        /// Initializer.
        init: Option<Expr>,
    },
    /// Expression statement.
    Expr(Expr),
    /// `if (cond) then else else_`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_s: Box<Stmt>,
        /// Else branch.
        else_s: Option<Box<Stmt>>,
    },
    /// `while (cond) body`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Box<Stmt>,
    },
    /// `do body while (cond);`.
    DoWhile {
        /// Body.
        body: Box<Stmt>,
        /// Condition.
        cond: Expr,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Initializer (decl or expr).
        init: Option<Box<Stmt>>,
        /// Condition (empty = true).
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Body.
        body: Box<Stmt>,
    },
    /// `{ ... }`.
    Block(Vec<Stmt>),
    /// `return e;`.
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
}

/// Top-level items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A struct definition.
    Struct {
        /// Name.
        name: String,
        /// Fields (type, name).
        fields: Vec<(CType, String)>,
    },
    /// A global variable.
    Global {
        /// Type.
        ty: CType,
        /// Qualifiers.
        quals: Quals,
        /// Name.
        name: String,
        /// Flat initializer values.
        init: Vec<i64>,
    },
    /// A function definition.
    Function {
        /// Return type.
        ret: CType,
        /// Name.
        name: String,
        /// Parameters (type, name).
        params: Vec<(CType, String)>,
        /// Body.
        body: Vec<Stmt>,
    },
}

/// A parsed translation unit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// All items in source order.
    pub items: Vec<Item>,
}
