//! Typed lowering from the MiniC AST to MIR, in the style of `clang -O0`:
//! every local variable and parameter gets a stack slot, all data flow
//! goes through loads and stores, and no optimization is performed —
//! exactly the IR shape AtoMig analyses (§3.1).

use crate::asm::{classify, AsmIdiom};
use crate::ast::*;
use atomig_mir::{
    Builtin, Callee, CmpPred, FuncId, FunctionBuilder, GepIndex, GlobalDef, GlobalId, Module,
    Ordering, RmwOp, StructDef, StructId, Type, Value,
};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A semantic / lowering error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// Description (includes the offending name where known).
    pub msg: String,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering error: {}", self.msg)
    }
}

impl Error for LowerError {}

fn err<T>(msg: impl Into<String>) -> Result<T, LowerError> {
    Err(LowerError { msg: msg.into() })
}

/// Lowers a parsed program into a MIR module named `name`.
pub fn lower(program: &Program, name: &str) -> Result<Module, LowerError> {
    let mut cx = Cx::collect(program, name)?;
    for item in &program.items {
        if let Item::Function {
            ret,
            name,
            params,
            body,
        } = item
        {
            let f = FnLower::lower_function(&cx, ret, name, params, body)?;
            let fid = cx.funcs[name].0;
            cx.module.funcs[fid.0 as usize] = f;
        }
    }
    // Normalize global initializers to slot counts.
    let sizes = cx.module.struct_slot_sizes();
    for g in &mut cx.module.globals {
        let n = g.ty.slot_count(&sizes) as usize;
        g.init.resize(n.max(1), 0);
    }
    Ok(cx.module)
}

/// Module-wide context: declared structs, globals, functions.
struct Cx {
    module: Module,
    structs: HashMap<String, StructId>,
    struct_fields: HashMap<String, Vec<(CType, String)>>,
    globals: HashMap<String, (GlobalId, CType, Quals)>,
    funcs: HashMap<String, (FuncId, CType, Vec<CType>)>,
    struct_sizes: Vec<u32>,
}

impl Cx {
    fn collect(program: &Program, name: &str) -> Result<Cx, LowerError> {
        let mut cx = Cx {
            module: Module::new(name),
            structs: HashMap::new(),
            struct_fields: HashMap::new(),
            globals: HashMap::new(),
            funcs: HashMap::new(),
            struct_sizes: Vec::new(),
        };
        // Phase 1: struct names.
        for item in &program.items {
            if let Item::Struct { name, .. } = item {
                if cx.structs.contains_key(name) {
                    return err(format!("duplicate struct `{name}`"));
                }
                let sid = cx.module.add_struct(StructDef {
                    name: name.clone(),
                    fields: vec![],
                });
                cx.structs.insert(name.clone(), sid);
            }
        }
        // Phase 2: struct bodies.
        for item in &program.items {
            if let Item::Struct { name, fields } = item {
                let mir_fields: Result<Vec<Type>, LowerError> =
                    fields.iter().map(|(t, _)| cx.mir_type(t)).collect();
                let sid = cx.structs[name];
                cx.module.structs[sid.0 as usize].fields = mir_fields?;
                cx.struct_fields.insert(name.clone(), fields.clone());
            }
        }
        cx.struct_sizes = cx.module.struct_slot_sizes();
        // Phase 3: globals and function signatures.
        for item in &program.items {
            match item {
                Item::Global {
                    ty,
                    quals,
                    name,
                    init,
                } => {
                    if cx.globals.contains_key(name) {
                        return err(format!("duplicate global `{name}`"));
                    }
                    let mty = cx.mir_type(ty)?;
                    let gid = cx.module.add_global(GlobalDef {
                        name: name.clone(),
                        ty: mty,
                        init: init.clone(),
                    });
                    cx.globals.insert(name.clone(), (gid, ty.clone(), *quals));
                }
                Item::Function {
                    ret, name, params, ..
                } => {
                    if cx.funcs.contains_key(name) {
                        return err(format!("duplicate function `{name}`"));
                    }
                    let mir_params: Result<Vec<(String, Type)>, LowerError> = params
                        .iter()
                        .map(|(t, n)| Ok((n.clone(), cx.mir_type(t)?)))
                        .collect();
                    let fid = cx.module.add_func(atomig_mir::Function::new(
                        name.clone(),
                        mir_params?,
                        cx.mir_type(ret)?,
                    ));
                    cx.funcs.insert(
                        name.clone(),
                        (
                            fid,
                            ret.clone(),
                            params.iter().map(|(t, _)| t.clone()).collect(),
                        ),
                    );
                }
                Item::Struct { .. } => {}
            }
        }
        Ok(cx)
    }

    fn mir_type(&self, t: &CType) -> Result<Type, LowerError> {
        Ok(match t {
            CType::Void => Type::Void,
            CType::Char => Type::I8,
            CType::Short => Type::I16,
            CType::Int => Type::I32,
            CType::Long => Type::I64,
            CType::Struct(name) => match self.structs.get(name) {
                Some(sid) => Type::Struct(*sid),
                None => return err(format!("unknown struct `{name}`")),
            },
            CType::Ptr(p) => Type::ptr_to(self.mir_type(p)?),
            CType::Array(e, n) => Type::array_of(self.mir_type(e)?, *n),
        })
    }

    fn slots_of(&self, t: &CType) -> Result<u32, LowerError> {
        Ok(self.mir_type(t)?.slot_count(&self.struct_sizes).max(1))
    }

    fn field_index(&self, strukt: &str, field: &str) -> Result<(u32, CType), LowerError> {
        match self.struct_fields.get(strukt) {
            Some(fields) => fields
                .iter()
                .position(|(_, n)| n == field)
                .map(|i| (i as u32, fields[i].0.clone()))
                .ok_or(LowerError {
                    msg: format!("struct `{strukt}` has no field `{field}`"),
                }),
            None => err(format!("unknown struct `{strukt}`")),
        }
    }
}

/// A typed rvalue.
#[derive(Debug, Clone)]
struct RV {
    val: Value,
    ty: CType,
}

/// A typed lvalue (address + access qualifiers).
#[derive(Debug, Clone)]
struct LV {
    addr: Value,
    ty: CType,
    volatile: bool,
    atomic: bool,
}

struct LocalVar {
    addr: Value,
    ty: CType,
    quals: Quals,
}

struct FnLower<'c> {
    cx: &'c Cx,
    b: FunctionBuilder,
    scopes: Vec<HashMap<String, LocalVar>>,
    /// `(continue_target, break_target)` innermost last.
    loops: Vec<(atomig_mir::BlockId, atomig_mir::BlockId)>,
    ret: CType,
}

impl<'c> FnLower<'c> {
    fn lower_function(
        cx: &'c Cx,
        ret: &CType,
        name: &str,
        params: &[(CType, String)],
        body: &[Stmt],
    ) -> Result<atomig_mir::Function, LowerError> {
        let mir_params: Result<Vec<(String, Type)>, LowerError> = params
            .iter()
            .map(|(t, n)| Ok((n.clone(), cx.mir_type(t)?)))
            .collect();
        let mut fl = FnLower {
            cx,
            b: FunctionBuilder::new(name, mir_params?, cx.mir_type(ret)?),
            scopes: vec![HashMap::new()],
            loops: vec![],
            ret: ret.clone(),
        };
        // clang -O0: copy every parameter into a stack slot.
        for (i, (pty, pname)) in params.iter().enumerate() {
            let mty = fl.cx.mir_type(pty)?;
            let slot = fl.b.alloca(mty.clone(), pname.clone());
            fl.b.store(mty, slot, Value::Param(i as u32));
            fl.scopes[0].insert(
                pname.clone(),
                LocalVar {
                    addr: slot,
                    ty: pty.clone(),
                    quals: Quals::default(),
                },
            );
        }
        for s in body {
            fl.stmt(s)?;
        }
        if !fl.b.is_terminated() {
            match ret {
                CType::Void => fl.b.ret(None),
                _ => fl.b.ret(Some(Value::Const(0))),
            }
        }
        Ok(fl.b.finish())
    }

    fn lookup(&self, name: &str) -> Option<&LocalVar> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    // ---- statements ----

    fn stmt(&mut self, s: &Stmt) -> Result<(), LowerError> {
        if self.b.is_terminated() {
            // Dead code after return/break: still lower into a fresh block
            // so labels resolve, but simplest is to skip it.
            return Ok(());
        }
        if s.line != 0 {
            self.b.set_line(s.line);
        }
        match &s.kind {
            StmtKind::Decl {
                ty,
                quals,
                name,
                init,
            } => {
                let mty = self.cx.mir_type(ty)?;
                let slot = self.b.alloca(mty, name.clone());
                self.scopes.last_mut().expect("scope").insert(
                    name.clone(),
                    LocalVar {
                        addr: slot,
                        ty: ty.clone(),
                        quals: *quals,
                    },
                );
                if let Some(e) = init {
                    let rv = self.rvalue(e)?;
                    let sty = self.cx.mir_type(ty)?;
                    self.store_qualified(slot, rv.val, sty, *quals);
                }
                Ok(())
            }
            StmtKind::Expr(e) => {
                self.rvalue(e)?;
                Ok(())
            }
            StmtKind::Block(stmts) => {
                self.scopes.push(HashMap::new());
                for s in stmts {
                    self.stmt(s)?;
                }
                self.scopes.pop();
                Ok(())
            }
            StmtKind::If {
                cond,
                then_s,
                else_s,
            } => {
                let c = self.cond_value(cond)?;
                let then_bb = self.b.new_block("if.then");
                let else_bb = self.b.new_block("if.else");
                let end_bb = self.b.new_block("if.end");
                self.b.cond_br(c, then_bb, else_bb);
                self.b.switch_to(then_bb);
                self.stmt(then_s)?;
                if !self.b.is_terminated() {
                    self.b.br(end_bb);
                }
                self.b.switch_to(else_bb);
                if let Some(e) = else_s {
                    self.stmt(e)?;
                }
                if !self.b.is_terminated() {
                    self.b.br(end_bb);
                }
                self.b.switch_to(end_bb);
                Ok(())
            }
            StmtKind::While { cond, body } => {
                let header = self.b.new_block("while.header");
                let body_bb = self.b.new_block("while.body");
                let end_bb = self.b.new_block("while.end");
                self.b.br(header);
                self.b.switch_to(header);
                let c = self.cond_value(cond)?;
                self.b.cond_br(c, body_bb, end_bb);
                self.b.switch_to(body_bb);
                self.loops.push((header, end_bb));
                self.stmt(body)?;
                self.loops.pop();
                if !self.b.is_terminated() {
                    self.b.br(header);
                }
                self.b.switch_to(end_bb);
                Ok(())
            }
            StmtKind::DoWhile { body, cond } => {
                let body_bb = self.b.new_block("do.body");
                let latch = self.b.new_block("do.latch");
                let end_bb = self.b.new_block("do.end");
                self.b.br(body_bb);
                self.b.switch_to(body_bb);
                self.loops.push((latch, end_bb));
                self.stmt(body)?;
                self.loops.pop();
                if !self.b.is_terminated() {
                    self.b.br(latch);
                }
                self.b.switch_to(latch);
                let c = self.cond_value(cond)?;
                self.b.cond_br(c, body_bb, end_bb);
                self.b.switch_to(end_bb);
                Ok(())
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let header = self.b.new_block("for.header");
                let body_bb = self.b.new_block("for.body");
                let step_bb = self.b.new_block("for.step");
                let end_bb = self.b.new_block("for.end");
                self.b.br(header);
                self.b.switch_to(header);
                match cond {
                    Some(c) => {
                        let cv = self.cond_value(c)?;
                        self.b.cond_br(cv, body_bb, end_bb);
                    }
                    None => self.b.br(body_bb),
                }
                self.b.switch_to(body_bb);
                self.loops.push((step_bb, end_bb));
                self.stmt(body)?;
                self.loops.pop();
                if !self.b.is_terminated() {
                    self.b.br(step_bb);
                }
                self.b.switch_to(step_bb);
                if let Some(e) = step {
                    self.rvalue(e)?;
                }
                self.b.br(header);
                self.b.switch_to(end_bb);
                self.scopes.pop();
                Ok(())
            }
            StmtKind::Return(e) => {
                match (e, &self.ret) {
                    (None, CType::Void) => self.b.ret(None),
                    (None, _) => return err("missing return value"),
                    (Some(e), CType::Void) => {
                        self.rvalue(e)?;
                        self.b.ret(None);
                    }
                    (Some(e), _) => {
                        let rv = self.rvalue(e)?;
                        self.b.ret(Some(rv.val));
                    }
                }
                Ok(())
            }
            StmtKind::Break => match self.loops.last() {
                Some(&(_, brk)) => {
                    self.b.br(brk);
                    Ok(())
                }
                None => err("break outside a loop"),
            },
            StmtKind::Continue => match self.loops.last() {
                Some(&(cont, _)) => {
                    self.b.br(cont);
                    Ok(())
                }
                None => err("continue outside a loop"),
            },
        }
    }

    // ---- lvalues ----

    fn lvalue(&mut self, e: &Expr) -> Result<LV, LowerError> {
        match e {
            Expr::Ident(name) => {
                if let Some(v) = self.lookup(name) {
                    return Ok(LV {
                        addr: v.addr,
                        ty: v.ty.clone(),
                        volatile: v.quals.volatile,
                        atomic: v.quals.atomic,
                    });
                }
                if let Some((gid, ty, quals)) = self.cx.globals.get(name) {
                    return Ok(LV {
                        addr: Value::Global(*gid),
                        ty: ty.clone(),
                        volatile: quals.volatile,
                        atomic: quals.atomic,
                    });
                }
                err(format!("unknown variable `{name}`"))
            }
            Expr::Unary {
                op: UnaryOp::Deref,
                operand,
            } => {
                let rv = self.rvalue(operand)?;
                match rv.ty {
                    CType::Ptr(inner) => Ok(LV {
                        addr: rv.val,
                        ty: *inner,
                        volatile: false,
                        atomic: false,
                    }),
                    other => err(format!("dereference of non-pointer ({other:?})")),
                }
            }
            Expr::Index { base, index } => {
                let idx = self.rvalue(index)?;
                // Array lvalue or pointer rvalue?
                let base_info = self.base_address(base)?;
                match base_info.ty {
                    CType::Array(elem, n) => {
                        let mty = self.cx.mir_type(&CType::Array(elem.clone(), n))?;
                        let addr = self.b.gep(
                            mty,
                            base_info.addr,
                            vec![GepIndex::Const(0), GepIndex::Dyn(idx.val)],
                        );
                        Ok(LV {
                            addr,
                            ty: *elem,
                            volatile: base_info.volatile,
                            atomic: base_info.atomic,
                        })
                    }
                    CType::Ptr(elem) => {
                        // base is a pointer value: load it, then index.
                        let p = self.load_lv(&LV {
                            addr: base_info.addr,
                            ty: CType::Ptr(elem.clone()),
                            volatile: base_info.volatile,
                            atomic: base_info.atomic,
                        })?;
                        let emty = self.cx.mir_type(&elem)?;
                        let addr = self.b.gep(emty, p.val, vec![GepIndex::Dyn(idx.val)]);
                        Ok(LV {
                            addr,
                            ty: *elem,
                            volatile: false,
                            atomic: false,
                        })
                    }
                    other => err(format!("cannot index into {other:?}")),
                }
            }
            Expr::Member { base, field, arrow } => {
                let (struct_name, base_addr) = if *arrow {
                    let rv = self.rvalue(base)?;
                    match rv.ty {
                        CType::Ptr(inner) => match *inner {
                            CType::Struct(s) => (s, rv.val),
                            other => return err(format!("`->` on pointer to {other:?}")),
                        },
                        other => return err(format!("`->` on non-pointer ({other:?})")),
                    }
                } else {
                    let lv = self.lvalue(base)?;
                    match lv.ty {
                        CType::Struct(s) => (s, lv.addr),
                        other => return err(format!("`.` on non-struct ({other:?})")),
                    }
                };
                let (fi, fty) = self.cx.field_index(&struct_name, field)?;
                let sid: StructId = self.cx.structs[&struct_name];
                let addr = self.b.field_addr(Type::Struct(sid), base_addr, fi);
                Ok(LV {
                    addr,
                    ty: fty,
                    volatile: false,
                    atomic: false,
                })
            }
            other => err(format!("expression is not an lvalue: {other:?}")),
        }
    }

    /// Address + type of a base expression without loading (used by
    /// indexing to distinguish arrays from pointers).
    fn base_address(&mut self, e: &Expr) -> Result<LV, LowerError> {
        match e {
            Expr::Ident(_)
            | Expr::Member { .. }
            | Expr::Index { .. }
            | Expr::Unary {
                op: UnaryOp::Deref, ..
            } => self.lvalue(e),
            other => {
                // A computed pointer value.
                let rv = self.rvalue(other)?;
                match &rv.ty {
                    CType::Ptr(_) => {
                        // Fabricate an lvalue holding the pointer by
                        // spilling it (rare path).
                        let mty = self.cx.mir_type(&rv.ty)?;
                        let slot = self.b.alloca(mty.clone(), "ptr.tmp");
                        self.b.store(mty, slot, rv.val);
                        Ok(LV {
                            addr: slot,
                            ty: rv.ty,
                            volatile: false,
                            atomic: false,
                        })
                    }
                    other => err(format!("cannot take address of {other:?}")),
                }
            }
        }
    }

    fn load_lv(&mut self, lv: &LV) -> Result<RV, LowerError> {
        match &lv.ty {
            CType::Array(elem, n) => {
                // Array-to-pointer decay: the value is the address.
                let aty = self.cx.mir_type(&CType::Array(elem.clone(), *n))?;
                let addr = self
                    .b
                    .gep(aty, lv.addr, vec![GepIndex::Const(0), GepIndex::Const(0)]);
                Ok(RV {
                    val: addr,
                    ty: CType::Ptr(elem.clone()),
                })
            }
            CType::Struct(s) => err(format!("cannot load whole struct `{s}`")),
            scalar => {
                let mty = self.cx.mir_type(scalar)?;
                let ord = if lv.atomic {
                    Ordering::SeqCst
                } else {
                    Ordering::NotAtomic
                };
                let v = self.b.load_ord(mty, lv.addr, ord, lv.volatile);
                Ok(RV {
                    val: v,
                    ty: scalar.clone(),
                })
            }
        }
    }

    fn store_qualified(&mut self, addr: Value, val: Value, ty: Type, quals: Quals) {
        let ord = if quals.atomic {
            Ordering::SeqCst
        } else {
            Ordering::NotAtomic
        };
        self.b.store_ord(ty, addr, val, ord, quals.volatile);
    }

    fn store_lv(&mut self, lv: &LV, val: Value) -> Result<(), LowerError> {
        let mty = self.cx.mir_type(&lv.ty)?;
        if !mty.is_scalar() {
            return err("store to non-scalar lvalue");
        }
        self.store_qualified(
            lv.addr,
            val,
            mty,
            Quals {
                volatile: lv.volatile,
                atomic: lv.atomic,
            },
        );
        Ok(())
    }

    // ---- rvalues ----

    /// Lowers `e` to an `i1` condition value.
    fn cond_value(&mut self, e: &Expr) -> Result<Value, LowerError> {
        let rv = self.rvalue(e)?;
        Ok(self.b.cmp(CmpPred::Ne, rv.val, Value::Const(0)))
    }

    fn rvalue(&mut self, e: &Expr) -> Result<RV, LowerError> {
        match e {
            Expr::Int(v) => Ok(RV {
                val: Value::Const(*v),
                ty: CType::Long,
            }),
            Expr::SizeOf(t) => Ok(RV {
                val: Value::Const(self.cx.slots_of(t)? as i64),
                ty: CType::Long,
            }),
            Expr::Ident(name) => {
                if self.lookup(name).is_none() && !self.cx.globals.contains_key(name) {
                    // A bare function name (spawn target).
                    if let Some((fid, _, _)) = self.cx.funcs.get(name) {
                        return Ok(RV {
                            val: Value::Func(*fid),
                            ty: CType::Long,
                        });
                    }
                }
                let lv = self.lvalue(e)?;
                self.load_lv(&lv)
            }
            Expr::Unary { op, operand } => match op {
                UnaryOp::Neg => {
                    let rv = self.rvalue(operand)?;
                    let v = self.b.bin(atomig_mir::BinOp::Sub, Value::Const(0), rv.val);
                    Ok(RV { val: v, ty: rv.ty })
                }
                UnaryOp::Not => {
                    let rv = self.rvalue(operand)?;
                    let c = self.b.cmp(CmpPred::Eq, rv.val, Value::Const(0));
                    let v = self.b.cast(c, Type::I32);
                    Ok(RV {
                        val: v,
                        ty: CType::Int,
                    })
                }
                UnaryOp::BitNot => {
                    let rv = self.rvalue(operand)?;
                    let v = self.b.bin(atomig_mir::BinOp::Xor, rv.val, Value::Const(-1));
                    Ok(RV { val: v, ty: rv.ty })
                }
                UnaryOp::Deref => {
                    let lv = self.lvalue(e)?;
                    self.load_lv(&lv)
                }
                UnaryOp::AddrOf => {
                    let lv = self.lvalue(operand)?;
                    Ok(RV {
                        val: lv.addr,
                        ty: lv.ty.ptr(),
                    })
                }
            },
            Expr::Binary { op, lhs, rhs } => self.binary(*op, lhs, rhs),
            Expr::Assign { lhs, rhs, op } => {
                let lv = self.lvalue(lhs)?;
                let val = match op {
                    None => self.rvalue(rhs)?.val,
                    Some(bop) => {
                        let old = self.load_lv(&lv)?;
                        let r = self.rvalue(rhs)?;
                        self.arith(*bop, old.val, r.val, &old.ty, &r.ty)?.val
                    }
                };
                self.store_lv(&lv, val)?;
                Ok(RV {
                    val,
                    ty: lv.ty.clone(),
                })
            }
            Expr::IncDec {
                target,
                delta,
                prefix,
            } => {
                let lv = self.lvalue(target)?;
                let old = self.load_lv(&lv)?;
                let new = match &lv.ty {
                    CType::Ptr(inner) => {
                        let mty = self.cx.mir_type(inner)?;
                        self.b.gep(mty, old.val, vec![GepIndex::Const(*delta)])
                    }
                    _ => self
                        .b
                        .bin(atomig_mir::BinOp::Add, old.val, Value::Const(*delta)),
                };
                self.store_lv(&lv, new)?;
                Ok(RV {
                    val: if *prefix { new } else { old.val },
                    ty: lv.ty.clone(),
                })
            }
            Expr::Call { name, args } => self.call(name, args),
            Expr::Index { .. } | Expr::Member { .. } => {
                let lv = self.lvalue(e)?;
                self.load_lv(&lv)
            }
            Expr::Ternary {
                cond,
                then_e,
                else_e,
            } => {
                let slot = self.b.alloca(Type::I64, "ternary.tmp");
                let c = self.cond_value(cond)?;
                let then_bb = self.b.new_block("tern.then");
                let else_bb = self.b.new_block("tern.else");
                let end_bb = self.b.new_block("tern.end");
                self.b.cond_br(c, then_bb, else_bb);
                self.b.switch_to(then_bb);
                let tv = self.rvalue(then_e)?;
                self.b.store(Type::I64, slot, tv.val);
                self.b.br(end_bb);
                self.b.switch_to(else_bb);
                let ev = self.rvalue(else_e)?;
                self.b.store(Type::I64, slot, ev.val);
                self.b.br(end_bb);
                self.b.switch_to(end_bb);
                let v = self.b.load(Type::I64, slot);
                Ok(RV { val: v, ty: tv.ty })
            }
            Expr::Asm(text) => {
                match classify(text) {
                    AsmIdiom::FullFence => self.b.fence(Ordering::SeqCst),
                    AsmIdiom::Pause => {
                        self.b.call_builtin(Builtin::Pause, vec![], Type::Void);
                    }
                    AsmIdiom::CompilerBarrier => {
                        // No hardware effect, but keep the marker: §6 of
                        // the paper suggests these sites as additional
                        // synchronization-detection entry points.
                        self.b
                            .call_builtin(Builtin::CompilerBarrier, vec![], Type::Void);
                    }
                    AsmIdiom::Unsupported(s) => {
                        return err(format!("unsupported inline assembly `{s}`"))
                    }
                }
                Ok(RV {
                    val: Value::Const(0),
                    ty: CType::Int,
                })
            }
            Expr::Cast { ty, expr } => {
                let rv = self.rvalue(expr)?;
                let mty = self.cx.mir_type(ty)?;
                if !mty.is_scalar() {
                    return err("cast to non-scalar type");
                }
                let v = self.b.cast(rv.val, mty);
                Ok(RV {
                    val: v,
                    ty: ty.clone(),
                })
            }
        }
    }

    fn binary(&mut self, op: BinaryOp, lhs: &Expr, rhs: &Expr) -> Result<RV, LowerError> {
        match op {
            BinaryOp::LAnd | BinaryOp::LOr => {
                let slot = self.b.alloca(Type::I32, "logic.tmp");
                let l = self.cond_value(lhs)?;
                let li = self.b.cast(l, Type::I32);
                self.b.store(Type::I32, slot, li);
                let rhs_bb = self.b.new_block("logic.rhs");
                let end_bb = self.b.new_block("logic.end");
                match op {
                    BinaryOp::LAnd => self.b.cond_br(l, rhs_bb, end_bb),
                    _ => self.b.cond_br(l, end_bb, rhs_bb),
                }
                self.b.switch_to(rhs_bb);
                let r = self.cond_value(rhs)?;
                let ri = self.b.cast(r, Type::I32);
                self.b.store(Type::I32, slot, ri);
                self.b.br(end_bb);
                self.b.switch_to(end_bb);
                let v = self.b.load(Type::I32, slot);
                Ok(RV {
                    val: v,
                    ty: CType::Int,
                })
            }
            _ => {
                let l = self.rvalue(lhs)?;
                let r = self.rvalue(rhs)?;
                self.arith(op, l.val, r.val, &l.ty, &r.ty)
            }
        }
    }

    fn arith(
        &mut self,
        op: BinaryOp,
        l: Value,
        r: Value,
        lty: &CType,
        rty: &CType,
    ) -> Result<RV, LowerError> {
        use atomig_mir::BinOp as B;
        // Pointer arithmetic: p + n / p - n scale by the pointee size.
        if let (CType::Ptr(inner), BinaryOp::Add | BinaryOp::Sub) = (lty, op) {
            let mty = self.cx.mir_type(inner)?;
            let idx = if op == BinaryOp::Sub {
                self.b.bin(B::Sub, Value::Const(0), r)
            } else {
                r
            };
            let v = self.b.gep(mty, l, vec![GepIndex::Dyn(idx)]);
            return Ok(RV {
                val: v,
                ty: lty.clone(),
            });
        }
        let cmp = |p: CmpPred| Some(p);
        let pred = match op {
            BinaryOp::Eq => cmp(CmpPred::Eq),
            BinaryOp::Ne => cmp(CmpPred::Ne),
            BinaryOp::Lt => cmp(CmpPred::Lt),
            BinaryOp::Le => cmp(CmpPred::Le),
            BinaryOp::Gt => cmp(CmpPred::Gt),
            BinaryOp::Ge => cmp(CmpPred::Ge),
            _ => None,
        };
        if let Some(p) = pred {
            let c = self.b.cmp(p, l, r);
            let v = self.b.cast(c, Type::I32);
            return Ok(RV {
                val: v,
                ty: CType::Int,
            });
        }
        let bop = match op {
            BinaryOp::Add => B::Add,
            BinaryOp::Sub => B::Sub,
            BinaryOp::Mul => B::Mul,
            BinaryOp::Div => B::Div,
            BinaryOp::Rem => B::Rem,
            BinaryOp::And => B::And,
            BinaryOp::Or => B::Or,
            BinaryOp::Xor => B::Xor,
            BinaryOp::Shl => B::Shl,
            BinaryOp::Shr => B::Shr,
            _ => unreachable!("handled above"),
        };
        let v = self.b.bin(bop, l, r);
        let ty = if matches!(lty, CType::Long) || matches!(rty, CType::Long) {
            CType::Long
        } else {
            lty.clone()
        };
        Ok(RV { val: v, ty })
    }

    // ---- calls ----

    fn ord_arg(&self, e: &Expr) -> Result<Ordering, LowerError> {
        match e {
            Expr::Ident(s) => match s.as_str() {
                "relaxed" | "memory_order_relaxed" => Ok(Ordering::Relaxed),
                "acquire" | "memory_order_acquire" => Ok(Ordering::Acquire),
                "release" | "memory_order_release" => Ok(Ordering::Release),
                "acq_rel" | "memory_order_acq_rel" => Ok(Ordering::AcqRel),
                "seq_cst" | "memory_order_seq_cst" => Ok(Ordering::SeqCst),
                other => err(format!("unknown memory order `{other}`")),
            },
            other => err(format!("memory order must be a keyword, got {other:?}")),
        }
    }

    fn ptr_arg(&mut self, e: &Expr) -> Result<(Value, CType), LowerError> {
        let rv = self.rvalue(e)?;
        match rv.ty {
            CType::Ptr(inner) => Ok((rv.val, *inner)),
            other => err(format!("expected pointer argument, got {other:?}")),
        }
    }

    fn call(&mut self, name: &str, args: &[Expr]) -> Result<RV, LowerError> {
        let argc = args.len();
        let need = |n: usize| -> Result<(), LowerError> {
            if argc != n {
                err(format!("`{name}` takes {n} argument(s), got {argc}"))
            } else {
                Ok(())
            }
        };
        match name {
            // -- atomic builtins (§3.2's compiler builtins) --
            "atomic_load" | "atomic_load_explicit" => {
                let ord = if name.ends_with("explicit") {
                    need(2)?;
                    self.ord_arg(&args[1])?
                } else {
                    need(1)?;
                    Ordering::SeqCst
                };
                let (p, ty) = self.ptr_arg(&args[0])?;
                let mty = self.cx.mir_type(&ty)?;
                let v = self.b.load_ord(mty, p, ord, false);
                Ok(RV { val: v, ty })
            }
            "atomic_store" | "atomic_store_explicit" => {
                let ord = if name.ends_with("explicit") {
                    need(3)?;
                    self.ord_arg(&args[2])?
                } else {
                    need(2)?;
                    Ordering::SeqCst
                };
                let (p, ty) = self.ptr_arg(&args[0])?;
                let v = self.rvalue(&args[1])?;
                let mty = self.cx.mir_type(&ty)?;
                self.b.store_ord(mty, p, v.val, ord, false);
                Ok(RV { val: v.val, ty })
            }
            "cmpxchg" | "cmpxchg_explicit" => {
                let ord = if name.ends_with("explicit") {
                    need(4)?;
                    self.ord_arg(&args[3])?
                } else {
                    need(3)?;
                    Ordering::SeqCst
                };
                let (p, ty) = self.ptr_arg(&args[0])?;
                let e = self.rvalue(&args[1])?;
                let n = self.rvalue(&args[2])?;
                let mty = self.cx.mir_type(&ty)?;
                let old = self.b.cmpxchg(mty, p, e.val, n.val, ord);
                Ok(RV { val: old, ty })
            }
            "xchg" | "xchg_explicit" | "faa" | "faa_explicit" | "fas" | "fas_explicit" | "fand"
            | "for_" | "fxor" => {
                let (op, base_args) = match name.trim_end_matches("_explicit") {
                    "xchg" => (RmwOp::Xchg, 2),
                    "faa" => (RmwOp::Add, 2),
                    "fas" => (RmwOp::Sub, 2),
                    "fand" => (RmwOp::And, 2),
                    "for_" => (RmwOp::Or, 2),
                    "fxor" => (RmwOp::Xor, 2),
                    _ => unreachable!(),
                };
                let ord = if name.ends_with("explicit") {
                    need(base_args + 1)?;
                    self.ord_arg(&args[base_args])?
                } else {
                    need(base_args)?;
                    Ordering::SeqCst
                };
                let (p, ty) = self.ptr_arg(&args[0])?;
                let v = self.rvalue(&args[1])?;
                let mty = self.cx.mir_type(&ty)?;
                let old = self.b.rmw(op, mty, p, v.val, ord);
                Ok(RV { val: old, ty })
            }
            "fence" => {
                need(0)?;
                self.b.fence(Ordering::SeqCst);
                Ok(RV {
                    val: Value::Const(0),
                    ty: CType::Void,
                })
            }
            "fence_explicit" => {
                need(1)?;
                let ord = self.ord_arg(&args[0])?;
                self.b.fence(ord);
                Ok(RV {
                    val: Value::Const(0),
                    ty: CType::Void,
                })
            }
            // -- runtime builtins --
            "spawn" => {
                need(2)?;
                let f = self.rvalue(&args[0])?;
                let a = self.rvalue(&args[1])?;
                let v = self
                    .b
                    .call_builtin(Builtin::Spawn, vec![f.val, a.val], Type::I64);
                Ok(RV {
                    val: v,
                    ty: CType::Long,
                })
            }
            "join" | "assert" | "assume" | "barrier_wait" | "free" | "print" => {
                need(1)?;
                let a = self.rvalue(&args[0])?;
                let b = match name {
                    "join" => Builtin::Join,
                    "assert" => Builtin::Assert,
                    "assume" => Builtin::Assume,
                    "barrier_wait" => Builtin::BarrierWait,
                    "free" => Builtin::Free,
                    _ => Builtin::Print,
                };
                self.b.call_builtin(b, vec![a.val], Type::Void);
                Ok(RV {
                    val: Value::Const(0),
                    ty: CType::Void,
                })
            }
            "malloc" => {
                need(1)?;
                let a = self.rvalue(&args[0])?;
                let v = self.b.call_builtin(Builtin::Malloc, vec![a.val], Type::I64);
                Ok(RV {
                    val: v,
                    ty: CType::Long,
                })
            }
            "pause" | "cpu_relax" => {
                need(0)?;
                self.b.call_builtin(Builtin::Pause, vec![], Type::Void);
                Ok(RV {
                    val: Value::Const(0),
                    ty: CType::Void,
                })
            }
            "nondet" => {
                need(0)?;
                let v = self.b.call_builtin(Builtin::Nondet, vec![], Type::I64);
                Ok(RV {
                    val: v,
                    ty: CType::Long,
                })
            }
            // -- user functions --
            _ => {
                let (fid, ret, params) = match self.cx.funcs.get(name) {
                    Some(t) => t.clone(),
                    None => return err(format!("unknown function `{name}`")),
                };
                if params.len() != argc {
                    return err(format!(
                        "`{name}` takes {} argument(s), got {argc}",
                        params.len()
                    ));
                }
                let mut vals = Vec::with_capacity(argc);
                for a in args {
                    vals.push(self.rvalue(a)?.val);
                }
                let rty = self.cx.mir_type(&ret)?;
                let v = self.b.call(Callee::Func(fid), vals, rty);
                Ok(RV { val: v, ty: ret })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::compile;
    use atomig_mir::{InstKind, Ordering};

    #[test]
    fn compiles_message_passing() {
        let m = compile(
            r#"
            int flag; int msg;
            void writer(long unused) { msg = 42; flag = 1; }
            int reader() {
              while (flag == 0) {}
              return msg;
            }
            "#,
            "mp",
        )
        .unwrap();
        assert_eq!(m.funcs.len(), 2);
        assert_eq!(m.globals.len(), 2);
        // The reader has a loop: 2 functions, one with >= 3 blocks.
        assert!(m.funcs[1].blocks.len() >= 3);
    }

    #[test]
    fn volatile_accesses_carry_the_flag() {
        let m = compile(
            r#"
            volatile int flag;
            int read_it() { return flag; }
            void set_it() { flag = 1; }
            "#,
            "v",
        )
        .unwrap();
        let loads: Vec<bool> = m
            .funcs
            .iter()
            .flat_map(|f| f.insts())
            .filter_map(|(_, i)| match &i.kind {
                InstKind::Load { volatile, .. } | InstKind::Store { volatile, .. } => {
                    Some(*volatile)
                }
                _ => None,
            })
            .collect();
        assert!(loads.contains(&true));
    }

    #[test]
    fn atomic_qualifier_makes_accesses_sc() {
        let m = compile(
            r#"
            atomic int seq;
            int get() { return seq; }
            void bump() { seq = seq + 1; }
            "#,
            "a",
        )
        .unwrap();
        let sc_accesses = m
            .funcs
            .iter()
            .flat_map(|f| f.insts())
            .filter(|(_, i)| i.kind.ordering() == Some(Ordering::SeqCst))
            .count();
        assert!(sc_accesses >= 3); // load in get, load+store in bump
    }

    #[test]
    fn atomic_builtins_lower_to_atomic_instructions() {
        let m = compile(
            r#"
            int lock_word;
            long counter;
            void ops() {
              cmpxchg(&lock_word, 0, 1);
              xchg(&lock_word, 0);
              faa(&counter, 1);
              atomic_store_explicit(&lock_word, 0, release);
              int v = atomic_load_explicit(&lock_word, acquire);
              fence();
            }
            "#,
            "b",
        )
        .unwrap();
        let f = &m.funcs[0];
        let mut kinds = vec![];
        for (_, i) in f.insts() {
            match &i.kind {
                InstKind::Cmpxchg { ord, .. } => kinds.push(format!("cmpxchg:{ord}")),
                InstKind::Rmw { op, ord, .. } => kinds.push(format!("rmw:{}:{ord}", op.mnemonic())),
                InstKind::Store { ord, .. } if ord.is_atomic() => {
                    kinds.push(format!("store:{ord}"))
                }
                InstKind::Load { ord, .. } if ord.is_atomic() => kinds.push(format!("load:{ord}")),
                InstKind::Fence { ord } => kinds.push(format!("fence:{ord}")),
                _ => {}
            }
        }
        assert!(kinds.contains(&"cmpxchg:seq_cst".to_string()), "{kinds:?}");
        assert!(kinds.contains(&"rmw:xchg:seq_cst".to_string()));
        assert!(kinds.contains(&"rmw:add:seq_cst".to_string()));
        assert!(kinds.contains(&"store:rel".to_string()));
        assert!(kinds.contains(&"load:acq".to_string()));
        assert!(kinds.contains(&"fence:seq_cst".to_string()));
    }

    #[test]
    fn inline_asm_normalized_to_builtins() {
        let m = compile(
            r#"
            void sync_point() {
              __asm__ volatile("mfence" ::: "memory");
              asm("pause");
              asm("" ::: "memory");
            }
            "#,
            "asm",
        )
        .unwrap();
        let f = &m.funcs[0];
        let fences = f
            .insts()
            .filter(|(_, i)| matches!(i.kind, InstKind::Fence { .. }))
            .count();
        assert_eq!(fences, 1);
        let pauses = f
            .insts()
            .filter(|(_, i)| {
                matches!(
                    i.kind,
                    InstKind::Call {
                        callee: atomig_mir::Callee::Builtin(atomig_mir::Builtin::Pause),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(pauses, 1);
    }

    #[test]
    fn unsupported_asm_is_an_error() {
        let e = compile("void f() { asm(\"movl %eax, %ebx\"); }", "bad").unwrap_err();
        assert!(e.contains("unsupported inline assembly"));
    }

    #[test]
    fn structs_members_and_heap() {
        let m = compile(
            r#"
            struct Node { long key; long val; struct Node *next; };
            struct Node *make(long k) {
              struct Node *n = (struct Node*)malloc(sizeof(struct Node));
              n->key = k;
              n->next = (struct Node*)0;
              return n;
            }
            long key_of(struct Node *n) { return n->key; }
            "#,
            "s",
        )
        .unwrap();
        assert_eq!(m.structs.len(), 1);
        assert_eq!(m.structs[0].fields.len(), 3);
        // The gep into Node appears in both functions.
        let geps = m
            .funcs
            .iter()
            .flat_map(|f| f.insts())
            .filter(|(_, i)| matches!(i.kind, InstKind::Gep { .. }))
            .count();
        assert!(geps >= 3);
    }

    #[test]
    fn control_flow_and_arrays_execute() {
        // Compile and actually run via the verifier only (execution is
        // covered by atomig-wmm's integration tests).
        let m = compile(
            r#"
            int data[8];
            int sum_all() {
              int s = 0;
              for (int i = 0; i < 8; i++) s += data[i];
              return s;
            }
            int clamp(int x) { return x > 100 ? 100 : (x < 0 ? 0 : x); }
            int both(int a, int b) { return a && b || a > b; }
            "#,
            "cf",
        )
        .unwrap();
        assert_eq!(m.funcs.len(), 3);
    }

    #[test]
    fn spawn_references_functions() {
        let m = compile(
            r#"
            int done;
            void worker(long arg) { done = 1; }
            void main_fn() {
              long t = spawn(worker, 7);
              join(t);
              assert(done);
            }
            "#,
            "sp",
        )
        .unwrap();
        let main = &m.funcs[1];
        let has_spawn = main.insts().any(|(_, i)| {
            matches!(
                &i.kind,
                InstKind::Call {
                    callee: atomig_mir::Callee::Builtin(atomig_mir::Builtin::Spawn),
                    args,
                    ..
                } if matches!(args[0], atomig_mir::Value::Func(_))
            )
        });
        assert!(has_spawn);
    }

    #[test]
    fn pointer_arithmetic_scales() {
        let m = compile(
            r#"
            long buf[16];
            long sum(long *p, int n) {
              long s = 0;
              for (int i = 0; i < n; i++) { s += *p; p++; }
              return s;
            }
            "#,
            "pa",
        )
        .unwrap();
        // p++ lowers to a gep.
        let f = &m.funcs[0];
        assert!(f
            .insts()
            .any(|(_, i)| matches!(i.kind, InstKind::Gep { .. })));
    }

    #[test]
    fn unknown_variable_is_an_error() {
        assert!(compile("int f() { return nope; }", "e").is_err());
    }

    #[test]
    fn unknown_function_is_an_error() {
        assert!(compile("void f() { missing(1); }", "e").is_err());
    }

    #[test]
    fn break_outside_loop_is_an_error() {
        assert!(compile("void f() { break; }", "e").is_err());
    }
}
