//! # atomig-frontc
//!
//! A frontend for **MiniC**, the C subset in which the reproduction's
//! benchmarks (Concurrency Kit structures, the MariaDB lf-hash, CLHT,
//! Phoenix kernels, and the synthetic large applications) are written.
//!
//! The frontend mirrors the paper's toolchain position (§3.1–§3.2):
//!
//! * programs are lowered to [`atomig_mir`] the way `clang -O0` lowers C —
//!   every local variable and parameter lives in an [`alloca`] stack slot,
//!   so dependence chains flow through memory exactly as AtoMig's
//!   influence analysis expects;
//! * the `volatile` qualifier is preserved as a per-access flag;
//! * `_Atomic`-qualified variables and the `__atomic_*`-style builtins
//!   (`cmpxchg`, `xchg`, `faa`, `atomic_load/store[_explicit]`) lower to
//!   atomic MIR instructions;
//! * x86 inline assembly (`asm("mfence")`, `asm("lock; xchgl ...")`,
//!   `asm("pause")`, compiler barriers) is normalized to portable builtins
//!   by the [`asm`] pass — the paper's "compiler frontend pass that
//!   analyzes all uses of x86 inline assembly implementing synchronization
//!   patterns and replaces them with their compiler builtin counterparts".
//!
//! [`alloca`]: atomig_mir::InstKind::Alloca
//!
//! Language note: MiniC arithmetic is 64-bit throughout; narrow integer
//! types (`char`/`short`/`int`) size storage but do **not** truncate on
//! store — use an explicit cast (`(int)x`) where C's wrap-at-width
//! semantics matter. The benchmarks avoid depending on narrow overflow.
//!
//! # Examples
//!
//! ```
//! let module = atomig_frontc::compile(r#"
//!     int flag; int msg;
//!     void writer(long unused) { msg = 42; flag = 1; }
//!     int reader() { while (flag == 0) {} return msg; }
//! "#, "mp").unwrap();
//! assert_eq!(module.funcs.len(), 2);
//! ```

pub mod asm;
pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use ast::{BinaryOp, Expr, Item, Program, Stmt, StmtKind, UnaryOp};
pub use lexer::{lex, LexError, Token, TokenKind};
pub use lower::{lower, LowerError};
pub use parser::{parse, ParseError};

/// Compiles MiniC source into a verified MIR module.
///
/// # Errors
///
/// Returns a human-readable message for lexical, syntactic, semantic, or
/// verification failures.
pub fn compile(source: &str, name: &str) -> Result<atomig_mir::Module, String> {
    let tokens = lex(source).map_err(|e| e.to_string())?;
    let program = parse(&tokens).map_err(|e| e.to_string())?;
    let module = lower(&program, name).map_err(|e| e.to_string())?;
    atomig_mir::verify_module(&module).map_err(|e| e.to_string())?;
    Ok(module)
}
