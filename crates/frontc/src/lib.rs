//! # atomig-frontc
//!
//! A frontend for **MiniC**, the C subset in which the reproduction's
//! benchmarks (Concurrency Kit structures, the MariaDB lf-hash, CLHT,
//! Phoenix kernels, and the synthetic large applications) are written.
//!
//! The frontend mirrors the paper's toolchain position (§3.1–§3.2):
//!
//! * programs are lowered to [`atomig_mir`] the way `clang -O0` lowers C —
//!   every local variable and parameter lives in an [`alloca`] stack slot,
//!   so dependence chains flow through memory exactly as AtoMig's
//!   influence analysis expects;
//! * the `volatile` qualifier is preserved as a per-access flag;
//! * `_Atomic`-qualified variables and the `__atomic_*`-style builtins
//!   (`cmpxchg`, `xchg`, `faa`, `atomic_load/store[_explicit]`) lower to
//!   atomic MIR instructions;
//! * x86 inline assembly (`asm("mfence")`, `asm("lock; xchgl ...")`,
//!   `asm("pause")`, compiler barriers) is normalized to portable builtins
//!   by the [`asm`] pass — the paper's "compiler frontend pass that
//!   analyzes all uses of x86 inline assembly implementing synchronization
//!   patterns and replaces them with their compiler builtin counterparts".
//!
//! [`alloca`]: atomig_mir::InstKind::Alloca
//!
//! Language note: MiniC arithmetic is 64-bit throughout; narrow integer
//! types (`char`/`short`/`int`) size storage but do **not** truncate on
//! store — use an explicit cast (`(int)x`) where C's wrap-at-width
//! semantics matter. The benchmarks avoid depending on narrow overflow.
//!
//! # Examples
//!
//! ```
//! let module = atomig_frontc::compile(r#"
//!     int flag; int msg;
//!     void writer(long unused) { msg = 42; flag = 1; }
//!     int reader() { while (flag == 0) {} return msg; }
//! "#, "mp").unwrap();
//! assert_eq!(module.funcs.len(), 2);
//! ```

pub mod asm;
pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use ast::{BinaryOp, Expr, Item, Program, Stmt, StmtKind, UnaryOp};
pub use lexer::{lex, LexError, Token, TokenKind};
pub use lower::{lower, LowerError};
pub use parser::{parse, ParseError};

/// Per-stage wall-clock timings of one [`compile_timed`] run, feeding the
/// frontend rows of the observability pipeline metrics.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrontcMetrics {
    /// Lexing time.
    pub lex: std::time::Duration,
    /// Parsing time.
    pub parse: std::time::Duration,
    /// AST → MIR lowering time.
    pub lower: std::time::Duration,
    /// MIR verification time.
    pub verify: std::time::Duration,
}

impl FrontcMetrics {
    /// Sum of all stages.
    pub fn total(&self) -> std::time::Duration {
        self.lex + self.parse + self.lower + self.verify
    }
}

/// Compiles MiniC source into a verified MIR module.
///
/// # Errors
///
/// Returns a human-readable message for lexical, syntactic, semantic, or
/// verification failures.
pub fn compile(source: &str, name: &str) -> Result<atomig_mir::Module, String> {
    compile_timed(source, name).map(|(m, _)| m)
}

/// [`compile`], also reporting per-stage timings.
///
/// # Errors
///
/// Same as [`compile`].
pub fn compile_timed(
    source: &str,
    name: &str,
) -> Result<(atomig_mir::Module, FrontcMetrics), String> {
    let mut metrics = FrontcMetrics::default();
    let t0 = std::time::Instant::now();
    let tokens = lex(source).map_err(|e| e.to_string())?;
    metrics.lex = t0.elapsed();
    let t1 = std::time::Instant::now();
    let program = parse(&tokens).map_err(|e| e.to_string())?;
    metrics.parse = t1.elapsed();
    let t2 = std::time::Instant::now();
    let module = lower(&program, name).map_err(|e| e.to_string())?;
    metrics.lower = t2.elapsed();
    let t3 = std::time::Instant::now();
    atomig_mir::verify_module(&module).map_err(|e| e.to_string())?;
    metrics.verify = t3.elapsed();
    Ok((module, metrics))
}
