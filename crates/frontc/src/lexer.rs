//! The MiniC lexer.

use std::error::Error;
use std::fmt;

/// A lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Description.
    pub msg: String,
    /// 1-based line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.msg)
    }
}

impl Error for LexError {}

/// Token payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (inline asm text).
    Str(String),
    /// A punctuation / operator token, e.g. `"+="`, `"->"`.
    Punct(&'static str),
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

const PUNCTS: &[&str] = &[
    // Longest first.
    "<<=", ">>=", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "&=", "|=", "^=", "(", ")", "{", "}", "[", "]", ";", ",", ".", "+", "-", "*",
    "/", "%", "<", ">", "=", "!", "&", "|", "^", "~", "?", ":",
];

/// Tokenizes MiniC source. `//` and `/* */` comments are skipped.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                if bytes[i] == b'\n' {
                    line += 1;
                }
                i += 1;
            }
            i = (i + 2).min(bytes.len());
            continue;
        }
        if c == '"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && bytes[j] != b'"' {
                if bytes[j] == b'\n' {
                    line += 1;
                }
                j += 1;
            }
            if j >= bytes.len() {
                return Err(LexError {
                    msg: "unterminated string".into(),
                    line,
                });
            }
            toks.push(Token {
                kind: TokenKind::Str(src[start..j].to_string()),
                line,
            });
            i = j + 1;
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i;
            // Hex literals.
            if c == '0' && j + 1 < bytes.len() && (bytes[j + 1] == b'x' || bytes[j + 1] == b'X') {
                j += 2;
                while j < bytes.len() && (bytes[j] as char).is_ascii_hexdigit() {
                    j += 1;
                }
                let v = i64::from_str_radix(&src[start + 2..j], 16).map_err(|_| LexError {
                    msg: format!("bad hex literal `{}`", &src[start..j]),
                    line,
                })?;
                toks.push(Token {
                    kind: TokenKind::Int(v),
                    line,
                });
                i = j;
                continue;
            }
            while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                j += 1;
            }
            // Skip C suffixes (L, U, UL...).
            let lit_end = j;
            while j < bytes.len() && matches!(bytes[j], b'l' | b'L' | b'u' | b'U') {
                j += 1;
            }
            let v: i64 = src[start..lit_end].parse().map_err(|_| LexError {
                msg: format!("bad integer `{}`", &src[start..lit_end]),
                line,
            })?;
            toks.push(Token {
                kind: TokenKind::Int(v),
                line,
            });
            i = j;
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            let mut j = i;
            while j < bytes.len() && ((bytes[j] as char).is_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            toks.push(Token {
                kind: TokenKind::Ident(src[start..j].to_string()),
                line,
            });
            i = j;
            continue;
        }
        let mut matched = false;
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                toks.push(Token {
                    kind: TokenKind::Punct(p),
                    line,
                });
                i += p.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(LexError {
                msg: format!("unexpected character `{c}`"),
                line,
            });
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![
                TokenKind::Ident("int".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Punct("="),
                TokenKind::Int(42),
                TokenKind::Punct(";"),
            ]
        );
    }

    #[test]
    fn multi_char_punctuation_is_greedy() {
        assert_eq!(
            kinds("a->b ++ <= <<="),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct("->"),
                TokenKind::Ident("b".into()),
                TokenKind::Punct("++"),
                TokenKind::Punct("<="),
                TokenKind::Punct("<<="),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // line\n/* block\nstill */ b"),
            vec![TokenKind::Ident("a".into()), TokenKind::Ident("b".into())]
        );
    }

    #[test]
    fn strings_and_hex() {
        assert_eq!(
            kinds(r#"asm("mfence") 0x10"#),
            vec![
                TokenKind::Ident("asm".into()),
                TokenKind::Punct("("),
                TokenKind::Str("mfence".into()),
                TokenKind::Punct(")"),
                TokenKind::Int(16),
            ]
        );
    }

    #[test]
    fn int_suffixes_ignored() {
        assert_eq!(
            kinds("10UL 3L"),
            vec![TokenKind::Int(10), TokenKind::Int(3)]
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"oops").is_err());
    }
}
