//! The x86 inline-assembly normalization pass (§3.2).
//!
//! "Developers often implement synchronization barriers with
//! architecture-specific assembly instructions … we develop a compiler
//! frontend pass that analyzes all uses of x86 inline assembly
//! implementing synchronization patterns in the source code and replaces
//! them with their compiler builtin counterparts."
//!
//! The recognized idioms cover what the paper's benchmarks actually
//! contain: full fences (`mfence` and the classic `lock; addl $0,(%esp)`
//! form), one-sided x86 fences (`sfence`/`lfence`, no-ops beyond ordering
//! on TSO but mapped to full fences for safety), `pause`/`rep; nop` spin
//! hints, and bare `"" ::: "memory"` compiler barriers.

/// The portable meaning of an x86 inline-assembly string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmIdiom {
    /// A full memory fence (`mfence`, `lock; addl $0,(%%esp)`, ...).
    FullFence,
    /// A spin-wait hint (`pause`, `rep; nop`).
    Pause,
    /// A compiler-only barrier (empty template with a `memory` clobber):
    /// no hardware effect, nothing to emit.
    CompilerBarrier,
    /// Anything else — the frontend refuses it rather than miscompile.
    Unsupported(String),
}

/// Classifies an inline-assembly template string.
pub fn classify(text: &str) -> AsmIdiom {
    let t = text
        .to_ascii_lowercase()
        .replace(['\t', '\n'], " ")
        .trim()
        .to_string();
    let squeezed: String = t.split_whitespace().collect::<Vec<_>>().join(" ");
    match squeezed.as_str() {
        "" => AsmIdiom::CompilerBarrier,
        "mfence" | "sfence" | "lfence" => AsmIdiom::FullFence,
        "pause" | "rep; nop" | "rep ; nop" | "rep nop" => AsmIdiom::Pause,
        s if s.starts_with("lock; addl $0")
            || s.starts_with("lock ; addl $0")
            || s.starts_with("lock addl $0") =>
        {
            AsmIdiom::FullFence
        }
        s => AsmIdiom::Unsupported(s.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recognizes_fences() {
        assert_eq!(classify("mfence"), AsmIdiom::FullFence);
        assert_eq!(classify("MFENCE"), AsmIdiom::FullFence);
        assert_eq!(classify("lock; addl $0,0(%%esp)"), AsmIdiom::FullFence);
        assert_eq!(classify("lock; addl $0,(%%rsp)"), AsmIdiom::FullFence);
        assert_eq!(classify("sfence"), AsmIdiom::FullFence);
        assert_eq!(classify("lfence"), AsmIdiom::FullFence);
    }

    #[test]
    fn recognizes_pause() {
        assert_eq!(classify("pause"), AsmIdiom::Pause);
        assert_eq!(classify("rep; nop"), AsmIdiom::Pause);
        assert_eq!(classify("rep  ;  nop"), AsmIdiom::Pause);
    }

    #[test]
    fn empty_is_compiler_barrier() {
        assert_eq!(classify(""), AsmIdiom::CompilerBarrier);
        assert_eq!(classify("   "), AsmIdiom::CompilerBarrier);
    }

    #[test]
    fn unknown_is_refused() {
        assert!(matches!(
            classify("movl %eax, %ebx"),
            AsmIdiom::Unsupported(_)
        ));
    }
}
