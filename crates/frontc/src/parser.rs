//! Recursive-descent parser for MiniC.

use crate::ast::*;
use crate::lexer::{Token, TokenKind};
use std::error::Error;
use std::fmt;

/// A syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description.
    pub msg: String,
    /// 1-based line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl Error for ParseError {}

/// Parses a token stream into a [`Program`].
pub fn parse(tokens: &[Token]) -> Result<Program, ParseError> {
    let mut p = Parser { tokens, pos: 0 };
    let mut items = Vec::new();
    while !p.at_end() {
        items.push(p.item()?);
    }
    Ok(Program { items })
}

struct Parser<'t> {
    tokens: &'t [Token],
    pos: usize,
}

const TYPE_KEYWORDS: &[&str] = &[
    "void", "char", "short", "int", "long", "struct", "volatile", "atomic", "_Atomic", "unsigned",
    "signed", "const", "static",
];

impl<'t> Parser<'t> {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: msg.into(),
            line: self.line(),
        }
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek_at(&self, off: usize) -> Option<&TokenKind> {
        self.tokens.get(self.pos + off).map(|t| &t.kind)
    }

    fn next(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        self.pos += 1;
        t
    }

    fn is_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Punct(q)) if *q == p)
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.is_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`, got {:?}", self.peek())))
        }
    }

    fn is_ident(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Ident(s)) if s == kw)
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if self.is_ident(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(TokenKind::Ident(s)) => Ok(s),
            got => Err(self.err(format!("expected identifier, got {got:?}"))),
        }
    }

    fn starts_type(&self) -> bool {
        matches!(self.peek(), Some(TokenKind::Ident(s)) if TYPE_KEYWORDS.contains(&s.as_str()))
    }

    /// Parses qualifiers + base type + pointer stars.
    fn type_and_quals(&mut self) -> Result<(CType, Quals), ParseError> {
        let mut quals = Quals::default();
        let mut base: Option<CType> = None;
        while let Some(TokenKind::Ident(s)) = self.peek() {
            match s.as_str() {
                "volatile" => {
                    quals.volatile = true;
                    self.pos += 1;
                }
                "atomic" | "_Atomic" => {
                    quals.atomic = true;
                    self.pos += 1;
                }
                "const" | "static" | "unsigned" | "signed" => {
                    self.pos += 1;
                }
                "void" if base.is_none() => {
                    base = Some(CType::Void);
                    self.pos += 1;
                }
                "char" if base.is_none() => {
                    base = Some(CType::Char);
                    self.pos += 1;
                }
                "short" if base.is_none() => {
                    base = Some(CType::Short);
                    self.pos += 1;
                }
                "int" => {
                    // `long int`, `short int` collapse.
                    if base.is_none() {
                        base = Some(CType::Int);
                    }
                    self.pos += 1;
                }
                "long" if base.is_none() => {
                    base = Some(CType::Long);
                    self.pos += 1;
                }
                "long" => {
                    self.pos += 1; // `long long`
                }
                "struct" if base.is_none() => {
                    self.pos += 1;
                    let name = self.ident()?;
                    base = Some(CType::Struct(name));
                }
                _ => break,
            }
        }
        let mut ty = base.ok_or_else(|| self.err("expected a type"))?;
        while self.eat_punct("*") {
            ty = ty.ptr();
            // `T * volatile p` — qualifier after the star.
            while self.eat_ident("volatile") {
                quals.volatile = true;
            }
        }
        Ok((ty, quals))
    }

    fn item(&mut self) -> Result<Item, ParseError> {
        // struct definition?
        if self.is_ident("struct") {
            if let Some(TokenKind::Punct("{")) = self.peek_at(2) {
                self.pos += 1;
                let name = self.ident()?;
                self.expect_punct("{")?;
                let mut fields = Vec::new();
                while !self.eat_punct("}") {
                    let (ty, _q) = self.type_and_quals()?;
                    let fname = self.ident()?;
                    let ty = self.array_dims(ty)?;
                    self.expect_punct(";")?;
                    fields.push((ty, fname));
                }
                self.eat_punct(";");
                return Ok(Item::Struct { name, fields });
            }
        }
        let (ty, quals) = self.type_and_quals()?;
        let name = self.ident()?;
        if self.is_punct("(") {
            // Function.
            self.expect_punct("(")?;
            let mut params = Vec::new();
            if !self.eat_punct(")") {
                if self.is_ident("void") && matches!(self.peek_at(1), Some(TokenKind::Punct(")"))) {
                    self.pos += 1;
                    self.expect_punct(")")?;
                } else {
                    loop {
                        let (pty, _q) = self.type_and_quals()?;
                        let pname = self.ident()?;
                        params.push((pty, pname));
                        if self.eat_punct(")") {
                            break;
                        }
                        self.expect_punct(",")?;
                    }
                }
            }
            self.expect_punct("{")?;
            let mut body = Vec::new();
            while !self.eat_punct("}") {
                body.push(self.stmt()?);
            }
            Ok(Item::Function {
                ret: ty,
                name,
                params,
                body,
            })
        } else {
            // Global.
            let ty = self.array_dims(ty)?;
            let init = if self.eat_punct("=") {
                if self.eat_punct("{") {
                    let mut vals = Vec::new();
                    while !self.eat_punct("}") {
                        vals.push(self.int_lit()?);
                        if !self.is_punct("}") {
                            self.expect_punct(",")?;
                        }
                    }
                    vals
                } else {
                    vec![self.int_lit()?]
                }
            } else {
                vec![]
            };
            self.expect_punct(";")?;
            Ok(Item::Global {
                ty,
                quals,
                name,
                init,
            })
        }
    }

    /// Parses trailing `[N][M]...` dimensions onto a declared type.
    /// `T x[N][M]` is an N-array of M-arrays of T.
    fn array_dims(&mut self, base: CType) -> Result<CType, ParseError> {
        let mut dims = Vec::new();
        while self.eat_punct("[") {
            let n = self.int_lit()?;
            self.expect_punct("]")?;
            dims.push(n as u32);
        }
        let mut ty = base;
        for &d in dims.iter().rev() {
            ty = CType::Array(Box::new(ty), d);
        }
        Ok(ty)
    }

    fn int_lit(&mut self) -> Result<i64, ParseError> {
        let neg = self.eat_punct("-");
        match self.next() {
            Some(TokenKind::Int(v)) => Ok(if neg { -v } else { v }),
            got => Err(self.err(format!("expected integer literal, got {got:?}"))),
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        if self.eat_punct("{") {
            let mut stmts = Vec::new();
            while !self.eat_punct("}") {
                stmts.push(self.stmt()?);
            }
            return Ok(Stmt::at(line, StmtKind::Block(stmts)));
        }
        if self.eat_ident("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then_s = Box::new(self.stmt()?);
            let else_s = if self.eat_ident("else") {
                Some(Box::new(self.stmt()?))
            } else {
                None
            };
            return Ok(Stmt::at(
                line,
                StmtKind::If {
                    cond,
                    then_s,
                    else_s,
                },
            ));
        }
        if self.eat_ident("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            if self.eat_punct(";") {
                return Ok(Stmt::at(
                    line,
                    StmtKind::While {
                        cond,
                        body: Box::new(Stmt::at(line, StmtKind::Block(vec![]))),
                    },
                ));
            }
            let body = Box::new(self.stmt()?);
            return Ok(Stmt::at(line, StmtKind::While { cond, body }));
        }
        if self.eat_ident("do") {
            let body = Box::new(self.stmt()?);
            if !self.eat_ident("while") {
                return Err(self.err("expected `while` after do-body"));
            }
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::at(line, StmtKind::DoWhile { body, cond }));
        }
        if self.eat_ident("for") {
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") {
                None
            } else if self.starts_type() {
                let s = self.decl_stmt()?;
                Some(Box::new(s))
            } else {
                let e = self.expr()?;
                self.expect_punct(";")?;
                Some(Box::new(Stmt::at(line, StmtKind::Expr(e))))
            };
            let cond = if self.is_punct(";") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            let step = if self.is_punct(")") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(")")?;
            let body = if self.eat_punct(";") {
                Box::new(Stmt::at(line, StmtKind::Block(vec![])))
            } else {
                Box::new(self.stmt()?)
            };
            return Ok(Stmt::at(
                line,
                StmtKind::For {
                    init,
                    cond,
                    step,
                    body,
                },
            ));
        }
        if self.eat_ident("return") {
            if self.eat_punct(";") {
                return Ok(Stmt::at(line, StmtKind::Return(None)));
            }
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::at(line, StmtKind::Return(Some(e))));
        }
        if self.eat_ident("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::at(line, StmtKind::Break));
        }
        if self.eat_ident("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::at(line, StmtKind::Continue));
        }
        if self.starts_type() {
            return self.decl_stmt();
        }
        let e = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::at(line, StmtKind::Expr(e)))
    }

    fn decl_stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        let (ty, quals) = self.type_and_quals()?;
        let name = self.ident()?;
        let ty = self.array_dims(ty)?;
        let init = if self.eat_punct("=") {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect_punct(";")?;
        Ok(Stmt::at(
            line,
            StmtKind::Decl {
                ty,
                quals,
                name,
                init,
            },
        ))
    }

    // ---- expressions, precedence climbing ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.ternary()?;
        let compound = |p: &str| -> Option<BinaryOp> {
            Some(match p {
                "+=" => BinaryOp::Add,
                "-=" => BinaryOp::Sub,
                "*=" => BinaryOp::Mul,
                "/=" => BinaryOp::Div,
                "%=" => BinaryOp::Rem,
                "&=" => BinaryOp::And,
                "|=" => BinaryOp::Or,
                "^=" => BinaryOp::Xor,
                "<<=" => BinaryOp::Shl,
                ">>=" => BinaryOp::Shr,
                _ => return None,
            })
        };
        if self.eat_punct("=") {
            let rhs = self.assignment()?;
            return Ok(Expr::Assign {
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                op: None,
            });
        }
        if let Some(TokenKind::Punct(p)) = self.peek() {
            if let Some(op) = compound(p) {
                self.pos += 1;
                let rhs = self.assignment()?;
                return Ok(Expr::Assign {
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    op: Some(op),
                });
            }
        }
        Ok(lhs)
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary(0)?;
        if self.eat_punct("?") {
            let then_e = self.expr()?;
            self.expect_punct(":")?;
            let else_e = self.ternary()?;
            return Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_e: Box::new(then_e),
                else_e: Box::new(else_e),
            });
        }
        Ok(cond)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some(tok) = self.peek() {
            let (op, prec) = match tok {
                TokenKind::Punct(p) => match *p {
                    "||" => (BinaryOp::LOr, 1),
                    "&&" => (BinaryOp::LAnd, 2),
                    "|" => (BinaryOp::Or, 3),
                    "^" => (BinaryOp::Xor, 4),
                    "&" => (BinaryOp::And, 5),
                    "==" => (BinaryOp::Eq, 6),
                    "!=" => (BinaryOp::Ne, 6),
                    "<" => (BinaryOp::Lt, 7),
                    "<=" => (BinaryOp::Le, 7),
                    ">" => (BinaryOp::Gt, 7),
                    ">=" => (BinaryOp::Ge, 7),
                    "<<" => (BinaryOp::Shl, 8),
                    ">>" => (BinaryOp::Shr, 8),
                    "+" => (BinaryOp::Add, 9),
                    "-" => (BinaryOp::Sub, 9),
                    "*" => (BinaryOp::Mul, 10),
                    "/" => (BinaryOp::Div, 10),
                    "%" => (BinaryOp::Rem, 10),
                    _ => break,
                },
                _ => break,
            };

            if prec < min_prec {
                break;
            }
            self.pos += 1;
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        // Cast: `(type) expr`.
        if self.is_punct("(") {
            if let Some(TokenKind::Ident(s)) = self.peek_at(1) {
                if TYPE_KEYWORDS.contains(&s.as_str()) {
                    self.pos += 1; // '('
                    let (ty, _q) = self.type_and_quals()?;
                    self.expect_punct(")")?;
                    let inner = self.unary()?;
                    return Ok(Expr::Cast {
                        ty,
                        expr: Box::new(inner),
                    });
                }
            }
        }
        if self.eat_punct("-") {
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                operand: Box::new(self.unary()?),
            });
        }
        if self.eat_punct("!") {
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(self.unary()?),
            });
        }
        if self.eat_punct("~") {
            return Ok(Expr::Unary {
                op: UnaryOp::BitNot,
                operand: Box::new(self.unary()?),
            });
        }
        if self.eat_punct("*") {
            return Ok(Expr::Unary {
                op: UnaryOp::Deref,
                operand: Box::new(self.unary()?),
            });
        }
        if self.eat_punct("&") {
            return Ok(Expr::Unary {
                op: UnaryOp::AddrOf,
                operand: Box::new(self.unary()?),
            });
        }
        if self.eat_punct("++") {
            return Ok(Expr::IncDec {
                target: Box::new(self.unary()?),
                delta: 1,
                prefix: true,
            });
        }
        if self.eat_punct("--") {
            return Ok(Expr::IncDec {
                target: Box::new(self.unary()?),
                delta: -1,
                prefix: true,
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            if self.eat_punct("[") {
                let idx = self.expr()?;
                self.expect_punct("]")?;
                e = Expr::Index {
                    base: Box::new(e),
                    index: Box::new(idx),
                };
            } else if self.eat_punct(".") {
                let field = self.ident()?;
                e = Expr::Member {
                    base: Box::new(e),
                    field,
                    arrow: false,
                };
            } else if self.eat_punct("->") {
                let field = self.ident()?;
                e = Expr::Member {
                    base: Box::new(e),
                    field,
                    arrow: true,
                };
            } else if self.eat_punct("++") {
                e = Expr::IncDec {
                    target: Box::new(e),
                    delta: 1,
                    prefix: false,
                };
            } else if self.eat_punct("--") {
                e = Expr::IncDec {
                    target: Box::new(e),
                    delta: -1,
                    prefix: false,
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(TokenKind::Int(v)) => Ok(Expr::Int(v)),
            Some(TokenKind::Punct("(")) => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Some(TokenKind::Ident(name)) => {
                if name == "sizeof" {
                    self.expect_punct("(")?;
                    let (ty, _q) = self.type_and_quals()?;
                    self.expect_punct(")")?;
                    return Ok(Expr::SizeOf(ty));
                }
                // Inline assembly.
                if name == "asm" || name == "__asm__" || name == "__asm" {
                    self.eat_ident("volatile");
                    self.expect_punct("(")?;
                    let text = match self.next() {
                        Some(TokenKind::Str(s)) => s,
                        got => return Err(self.err(format!("expected asm string, got {got:?}"))),
                    };
                    // Skip extended operand clauses until the closing paren.
                    let mut depth = 1;
                    while depth > 0 {
                        match self.next() {
                            Some(TokenKind::Punct("(")) => depth += 1,
                            Some(TokenKind::Punct(")")) => depth -= 1,
                            Some(_) => {}
                            None => return Err(self.err("unterminated asm()")),
                        }
                    }
                    return Ok(Expr::Asm(text));
                }
                if self.is_punct("(") {
                    self.expect_punct("(")?;
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    return Ok(Expr::Call { name, args });
                }
                Ok(Expr::Ident(name))
            }
            got => Err(self.err(format!("expected expression, got {got:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_globals_and_function() {
        let p = parse_src(
            r#"
            volatile int flag = 0;
            int arr[4] = {1, 2, 3, 4};
            int get(int i) { return arr[i]; }
            "#,
        );
        assert_eq!(p.items.len(), 3);
        match &p.items[0] {
            Item::Global {
                quals, name, init, ..
            } => {
                assert!(quals.volatile);
                assert_eq!(name, "flag");
                assert_eq!(init, &vec![0]);
            }
            other => panic!("expected global, got {other:?}"),
        }
        match &p.items[1] {
            Item::Global { ty, init, .. } => {
                assert_eq!(*ty, CType::Array(Box::new(CType::Int), 4));
                assert_eq!(init.len(), 4);
            }
            other => panic!("expected global, got {other:?}"),
        }
    }

    #[test]
    fn parses_struct_and_member_access() {
        let p = parse_src(
            r#"
            struct Node { long key; struct Node *next; };
            long get_key(struct Node *n) { return n->key; }
            "#,
        );
        match &p.items[0] {
            Item::Struct { name, fields } => {
                assert_eq!(name, "Node");
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[1].0, CType::Struct("Node".into()).ptr());
            }
            other => panic!("expected struct, got {other:?}"),
        }
        match &p.items[1] {
            Item::Function { body, .. } => {
                assert!(matches!(
                    &body[0].kind,
                    StmtKind::Return(Some(Expr::Member { arrow: true, .. }))
                ));
            }
            other => panic!("expected function, got {other:?}"),
        }
    }

    #[test]
    fn precedence_is_c_like() {
        let p = parse_src("int f() { return 1 + 2 * 3 == 7 && 4 < 5; }");
        // ((1 + (2*3)) == 7) && (4 < 5)
        match &p.items[0] {
            Item::Function { body, .. } => match &body[0].kind {
                StmtKind::Return(Some(Expr::Binary {
                    op: BinaryOp::LAnd,
                    lhs,
                    ..
                })) => {
                    assert!(matches!(
                        **lhs,
                        Expr::Binary {
                            op: BinaryOp::Eq,
                            ..
                        }
                    ));
                }
                other => panic!("unexpected {other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn parses_control_flow() {
        let p = parse_src(
            r#"
            int f(int n) {
              int s = 0;
              for (int i = 0; i < n; i++) {
                if (i % 2 == 0) continue;
                s += i;
              }
              while (s > 100) s -= 10;
              do { s++; } while (s < 0);
              return s;
            }
            "#,
        );
        match &p.items[0] {
            Item::Function { body, .. } => assert_eq!(body.len(), 5),
            _ => unreachable!(),
        }
    }

    #[test]
    fn parses_spin_idioms() {
        let p = parse_src(
            r#"
            int locked;
            void lock() { while (cmpxchg(&locked, 0, 1) != 0) {} }
            void unlock() { locked = 0; }
            "#,
        );
        assert_eq!(p.items.len(), 3);
    }

    #[test]
    fn parses_inline_asm() {
        let p = parse_src(
            r#"
            void barrier() {
              __asm__ volatile("mfence" ::: "memory");
              asm("pause");
            }
            "#,
        );
        match &p.items[0] {
            Item::Function { body, .. } => {
                assert_eq!(body.len(), 2);
                assert!(matches!(&body[0].kind, StmtKind::Expr(Expr::Asm(s)) if s == "mfence"));
                assert!(matches!(&body[1].kind, StmtKind::Expr(Expr::Asm(s)) if s == "pause"));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parses_casts_and_ternary() {
        let p = parse_src("long f(int x) { return (long)x > 0 ? x : -x; }");
        match &p.items[0] {
            Item::Function { body, .. } => {
                assert!(matches!(
                    &body[0].kind,
                    StmtKind::Return(Some(Expr::Ternary { .. }))
                ));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parses_pointer_params_and_deref() {
        let p = parse_src("void set(int *p, int v) { *p = v; }");
        match &p.items[0] {
            Item::Function { params, body, .. } => {
                assert_eq!(params[0].0, CType::Int.ptr());
                assert!(matches!(
                    &body[0].kind,
                    StmtKind::Expr(Expr::Assign { lhs, .. })
                        if matches!(**lhs, Expr::Unary { op: UnaryOp::Deref, .. })
                ));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn error_on_garbage() {
        let toks = lex("int f() { return @; }");
        assert!(toks.is_err() || parse(&toks.unwrap()).is_err());
    }

    #[test]
    fn volatile_pointer_decl() {
        let p = parse_src("volatile int *p; int f() { return *p; }");
        match &p.items[0] {
            Item::Global { ty, quals, .. } => {
                assert_eq!(*ty, CType::Int.ptr());
                assert!(quals.volatile);
            }
            _ => unreachable!(),
        }
    }
}
