//! # atomig-wmm
//!
//! The execution substrate of the AtoMig reproduction: operational memory
//! models, a bounded-exhaustive model checker (the stand-in for GenMC in
//! §4.1), and a deterministic cost-model interpreter (the stand-in for the
//! paper's 96-core Kunpeng 920 Arm server in §4.2–4.3).
//!
//! * [`models`] — [`models::ScMem`] (sequential consistency),
//!   [`models::TsoMem`] (x86-TSO store buffers), and [`models::ViewMem`]
//!   (a view-based C11-style weak model with relaxed/acquire/release/SC
//!   accesses and SC fences).
//! * [`exec`] — the threaded MIR executor generic over a memory model.
//! * [`checker`] — exhaustive exploration of schedules × buffer flushes ×
//!   read choices with visited-state pruning.
//! * [`interp`] + [`cost`] — deterministic runs with dynamic operation
//!   counters and the Armv8 barrier cost model.
//! * [`litmus`] — classic litmus tests with per-model expectations.
//!
//! # Examples
//!
//! Expose the Figure 1 message-passing bug under WMM and verify the fix:
//!
//! ```
//! use atomig_wmm::{Checker, ModelKind, litmus};
//!
//! let broken = litmus::mp_plain().module();
//! let verdict = Checker::new(ModelKind::Wmm).check(&broken, "main");
//! assert!(verdict.violation.is_some()); // stale msg read
//!
//! let fixed = litmus::mp_sc().module();
//! let verdict = Checker::new(ModelKind::Wmm).check(&fixed, "main");
//! assert!(verdict.passed());
//! ```

pub mod checker;
pub mod compiled;
pub mod cost;
pub mod exec;
pub mod interp;
pub mod litmus;
pub mod mem;
pub mod models;

pub use checker::{Checker, CheckerConfig, ModelKind, Verdict};
pub use cost::CostModel;
pub use exec::{ExecStats, Failure, Machine, StepOutcome, Thread, ThreadState};
pub use interp::{run, run_default, InterpConfig, RunResult};
pub use mem::Layout;
pub use models::{Chooser, FirstChoice, LastChoice, MemModel, ScMem, ScMode, TsoMem, ViewMem};
