//! The deterministic performance interpreter (Tables 4–6).
//!
//! Runs a module to completion under SC semantics with a round-robin
//! scheduler, collecting the dynamic operation counters of
//! [`ExecStats`]; [`CostModel`](crate::cost::CostModel) turns those into
//! abstract cost and relative slowdowns. Deterministic by construction:
//! the same module and config always produce the same counts.

use crate::exec::{ExecStats, Failure, Machine, StepOutcome};
use crate::models::{LastChoice, ScMem};
use atomig_mir::Module;

/// Interpreter configuration.
#[derive(Debug, Clone)]
pub struct InterpConfig {
    /// Visible steps a thread runs before the scheduler rotates.
    pub quantum: u32,
    /// Hard cap on total visible steps (runaway protection).
    pub max_steps: u64,
    /// Entry function name.
    pub entry: String,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            quantum: 64,
            max_steps: 200_000_000,
            entry: "main".into(),
        }
    }
}

/// The outcome of a deterministic run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Dynamic operation counters.
    pub stats: ExecStats,
    /// Failure, if the program did not complete cleanly.
    pub failure: Option<Failure>,
    /// Values printed via the `print` builtin.
    pub output: Vec<i64>,
    /// Final values of all globals, by name.
    pub exit_value: i64,
    /// Total visible steps executed.
    pub steps: u64,
}

impl RunResult {
    /// `true` when the program ran to completion without failure.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }
}

/// Runs `module` deterministically and returns its counters.
pub fn run(module: &Module, config: &InterpConfig) -> RunResult {
    let fid = module
        .func_by_name(&config.entry)
        .unwrap_or_else(|| panic!("no function @{}", config.entry));
    let mut machine = Machine::new(module, fid, vec![], ScMem::default());
    // Long purely-local computations are legitimate under the
    // interpreter; `max_steps` (which also bills invisible work coarsely)
    // is the runaway guard instead of the per-visible-step budget.
    machine.invisible_budget = u64::MAX;
    let mut ch = LastChoice;
    let mut cursor = 0usize;

    loop {
        if machine.failure.is_some() || machine.pruned || machine.all_done() {
            break;
        }
        if machine.steps >= config.max_steps {
            machine.failure = Some(Failure::Trap("interpreter step limit".into()));
            break;
        }
        let runnable = machine.runnable();
        if runnable.is_empty() {
            machine.failure = Some(Failure::Deadlock);
            break;
        }
        // Round-robin: pick the next runnable at-or-after the cursor.
        let tid = *runnable
            .iter()
            .find(|&&t| t >= cursor)
            .unwrap_or(&runnable[0]);
        let mut advanced = false;
        machine.yield_requested = false;
        for _ in 0..config.quantum {
            match machine.step_visible(tid, &mut ch) {
                StepOutcome::Progress => {
                    advanced = true;
                }
                _ => break,
            }
            if machine.failure.is_some() || machine.pruned || machine.yield_requested {
                // `pause()` spin hints deschedule the waiter, as an OS /
                // SMT sibling would; this keeps spin-wait iterations from
                // dominating deterministic cost measurements.
                break;
            }
        }
        let _ = advanced;
        cursor = tid + 1;
        if cursor >= machine.threads.len() {
            cursor = 0;
        }
    }

    let exit_value = machine.thread_result(0).unwrap_or(0);
    RunResult {
        stats: machine.stats,
        failure: machine.failure.clone(),
        output: machine.output.clone(),
        exit_value,
        steps: machine.steps,
    }
}

/// Convenience: run with defaults.
pub fn run_default(module: &Module) -> RunResult {
    run(module, &InterpConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use atomig_mir::parse_module;

    #[test]
    fn deterministic_counters() {
        let m = parse_module(
            r#"
            global @c: i64 = 0
            fn @worker(%n: i64) : void {
            entry:
              %i = alloca i64
              store i64 0, %i
              br header
            header:
              %iv = load i64, %i
              %cnd = cmp lt %iv, %n
              condbr %cnd, body, done
            body:
              %o = rmw add i64 @c, 1 seq_cst
              %inc = add %iv, 1
              store i64 %inc, %i
              br header
            done:
              ret
            }
            fn @main() : void {
            bb0:
              %t1 = call i64 @spawn(@worker, 100)
              %t2 = call i64 @spawn(@worker, 100)
              call void @join(%t1)
              call void @join(%t2)
              %v = load i64, @c seq_cst
              %ok = cmp eq %v, 200
              %oki = cast %ok to i64
              call void @assert(%oki)
              ret
            }
            "#,
        )
        .unwrap();
        let r1 = run_default(&m);
        let r2 = run_default(&m);
        assert!(r1.ok(), "failure: {:?}", r1.failure);
        assert_eq!(r1.stats, r2.stats);
        assert_eq!(r1.stats.rmws, 200);
    }

    #[test]
    fn spinlock_critical_sections_complete_under_round_robin() {
        let m = parse_module(
            r#"
            global @lock: i32 = 0
            global @shared: i64 = 0
            fn @worker(%n: i64) : void {
            entry:
              %i = alloca i64
              store i64 0, %i
              br header
            header:
              %iv = load i64, %i
              %cnd = cmp lt %iv, 50
              condbr %cnd, acquire, done
            acquire:
              %o = cmpxchg i32 @lock, 0, 1 seq_cst
              %busy = cmp ne %o, 0
              condbr %busy, acquire, critical
            critical:
              %v = load i64, @shared
              %nv = add %v, 1
              store i64 %nv, @shared
              store i32 0, @lock seq_cst
              %inc = add %iv, 1
              store i64 %inc, %i
              br header
            done:
              ret
            }
            fn @main() : void {
            bb0:
              %t1 = call i64 @spawn(@worker, 0)
              %t2 = call i64 @spawn(@worker, 0)
              call void @join(%t1)
              call void @join(%t2)
              %v = load i64, @shared
              %ok = cmp eq %v, 100
              %oki = cast %ok to i64
              call void @assert(%oki)
              ret
            }
            "#,
        )
        .unwrap();
        let r = run_default(&m);
        assert!(r.ok(), "failure: {:?}", r.failure);
        assert!(r.stats.rmws >= 100);
    }

    #[test]
    fn cost_model_prices_variants() {
        // The same logical program, once plain and once all-SC.
        let plain = parse_module(
            r#"
            global @x: i64 = 0
            fn @main() : void {
            entry:
              %i = alloca i64
              store i64 0, %i
              br header
            header:
              %iv = load i64, %i
              %c = cmp lt %iv, 1000
              condbr %c, body, done
            body:
              %v = load i64, @x
              %n = add %v, 1
              store i64 %n, @x
              %inc = add %iv, 1
              store i64 %inc, %i
              br header
            done:
              ret
            }
            "#,
        )
        .unwrap();
        let sc = parse_module(
            &atomig_mir::printer::print_module(&plain)
                .replace("load i64, @x", "load i64, @x seq_cst")
                .replace("store i64 %t5, @x", "store i64 %t5, @x seq_cst"),
        )
        .unwrap();
        let rp = run_default(&plain);
        let rs = run_default(&sc);
        assert!(rp.ok() && rs.ok());
        let cm = CostModel::ARMV8;
        let slow = cm.slowdown(&rp.stats, &rs.stats);
        assert!(slow > 1.0, "slowdown {slow}");
        assert!(slow < 4.0, "slowdown {slow}");
    }

    #[test]
    fn output_collection() {
        let m = parse_module(
            r#"
            fn @main() : void {
            bb0:
              call void @print(7)
              call void @print(8)
              ret
            }
            "#,
        )
        .unwrap();
        let r = run_default(&m);
        assert_eq!(r.output, vec![7, 8]);
    }
}
