//! The threaded MIR executor, generic over a [`MemModel`].
//!
//! One [`Machine`] instance is one program state: threads (frames,
//! registers, stack pointers), the memory model state, and bookkeeping.
//! The model checker clones machines to branch over nondeterminism; the
//! interpreter drives a single machine deterministically. Execution runs
//! over a [`CompiledProgram`] so the hot path never allocates.

use crate::compiled::{CInst, CTerm, CompiledProgram};
use crate::mem::{stack_base, stack_owner, Layout, HEAP_BASE, STACK_SIZE};
use crate::models::{Chooser, MemModel};
use atomig_mir::{BlockId, Builtin, FuncId, InstId, Module, Ordering, Value};
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Why a machine stopped making progress.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Failure {
    /// An `assert` builtin saw 0.
    Assert {
        /// Function containing the assertion.
        func: String,
    },
    /// A runtime error (null deref, division by zero, budget blown...).
    Trap(String),
    /// No thread can run but not all have finished.
    Deadlock,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Failure::Assert { func } => write!(f, "assertion violated in @{func}"),
            Failure::Trap(msg) => write!(f, "trap: {msg}"),
            Failure::Deadlock => write!(f, "deadlock"),
        }
    }
}

/// Scheduling state of a thread.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ThreadState {
    /// Can take a step.
    Runnable,
    /// Waiting in `join(target)`.
    Join(usize),
    /// Waiting at the barrier.
    Barrier,
    /// Finished with a return value.
    Done(i64),
}

/// One call frame.
///
/// Registers are a dense array indexed by [`InstId`] — cloning a frame is
/// a memcpy, which keeps the model checker's state cloning cheap.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Frame {
    func: FuncId,
    block: BlockId,
    ip: u32,
    regs: Vec<i64>,
    allocas: BTreeMap<InstId, u64>,
    params: Vec<i64>,
    /// Caller register receiving our return value.
    ret_to: Option<InstId>,
    /// Thread stack pointer at frame entry; restored on return so
    /// long-running call loops do not leak stack.
    saved_sp: u64,
}

impl Frame {
    fn new(
        prog: &CompiledProgram,
        func: FuncId,
        params: Vec<i64>,
        ret_to: Option<InstId>,
    ) -> Frame {
        Frame {
            func,
            block: BlockId(0),
            ip: 0,
            regs: vec![0; prog.funcs[func.0 as usize].n_regs as usize],
            allocas: BTreeMap::new(),
            params,
            ret_to,
            saved_sp: 0,
        }
    }

    #[inline]
    fn set(&mut self, id: InstId, v: i64) {
        self.regs[id.0 as usize] = v;
    }
}

/// One thread.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Thread {
    /// Call stack, innermost last.
    pub frames: Vec<Frame>,
    /// Scheduling state.
    pub state: ThreadState,
    /// Next free stack slot.
    sp: u64,
    /// Stack limit.
    stack_end: u64,
}

/// Dynamic execution counters (Table 4's rows and the cost model's input).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct ExecStats {
    /// Plain (non-atomic) loads executed.
    pub plain_loads: u64,
    /// Plain (non-atomic) stores executed.
    pub plain_stores: u64,
    /// Atomic loads (any ordering) executed.
    pub atomic_loads: u64,
    /// Atomic stores (any ordering) executed.
    pub atomic_stores: u64,
    /// Acquire-or-weaker atomic loads (subset of `atomic_loads`).
    pub acq_loads: u64,
    /// Release-or-weaker atomic stores (subset of `atomic_stores`).
    pub rel_stores: u64,
    /// Atomic RMW operations (including cmpxchg).
    pub rmws: u64,
    /// Accesses to the thread's own stack (registers/spills after `-O2`;
    /// priced separately by the cost model).
    pub stack_ops: u64,
    /// Explicit full (SC) fences executed (`DMB ISH`).
    pub fences: u64,
    /// One-sided fences executed (`DMB ISHST`/`ISHLD`; acquire/release).
    pub light_fences: u64,
    /// Everything else (ALU, branches, calls...).
    pub other_ops: u64,
}

impl ExecStats {
    /// Total dynamic memory accesses.
    pub fn total_accesses(&self) -> u64 {
        self.plain_loads + self.plain_stores + self.atomic_loads + self.atomic_stores + self.rmws
    }
}

/// What a visible step did (used by the checker for classification).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Executed up to and including one visible action.
    Progress,
    /// The thread blocked (join/barrier) before a visible action.
    Blocked,
    /// The thread finished.
    Finished,
    /// The machine failed (see [`Machine::failure`]).
    Failed,
    /// `assume(0)` pruned this path.
    Pruned,
}

/// An executable program state.
#[derive(Clone)]
pub struct Machine<'m, M: MemModel> {
    module: &'m Module,
    layout: Arc<Layout>,
    prog: Arc<CompiledProgram>,
    /// The memory model state.
    pub mem: M,
    /// All threads ever created (tid = index).
    pub threads: Vec<Thread>,
    /// Thread-private stack memory, kept outside the memory model: a
    /// thread's own stack is not observable by others (the same
    /// assumption the visibility reduction makes), so modelling write
    /// histories for it would only bloat states.
    stack_mem: BTreeMap<u64, i64>,
    heap_next: u64,
    barrier_waiting: u64,
    /// Set on assertion violation / trap / deadlock.
    pub failure: Option<Failure>,
    /// Set when `assume(0)` made the path infeasible.
    pub pruned: bool,
    /// Set when the thread executed a `pause` spin hint; deterministic
    /// schedulers use it to rotate away from spin-waiters.
    pub yield_requested: bool,
    /// Values printed via the `print` builtin.
    pub output: Vec<i64>,
    /// Dynamic counters.
    pub stats: ExecStats,
    /// Total visible steps taken.
    pub steps: u64,
    /// Maximum invisible instructions per visible step before trapping.
    pub invisible_budget: u64,
}

impl<'m, M: MemModel> Machine<'m, M> {
    /// Creates a machine about to run `entry(args...)` on thread 0.
    pub fn new(module: &'m Module, entry: FuncId, args: Vec<i64>, mut mem: M) -> Self {
        let layout = Arc::new(Layout::new(module));
        let prog = Arc::new(CompiledProgram::compile(module, &layout));
        for (addr, val) in layout.initial_values(module) {
            mem.init(addr, val);
        }
        mem.ensure_threads(1);
        let mut entry_frame = Frame::new(&prog, entry, args, None);
        entry_frame.saved_sp = stack_base(0);
        let thread = Thread {
            frames: vec![entry_frame],
            state: ThreadState::Runnable,
            sp: stack_base(0),
            stack_end: stack_base(0) + STACK_SIZE,
        };
        Machine {
            module,
            layout,
            prog,
            mem,
            threads: vec![thread],
            stack_mem: BTreeMap::new(),
            heap_next: HEAP_BASE,
            barrier_waiting: 0,
            failure: None,
            pruned: false,
            yield_requested: false,
            output: Vec::new(),
            stats: ExecStats::default(),
            steps: 0,
            invisible_budget: 1_000_000,
        }
    }

    /// Creates a machine running the module's `main` function.
    ///
    /// # Panics
    ///
    /// Panics if there is no `main`.
    pub fn for_main(module: &'m Module, mem: M) -> Self {
        let main = module.func_by_name("main").expect("module has no @main");
        Machine::new(module, main, vec![], mem)
    }

    /// The module under execution.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// The memory layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Threads that can currently take a step (resolving join wake-ups).
    pub fn runnable(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (tid, t) in self.threads.iter().enumerate() {
            match &t.state {
                ThreadState::Runnable => out.push(tid),
                ThreadState::Join(target) => {
                    if matches!(
                        self.threads.get(*target).map(|t| &t.state),
                        Some(ThreadState::Done(_))
                    ) {
                        out.push(tid);
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Whether every thread has finished.
    pub fn all_done(&self) -> bool {
        self.threads
            .iter()
            .all(|t| matches!(t.state, ThreadState::Done(_)))
    }

    /// The final value of global `name` (post-mortem inspection).
    pub fn global_value(&self, name: &str) -> Option<i64> {
        let g = self.module.global_by_name(name)?;
        Some(self.mem.peek(self.layout.global_addr(g)))
    }

    /// The return value of thread `tid`, if finished.
    pub fn thread_result(&self, tid: usize) -> Option<i64> {
        match self.threads.get(tid)?.state {
            ThreadState::Done(v) => Some(v),
            _ => None,
        }
    }

    /// A 128-bit fingerprint of the whole state, for visited-state pruning.
    /// Uses two independently seeded multiply-xor hashers — much faster
    /// than SipHash on the register files, with 128 bits against
    /// collisions.
    pub fn fingerprint(&self) -> u128 {
        let mut h1 = FxHasher::new(0x9e37_79b9_7f4a_7c15);
        self.hash_state(&mut h1);
        let mut h2 = FxHasher::new(0xc2b2_ae3d_27d4_eb4f);
        self.hash_state(&mut h2);
        ((h1.finish() as u128) << 64) | h2.finish() as u128
    }

    fn hash_state<H: Hasher>(&self, h: &mut H) {
        self.threads.hash(h);
        self.stack_mem.hash(h);
        self.mem.hash(h);
        self.heap_next.hash(h);
        self.barrier_waiting.hash(h);
        self.pruned.hash(h);
        self.failure.hash(h);
    }

    #[inline]
    fn eval(&self, tid: usize, v: Value) -> i64 {
        let frame = self.threads[tid].frames.last().expect("live frame");
        match v {
            Value::Const(c) => c,
            Value::Null => 0,
            Value::Global(g) => self.layout.global_addr(g) as i64,
            Value::Param(i) => frame.params.get(i as usize).copied().unwrap_or(0),
            Value::Inst(id) => frame.regs.get(id.0 as usize).copied().unwrap_or(0),
            Value::Func(f) => f.0 as i64,
        }
    }

    fn trap(&mut self, msg: impl Into<String>) -> InstOutcome {
        self.failure = Some(Failure::Trap(msg.into()));
        InstOutcome::Failed
    }

    /// Is an access to `addr` by `tid` visible to other threads?
    /// Own-stack traffic is invisible (shared data must live in globals or
    /// on the heap for the checker's interleaving reduction to be sound;
    /// all bundled workloads respect this).
    #[inline]
    fn is_visible(&self, tid: usize, addr: u64) -> bool {
        stack_owner(addr) != Some(tid)
    }

    /// Performs one pending internal memory step (e.g. a TSO buffer
    /// flush) for `tid`.
    pub fn internal_step(&mut self, tid: usize) {
        self.mem.internal_step(tid);
        self.steps += 1;
    }

    /// Number of pending internal memory steps for `tid`.
    pub fn internal_steps(&self, tid: usize) -> usize {
        self.mem.internal_steps(tid)
    }

    /// Runs `tid` until it completes exactly one visible action, blocks,
    /// finishes, fails, or is pruned.
    pub fn step_visible(&mut self, tid: usize, ch: &mut dyn Chooser) -> StepOutcome {
        // Wake a join-blocked thread whose target finished.
        if let ThreadState::Join(target) = self.threads[tid].state {
            match self.threads.get(target).map(|t| t.state.clone()) {
                Some(ThreadState::Done(_)) => {
                    self.mem.on_join(tid, target);
                    self.threads[tid].state = ThreadState::Runnable;
                }
                _ => return StepOutcome::Blocked,
            }
        }
        if !matches!(self.threads[tid].state, ThreadState::Runnable) {
            return StepOutcome::Blocked;
        }
        let mut budget = self.invisible_budget;
        let mut local_work: u32 = 0;
        loop {
            if budget == 0 {
                self.trap("invisible-step budget exhausted (local infinite loop?)");
                return StepOutcome::Failed;
            }
            budget -= 1;
            // Purely local computation still counts as work: bill it
            // coarsely against `steps` so schedulers' step limits bound
            // local loops too.
            local_work += 1;
            if local_work == 1024 {
                local_work = 0;
                self.steps += 1;
            }
            match self.step_inst(tid, ch) {
                InstOutcome::Invisible => continue,
                InstOutcome::Visible => {
                    self.steps += 1;
                    return StepOutcome::Progress;
                }
                InstOutcome::Blocked => return StepOutcome::Blocked,
                InstOutcome::Finished => {
                    self.steps += 1;
                    return StepOutcome::Finished;
                }
                InstOutcome::Failed => return StepOutcome::Failed,
                InstOutcome::Pruned => {
                    self.pruned = true;
                    return StepOutcome::Pruned;
                }
            }
        }
    }

    fn step_inst(&mut self, tid: usize, ch: &mut dyn Chooser) -> InstOutcome {
        let prog = Arc::clone(&self.prog);
        let (func, block, ip) = {
            let frame = self.threads[tid].frames.last().expect("live frame");
            (frame.func, frame.block, frame.ip as usize)
        };
        let cblock = &prog.funcs[func.0 as usize].blocks[block.0 as usize];

        if ip >= cblock.insts.len() {
            return self.step_terminator(tid, cblock.term);
        }
        self.threads[tid].frames.last_mut().expect("frame").ip += 1;

        match &cblock.insts[ip] {
            CInst::Alloca { id, slots } => {
                let known = self.threads[tid]
                    .frames
                    .last()
                    .expect("frame")
                    .allocas
                    .get(id)
                    .copied();
                if let Some(addr) = known {
                    self.threads[tid]
                        .frames
                        .last_mut()
                        .expect("frame")
                        .set(*id, addr as i64);
                    return InstOutcome::Invisible;
                }
                let addr = self.threads[tid].sp;
                if addr + slots > self.threads[tid].stack_end {
                    return self.trap("stack overflow");
                }
                self.threads[tid].sp += slots;
                let frame = self.threads[tid].frames.last_mut().expect("frame");
                frame.allocas.insert(*id, addr);
                frame.set(*id, addr as i64);
                self.stats.other_ops += 1;
                InstOutcome::Invisible
            }
            CInst::Load { id, ptr, ord } => {
                let addr = self.eval(tid, *ptr) as u64;
                if addr == 0 {
                    return self.trap("null pointer load");
                }
                let own_stack = stack_owner(addr) == Some(tid);
                let val = if own_stack {
                    self.stack_mem.get(&addr).copied().unwrap_or(0)
                } else {
                    self.mem.load(tid, addr, *ord, ch)
                };
                self.threads[tid]
                    .frames
                    .last_mut()
                    .expect("frame")
                    .set(*id, val);
                if own_stack {
                    self.stats.stack_ops += 1;
                } else if ord.is_atomic() {
                    self.stats.atomic_loads += 1;
                    if *ord != Ordering::SeqCst {
                        self.stats.acq_loads += 1;
                    }
                } else {
                    self.stats.plain_loads += 1;
                }
                visibility(!own_stack)
            }
            CInst::Store { ptr, val, ord } => {
                let addr = self.eval(tid, *ptr) as u64;
                if addr == 0 {
                    return self.trap("null pointer store");
                }
                let v = self.eval(tid, *val);
                let own_stack = stack_owner(addr) == Some(tid);
                if own_stack {
                    self.stack_mem.insert(addr, v);
                } else {
                    self.mem.store(tid, addr, v, *ord);
                }
                if own_stack {
                    self.stats.stack_ops += 1;
                } else if ord.is_atomic() {
                    self.stats.atomic_stores += 1;
                    if *ord != Ordering::SeqCst {
                        self.stats.rel_stores += 1;
                    }
                } else {
                    self.stats.plain_stores += 1;
                }
                visibility(!own_stack)
            }
            CInst::Cmpxchg {
                id,
                ptr,
                expected,
                new,
                ord,
            } => {
                let addr = self.eval(tid, *ptr) as u64;
                if addr == 0 {
                    return self.trap("null pointer cmpxchg");
                }
                let e = self.eval(tid, *expected);
                let n = self.eval(tid, *new);
                let old = if stack_owner(addr) == Some(tid) {
                    let old = self.stack_mem.get(&addr).copied().unwrap_or(0);
                    if old == e {
                        self.stack_mem.insert(addr, n);
                    }
                    old
                } else {
                    self.mem.cmpxchg(tid, addr, e, n, *ord)
                };
                self.threads[tid]
                    .frames
                    .last_mut()
                    .expect("frame")
                    .set(*id, old);
                self.stats.rmws += 1;
                visibility(self.is_visible(tid, addr))
            }
            CInst::Rmw {
                id,
                op,
                ptr,
                val,
                ord,
            } => {
                let addr = self.eval(tid, *ptr) as u64;
                if addr == 0 {
                    return self.trap("null pointer rmw");
                }
                let v = self.eval(tid, *val);
                let old = if stack_owner(addr) == Some(tid) {
                    let old = self.stack_mem.get(&addr).copied().unwrap_or(0);
                    self.stack_mem.insert(addr, op.apply(old, v));
                    old
                } else {
                    self.mem.rmw(tid, addr, *op, v, *ord)
                };
                self.threads[tid]
                    .frames
                    .last_mut()
                    .expect("frame")
                    .set(*id, old);
                self.stats.rmws += 1;
                visibility(self.is_visible(tid, addr))
            }
            CInst::Fence { ord } => {
                self.mem.fence(tid, *ord);
                if *ord == Ordering::SeqCst {
                    self.stats.fences += 1;
                } else {
                    self.stats.light_fences += 1;
                }
                InstOutcome::Visible
            }
            CInst::Gep {
                id,
                base,
                const_off,
                dyn_terms,
            } => {
                let mut addr = self.eval(tid, *base).wrapping_add(*const_off);
                for t in dyn_terms.iter() {
                    addr = addr.wrapping_add(self.eval(tid, t.value).wrapping_mul(t.stride));
                }
                self.threads[tid]
                    .frames
                    .last_mut()
                    .expect("frame")
                    .set(*id, addr);
                // Address arithmetic folds into addressing modes on Arm;
                // price it with the register class.
                self.stats.stack_ops += 1;
                InstOutcome::Invisible
            }
            CInst::Bin { id, op, lhs, rhs } => {
                let l = self.eval(tid, *lhs);
                let r = self.eval(tid, *rhs);
                use atomig_mir::BinOp::*;
                let res = match op {
                    Add => l.wrapping_add(r),
                    Sub => l.wrapping_sub(r),
                    Mul => l.wrapping_mul(r),
                    Div => {
                        if r == 0 {
                            return self.trap("division by zero");
                        }
                        l.wrapping_div(r)
                    }
                    Rem => {
                        if r == 0 {
                            return self.trap("remainder by zero");
                        }
                        l.wrapping_rem(r)
                    }
                    And => l & r,
                    Or => l | r,
                    Xor => l ^ r,
                    Shl => l.wrapping_shl(r as u32),
                    Shr => l.wrapping_shr(r as u32),
                };
                self.threads[tid]
                    .frames
                    .last_mut()
                    .expect("frame")
                    .set(*id, res);
                self.stats.other_ops += 1;
                InstOutcome::Invisible
            }
            CInst::Cmp { id, pred, lhs, rhs } => {
                let l = self.eval(tid, *lhs);
                let r = self.eval(tid, *rhs);
                self.threads[tid]
                    .frames
                    .last_mut()
                    .expect("frame")
                    .set(*id, pred.eval(l, r) as i64);
                self.stats.other_ops += 1;
                InstOutcome::Invisible
            }
            CInst::Cast { id, value, mask } => {
                let v = self.eval(tid, *value);
                self.threads[tid]
                    .frames
                    .last_mut()
                    .expect("frame")
                    .set(*id, (v as u64 & mask) as i64);
                self.stats.other_ops += 1;
                InstOutcome::Invisible
            }
            CInst::CallFunc { id, func, args } => {
                let arg_vals: Vec<i64> = args.iter().map(|a| self.eval(tid, *a)).collect();
                self.stats.other_ops += 1;
                let mut frame = Frame::new(&prog, *func, arg_vals, *id);
                frame.saved_sp = self.threads[tid].sp;
                self.threads[tid].frames.push(frame);
                InstOutcome::Invisible
            }
            CInst::CallBuiltin { id, builtin, args } => {
                let arg_vals: Vec<i64> = args.iter().map(|a| self.eval(tid, *a)).collect();
                self.stats.other_ops += 1;
                self.step_builtin(tid, *id, *builtin, &arg_vals, ch)
            }
        }
    }

    fn step_builtin(
        &mut self,
        tid: usize,
        id: InstId,
        b: Builtin,
        args: &[i64],
        ch: &mut dyn Chooser,
    ) -> InstOutcome {
        match b {
            Builtin::Spawn => {
                let fid = FuncId(args[0] as u32);
                if fid.0 as usize >= self.module.funcs.len() {
                    return self.trap("spawn of unknown function");
                }
                let child = self.threads.len();
                self.mem.ensure_threads(child + 1);
                self.mem.on_spawn(tid, child);
                let mut frame = Frame::new(&self.prog.clone(), fid, vec![args[1]], None);
                frame.saved_sp = stack_base(child);
                self.threads.push(Thread {
                    frames: vec![frame],
                    state: ThreadState::Runnable,
                    sp: stack_base(child),
                    stack_end: stack_base(child) + STACK_SIZE,
                });
                self.threads[tid]
                    .frames
                    .last_mut()
                    .expect("frame")
                    .set(id, child as i64);
                // Spawning is a visible (synchronizing) event.
                InstOutcome::Visible
            }
            Builtin::Join => {
                let target = args[0] as usize;
                match self.threads.get(target).map(|t| t.state.clone()) {
                    Some(ThreadState::Done(_)) => {
                        self.mem.on_join(tid, target);
                        InstOutcome::Visible
                    }
                    Some(_) => {
                        // Re-execute the join when we are next scheduled.
                        self.threads[tid].frames.last_mut().expect("frame").ip -= 1;
                        self.threads[tid].state = ThreadState::Join(target);
                        InstOutcome::Blocked
                    }
                    None => self.trap("join of unknown thread"),
                }
            }
            Builtin::Assert => {
                if args[0] == 0 {
                    let fname = {
                        let frame = self.threads[tid].frames.last().expect("frame");
                        self.prog.funcs[frame.func.0 as usize].name.clone()
                    };
                    self.failure = Some(Failure::Assert { func: fname });
                    InstOutcome::Failed
                } else {
                    InstOutcome::Invisible
                }
            }
            Builtin::Assume => {
                if args[0] == 0 {
                    InstOutcome::Pruned
                } else {
                    InstOutcome::Invisible
                }
            }
            Builtin::BarrierWait => {
                let n = args[0] as u64;
                self.barrier_waiting += 1;
                if self.barrier_waiting >= n {
                    // Release everyone (including us). The barrier
                    // synchronizes all participants: emulate with an SC
                    // fence per released thread.
                    self.barrier_waiting = 0;
                    for t in 0..self.threads.len() {
                        if matches!(self.threads[t].state, ThreadState::Barrier) {
                            self.mem.fence(t, Ordering::SeqCst);
                            self.threads[t].state = ThreadState::Runnable;
                        }
                    }
                    self.mem.fence(tid, Ordering::SeqCst);
                    InstOutcome::Visible
                } else {
                    self.threads[tid].state = ThreadState::Barrier;
                    self.mem.fence(tid, Ordering::SeqCst);
                    InstOutcome::Blocked
                }
            }
            Builtin::Malloc => {
                let slots = (args[0].max(1)) as u64;
                let addr = self.heap_next;
                self.heap_next += slots;
                self.threads[tid]
                    .frames
                    .last_mut()
                    .expect("frame")
                    .set(id, addr as i64);
                InstOutcome::Invisible
            }
            Builtin::Free => InstOutcome::Invisible,
            Builtin::Pause => {
                self.stats.other_ops += 1;
                self.yield_requested = true;
                InstOutcome::Invisible
            }
            Builtin::CompilerBarrier => InstOutcome::Invisible,
            Builtin::Nondet => {
                let v = ch.choose(2) as i64;
                self.threads[tid]
                    .frames
                    .last_mut()
                    .expect("frame")
                    .set(id, v);
                InstOutcome::Invisible
            }
            Builtin::Print => {
                self.output.push(args[0]);
                InstOutcome::Invisible
            }
        }
    }

    fn step_terminator(&mut self, tid: usize, term: CTerm) -> InstOutcome {
        match term {
            CTerm::Br(b) => {
                let frame = self.threads[tid].frames.last_mut().expect("frame");
                frame.block = b;
                frame.ip = 0;
                InstOutcome::Invisible
            }
            CTerm::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                let c = self.eval(tid, cond);
                let frame = self.threads[tid].frames.last_mut().expect("frame");
                frame.block = if c != 0 { then_bb } else { else_bb };
                frame.ip = 0;
                self.stats.other_ops += 1;
                InstOutcome::Invisible
            }
            CTerm::Ret(v) => {
                let val = v.map(|v| self.eval(tid, v)).unwrap_or(0);
                let frame = self.threads[tid].frames.pop().expect("frame");
                self.threads[tid].sp = frame.saved_sp;
                if let Some(parent) = self.threads[tid].frames.last_mut() {
                    if let Some(dst) = frame.ret_to {
                        parent.set(dst, val);
                    }
                    InstOutcome::Invisible
                } else {
                    self.mem.on_exit(tid);
                    self.threads[tid].state = ThreadState::Done(val);
                    InstOutcome::Finished
                }
            }
            CTerm::Unreachable => self.trap("reached unreachable"),
        }
    }
}

/// A fast multiply-rotate hasher (FxHash-style) for state fingerprints.
struct FxHasher {
    state: u64,
}

impl FxHasher {
    fn new(seed: u64) -> FxHasher {
        FxHasher { state: seed }
    }

    #[inline]
    fn mix(&mut self, w: u64) {
        self.state = (self.state.rotate_left(5) ^ w).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        let mut x = self.state;
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51afd7ed558ccd);
        x ^= x >> 33;
        x
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().expect("8 bytes")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut w = [0u8; 8];
            w[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(w));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.mix(v as u64);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InstOutcome {
    Invisible,
    Visible,
    Blocked,
    Finished,
    Failed,
    Pruned,
}

#[inline]
fn visibility(visible: bool) -> InstOutcome {
    if visible {
        InstOutcome::Visible
    } else {
        InstOutcome::Invisible
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{FirstChoice, ScMem};
    use atomig_mir::parse_module;

    fn run_to_completion(src: &str) -> Machine<'_, ScMem> {
        // Leak the module so the machine can borrow it in tests.
        let m = Box::leak(Box::new(parse_module(src).unwrap()));
        let mut machine = Machine::for_main(m, ScMem::default());
        let mut ch = FirstChoice;
        let mut guard = 0;
        while !machine.all_done() && machine.failure.is_none() && !machine.pruned {
            let runnable = machine.runnable();
            if runnable.is_empty() {
                machine.failure = Some(Failure::Deadlock);
                break;
            }
            machine.step_visible(runnable[0], &mut ch);
            guard += 1;
            assert!(guard < 100_000, "test did not terminate");
        }
        machine
    }

    #[test]
    fn computes_factorial_recursively() {
        let m = run_to_completion(
            r#"
            global @out: i64 = 0
            fn @fact(%n: i64) : i64 {
            bb0:
              %c = cmp le %n, 1
              condbr %c, base, rec_case
            base:
              ret 1
            rec_case:
              %n1 = sub %n, 1
              %r = call i64 @fact(%n1)
              %p = mul %n, %r
              ret %p
            }
            fn @main() : void {
            bb0:
              %f = call i64 @fact(5)
              store i64 %f, @out
              ret
            }
            "#,
        );
        assert!(m.failure.is_none());
        assert_eq!(m.global_value("out"), Some(120));
    }

    #[test]
    fn spawn_join_passes_results_through_memory() {
        let m = run_to_completion(
            r#"
            global @x: i64 = 0
            fn @worker(%v: i64) : void {
            bb0:
              %d = mul %v, 2
              store i64 %d, @x
              ret
            }
            fn @main() : void {
            bb0:
              %t = call i64 @spawn(@worker, 21)
              call void @join(%t)
              %v = load i64, @x
              call void @assert(%v)
              ret
            }
            "#,
        );
        assert!(m.failure.is_none(), "failure: {:?}", m.failure);
        assert_eq!(m.global_value("x"), Some(42));
    }

    #[test]
    fn assertion_failure_reported() {
        let m = run_to_completion(
            r#"
            fn @main() : void {
            bb0:
              call void @assert(0)
              ret
            }
            "#,
        );
        assert!(matches!(m.failure, Some(Failure::Assert { .. })));
    }

    #[test]
    fn assume_prunes() {
        let m = run_to_completion(
            r#"
            fn @main() : void {
            bb0:
              call void @assume(0)
              call void @assert(0)
              ret
            }
            "#,
        );
        assert!(m.pruned);
        assert!(m.failure.is_none());
    }

    #[test]
    fn arrays_and_geps_work() {
        let m = run_to_completion(
            r#"
            global @arr: [5 x i64] = [10, 20, 30, 40, 50]
            global @sum: i64 = 0
            fn @main() : void {
            entry:
              %i = alloca i64
              %acc = alloca i64
              store i64 0, %i
              store i64 0, %acc
              br header
            header:
              %iv = load i64, %i
              %c = cmp lt %iv, 5
              condbr %c, body, done
            body:
              %e = gep [5 x i64], @arr, 0, %iv
              %v = load i64, %e
              %a = load i64, %acc
              %s = add %a, %v
              store i64 %s, %acc
              %inc = add %iv, 1
              store i64 %inc, %i
              br header
            done:
              %r = load i64, %acc
              store i64 %r, @sum
              ret
            }
            "#,
        );
        assert_eq!(m.global_value("sum"), Some(150));
    }

    #[test]
    fn malloc_returns_distinct_chunks() {
        let m = run_to_completion(
            r#"
            global @ok: i64 = 0
            fn @main() : void {
            bb0:
              %p = call i64 @malloc(4)
              %q = call i64 @malloc(4)
              %c = cmp ne %p, %q
              %ci = cast %c to i64
              store i64 %ci, @ok
              store i64 7, %p
              store i64 9, %q
              %v = load i64, %p
              call void @assert(%v)
              ret
            }
            "#,
        );
        assert!(m.failure.is_none());
        assert_eq!(m.global_value("ok"), Some(1));
    }

    #[test]
    fn null_deref_traps() {
        let m = run_to_completion(
            r#"
            fn @main() : void {
            bb0:
              %v = load i64, null
              ret
            }
            "#,
        );
        assert!(matches!(m.failure, Some(Failure::Trap(_))));
    }

    #[test]
    fn division_by_zero_traps() {
        let m = run_to_completion(
            r#"
            global @z: i64 = 0
            fn @main() : void {
            bb0:
              %z = load i64, @z
              %d = div 1, %z
              ret
            }
            "#,
        );
        assert!(matches!(m.failure, Some(Failure::Trap(_))));
    }

    #[test]
    fn stats_count_access_kinds() {
        let m = run_to_completion(
            r#"
            global @x: i64 = 0
            fn @main() : void {
            bb0:
              store i64 1, @x
              %v = load i64, @x
              store i64 2, @x seq_cst
              %w = load i64, @x seq_cst
              %o = rmw add i64 @x, 1 seq_cst
              fence seq_cst
              ret
            }
            "#,
        );
        assert_eq!(m.stats.plain_stores, 1);
        assert_eq!(m.stats.plain_loads, 1);
        assert_eq!(m.stats.atomic_stores, 1);
        assert_eq!(m.stats.atomic_loads, 1);
        assert_eq!(m.stats.rmws, 1);
        assert_eq!(m.stats.fences, 1);
    }

    #[test]
    fn barrier_releases_all_participants() {
        let m = run_to_completion(
            r#"
            global @count: i64 = 0
            fn @worker(%n: i64) : void {
            bb0:
              %o = rmw add i64 @count, 1 seq_cst
              call void @barrier_wait(3)
              %v = load i64, @count seq_cst
              %c = cmp eq %v, 3
              %ci = cast %c to i64
              call void @assert(%ci)
              ret
            }
            fn @main() : void {
            bb0:
              %t1 = call i64 @spawn(@worker, 0)
              %t2 = call i64 @spawn(@worker, 0)
              %t3 = call i64 @spawn(@worker, 0)
              call void @join(%t1)
              call void @join(%t2)
              call void @join(%t3)
              ret
            }
            "#,
        );
        assert!(m.failure.is_none(), "failure: {:?}", m.failure);
    }
}
