//! Operational memory models: SC, x86-TSO, and a view-based WMM.
//!
//! * [`ScMem`] — Lamport sequential consistency: a flat memory, every
//!   access takes effect immediately.
//! * [`TsoMem`] — the x86-TSO operational model (Sewell et al., CACM'10):
//!   per-thread FIFO store buffers with forwarding; fences and LOCK'd
//!   operations drain the buffer; buffered stores flush nondeterministically.
//! * [`ViewMem`] — a promise-free, view-based operational model of
//!   C11-style relaxed/acquire/release/SC accesses (à la Kang et al.'s
//!   view machine): per-location write histories with timestamps,
//!   per-thread views, release stores attach views, acquire loads join
//!   them, SC accesses/fences additionally synchronize through a global SC
//!   view. This model exhibits the store-buffering, message-passing and
//!   coherence weak behaviours the paper's bugs depend on; it does not
//!   exhibit load-buffering (none of the paper's patterns need it).

use atomig_mir::{Ordering, RmwOp};
use std::collections::BTreeMap;
use std::hash::Hash;

/// A source of nondeterministic decisions (scheduling-independent inner
/// choices such as which write a relaxed load reads).
pub trait Chooser {
    /// Picks one of `n` alternatives (`n >= 1`); must return `< n`.
    fn choose(&mut self, n: usize) -> usize;
}

/// Always takes alternative 0 (reads the oldest eligible / deterministic).
#[derive(Debug, Clone, Default)]
pub struct FirstChoice;

impl Chooser for FirstChoice {
    fn choose(&mut self, _n: usize) -> usize {
        0
    }
}

/// Always takes the last alternative (reads the newest eligible write —
/// the SC-like choice; used by the deterministic interpreter).
#[derive(Debug, Clone, Default)]
pub struct LastChoice;

impl Chooser for LastChoice {
    fn choose(&mut self, n: usize) -> usize {
        n - 1
    }
}

/// A memory model an executor can run against.
pub trait MemModel: Clone + Hash + Eq {
    /// Writes an initial value (program load time; no thread involved).
    fn init(&mut self, addr: u64, val: i64);

    /// Makes room for `n` threads.
    fn ensure_threads(&mut self, n: usize);

    /// A load by `tid`.
    fn load(&mut self, tid: usize, addr: u64, ord: Ordering, ch: &mut dyn Chooser) -> i64;

    /// A store by `tid`.
    fn store(&mut self, tid: usize, addr: u64, val: i64, ord: Ordering);

    /// An atomic read-modify-write; returns the old value.
    fn rmw(&mut self, tid: usize, addr: u64, op: RmwOp, operand: i64, ord: Ordering) -> i64;

    /// An atomic compare-exchange; returns the old value (success iff it
    /// equals `expected`).
    fn cmpxchg(&mut self, tid: usize, addr: u64, expected: i64, new: i64, ord: Ordering) -> i64;

    /// A stand-alone fence by `tid`.
    fn fence(&mut self, tid: usize, ord: Ordering);

    /// Number of pending internal steps for `tid` (TSO buffer flushes).
    fn internal_steps(&self, _tid: usize) -> usize {
        0
    }

    /// Performs one pending internal step.
    fn internal_step(&mut self, _tid: usize) {}

    /// Parent thread spawns child: child inherits the parent's view /
    /// the parent's buffered stores become visible (pthread_create
    /// synchronizes).
    fn on_spawn(&mut self, parent: usize, child: usize);

    /// Thread exits: its effects become globally visible.
    fn on_exit(&mut self, tid: usize);

    /// `joiner` joins `target` (pthread_join synchronizes).
    fn on_join(&mut self, joiner: usize, target: usize);

    /// Canonicalizes internal state (drops unreadable history) so that
    /// state hashing converges. Optional.
    fn gc(&mut self) {}

    /// The coherent (final) value at `addr`, for post-mortem inspection.
    fn peek(&self, addr: u64) -> i64;
}

// ---------------------------------------------------------------------
// Sequential consistency
// ---------------------------------------------------------------------

/// Flat, immediately-consistent memory.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct ScMem {
    mem: BTreeMap<u64, i64>,
}

impl MemModel for ScMem {
    fn init(&mut self, addr: u64, val: i64) {
        self.mem.insert(addr, val);
    }

    fn ensure_threads(&mut self, _n: usize) {}

    fn load(&mut self, _tid: usize, addr: u64, _ord: Ordering, _ch: &mut dyn Chooser) -> i64 {
        self.mem.get(&addr).copied().unwrap_or(0)
    }

    fn store(&mut self, _tid: usize, addr: u64, val: i64, _ord: Ordering) {
        self.mem.insert(addr, val);
    }

    fn rmw(&mut self, _tid: usize, addr: u64, op: RmwOp, operand: i64, _ord: Ordering) -> i64 {
        let old = self.mem.get(&addr).copied().unwrap_or(0);
        self.mem.insert(addr, op.apply(old, operand));
        old
    }

    fn cmpxchg(&mut self, _tid: usize, addr: u64, expected: i64, new: i64, _ord: Ordering) -> i64 {
        let old = self.mem.get(&addr).copied().unwrap_or(0);
        if old == expected {
            self.mem.insert(addr, new);
        }
        old
    }

    fn fence(&mut self, _tid: usize, _ord: Ordering) {}

    fn on_spawn(&mut self, _parent: usize, _child: usize) {}
    fn on_exit(&mut self, _tid: usize) {}
    fn on_join(&mut self, _joiner: usize, _target: usize) {}

    fn peek(&self, addr: u64) -> i64 {
        self.mem.get(&addr).copied().unwrap_or(0)
    }
}

// ---------------------------------------------------------------------
// x86-TSO
// ---------------------------------------------------------------------

/// The x86-TSO store-buffer machine.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct TsoMem {
    mem: BTreeMap<u64, i64>,
    /// Per-thread FIFO store buffers (oldest first).
    buffers: Vec<Vec<(u64, i64)>>,
}

impl TsoMem {
    fn flush_all(&mut self, tid: usize) {
        if let Some(buf) = self.buffers.get_mut(tid) {
            for (a, v) in buf.drain(..) {
                self.mem.insert(a, v);
            }
        }
    }

    /// Buffered entries of `tid` (diagnostics).
    pub fn buffered(&self, tid: usize) -> usize {
        self.buffers.get(tid).map(Vec::len).unwrap_or(0)
    }
}

impl MemModel for TsoMem {
    fn init(&mut self, addr: u64, val: i64) {
        self.mem.insert(addr, val);
    }

    fn ensure_threads(&mut self, n: usize) {
        while self.buffers.len() < n {
            self.buffers.push(Vec::new());
        }
    }

    fn load(&mut self, tid: usize, addr: u64, _ord: Ordering, _ch: &mut dyn Chooser) -> i64 {
        // Store-to-load forwarding: newest buffered store wins.
        if let Some(buf) = self.buffers.get(tid) {
            if let Some((_, v)) = buf.iter().rev().find(|(a, _)| *a == addr) {
                return *v;
            }
        }
        self.mem.get(&addr).copied().unwrap_or(0)
    }

    fn store(&mut self, tid: usize, addr: u64, val: i64, ord: Ordering) {
        self.ensure_threads(tid + 1);
        self.buffers[tid].push((addr, val));
        if ord == Ordering::SeqCst {
            // x86 compiles an SC store as MOV; MFENCE — drain the buffer.
            self.flush_all(tid);
        }
    }

    fn rmw(&mut self, tid: usize, addr: u64, op: RmwOp, operand: i64, _ord: Ordering) -> i64 {
        // LOCK-prefixed: drains the buffer and acts on memory.
        self.flush_all(tid);
        let old = self.mem.get(&addr).copied().unwrap_or(0);
        self.mem.insert(addr, op.apply(old, operand));
        old
    }

    fn cmpxchg(&mut self, tid: usize, addr: u64, expected: i64, new: i64, _ord: Ordering) -> i64 {
        self.flush_all(tid);
        let old = self.mem.get(&addr).copied().unwrap_or(0);
        if old == expected {
            self.mem.insert(addr, new);
        }
        old
    }

    fn fence(&mut self, tid: usize, _ord: Ordering) {
        self.flush_all(tid);
    }

    fn internal_steps(&self, tid: usize) -> usize {
        usize::from(self.buffered(tid) > 0)
    }

    fn internal_step(&mut self, tid: usize) {
        if let Some(buf) = self.buffers.get_mut(tid) {
            if !buf.is_empty() {
                let (a, v) = buf.remove(0);
                self.mem.insert(a, v);
            }
        }
    }

    fn on_spawn(&mut self, parent: usize, child: usize) {
        self.ensure_threads(child + 1);
        self.flush_all(parent);
    }

    fn on_exit(&mut self, tid: usize) {
        self.flush_all(tid);
    }

    fn on_join(&mut self, _joiner: usize, _target: usize) {}

    fn peek(&self, addr: u64) -> i64 {
        self.mem.get(&addr).copied().unwrap_or(0)
    }
}

// ---------------------------------------------------------------------
// View-based WMM
// ---------------------------------------------------------------------

type View = BTreeMap<u64, u64>;

/// How the view machine interprets `SeqCst` *accesses*.
///
/// Explicit SC fences always synchronize through the global SC view (they
/// model Arm's `DMB ISH`); this knob only affects loads/stores/RMWs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ScMode {
    /// C11-flavoured strong SC: SC accesses join the global SC view in
    /// both directions. Forbids store buffering among SC accesses.
    #[default]
    Strong,
    /// Arm-flavoured: SC accesses get release/acquire semantics only
    /// (`LDAR`/`STLR` as compiled from SC atomics), without the global
    /// total-order coupling. This soundly over-approximates Armv8
    /// reordering (it also admits some behaviours RCsc forbids, e.g. SB
    /// between SC accesses), which is the right direction for bug
    /// hunting: every real reordering bug is exhibited.
    RaOnly,
}

fn view_join(dst: &mut View, src: &View) {
    for (&a, &ts) in src {
        let e = dst.entry(a).or_insert(0);
        if ts > *e {
            *e = ts;
        }
    }
}

/// One write in a location's history.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Msg {
    ts: u64,
    val: i64,
    /// View attached by a release-or-stronger store (empty otherwise).
    view: View,
    released: bool,
}

/// The view machine for weak memory.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct ViewMem {
    /// Per-location write histories, timestamps ascending (`ts 0` = init).
    hist: BTreeMap<u64, Vec<Msg>>,
    /// Per-thread views.
    views: Vec<View>,
    /// Views of exited threads, kept for `on_join`.
    exit_views: BTreeMap<usize, View>,
    /// The global SC view.
    sc_view: View,
    /// SC-access interpretation.
    sc_mode: ScMode,
}

impl ViewMem {
    /// An Arm-flavoured machine: SC accesses are release/acquire only,
    /// explicit fences are full `DMB`-style barriers.
    pub fn arm() -> ViewMem {
        ViewMem {
            sc_mode: ScMode::RaOnly,
            ..ViewMem::default()
        }
    }

    fn sc_access_couples(&self) -> bool {
        self.sc_mode == ScMode::Strong
    }
    fn history(&mut self, addr: u64) -> &mut Vec<Msg> {
        self.hist.entry(addr).or_insert_with(|| {
            vec![Msg {
                ts: 0,
                val: 0,
                view: View::new(),
                released: true,
            }]
        })
    }

    fn view_of(&mut self, tid: usize) -> &mut View {
        self.ensure_threads(tid + 1);
        &mut self.views[tid]
    }

    /// The number of writes a load by `tid` could read at `addr` (used by
    /// the checker to enumerate read choices).
    pub fn eligible_count(&mut self, tid: usize, addr: u64, ord: Ordering) -> usize {
        let mut floor = *self.view_of(tid).get(&addr).unwrap_or(&0);
        if ord == Ordering::SeqCst && self.sc_access_couples() {
            floor = floor.max(*self.sc_view.get(&addr).unwrap_or(&0));
        }
        self.history(addr).iter().filter(|m| m.ts >= floor).count()
    }

    fn do_load(&mut self, tid: usize, addr: u64, ord: Ordering, ch: &mut dyn Chooser) -> i64 {
        if ord == Ordering::SeqCst && self.sc_access_couples() {
            let sc = self.sc_view.clone();
            view_join(self.view_of(tid), &sc);
        }
        let floor = *self.view_of(tid).get(&addr).unwrap_or(&0);
        let hist = self.history(addr);
        let eligible: Vec<usize> = hist
            .iter()
            .enumerate()
            .filter(|(_, m)| m.ts >= floor)
            .map(|(i, _)| i)
            .collect();
        debug_assert!(!eligible.is_empty(), "view beyond history");
        let pick = eligible[ch.choose(eligible.len())];
        let (ts, val, released, mview) = {
            let m = &hist[pick];
            (m.ts, m.val, m.released, m.view.clone())
        };
        let view = self.view_of(tid);
        let e = view.entry(addr).or_insert(0);
        if ts > *e {
            *e = ts;
        }
        if ord.has_acquire() && released {
            view_join(view, &mview);
        }
        if ord == Ordering::SeqCst && self.sc_access_couples() {
            let v = self.views[tid].clone();
            view_join(&mut self.sc_view, &v);
        }
        val
    }

    fn do_store(&mut self, tid: usize, addr: u64, val: i64, ord: Ordering) {
        if ord == Ordering::SeqCst && self.sc_access_couples() {
            let sc = self.sc_view.clone();
            view_join(self.view_of(tid), &sc);
        }
        let ts = self.history(addr).last().expect("init msg").ts + 1;
        self.view_of(tid).insert(addr, ts);
        let released = ord.has_release();
        let view = if released {
            self.views[tid].clone()
        } else {
            View::new()
        };
        self.history(addr).push(Msg {
            ts,
            val,
            view,
            released,
        });
        if ord == Ordering::SeqCst && self.sc_access_couples() {
            let v = self.views[tid].clone();
            view_join(&mut self.sc_view, &v);
        }
    }

    /// RMW: reads the *latest* write (atomicity) and appends directly
    /// after it.
    ///
    /// Model note: a *failed* CAS also reads the latest message here,
    /// which is stronger than C11 (where a failed CAS is an ordinary load
    /// and may read stale). None of the bundled patterns depend on stale
    /// failed-CAS reads; retry loops simply retry accurately.
    fn do_rmw<F: FnOnce(i64) -> Option<i64>>(
        &mut self,
        tid: usize,
        addr: u64,
        ord: Ordering,
        f: F,
    ) -> i64 {
        if ord == Ordering::SeqCst && self.sc_access_couples() {
            let sc = self.sc_view.clone();
            view_join(self.view_of(tid), &sc);
        }
        let (old_ts, old, released, mview) = {
            let m = self.history(addr).last().expect("init msg");
            (m.ts, m.val, m.released, m.view.clone())
        };
        {
            let view = self.view_of(tid);
            let e = view.entry(addr).or_insert(0);
            if old_ts > *e {
                *e = old_ts;
            }
            if ord.has_acquire() && released {
                view_join(view, &mview);
            }
        }
        if let Some(new) = f(old) {
            let ts = old_ts + 1;
            self.view_of(tid).insert(addr, ts);
            let rel = ord.has_release();
            let view = if rel {
                self.views[tid].clone()
            } else {
                View::new()
            };
            self.history(addr).push(Msg {
                ts,
                val: new,
                view,
                released: rel,
            });
        }
        if ord == Ordering::SeqCst && self.sc_access_couples() {
            let v = self.views[tid].clone();
            view_join(&mut self.sc_view, &v);
        }
        old
    }
}

impl MemModel for ViewMem {
    fn init(&mut self, addr: u64, val: i64) {
        self.hist.insert(
            addr,
            vec![Msg {
                ts: 0,
                val,
                view: View::new(),
                released: true,
            }],
        );
    }

    fn ensure_threads(&mut self, n: usize) {
        while self.views.len() < n {
            self.views.push(View::new());
        }
    }

    fn load(&mut self, tid: usize, addr: u64, ord: Ordering, ch: &mut dyn Chooser) -> i64 {
        self.do_load(tid, addr, ord, ch)
    }

    fn store(&mut self, tid: usize, addr: u64, val: i64, ord: Ordering) {
        self.do_store(tid, addr, val, ord)
    }

    fn rmw(&mut self, tid: usize, addr: u64, op: RmwOp, operand: i64, ord: Ordering) -> i64 {
        self.do_rmw(tid, addr, ord, |old| Some(op.apply(old, operand)))
    }

    fn cmpxchg(&mut self, tid: usize, addr: u64, expected: i64, new: i64, ord: Ordering) -> i64 {
        self.do_rmw(tid, addr, ord, |old| {
            if old == expected {
                Some(new)
            } else {
                None
            }
        })
    }

    fn fence(&mut self, tid: usize, ord: Ordering) {
        if ord == Ordering::SeqCst {
            let sc = self.sc_view.clone();
            view_join(self.view_of(tid), &sc);
            let v = self.views[tid].clone();
            view_join(&mut self.sc_view, &v);
        }
        // Plain acquire/release fences never occur in AtoMig output; they
        // are treated as no-ops here (documented model restriction).
    }

    fn on_spawn(&mut self, parent: usize, child: usize) {
        self.ensure_threads(child.max(parent) + 1);
        let pv = self.views[parent].clone();
        view_join(&mut self.views[child], &pv);
    }

    fn on_exit(&mut self, tid: usize) {
        self.ensure_threads(tid + 1);
        self.exit_views.insert(tid, self.views[tid].clone());
    }

    fn on_join(&mut self, joiner: usize, target: usize) {
        if let Some(tv) = self.exit_views.get(&target).cloned() {
            view_join(self.view_of(joiner), &tv);
        }
    }

    fn gc(&mut self) {
        // Drop history entries no thread can read any more. Only thread
        // views matter for the floor: `sc_view` and exit views are joined
        // *into* thread views (they only ever raise floors), so they can
        // never re-enable reading an older message.
        if self.views.is_empty() {
            return;
        }
        let addresses: Vec<u64> = self.hist.keys().copied().collect();
        for addr in addresses {
            let floor = self
                .views
                .iter()
                .map(|v| *v.get(&addr).unwrap_or(&0))
                .min()
                .unwrap_or(0);
            if let Some(h) = self.hist.get_mut(&addr) {
                let keep_from = h.iter().position(|m| m.ts >= floor).unwrap_or(h.len() - 1);
                if keep_from > 0 {
                    h.drain(..keep_from);
                }
            }
        }
    }

    fn peek(&self, addr: u64) -> i64 {
        self.hist
            .get(&addr)
            .and_then(|h| h.last())
            .map(|m| m.val)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sc_is_immediately_consistent() {
        let mut m = ScMem::default();
        m.store(0, 100, 5, Ordering::NotAtomic);
        assert_eq!(m.load(1, 100, Ordering::NotAtomic, &mut FirstChoice), 5);
    }

    #[test]
    fn tso_buffers_stores_until_flush() {
        let mut m = TsoMem::default();
        m.ensure_threads(2);
        m.store(0, 100, 1, Ordering::NotAtomic);
        // Thread 1 does not see it yet; thread 0 forwards from its buffer.
        assert_eq!(m.load(1, 100, Ordering::NotAtomic, &mut FirstChoice), 0);
        assert_eq!(m.load(0, 100, Ordering::NotAtomic, &mut FirstChoice), 1);
        assert_eq!(m.internal_steps(0), 1);
        m.internal_step(0);
        assert_eq!(m.load(1, 100, Ordering::NotAtomic, &mut FirstChoice), 1);
        assert_eq!(m.internal_steps(0), 0);
    }

    #[test]
    fn tso_preserves_store_order() {
        let mut m = TsoMem::default();
        m.ensure_threads(2);
        m.store(0, 1, 1, Ordering::NotAtomic); // msg
        m.store(0, 2, 1, Ordering::NotAtomic); // flag
        m.internal_step(0); // flushes msg FIRST (FIFO)
        assert_eq!(m.peek(1), 1);
        assert_eq!(m.peek(2), 0);
    }

    #[test]
    fn tso_sc_store_drains_buffer() {
        let mut m = TsoMem::default();
        m.ensure_threads(1);
        m.store(0, 1, 1, Ordering::NotAtomic);
        m.store(0, 2, 1, Ordering::SeqCst);
        assert_eq!(m.buffered(0), 0);
        assert_eq!(m.peek(1), 1);
        assert_eq!(m.peek(2), 1);
    }

    #[test]
    fn view_relaxed_mp_can_read_stale() {
        // Writer: msg=1 (rlx); flag=1 (rlx). Reader: sees flag=1 but may
        // still read msg=0 — the WMM message-passing bug.
        let mut m = ViewMem::default();
        m.ensure_threads(2);
        m.init(1, 0); // msg
        m.init(2, 0); // flag
        m.store(0, 1, 1, Ordering::Relaxed);
        m.store(0, 2, 1, Ordering::Relaxed);
        // Reader reads flag=1 (choose the newest).
        let f = m.load(1, 2, Ordering::Relaxed, &mut LastChoice);
        assert_eq!(f, 1);
        // And may still read msg=0 (choose the oldest eligible).
        let v = m.load(1, 1, Ordering::Relaxed, &mut FirstChoice);
        assert_eq!(v, 0);
    }

    #[test]
    fn view_release_acquire_mp_is_safe() {
        let mut m = ViewMem::default();
        m.ensure_threads(2);
        m.init(1, 0);
        m.init(2, 0);
        m.store(0, 1, 1, Ordering::Relaxed);
        m.store(0, 2, 1, Ordering::Release);
        let f = m.load(1, 2, Ordering::Acquire, &mut LastChoice);
        assert_eq!(f, 1);
        // The acquire joined the release view: msg=0 no longer eligible.
        assert_eq!(m.eligible_count(1, 1, Ordering::Relaxed), 1);
        let v = m.load(1, 1, Ordering::Relaxed, &mut FirstChoice);
        assert_eq!(v, 1);
    }

    #[test]
    fn view_sc_mp_is_safe() {
        let mut m = ViewMem::default();
        m.ensure_threads(2);
        m.init(1, 0);
        m.init(2, 0);
        m.store(0, 1, 1, Ordering::NotAtomic);
        m.store(0, 2, 1, Ordering::SeqCst);
        let f = m.load(1, 2, Ordering::SeqCst, &mut LastChoice);
        assert_eq!(f, 1);
        assert_eq!(m.eligible_count(1, 1, Ordering::NotAtomic), 1);
    }

    #[test]
    fn view_coherence_no_going_back() {
        let mut m = ViewMem::default();
        m.ensure_threads(1);
        m.init(5, 0);
        m.store(0, 5, 1, Ordering::Relaxed);
        m.store(0, 5, 2, Ordering::Relaxed);
        // Thread 0 wrote both: it can only read the newest.
        assert_eq!(m.eligible_count(0, 5, Ordering::Relaxed), 1);
        assert_eq!(m.load(0, 5, Ordering::Relaxed, &mut FirstChoice), 2);
    }

    #[test]
    fn view_rmw_reads_latest() {
        let mut m = ViewMem::default();
        m.ensure_threads(2);
        m.init(7, 10);
        m.store(0, 7, 20, Ordering::Relaxed);
        // Thread 1's view is behind, but RMW must still act on ts-max.
        let old = m.rmw(1, 7, RmwOp::Add, 1, Ordering::SeqCst);
        assert_eq!(old, 20);
        assert_eq!(m.peek(7), 21);
    }

    #[test]
    fn view_failed_cas_does_not_write() {
        let mut m = ViewMem::default();
        m.ensure_threads(1);
        m.init(7, 5);
        let old = m.cmpxchg(0, 7, 99, 1, Ordering::SeqCst);
        assert_eq!(old, 5);
        assert_eq!(m.peek(7), 5);
    }

    #[test]
    fn view_spawn_join_synchronize() {
        let mut m = ViewMem::default();
        m.ensure_threads(2);
        m.init(3, 0);
        m.store(0, 3, 42, Ordering::Relaxed);
        m.on_spawn(0, 1);
        // The child must see the parent's pre-spawn write.
        assert_eq!(m.eligible_count(1, 3, Ordering::Relaxed), 1);
        m.store(1, 3, 43, Ordering::Relaxed);
        m.on_exit(1);
        m.on_join(0, 1);
        assert_eq!(m.eligible_count(0, 3, Ordering::Relaxed), 1);
        assert_eq!(m.load(0, 3, Ordering::Relaxed, &mut FirstChoice), 43);
    }

    #[test]
    fn view_gc_drops_dead_history() {
        let mut m = ViewMem::default();
        m.ensure_threads(1);
        m.init(9, 0);
        for i in 1..=10 {
            m.store(0, 9, i, Ordering::Relaxed);
        }
        assert_eq!(m.hist[&9].len(), 11);
        m.gc();
        // Only thread 0 exists and its view is at ts 10.
        assert_eq!(m.hist[&9].len(), 1);
        assert_eq!(m.peek(9), 10);
    }

    #[test]
    fn view_sb_relaxed_allows_both_zero() {
        // Store buffering: x=1; r1=y || y=1; r2=x — both reads may be 0.
        let mut m = ViewMem::default();
        m.ensure_threads(2);
        m.init(1, 0);
        m.init(2, 0);
        m.store(0, 1, 1, Ordering::Relaxed);
        m.store(1, 2, 1, Ordering::Relaxed);
        let r1 = m.load(0, 2, Ordering::Relaxed, &mut FirstChoice);
        let r2 = m.load(1, 1, Ordering::Relaxed, &mut FirstChoice);
        assert_eq!((r1, r2), (0, 0));
    }

    #[test]
    fn view_sb_sc_forbids_both_zero() {
        // With SC accesses, at least one read sees the other store.
        let mut m = ViewMem::default();
        m.ensure_threads(2);
        m.init(1, 0);
        m.init(2, 0);
        m.store(0, 1, 1, Ordering::SeqCst);
        m.store(1, 2, 1, Ordering::SeqCst);
        // Whatever order: both loads are SC and join sc_view, which now
        // contains both stores.
        assert_eq!(m.eligible_count(0, 2, Ordering::SeqCst), 1);
        assert_eq!(m.eligible_count(1, 1, Ordering::SeqCst), 1);
    }
}
