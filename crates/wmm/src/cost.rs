//! The Arm-calibrated barrier cost model used by the performance
//! experiments (Tables 4–6).
//!
//! The paper's performance story rests on two facts about Armv8 servers
//! (measured by Liu et al., "No Barrier in the Road", PPoPP'20, the
//! paper's reference 48): implicit barriers (`LDAR`/`STLR` from SC atomics) are
//! cheap — a small constant over plain accesses — while explicit barriers
//! (`DMB ISH` from fences) are roughly an order of magnitude more
//! expensive. The default weights encode those ratios; absolute numbers
//! are abstract cost units, not nanoseconds.

use crate::exec::ExecStats;

/// Cost weights per dynamic operation class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// A plain load (`LDR`).
    pub plain_load: u64,
    /// A plain store (`STR`).
    pub plain_store: u64,
    /// An acquire load (`LDAR`-lite: acquire ordering below SC).
    pub acq_load: u64,
    /// A release store (`STLR`-lite).
    pub rel_store: u64,
    /// A sequentially consistent atomic load (`LDAR`).
    pub sc_load: u64,
    /// A sequentially consistent atomic store (`STLR`).
    pub sc_store: u64,
    /// An atomic RMW / compare-exchange (`LDAXR`/`STLXR` pair or LSE op).
    pub rmw: u64,
    /// An explicit full fence (`DMB ISH`).
    pub fence: u64,
    /// A one-sided fence (`DMB ISHST`/`ISHLD`), as expert Arm ports use.
    pub light_fence: u64,
    /// Any other instruction (ALU, branch, call overhead).
    pub other: u64,
    /// An access to the thread's own stack. Defaults to 0: after `-O2`
    /// register allocation these are registers, and they can never carry
    /// barriers (AtoMig/naive/Lasagne all leave provably-private accesses
    /// alone), so pricing them would only dilute barrier ratios.
    pub stack_op: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::ARMV8
    }
}

impl CostModel {
    /// Default Armv8-server weights (ratios after Liu et al.).
    pub const ARMV8: CostModel = CostModel {
        plain_load: 1,
        plain_store: 1,
        acq_load: 2,
        rel_store: 2,
        sc_load: 4,
        sc_store: 4,
        rmw: 8,
        fence: 20,
        light_fence: 6,
        other: 1,
        stack_op: 0,
    };

    /// A hypothetical machine where implicit and explicit barriers cost
    /// the same (for ablation benches).
    pub const FLAT_BARRIERS: CostModel = CostModel {
        sc_load: 20,
        sc_store: 20,
        acq_load: 20,
        rel_store: 20,
        rmw: 20,
        fence: 20,
        ..CostModel::ARMV8
    };

    /// Total cost of an execution's dynamic counters.
    pub fn cost(&self, s: &ExecStats) -> u64 {
        let sc_loads = s.atomic_loads - s.acq_loads;
        let sc_stores = s.atomic_stores - s.rel_stores;
        s.plain_loads * self.plain_load
            + s.plain_stores * self.plain_store
            + s.acq_loads * self.acq_load
            + s.rel_stores * self.rel_store
            + sc_loads * self.sc_load
            + sc_stores * self.sc_store
            + s.rmws * self.rmw
            + s.fences * self.fence
            + s.light_fences * self.light_fence
            + s.other_ops * self.other
            + s.stack_ops * self.stack_op
    }

    /// Slowdown of `variant` relative to `baseline` under this model.
    pub fn slowdown(&self, baseline: &ExecStats, variant: &ExecStats) -> f64 {
        let b = self.cost(baseline).max(1);
        let v = self.cost(variant);
        v as f64 / b as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(
        plain_loads: u64,
        plain_stores: u64,
        atomic_loads: u64,
        atomic_stores: u64,
        rmws: u64,
        fences: u64,
    ) -> ExecStats {
        ExecStats {
            plain_loads,
            plain_stores,
            atomic_loads,
            atomic_stores,
            rmws,
            fences,
            ..ExecStats::default()
        }
    }

    #[test]
    fn explicit_barriers_cost_more_than_implicit() {
        let cm = CostModel::ARMV8;
        assert!(cm.fence > cm.sc_store);
        assert!(cm.sc_store > cm.plain_store);
        // One fenced store vs one SC store: the fence path is pricier.
        let fenced = stats(0, 1, 0, 0, 0, 1);
        let implicit = stats(0, 0, 0, 1, 0, 0);
        assert!(cm.cost(&fenced) > cm.cost(&implicit));
    }

    #[test]
    fn slowdown_is_relative() {
        let cm = CostModel::ARMV8;
        let base = stats(100, 100, 0, 0, 0, 0);
        let all_sc = stats(0, 0, 100, 100, 0, 0);
        let s = cm.slowdown(&base, &all_sc);
        assert!((s - 4.0).abs() < 1e-9);
    }

    #[test]
    fn sc_split_accounts_acquire_release() {
        let cm = CostModel::ARMV8;
        let mut s = stats(0, 0, 10, 10, 0, 0);
        s.acq_loads = 10;
        s.rel_stores = 10;
        // All acquire/release: cheaper than all-SC.
        assert_eq!(cm.cost(&s), 10 * cm.acq_load + 10 * cm.rel_store);
    }

    #[test]
    fn flat_model_removes_the_gap() {
        let cm = CostModel::FLAT_BARRIERS;
        let fenced = stats(0, 1, 0, 0, 0, 1);
        let implicit = stats(0, 0, 0, 1, 0, 0);
        // 1 plain store + 1 fence (21) vs 1 SC store (20): nearly equal.
        assert!(cm.cost(&fenced) <= cm.cost(&implicit) + 1);
    }
}
