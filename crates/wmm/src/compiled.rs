//! A precompiled, allocation-free runtime representation of a module.
//!
//! Executing [`atomig_mir::InstKind`] directly would clone types, GEP
//! index vectors and call argument lists on every executed instruction.
//! [`CompiledProgram`] resolves all of that once per module: GEPs become
//! `base + Σ const + Σ value·stride`, casts become masks, allocas become
//! slot counts. The interpreter and model checker then execute without
//! touching the heap per instruction.

use crate::mem::Layout;
use atomig_mir::{
    BinOp, BlockId, Builtin, Callee, CmpPred, FuncId, GepIndex, InstId, InstKind, Module, Ordering,
    RmwOp, Terminator, Type, Value,
};

/// One dynamic GEP term: `eval(value) * stride`.
#[derive(Debug, Clone, Copy)]
pub struct DynTerm {
    /// The index value.
    pub value: Value,
    /// Slots per index step.
    pub stride: i64,
}

/// A precompiled instruction.
#[derive(Debug, Clone)]
pub enum CInst {
    /// Stack slot reservation.
    Alloca {
        /// Result register.
        id: InstId,
        /// Slot count.
        slots: u64,
    },
    /// Memory load.
    Load {
        /// Result register.
        id: InstId,
        /// Address operand.
        ptr: Value,
        /// Atomic ordering.
        ord: Ordering,
    },
    /// Memory store.
    Store {
        /// Address operand.
        ptr: Value,
        /// Value operand.
        val: Value,
        /// Atomic ordering.
        ord: Ordering,
    },
    /// Compare-exchange (result = old value).
    Cmpxchg {
        /// Result register.
        id: InstId,
        /// Address operand.
        ptr: Value,
        /// Expected value.
        expected: Value,
        /// Replacement value.
        new: Value,
        /// Atomic ordering.
        ord: Ordering,
    },
    /// Read-modify-write (result = old value).
    Rmw {
        /// Result register.
        id: InstId,
        /// Combining operation.
        op: RmwOp,
        /// Address operand.
        ptr: Value,
        /// Operand value.
        val: Value,
        /// Atomic ordering.
        ord: Ordering,
    },
    /// Explicit fence.
    Fence {
        /// Ordering.
        ord: Ordering,
    },
    /// Resolved address arithmetic.
    Gep {
        /// Result register.
        id: InstId,
        /// Base pointer.
        base: Value,
        /// Compile-time slot offset.
        const_off: i64,
        /// Dynamic terms.
        dyn_terms: Box<[DynTerm]>,
    },
    /// Binary arithmetic.
    Bin {
        /// Result register.
        id: InstId,
        /// Operation.
        op: BinOp,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// Comparison.
    Cmp {
        /// Result register.
        id: InstId,
        /// Predicate.
        pred: CmpPred,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// Width cast (mask application).
    Cast {
        /// Result register.
        id: InstId,
        /// Operand.
        value: Value,
        /// Truncation mask.
        mask: u64,
    },
    /// Direct call.
    CallFunc {
        /// Result register (None for void).
        id: Option<InstId>,
        /// Callee.
        func: FuncId,
        /// Arguments.
        args: Box<[Value]>,
    },
    /// Builtin call.
    CallBuiltin {
        /// Result register.
        id: InstId,
        /// Which builtin.
        builtin: Builtin,
        /// Arguments.
        args: Box<[Value]>,
    },
}

/// A precompiled terminator (fully `Copy`).
#[derive(Debug, Clone, Copy)]
pub enum CTerm {
    /// Unconditional branch.
    Br(BlockId),
    /// Conditional branch.
    CondBr {
        /// Condition value.
        cond: Value,
        /// Taken when non-zero.
        then_bb: BlockId,
        /// Taken when zero.
        else_bb: BlockId,
    },
    /// Return.
    Ret(Option<Value>),
    /// Unreachable.
    Unreachable,
}

/// A precompiled block.
#[derive(Debug, Clone)]
pub struct CBlock {
    /// Instructions.
    pub insts: Vec<CInst>,
    /// Terminator.
    pub term: CTerm,
}

/// A precompiled function.
#[derive(Debug, Clone)]
pub struct CFunc {
    /// Blocks, entry first.
    pub blocks: Vec<CBlock>,
    /// Register file size.
    pub n_regs: u32,
    /// Function name (diagnostics).
    pub name: String,
}

/// A precompiled module.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Functions by id.
    pub funcs: Vec<CFunc>,
}

impl CompiledProgram {
    /// Compiles `module` against `layout`.
    pub fn compile(module: &Module, layout: &Layout) -> CompiledProgram {
        let funcs = module
            .funcs
            .iter()
            .map(|f| {
                let blocks = f
                    .blocks
                    .iter()
                    .map(|b| CBlock {
                        insts: b
                            .insts
                            .iter()
                            .map(|i| compile_inst(module, layout, i.id, &i.kind))
                            .collect(),
                        term: compile_term(&b.term),
                    })
                    .collect();
                CFunc {
                    blocks,
                    n_regs: f.next_inst,
                    name: f.name.clone(),
                }
            })
            .collect();
        CompiledProgram { funcs }
    }
}

fn compile_term(t: &Terminator) -> CTerm {
    match t {
        Terminator::Br(b) => CTerm::Br(*b),
        Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        } => CTerm::CondBr {
            cond: *cond,
            then_bb: *then_bb,
            else_bb: *else_bb,
        },
        Terminator::Ret(v) => CTerm::Ret(*v),
        Terminator::Unreachable => CTerm::Unreachable,
    }
}

fn compile_inst(module: &Module, layout: &Layout, id: InstId, kind: &InstKind) -> CInst {
    match kind {
        InstKind::Alloca { ty, .. } => CInst::Alloca {
            id,
            slots: layout.slots(ty).max(1),
        },
        InstKind::Load { ptr, ord, .. } => CInst::Load {
            id,
            ptr: *ptr,
            ord: *ord,
        },
        InstKind::Store { ptr, val, ord, .. } => CInst::Store {
            ptr: *ptr,
            val: *val,
            ord: *ord,
        },
        InstKind::Cmpxchg {
            ptr,
            expected,
            new,
            ord,
            ..
        } => CInst::Cmpxchg {
            id,
            ptr: *ptr,
            expected: *expected,
            new: *new,
            ord: *ord,
        },
        InstKind::Rmw {
            op, ptr, val, ord, ..
        } => CInst::Rmw {
            id,
            op: *op,
            ptr: *ptr,
            val: *val,
            ord: *ord,
        },
        InstKind::Fence { ord } => CInst::Fence { ord: *ord },
        InstKind::Gep {
            base,
            base_ty,
            indices,
        } => {
            let (const_off, dyn_terms) = compile_gep(module, layout, base_ty, indices);
            CInst::Gep {
                id,
                base: *base,
                const_off,
                dyn_terms: dyn_terms.into_boxed_slice(),
            }
        }
        InstKind::Bin { op, lhs, rhs } => CInst::Bin {
            id,
            op: *op,
            lhs: *lhs,
            rhs: *rhs,
        },
        InstKind::Cmp { pred, lhs, rhs } => CInst::Cmp {
            id,
            pred: *pred,
            lhs: *lhs,
            rhs: *rhs,
        },
        InstKind::Cast { value, to } => CInst::Cast {
            id,
            value: *value,
            mask: to.value_mask(),
        },
        InstKind::Call {
            callee,
            args,
            ret_ty,
        } => match callee {
            Callee::Func(f) => CInst::CallFunc {
                id: (*ret_ty != Type::Void).then_some(id),
                func: *f,
                args: args.clone().into_boxed_slice(),
            },
            Callee::Builtin(b) => CInst::CallBuiltin {
                id,
                builtin: *b,
                args: args.clone().into_boxed_slice(),
            },
        },
    }
}

/// Resolves a GEP into `const_off + Σ eval(v)·stride`.
fn compile_gep(
    module: &Module,
    layout: &Layout,
    base_ty: &Type,
    indices: &[GepIndex],
) -> (i64, Vec<DynTerm>) {
    let mut const_off: i64 = 0;
    let mut dyn_terms = Vec::new();
    let mut cur = base_ty.clone();
    for (i, idx) in indices.iter().enumerate() {
        let (stride, next): (i64, Type) = if i == 0 {
            (layout.slots(&cur).max(1) as i64, cur.clone())
        } else {
            match &cur {
                Type::Struct(sid) => {
                    // Struct field indices are structurally constant.
                    let fi = idx.as_const().unwrap_or(0).max(0) as usize;
                    let fields = &module.strukt(*sid).fields;
                    let fi = fi.min(fields.len().saturating_sub(1));
                    let prefix: u64 = fields[..fi].iter().map(|t| layout.slots(t)).sum();
                    const_off += prefix as i64;
                    cur = fields[fi].clone();
                    continue;
                }
                Type::Array(elem, _) => (layout.slots(elem).max(1) as i64, (**elem).clone()),
                other => (layout.slots(other).max(1) as i64, other.clone()),
            }
        };
        match idx.as_const() {
            Some(c) => const_off += c * stride,
            None => dyn_terms.push(DynTerm {
                value: idx.as_value().expect("non-const index has a value"),
                stride,
            }),
        }
        cur = next;
    }
    (const_off, dyn_terms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomig_mir::parse_module;

    #[test]
    fn gep_compiles_to_offsets() {
        let m = parse_module(
            r#"
            struct %Node { i64, i64, [4 x i32] }
            fn @f(%n: ptr %Node, %i: i64) : void {
            bb0:
              %a = gep %Node, %n, 0, 1
              %b = gep %Node, %n, 0, 2, %i
              %c = gep %Node, %n, 1, 0
              ret
            }
            "#,
        )
        .unwrap();
        let layout = Layout::new(&m);
        let p = CompiledProgram::compile(&m, &layout);
        let insts = &p.funcs[0].blocks[0].insts;
        match &insts[0] {
            CInst::Gep {
                const_off,
                dyn_terms,
                ..
            } => {
                assert_eq!(*const_off, 1);
                assert!(dyn_terms.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        match &insts[1] {
            CInst::Gep {
                const_off,
                dyn_terms,
                ..
            } => {
                assert_eq!(*const_off, 2);
                assert_eq!(dyn_terms.len(), 1);
                assert_eq!(dyn_terms[0].stride, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &insts[2] {
            CInst::Gep { const_off, .. } => {
                // Node is 6 slots: [1].field0 = 6.
                assert_eq!(*const_off, 6);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn casts_compile_to_masks() {
        let m = parse_module(
            r#"
            fn @f(%x: i64) : void {
            bb0:
              %a = cast %x to i8
              ret
            }
            "#,
        )
        .unwrap();
        let layout = Layout::new(&m);
        let p = CompiledProgram::compile(&m, &layout);
        match &p.funcs[0].blocks[0].insts[0] {
            CInst::Cast { mask, .. } => assert_eq!(*mask, 0xff),
            other => panic!("unexpected {other:?}"),
        }
    }
}
