//! A library of classic litmus tests as parseable MIR programs, used by
//! tests and benches to validate the memory models (cf. the litmus-testing
//! methodology of Alglave et al. (the paper cites it for the relative
//! rarity of WMM behaviours)).

use atomig_mir::{parse_module, Module};

/// A litmus test: a program plus the expected verdict per model.
#[derive(Debug, Clone)]
pub struct Litmus {
    /// Short conventional name (MP, SB, CoRR, ...).
    pub name: &'static str,
    /// The program; `main` spawns the threads and asserts the forbidden
    /// outcome does not happen.
    pub source: String,
    /// Whether the weak outcome is forbidden (assertion holds) under SC.
    pub safe_under_sc: bool,
    /// ... under x86-TSO.
    pub safe_under_tso: bool,
    /// ... under the weak model with strong SC accesses.
    pub safe_under_wmm: bool,
    /// ... under the Arm-flavoured weak model (SC accesses are
    /// release/acquire only). Note `SB+sc` is reported unsafe here — a
    /// documented artifact of the RA-only SC interpretation (real Armv8
    /// RCsc forbids it); the model errs towards showing *more* weak
    /// behaviours, never fewer.
    pub safe_under_arm: bool,
}

impl Litmus {
    /// Parses the program.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source is malformed (a bug in this crate).
    pub fn module(&self) -> Module {
        parse_module(&self.source).expect("litmus source parses")
    }
}

/// Message passing with plain accesses (Figure 1 of the paper).
pub fn mp_plain() -> Litmus {
    Litmus {
        name: "MP+plain",
        source: r#"
        global @flag: i32 = 0
        global @msg: i32 = 0
        fn @writer(%a: i64) : void {
        bb0:
          store i32 1, @msg
          store i32 1, @flag
          ret
        }
        fn @main() : void {
        bb0:
          %t = call i64 @spawn(@writer, 0)
          br loop
        loop:
          %f = load i32, @flag
          %c = cmp eq %f, 0
          condbr %c, loop, done
        done:
          %m = load i32, @msg
          call void @assert(%m)
          call void @join(%t)
          ret
        }
        "#
        .into(),
        safe_under_sc: true,
        safe_under_tso: true,
        safe_under_wmm: false,
        safe_under_arm: false,
    }
}

/// Message passing with SC accesses on the flag (AtoMig's output).
pub fn mp_sc() -> Litmus {
    let base = mp_plain();
    Litmus {
        name: "MP+sc",
        source: base
            .source
            .replace("store i32 1, @flag", "store i32 1, @flag seq_cst")
            .replace("load i32, @flag", "load i32, @flag seq_cst"),
        safe_under_sc: true,
        safe_under_tso: true,
        safe_under_wmm: true,
        safe_under_arm: true,
    }
}

/// Store buffering with plain accesses: weak already under TSO.
pub fn sb_plain() -> Litmus {
    Litmus {
        name: "SB+plain",
        source: sb_source(""),
        safe_under_sc: true,
        safe_under_tso: false,
        safe_under_wmm: false,
        safe_under_arm: false,
    }
}

/// Store buffering with SC accesses: forbidden everywhere.
pub fn sb_sc() -> Litmus {
    Litmus {
        name: "SB+sc",
        source: sb_source(" seq_cst"),
        safe_under_sc: true,
        safe_under_tso: true,
        safe_under_wmm: true,
        safe_under_arm: false,
    }
}

fn sb_source(ord: &str) -> String {
    format!(
        r#"
        global @x: i32 = 0
        global @y: i32 = 0
        global @r1: i32 = 0
        fn @t1(%a: i64) : void {{
        bb0:
          store i32 1, @x{ord}
          %v = load i32, @y{ord}
          store i32 %v, @r1
          ret
        }}
        fn @main() : void {{
        bb0:
          %t = call i64 @spawn(@t1, 0)
          store i32 1, @y{ord}
          %v = load i32, @x{ord}
          call void @join(%t)
          %a = load i32, @r1
          %b = add %v, %a
          %c = cmp gt %b, 0
          %ci = cast %c to i64
          call void @assert(%ci)
          ret
        }}
        "#
    )
}

/// Coherence (CoRR): two reads of the same location by one thread must
/// not observe values going backwards. Safe in all three models.
pub fn corr() -> Litmus {
    Litmus {
        name: "CoRR",
        source: r#"
        global @x: i32 = 0
        fn @writer(%a: i64) : void {
        bb0:
          store i32 1, @x
          ret
        }
        fn @main() : void {
        bb0:
          %t = call i64 @spawn(@writer, 0)
          %r1 = load i32, @x
          %r2 = load i32, @x
          call void @join(%t)
          %back = cmp lt %r2, %r1
          %c = cmp eq %back, 0
          %ci = cast %c to i64
          call void @assert(%ci)
          ret
        }
        "#
        .into(),
        safe_under_sc: true,
        safe_under_tso: true,
        safe_under_wmm: true,
        safe_under_arm: true,
    }
}

/// Load buffering (LB): can two loads each observe the other thread's
/// later store? Real Armv8 forbids it with address/data dependencies and
/// allows it without; our promise-free view machine never exhibits it —
/// reported safe everywhere, a documented model restriction (none of the
/// paper's patterns depend on LB).
pub fn lb_plain() -> Litmus {
    Litmus {
        name: "LB+plain",
        source: r#"
        global @x: i32 = 0
        global @y: i32 = 0
        global @r1: i32 = 0
        fn @t1(%a: i64) : void {
        bb0:
          %v = load i32, @x
          store i32 %v, @r1
          store i32 1, @y
          ret
        }
        fn @main() : void {
        bb0:
          %t = call i64 @spawn(@t1, 0)
          %v = load i32, @y
          store i32 1, @x
          call void @join(%t)
          %a = load i32, @r1
          %both = mul %v, %a
          %c = cmp eq %both, 0
          %ci = cast %c to i64
          call void @assert(%ci)
          ret
        }
        "#
        .into(),
        safe_under_sc: true,
        safe_under_tso: true,
        safe_under_wmm: true, // model restriction: no load buffering
        safe_under_arm: true, // ditto
    }
}

/// Coherence of writes (CoWW order observed by a later reader): after a
/// thread writes 1 then 2 to the same location and exits, a joiner must
/// read 2. Safe in all models (per-location coherence).
pub fn coww() -> Litmus {
    Litmus {
        name: "CoWW",
        source: r#"
        global @x: i32 = 0
        fn @writer(%a: i64) : void {
        bb0:
          store i32 1, @x
          store i32 2, @x
          ret
        }
        fn @main() : void {
        bb0:
          %t = call i64 @spawn(@writer, 0)
          call void @join(%t)
          %v = load i32, @x
          %c = cmp eq %v, 2
          %ci = cast %c to i64
          call void @assert(%ci)
          ret
        }
        "#
        .into(),
        safe_under_sc: true,
        safe_under_tso: true,
        safe_under_wmm: true,
        safe_under_arm: true,
    }
}

/// Write-to-read causality (WRC): T1 writes x; T2 reads x then
/// release-writes y; T3 acquire-reads y then reads x. With the
/// release/acquire chain the stale read of x is forbidden; fully relaxed
/// it is allowed.
pub fn wrc(ra: bool) -> Litmus {
    let (st_ord, ld_ord) = if ra { (" rel", " acq") } else { ("", "") };
    Litmus {
        name: if ra { "WRC+ra" } else { "WRC+plain" },
        source: format!(
            r#"
        global @x: i32 = 0
        global @y: i32 = 0
        fn @t1(%a: i64) : void {{
        bb0:
          store i32 1, @x
          ret
        }}
        fn @t2(%a: i64) : void {{
        bb0:
          br loop
        loop:
          %v = load i32, @x
          %c = cmp eq %v, 0
          condbr %c, loop, seen
        seen:
          store i32 1, @y{st_ord}
          ret
        }}
        fn @main() : void {{
        bb0:
          %a = call i64 @spawn(@t1, 0)
          %b = call i64 @spawn(@t2, 0)
          br loop
        loop:
          %v = load i32, @y{ld_ord}
          %c = cmp eq %v, 0
          condbr %c, loop, seen
        seen:
          %xv = load i32, @x
          call void @assert(%xv)
          call void @join(%a)
          call void @join(%b)
          ret
        }}
        "#
        ),
        safe_under_sc: true,
        safe_under_tso: true,
        safe_under_wmm: ra,
        safe_under_arm: ra,
    }
}

/// RMW atomicity: two concurrent fetch-and-adds never lose an update,
/// under every model.
pub fn rmw_atomicity() -> Litmus {
    Litmus {
        name: "RMW-atomicity",
        source: r#"
        global @c: i64 = 0
        fn @bump(%a: i64) : void {
        bb0:
          %o = rmw add i64 @c, 1 rlx
          ret
        }
        fn @main() : void {
        bb0:
          %t = call i64 @spawn(@bump, 0)
          %o = rmw add i64 @c, 1 rlx
          call void @join(%t)
          %v = load i64, @c
          %ok = cmp eq %v, 2
          %oki = cast %ok to i64
          call void @assert(%oki)
          ret
        }
        "#
        .into(),
        safe_under_sc: true,
        safe_under_tso: true,
        safe_under_wmm: true,
        safe_under_arm: true,
    }
}

/// The standard suite.
pub fn all() -> Vec<Litmus> {
    vec![
        mp_plain(),
        mp_sc(),
        sb_plain(),
        sb_sc(),
        corr(),
        lb_plain(),
        coww(),
        wrc(false),
        wrc(true),
        rmw_atomicity(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{Checker, ModelKind};

    #[test]
    fn litmus_suite_matches_expectations() {
        for lit in all() {
            let m = lit.module();
            for (model, expect_safe) in [
                (ModelKind::Sc, lit.safe_under_sc),
                (ModelKind::Tso, lit.safe_under_tso),
                (ModelKind::Wmm, lit.safe_under_wmm),
                (ModelKind::Arm, lit.safe_under_arm),
            ] {
                let v = Checker::new(model).check(&m, "main");
                let safe = v.violation.is_none();
                assert_eq!(
                    safe, expect_safe,
                    "{} under {model}: expected safe={expect_safe}, got {v}",
                    lit.name
                );
                assert!(!v.truncated, "{} under {model} truncated", lit.name);
            }
        }
    }
}
