//! Flat-memory layout shared by the model checker and the interpreter.
//!
//! Every scalar (integer or pointer) occupies one address unit ("slot").
//! The address space is partitioned into globals, heap, and per-thread
//! stacks so the executor can tell thread-private stack traffic from
//! shared accesses.

use atomig_mir::{GlobalId, Module, Type};

/// Base address of the globals segment.
pub const GLOBAL_BASE: u64 = 0x1000;
/// Base address of the heap segment.
pub const HEAP_BASE: u64 = 0x1000_0000;
/// Base address of the stack segment.
pub const STACK_BASE: u64 = 0x8000_0000;
/// Stack bytes (slots) reserved per thread.
pub const STACK_SIZE: u64 = 0x10_000;

/// Base of thread `tid`'s stack.
pub fn stack_base(tid: usize) -> u64 {
    STACK_BASE + tid as u64 * STACK_SIZE
}

/// Which thread's stack (if any) contains `addr`.
pub fn stack_owner(addr: u64) -> Option<usize> {
    if addr < STACK_BASE {
        return None;
    }
    Some(((addr - STACK_BASE) / STACK_SIZE) as usize)
}

/// Precomputed sizes and global addresses of a module.
#[derive(Debug, Clone)]
pub struct Layout {
    struct_sizes: Vec<u32>,
    global_base: Vec<u64>,
    globals_end: u64,
}

impl Layout {
    /// Computes the layout of `m`.
    pub fn new(m: &Module) -> Layout {
        let struct_sizes = m.struct_slot_sizes();
        let mut global_base = Vec::with_capacity(m.globals.len());
        let mut next = GLOBAL_BASE;
        for g in &m.globals {
            global_base.push(next);
            next += g.ty.slot_count(&struct_sizes).max(1) as u64;
        }
        Layout {
            struct_sizes,
            global_base,
            globals_end: next,
        }
    }

    /// Slots occupied by `ty`.
    pub fn slots(&self, ty: &Type) -> u64 {
        ty.slot_count(&self.struct_sizes) as u64
    }

    /// Address of global `g`.
    pub fn global_addr(&self, g: GlobalId) -> u64 {
        self.global_base[g.0 as usize]
    }

    /// One-past-the-end of the globals segment.
    pub fn globals_end(&self) -> u64 {
        self.globals_end
    }

    /// Initial `(addr, value)` pairs for all non-zero global slots.
    pub fn initial_values<'a>(&'a self, m: &'a Module) -> impl Iterator<Item = (u64, i64)> + 'a {
        m.globals.iter().enumerate().flat_map(move |(gi, g)| {
            let base = self.global_base[gi];
            g.init
                .iter()
                .enumerate()
                .filter(|(_, v)| **v != 0)
                .map(move |(si, v)| (base + si as u64, *v))
        })
    }
}

/// Computes the flat slot offset for a GEP index path, starting at
/// `base_ty`. The first index scales whole `base_ty` objects; subsequent
/// indices navigate struct fields / array elements. Returns the offset and
/// needs the module for struct field types.
pub fn gep_offset(m: &Module, layout: &Layout, base_ty: &Type, indices: &[i64]) -> u64 {
    let mut off: i64 = 0;
    let mut cur = base_ty.clone();
    for (i, &idx) in indices.iter().enumerate() {
        if i == 0 {
            off += idx * layout.slots(&cur) as i64;
            continue;
        }
        match &cur {
            Type::Struct(sid) => {
                let fields = &m.strukt(*sid).fields;
                let fi = idx.clamp(0, fields.len() as i64 - 1) as usize;
                let prefix: u64 = fields[..fi].iter().map(|t| layout.slots(t)).sum();
                off += prefix as i64;
                cur = fields[fi].clone();
            }
            Type::Array(elem, _) => {
                off += idx * layout.slots(elem) as i64;
                cur = (**elem).clone();
            }
            other => {
                // Pointer arithmetic on a scalar: scale by its size (1).
                off += idx * layout.slots(other).max(1) as i64;
            }
        }
    }
    off as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomig_mir::parse_module;

    #[test]
    fn globals_are_laid_out_sequentially() {
        let m = parse_module(
            r#"
            global @a: i32 = 1
            global @arr: [4 x i64] = [1, 2, 3, 4]
            global @b: i32 = 9
            fn @f() : void {
            bb0:
              ret
            }
            "#,
        )
        .unwrap();
        let l = Layout::new(&m);
        assert_eq!(l.global_addr(GlobalId(0)), GLOBAL_BASE);
        assert_eq!(l.global_addr(GlobalId(1)), GLOBAL_BASE + 1);
        assert_eq!(l.global_addr(GlobalId(2)), GLOBAL_BASE + 5);
        assert_eq!(l.globals_end(), GLOBAL_BASE + 6);
    }

    #[test]
    fn initial_values_skip_zeros() {
        let m = parse_module(
            r#"
            global @a: i32 = 0
            global @arr: [3 x i32] = [0, 7, 0]
            fn @f() : void {
            bb0:
              ret
            }
            "#,
        )
        .unwrap();
        let l = Layout::new(&m);
        let vals: Vec<(u64, i64)> = l.initial_values(&m).collect();
        assert_eq!(vals, vec![(GLOBAL_BASE + 2, 7)]);
    }

    #[test]
    fn gep_offsets_into_structs_and_arrays() {
        let m = parse_module(
            r#"
            struct %Inner { i32, i32 }
            struct %Node { i64, %Inner, [3 x i32] }
            fn @f() : void {
            bb0:
              ret
            }
            "#,
        )
        .unwrap();
        let l = Layout::new(&m);
        let node = Type::Struct(atomig_mir::StructId(1));
        // node[0].field0 -> 0
        assert_eq!(gep_offset(&m, &l, &node, &[0, 0]), 0);
        // node[0].inner.y -> 1 + 1 = 2
        assert_eq!(gep_offset(&m, &l, &node, &[0, 1, 1]), 2);
        // node[0].arr[2] -> 1 + 2 + 2 = 5
        assert_eq!(gep_offset(&m, &l, &node, &[0, 2, 2]), 5);
        // node[1].field0 -> sizeof(Node) = 6
        assert_eq!(gep_offset(&m, &l, &node, &[1, 0]), 6);
    }

    #[test]
    fn stack_regions_are_disjoint_per_thread() {
        assert_eq!(stack_owner(stack_base(0)), Some(0));
        assert_eq!(stack_owner(stack_base(3) + 100), Some(3));
        assert_eq!(stack_owner(GLOBAL_BASE), None);
        assert_eq!(stack_owner(HEAP_BASE), None);
        assert!(stack_base(1) - stack_base(0) == STACK_SIZE);
    }
}
