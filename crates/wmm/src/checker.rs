//! A bounded-exhaustive model checker over the operational memory models —
//! the reproduction's stand-in for GenMC (§4.1).
//!
//! The checker explores every interleaving of *visible* actions (shared
//! memory accesses, fences, spawn/join/barrier) of every thread, every
//! TSO buffer-flush point, and every eligible write a WMM load can read.
//! Revisited states (by 128-bit fingerprint) are pruned, which also makes
//! spinloops converge: spinning without new writes revisits the same
//! state. A violation is an `assert(0)`, a trap, or a deadlock.

use crate::exec::{Failure, Machine, StepOutcome};
use crate::models::{Chooser, MemModel, ScMem, TsoMem, ViewMem};
use atomig_mir::Module;
use std::collections::HashSet;

/// Which memory model to check under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Sequential consistency.
    Sc,
    /// x86-TSO (store buffers).
    Tso,
    /// Weak memory (the view machine) with C11-flavoured strong SC
    /// accesses.
    Wmm,
    /// Weak memory with Arm-flavoured SC accesses (`LDAR`/`STLR` as
    /// release/acquire only; explicit fences are full barriers). The
    /// model Table 2 is checked under.
    Arm,
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ModelKind::Sc => "SC",
            ModelKind::Tso => "TSO",
            ModelKind::Wmm => "WMM",
            ModelKind::Arm => "ARM",
        })
    }
}

/// Checker limits.
#[derive(Debug, Clone)]
pub struct CheckerConfig {
    /// Memory model to explore.
    pub model: ModelKind,
    /// Abort exploration after this many distinct states.
    pub max_states: usize,
    /// Abort a single path after this many visible steps.
    pub max_depth: u64,
    /// Worker threads sharding the frontier expansion. The verdict —
    /// violation, state/execution/revisit counts, peak tracked — is
    /// identical for any value: workers only *expand* states, and the
    /// results are merged into the visited set in frontier order.
    pub jobs: usize,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        CheckerConfig {
            model: ModelKind::Wmm,
            max_states: 2_000_000,
            max_depth: 20_000,
            jobs: atomig_par::available_parallelism(),
        }
    }
}

impl CheckerConfig {
    /// A config for the given model with default limits.
    pub fn for_model(model: ModelKind) -> CheckerConfig {
        CheckerConfig {
            model,
            ..CheckerConfig::default()
        }
    }
}

/// The result of an exploration.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// The first failure found, if any.
    pub violation: Option<Failure>,
    /// Distinct states visited.
    pub states: usize,
    /// Completed executions (all threads finished).
    pub executions: u64,
    /// States reached again through a different interleaving and pruned.
    pub revisits: u64,
    /// Peak number of frontier states tracked at once.
    pub peak_tracked: usize,
    /// True if limits cut the exploration short.
    pub truncated: bool,
}

impl Verdict {
    /// `true` when no violation was found and the exploration completed.
    pub fn passed(&self) -> bool {
        self.violation.is_none() && !self.truncated
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.violation {
            Some(v) => write!(
                f,
                "VIOLATION: {v} ({} states, {} revisits, peak {} tracked)",
                self.states, self.revisits, self.peak_tracked
            ),
            None if self.truncated => write!(
                f,
                "TRUNCATED after {} states ({} revisits, peak {} tracked)",
                self.states, self.revisits, self.peak_tracked
            ),
            None => write!(
                f,
                "PASS ({} states, {} executions, {} revisits, peak {} tracked)",
                self.states, self.executions, self.revisits, self.peak_tracked
            ),
        }
    }
}

/// Replays a fixed prefix of choices, then defaults to 0, recording every
/// decision point.
struct ReplayChooser {
    preset: Vec<usize>,
    cursor: usize,
    /// `(taken, alternatives)` for every decision point hit.
    log: Vec<(usize, usize)>,
}

impl ReplayChooser {
    fn new(preset: Vec<usize>) -> Self {
        ReplayChooser {
            preset,
            cursor: 0,
            log: Vec::new(),
        }
    }
}

impl Chooser for ReplayChooser {
    fn choose(&mut self, n: usize) -> usize {
        let pick = if self.cursor < self.preset.len() {
            self.preset[self.cursor].min(n - 1)
        } else {
            0
        };
        self.cursor += 1;
        self.log.push((pick, n));
        pick
    }
}

/// One schedulable option in a state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SchedChoice {
    /// Run thread `tid` for one visible step.
    Step(usize),
    /// Perform one internal memory step (TSO flush) for `tid`.
    Internal(usize),
}

/// The model checker.
#[derive(Debug, Clone, Default)]
pub struct Checker {
    /// Limits and model selection.
    pub config: CheckerConfig,
}

impl Checker {
    /// Creates a checker for `model` with default limits.
    pub fn new(model: ModelKind) -> Checker {
        Checker {
            config: CheckerConfig::for_model(model),
        }
    }

    /// Explores `entry` (usually `"main"`) of `module` exhaustively.
    ///
    /// # Panics
    ///
    /// Panics if `entry` does not exist.
    pub fn check(&self, module: &Module, entry: &str) -> Verdict {
        let fid = module
            .func_by_name(entry)
            .unwrap_or_else(|| panic!("no function @{entry}"));
        match self.config.model {
            ModelKind::Sc => self.explore(Machine::new(module, fid, vec![], ScMem::default())),
            ModelKind::Tso => self.explore(Machine::new(module, fid, vec![], TsoMem::default())),
            ModelKind::Wmm => self.explore(Machine::new(module, fid, vec![], ViewMem::default())),
            ModelKind::Arm => self.explore(Machine::new(module, fid, vec![], ViewMem::arm())),
        }
    }

    /// Round-based frontier exploration. Each round, the frontier is
    /// expanded by the worker pool (an embarrassingly parallel,
    /// shared-state-free step) and the per-state [`Expanded`] results are
    /// merged into the visited set *in frontier order*, so the verdict is
    /// byte-identical for any `jobs` value. Terminal events (failure,
    /// deadlock) end the exploration at the lowest frontier index that
    /// produced one.
    fn explore<'m, M: MemModel + Send + Sync>(&self, mut initial: Machine<'m, M>) -> Verdict {
        let mut visited: HashSet<u128> = HashSet::with_capacity(1 << 16);
        let mut verdict = Verdict {
            violation: None,
            states: 0,
            executions: 0,
            revisits: 0,
            peak_tracked: 0,
            truncated: false,
        };
        initial.mem.gc();
        if !visited.insert(initial.fingerprint()) {
            return verdict;
        }
        verdict.states += 1;
        let pool = atomig_par::WorkerPool::new(self.config.jobs);
        // The frontier holds fresh (deduplicated, counted) states only.
        let mut frontier: Vec<Machine<'m, M>> = vec![initial];

        while !frontier.is_empty() {
            verdict.peak_tracked = verdict.peak_tracked.max(frontier.len());
            // Spawning workers only pays off once the round is wide;
            // narrow rounds expand inline. The merge below is identical
            // either way, so this is purely a latency knob.
            let round_pool = if frontier.len() >= 2 * pool.jobs() {
                pool
            } else {
                atomig_par::WorkerPool::new(1)
            };
            let expansions = round_pool.map(&frontier, |_, machine| self.expand(machine));
            let mut next_frontier: Vec<Machine<'m, M>> = Vec::new();
            for exp in expansions {
                match exp {
                    Expanded::Done => verdict.executions += 1,
                    Expanded::Truncated => verdict.truncated = true,
                    Expanded::Deadlock => {
                        verdict.violation = Some(Failure::Deadlock);
                        return verdict;
                    }
                    Expanded::Failed(failure) => {
                        verdict.violation = failure;
                        return verdict;
                    }
                    Expanded::Successors(succ) => {
                        for (fingerprint, machine) in succ {
                            if verdict.states >= self.config.max_states {
                                verdict.truncated = true;
                                continue;
                            }
                            if visited.insert(fingerprint) {
                                verdict.states += 1;
                                next_frontier.push(machine);
                            } else {
                                verdict.revisits += 1;
                            }
                        }
                    }
                }
            }
            frontier = next_frontier;
        }
        verdict
    }

    /// Expands one frontier state: enumerates every scheduling option and
    /// every inner (read/nondet) choice via preset replay. Pure with
    /// respect to the exploration — touches no shared state, so it can run
    /// on any worker thread.
    fn expand<'m, M: MemModel>(&self, machine: &Machine<'m, M>) -> Expanded<'m, M> {
        if machine.all_done() {
            return Expanded::Done;
        }
        if machine.steps >= self.config.max_depth {
            return Expanded::Truncated;
        }

        // Enumerate scheduling options.
        let mut options: Vec<SchedChoice> = Vec::new();
        for tid in machine.runnable() {
            options.push(SchedChoice::Step(tid));
        }
        for tid in 0..machine.threads.len() {
            if machine.internal_steps(tid) > 0 {
                options.push(SchedChoice::Internal(tid));
            }
        }
        if options.is_empty() {
            return Expanded::Deadlock;
        }

        let mut successors: Vec<(u128, Machine<'m, M>)> = Vec::new();
        for &opt in &options {
            // Enumerate the inner choice tree of this scheduling option
            // via preset replay.
            let mut presets: Vec<Vec<usize>> = vec![Vec::new()];
            while let Some(preset) = presets.pop() {
                let mut next = machine.clone();
                let mut ch = ReplayChooser::new(preset.clone());
                let outcome = match opt {
                    SchedChoice::Step(tid) => next.step_visible(tid, &mut ch),
                    SchedChoice::Internal(tid) => {
                        next.internal_step(tid);
                        StepOutcome::Progress
                    }
                };
                // Fork alternatives for decision points defaulted to 0.
                for i in preset.len()..ch.log.len() {
                    let (_, n) = ch.log[i];
                    for alt in 1..n {
                        let mut p: Vec<usize> = ch.log[..i].iter().map(|(t, _)| *t).collect();
                        p.push(alt);
                        presets.push(p);
                    }
                }
                match outcome {
                    StepOutcome::Failed => {
                        return Expanded::Failed(next.failure.clone());
                    }
                    StepOutcome::Pruned => {}
                    _ => {
                        next.mem.gc();
                        successors.push((next.fingerprint(), next));
                    }
                }
            }
        }
        Expanded::Successors(successors)
    }
}

/// What expanding one frontier state produced. Workers compute these;
/// the coordinating thread merges them in frontier order.
enum Expanded<'m, M: MemModel> {
    /// All threads finished: one completed execution.
    Done,
    /// The path hit the depth limit.
    Truncated,
    /// Nothing runnable and no internal step available.
    Deadlock,
    /// A step failed (assert/trap); carries the failure.
    Failed(Option<Failure>),
    /// Fingerprinted candidate successors, in enumeration order.
    Successors(Vec<(u128, Machine<'m, M>)>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomig_mir::parse_module;

    /// Figure 1 / Figure 5: message passing with plain accesses.
    const MP_PLAIN: &str = r#"
    global @flag: i32 = 0
    global @msg: i32 = 0
    fn @writer(%a: i64) : void {
    bb0:
      store i32 1, @msg
      store i32 1, @flag
      ret
    }
    fn @main() : void {
    bb0:
      %t = call i64 @spawn(@writer, 0)
      br loop
    loop:
      %f = load i32, @flag
      %c = cmp eq %f, 0
      condbr %c, loop, done
    done:
      %m = load i32, @msg
      call void @assert(%m)
      call void @join(%t)
      ret
    }
    "#;

    /// The same with the accesses AtoMig would mark made SC.
    const MP_SC: &str = r#"
    global @flag: i32 = 0
    global @msg: i32 = 0
    fn @writer(%a: i64) : void {
    bb0:
      store i32 1, @msg
      store i32 1, @flag seq_cst
      ret
    }
    fn @main() : void {
    bb0:
      %t = call i64 @spawn(@writer, 0)
      br loop
    loop:
      %f = load i32, @flag seq_cst
      %c = cmp eq %f, 0
      condbr %c, loop, done
    done:
      %m = load i32, @msg
      call void @assert(%m)
      call void @join(%t)
      ret
    }
    "#;

    #[test]
    fn mp_plain_passes_under_sc_and_tso() {
        let m = parse_module(MP_PLAIN).unwrap();
        let sc = Checker::new(ModelKind::Sc).check(&m, "main");
        assert!(sc.passed(), "SC: {sc}");
        let tso = Checker::new(ModelKind::Tso).check(&m, "main");
        assert!(tso.passed(), "TSO: {tso}");
    }

    #[test]
    fn mp_plain_fails_under_wmm() {
        let m = parse_module(MP_PLAIN).unwrap();
        let v = Checker::new(ModelKind::Wmm).check(&m, "main");
        assert!(
            matches!(v.violation, Some(Failure::Assert { .. })),
            "expected assertion violation, got {v}"
        );
    }

    #[test]
    fn mp_sc_passes_under_wmm() {
        let m = parse_module(MP_SC).unwrap();
        let v = Checker::new(ModelKind::Wmm).check(&m, "main");
        assert!(v.passed(), "WMM: {v}");
    }

    /// Store buffering: plain accesses allow r1 = r2 = 0 under TSO already.
    const SB: &str = r#"
    global @x: i32 = 0
    global @y: i32 = 0
    global @r1: i32 = 0
    global @r2: i32 = 0
    fn @t1(%a: i64) : void {
    bb0:
      store i32 1, @x ORD1
      %v = load i32, @y ORD1
      store i32 %v, @r1
      ret
    }
    fn @main() : void {
    bb0:
      store i32 1, @y ORD2
      %v = load i32, @x ORD2
      %t = call i64 @spawn(@t1, 0)
      call void @join(%t)
      %a = load i32, @r1
      %b = add %v, %a
      %c = cmp gt %b, 0
      %ci = cast %c to i64
      call void @assert(%ci)
      ret
    }
    "#;

    // NOTE: the SB test above is sequential w.r.t. spawn (main stores
    // before spawning), so it cannot exhibit SB; the real SB test needs
    // truly concurrent threads:
    const SB_CONCURRENT: &str = r#"
    global @x: i32 = 0
    global @y: i32 = 0
    global @r1: i32 = 0
    fn @t1(%a: i64) : void {
    bb0:
      store i32 1, @x ORD
      %v = load i32, @y ORD
      store i32 %v, @r1
      ret
    }
    fn @main() : void {
    bb0:
      %t = call i64 @spawn(@t1, 0)
      store i32 1, @y ORD
      %v = load i32, @x ORD
      call void @join(%t)
      %a = load i32, @r1
      %b = add %v, %a
      %c = cmp gt %b, 0
      %ci = cast %c to i64
      call void @assert(%ci)
      ret
    }
    "#;

    #[test]
    fn sb_plain_fails_under_tso_and_wmm() {
        let src = SB_CONCURRENT.replace("ORD", "");
        let m = parse_module(&src).unwrap();
        let tso = Checker::new(ModelKind::Tso).check(&m, "main");
        assert!(
            matches!(tso.violation, Some(Failure::Assert { .. })),
            "{tso}"
        );
        let wmm = Checker::new(ModelKind::Wmm).check(&m, "main");
        assert!(
            matches!(wmm.violation, Some(Failure::Assert { .. })),
            "{wmm}"
        );
        // But SC forbids it.
        let sc = Checker::new(ModelKind::Sc).check(&m, "main");
        assert!(sc.passed(), "{sc}");
    }

    #[test]
    fn sb_seqcst_passes_everywhere() {
        let src = SB_CONCURRENT.replace("ORD", "seq_cst");
        let m = parse_module(&src).unwrap();
        for model in [ModelKind::Sc, ModelKind::Tso, ModelKind::Wmm] {
            let v = Checker::new(model).check(&m, "main");
            assert!(v.passed(), "{model}: {v}");
        }
        let _ = SB; // silence unused-const lint for the documented variant
    }

    /// A racy counter without atomics loses updates under every model.
    #[test]
    fn racy_counter_loses_updates() {
        let m = parse_module(
            r#"
            global @c: i64 = 0
            fn @incr(%a: i64) : void {
            bb0:
              %v = load i64, @c
              %n = add %v, 1
              store i64 %n, @c
              ret
            }
            fn @main() : void {
            bb0:
              %t = call i64 @spawn(@incr, 0)
              %v = load i64, @c
              %n = add %v, 1
              store i64 %n, @c
              call void @join(%t)
              %r = load i64, @c
              %ok = cmp eq %r, 2
              %oki = cast %ok to i64
              call void @assert(%oki)
              ret
            }
            "#,
        )
        .unwrap();
        let v = Checker::new(ModelKind::Sc).check(&m, "main");
        assert!(matches!(v.violation, Some(Failure::Assert { .. })), "{v}");
    }

    /// An RMW counter is correct under every model.
    #[test]
    fn rmw_counter_is_exact() {
        let m = parse_module(
            r#"
            global @c: i64 = 0
            fn @incr(%a: i64) : void {
            bb0:
              %o = rmw add i64 @c, 1 seq_cst
              ret
            }
            fn @main() : void {
            bb0:
              %t = call i64 @spawn(@incr, 0)
              %o = rmw add i64 @c, 1 seq_cst
              call void @join(%t)
              %r = load i64, @c seq_cst
              %ok = cmp eq %r, 2
              %oki = cast %ok to i64
              call void @assert(%oki)
              ret
            }
            "#,
        )
        .unwrap();
        for model in [ModelKind::Sc, ModelKind::Tso, ModelKind::Wmm] {
            let v = Checker::new(model).check(&m, "main");
            assert!(v.passed(), "{model}: {v}");
        }
    }

    /// Spinloops converge thanks to state-fingerprint pruning.
    #[test]
    fn spinloop_exploration_terminates() {
        let m = parse_module(MP_SC).unwrap();
        let v = Checker::new(ModelKind::Wmm).check(&m, "main");
        assert!(!v.truncated);
        assert!(v.states < 100_000);
    }

    /// The deterministic-merge contract: the whole verdict — violation,
    /// states, executions, revisits, peak tracked — is identical for any
    /// worker count, on both passing and violating programs.
    #[test]
    fn verdict_is_identical_for_any_job_count() {
        for (src, model) in [(MP_SC, ModelKind::Wmm), (MP_PLAIN, ModelKind::Wmm)] {
            let m = parse_module(src).unwrap();
            let mut baseline = Checker::new(model);
            baseline.config.jobs = 1;
            let want = baseline.check(&m, "main").to_string();
            for jobs in [2, 4, 8] {
                let mut checker = Checker::new(model);
                checker.config.jobs = jobs;
                let got = checker.check(&m, "main").to_string();
                assert_eq!(got, want, "jobs={jobs} diverged");
            }
        }
    }

    #[test]
    fn deadlock_detected() {
        let m = parse_module(
            r#"
            global @l: i32 = 0
            fn @main() : void {
            bb0:
              %o = cmpxchg i32 @l, 0, 1 seq_cst
              br spin
            spin:
              %o2 = cmpxchg i32 @l, 0, 1 seq_cst
              %c = cmp ne %o2, 0
              condbr %c, spin, done
            done:
              ret
            }
            "#,
        )
        .unwrap();
        // Single thread acquires the lock twice: spins forever. All states
        // get explored (the spin converges), no execution completes, and
        // nothing is runnable... actually the spin IS runnable forever but
        // state-pruned; the checker ends with zero completed executions.
        let v = Checker::new(ModelKind::Sc).check(&m, "main");
        assert!(v.violation.is_none());
        assert_eq!(v.executions, 0);
    }
}
