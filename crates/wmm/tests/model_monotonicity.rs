//! The memory models form a behaviour hierarchy: every SC execution is a
//! TSO execution, every TSO execution is a WMM execution, and the
//! Arm-flavoured model only weakens the strong-SC one. Therefore the set
//! of violated assertions must grow monotonically along that chain —
//! checked here on seeded randomly generated two-thread programs.

use atomig_testutil::Rng;
use atomig_wmm::{Checker, ModelKind};
use std::fmt::Write as _;

#[derive(Debug, Clone)]
struct Op {
    is_store: bool,
    var: u8,    // 0 = @x, 1 = @y
    ord: u8,    // 0 plain, 1 rel/acq, 2 seq_cst
    value: i64, // stored value (1..3)
}

fn ord_str(o: u8, is_store: bool) -> &'static str {
    match (o, is_store) {
        (1, true) => " rel",
        (1, false) => " acq",
        (2, _) => " seq_cst",
        _ => "",
    }
}

/// Renders a thread body; loads accumulate into a per-thread result
/// global so the assertion can observe them.
fn render_thread(name: &str, ops: &[Op], result_global: &str) -> String {
    let mut body = String::new();
    let mut loads = 0;
    let mut acc: Vec<String> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        let var = if op.var == 0 { "@x" } else { "@y" };
        if op.is_store {
            let _ = writeln!(
                body,
                "  store i32 {}, {var}{}",
                op.value,
                ord_str(op.ord, true)
            );
        } else {
            let _ = writeln!(body, "  %l{i} = load i32, {var}{}", ord_str(op.ord, false));
            acc.push(format!("%l{i}"));
            loads += 1;
        }
    }
    // result = sum of loads * 10^k (base-10 packing, values < 10).
    if loads > 0 {
        let mut expr_prev = acc[0].clone();
        for (k, l) in acc.iter().enumerate().skip(1) {
            let _ = writeln!(body, "  %m{k} = mul {expr_prev}, 10");
            let _ = writeln!(body, "  %s{k} = add %m{k}, {l}");
            expr_prev = format!("%s{k}");
        }
        let _ = writeln!(body, "  store i32 {expr_prev}, {result_global}");
    }
    format!("fn @{name}(%a: i64) : void {{\nbb0:\n{body}  ret\n}}\n")
}

fn gen_ops(rng: &mut Rng) -> Vec<Op> {
    let len = 1 + rng.gen_usize(3);
    (0..len)
        .map(|_| Op {
            is_store: rng.gen_ratio(1, 2),
            var: rng.gen_usize(2) as u8,
            ord: rng.gen_usize(3) as u8,
            value: rng.gen_range(1..4),
        })
        .collect()
}

#[test]
fn violations_grow_with_model_weakness() {
    let mut rng = Rng::new(0x11170);
    for case in 0..64 {
        let t1 = gen_ops(&mut rng);
        let t2 = gen_ops(&mut rng);
        let limit = rng.gen_range(0..40);
        let mut src = String::from(
            "global @x: i32 = 0\nglobal @y: i32 = 0\nglobal @r1: i32 = 0\nglobal @r2: i32 = 0\n",
        );
        src.push_str(&render_thread("w1", &t1, "@r1"));
        src.push_str(&render_thread("w2", &t2, "@r2"));
        // The assertion: the packed observations stay under a random
        // limit — arbitrary, so some programs violate it even under SC.
        src.push_str(&format!(
            r#"
fn @main() : void {{
bb0:
  %a = call i64 @spawn(@w1, 0)
  %b = call i64 @spawn(@w2, 0)
  call void @join(%a)
  call void @join(%b)
  %v1 = load i32, @r1
  %v2 = load i32, @r2
  %s = add %v1, %v2
  %c = cmp le %s, {limit}
  %ci = cast %c to i64
  call void @assert(%ci)
  ret
}}
"#
        ));
        let m = atomig_mir::parse_module(&src).expect("generated litmus parses");
        atomig_mir::verify_module(&m).expect("verifies");

        let violated = |model: ModelKind| {
            let v = Checker::new(model).check(&m, "main");
            assert!(!v.truncated, "case {case}: {model} truncated");
            v.violation.is_some()
        };
        let sc = violated(ModelKind::Sc);
        let tso = violated(ModelKind::Tso);
        let wmm = violated(ModelKind::Wmm);
        let arm = violated(ModelKind::Arm);
        // Monotonicity: a violation under a stronger model must persist
        // under every weaker one.
        assert!(!sc || tso, "case {case}: violated under SC but not TSO");
        assert!(!tso || wmm, "case {case}: violated under TSO but not WMM");
        assert!(
            !wmm || arm,
            "case {case}: violated under WMM(strong) but not ARM"
        );
    }
}
