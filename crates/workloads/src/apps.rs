//! Workload kernels standing in for the five large applications of
//! Tables 3–5 (MariaDB, PostgreSQL, LevelDB, Memcached, SQLite).
//!
//! Each kernel reproduces the *performance-relevant* structure of its
//! application's hot path — the ratio of thread-synchronization accesses
//! to shared plain accesses to thread-local compute — driven by a
//! workload mimicking the paper's benchmark driver (mtr, pgbench,
//! db_bench, memtier, speedtest). The Table 5 shape this encodes:
//! Naïve hurts most where shared plain accesses dominate (SQLite 2.49,
//! LevelDB 1.66) and least where local work dominates (Memcached 1.01),
//! while AtoMig touches only the synchronization accesses (1.00–1.04
//! everywhere).

/// Application names in Table 3/5 order.
pub const APPS: [&str; 5] = ["mariadb", "postgresql", "leveldb", "memcached", "sqlite"];

/// Returns the MiniC perf program for an application kernel.
///
/// # Panics
///
/// Panics on an unknown application name.
pub fn app_perf(name: &str, scale: u32) -> String {
    match name {
        "mariadb" => mariadb_like(scale),
        "postgresql" => postgres_like(scale),
        "leveldb" => leveldb_like(scale),
        "memcached" => memcached_like(scale),
        "sqlite" => sqlite_like(scale),
        other => panic!("unknown application `{other}`"),
    }
}

/// MariaDB-like: transactions under a table lock plus heavy local query
/// evaluation; also exercises the lf-hash pattern in its dictionary.
pub fn mariadb_like(txns: u32) -> String {
    format!(
        r#"
    int table_lock;
    long rows[64];
    long dict_state; long dict_key;
    long committed;

    void lock_table() {{
        while (cmpxchg_explicit(&table_lock, 0, 1, relaxed) != 0) {{ pause(); }}
    }}
    void unlock_table() {{ table_lock = 0; }}

    long dict_lookup() {{
        long st; long k;
        do {{
            st = dict_state;
            k = dict_key;
        }} while (st != dict_state);
        return k;
    }}

    long evaluate(long seed) {{
        long acc = seed;
        for (int i = 0; i < 8; i++) {{
            acc = acc * 31 + 7;
            acc = acc % 100003;
        }}
        return acc;
    }}

    void session(long seed) {{
        long k = 0;
        for (long t = 0; t < {txns}; t++) {{
            long q = evaluate(seed * 131 + t);
            if (t % 16 == 0) {{ k = dict_lookup(); }}
            lock_table();
            long idx = (q + k) % 56;
            long sum = rows[idx] + rows[idx + 1] + rows[idx + 2]
                + rows[idx + 3] + rows[idx + 4] + rows[idx + 5];
            rows[idx] = sum % 509 + q % 17;
            rows[idx + 1] = rows[idx + 1] + 1;
            unlock_table();
            faa(&committed, 1);
        }}
    }}

    int main() {{
        dict_state = 0;
        dict_key = 42;
        long t1 = spawn(session, 1);
        long t2 = spawn(session, 2);
        join(t1);
        join(t2);
        assert(committed == 2 * {txns});
        return 0;
    }}
    "#
    )
}

/// PostgreSQL-like: pgbench-style transactions over a shared buffer pool
/// with per-buffer spinlocks and moderate executor-local work.
pub fn postgres_like(txns: u32) -> String {
    format!(
        r#"
    int buf_lock[8];
    long buf_page[8][12];
    long wal_pos;
    long done;

    void pin(int b) {{
        while (cmpxchg_explicit(&buf_lock[b], 0, 1, relaxed) != 0) {{ pause(); }}
    }}
    void unpin(int b) {{ buf_lock[b] = 0; }}

    long plan(long seed) {{
        long acc = seed;
        for (int i = 0; i < 12; i++) acc = (acc * 131 + 7) % 99991;
        return acc;
    }}

    void backend(long seed) {{
        for (long t = 0; t < {txns}; t++) {{
            long q = plan(seed + t);
            int b = (int)(q % 8);
            pin(b);
            long s = buf_page[b][0] + buf_page[b][1] + buf_page[b][2]
                + buf_page[b][3] + buf_page[b][4] + buf_page[b][5]
                + buf_page[b][6] + buf_page[b][7] + buf_page[b][8]
                + buf_page[b][9] + buf_page[b][10] + buf_page[b][11];
            buf_page[b][(int)(q % 12)] = s % 1000 + 1;
            unpin(b);
            faa(&wal_pos, 1);
            faa(&done, 1);
        }}
    }}

    int main() {{
        long t1 = spawn(backend, 10);
        long t2 = spawn(backend, 20);
        join(t1);
        join(t2);
        assert(done == 2 * {txns});
        return 0;
    }}
    "#
    )
}

/// LevelDB-like: db_bench-style reads. The memtable index walk (the part
/// AtoMig marks) is a few hops; the dominant work per read is scanning
/// the value block out of the shared block cache (plain shared loads the
/// Naïve port converts) plus local decode work — the reason Naïve costs
/// 1.66x in Table 5 while AtoMig stays near 1.0.
pub fn leveldb_like(ops: u32) -> String {
    format!(
        r#"
    struct SkipNode {{ long key; long val; long next; }};
    long memtable_head;
    long block_cache[256];
    int db_lock;
    long reads_done;

    void db_mutex_lock() {{
        while (cmpxchg_explicit(&db_lock, 0, 1, relaxed) != 0) {{ pause(); }}
    }}
    void db_mutex_unlock() {{ db_lock = 0; }}

    long index_lookup(long key) {{
        struct SkipNode *n = (struct SkipNode*)memtable_head;
        while ((long)n != 0) {{
            if (n->key == key) return n->val;
            if (n->key > key) return 0;
            n = (struct SkipNode*)n->next;
        }}
        return 0;
    }}

    long read_block(long handle) {{
        long base = (handle % 7) * 32;
        long sum = 0;
        for (int i = 0; i < 32; i = i + 8) {{
            long w = block_cache[base + i] + block_cache[base + i + 1]
                + block_cache[base + i + 2] + block_cache[base + i + 3]
                + block_cache[base + i + 4] + block_cache[base + i + 5]
                + block_cache[base + i + 6] + block_cache[base + i + 7];
            sum = sum + (w * 31 + i) % 251;
        }}
        return sum;
    }}

    void insert_sorted(long key, long val) {{
        struct SkipNode *fresh = (struct SkipNode*)malloc(sizeof(struct SkipNode));
        fresh->key = key;
        fresh->val = val;
        db_mutex_lock();
        long prev = 0;
        long cur = memtable_head;
        while (cur != 0 && ((struct SkipNode*)cur)->key < key) {{
            prev = cur;
            cur = ((struct SkipNode*)cur)->next;
        }}
        fresh->next = cur;
        if (prev == 0) {{
            memtable_head = (long)fresh;
        }} else {{
            ((struct SkipNode*)prev)->next = (long)fresh;
        }}
        db_mutex_unlock();
    }}

    void client(long seed) {{
        long found = 0;
        for (long i = 0; i < {ops}; i++) {{
            long key = (seed * 37 + i * 13) % 6 + 1;
            if (i % 16 == 0) {{
                insert_sorted(key, key * 100);
            }} else {{
                long handle = index_lookup(key);
                found = found + read_block(handle + key);
            }}
        }}
        faa(&reads_done, found % 1000);
    }}

    int main() {{
        for (int i = 0; i < 256; i++) block_cache[i] = (i * 97 + 13) % 509;
        insert_sorted(3, 300);
        long t1 = spawn(client, 3);
        long t2 = spawn(client, 5);
        join(t1);
        join(t2);
        return 0;
    }}
    "#
    )
}

/// Memcached-like: memtier-style get/set where request parsing and item
/// copying dominate (thread-local), with short per-bucket locked
/// sections — the reason Naïve costs almost nothing here (Table 5: 1.01).
pub fn memcached_like(requests: u32) -> String {
    format!(
        r#"
    int bucket_lock[4];
    long bucket_key[4][4];
    long bucket_val[4][4];
    long served;

    void block(int b) {{
        while (cmpxchg_explicit(&bucket_lock[b], 0, 1, relaxed) != 0) {{ pause(); }}
    }}
    void bunlock(int b) {{ bucket_lock[b] = 0; }}

    long parse_request(long seed) {{
        long h = seed;
        for (int i = 0; i < 60; i++) {{
            h = h * 33 + i;
            h = h % 1000003;
        }}
        return h;
    }}

    void build_response(long val) {{
        long buf[16];
        for (int i = 0; i < 16; i++) buf[i] = val + i;
        long check = 0;
        for (int i = 0; i < 16; i++) check = check + buf[i];
        if (check == -1) print(check);
    }}

    void conn(long seed) {{
        for (long r = 0; r < {requests}; r++) {{
            long h = parse_request(seed * 7 + r);
            int b = (int)(h % 4);
            int slot = (int)(h % 4);
            if (r % 3 == 0) {{
                block(b);
                bucket_key[b][slot] = h;
                bucket_val[b][slot] = h * 2;
                bunlock(b);
            }} else {{
                block(b);
                long v = 0;
                if (bucket_key[b][slot] == h) v = bucket_val[b][slot];
                bunlock(b);
                build_response(v);
            }}
            faa(&served, 1);
        }}
    }}

    int main() {{
        long t1 = spawn(conn, 11);
        long t2 = spawn(conn, 23);
        join(t1);
        join(t2);
        assert(served == 2 * {requests});
        return 0;
    }}
    "#
    )
}

/// SQLite-like: a serialized B-tree walker whose time is dominated by
/// shared page accesses (why Naïve costs 2.49x in Table 5); one global
/// lock serializes writers.
pub fn sqlite_like(queries: u32) -> String {
    format!(
        r#"
    long btree[128];
    int db_mutex;
    long results;

    void sql_lock() {{
        while (cmpxchg_explicit(&db_mutex, 0, 1, relaxed) != 0) {{ pause(); }}
    }}
    void sql_unlock() {{ db_mutex = 0; }}

    long btree_search(long key) {{
        long idx = 0;
        long acc = 0;
        for (int level = 0; level < 4; level++) {{
            long page = idx * 8 % 96;
            acc = acc + btree[page] + btree[page + 1] + btree[page + 2]
                + btree[page + 3] + btree[page + 4] + btree[page + 5]
                + btree[page + 6] + btree[page + 7];
            idx = (acc + key) % 12;
        }}
        return acc;
    }}

    void connection(long seed) {{
        long acc = 0;
        for (long q = 0; q < {queries}; q++) {{
            long key = (seed * 61 + q * 17) % 200;
            acc = acc + btree_search(key);
            if (q % 16 == 0) {{
                sql_lock();
                btree[(int)(key % 32) + 96] = key;
                sql_unlock();
            }}
        }}
        faa(&results, acc % 1000);
    }}

    int main() {{
        for (int i = 1; i < 128; i++) btree[i] = (i * 73) % 199;
        long t1 = spawn(connection, 9);
        long t2 = spawn(connection, 15);
        join(t1);
        join(t2);
        return 0;
    }}
    "#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile_atomig, compile_baseline, compile_naive, run_cost};

    fn slowdowns(name: &str, scale: u32) -> (f64, f64) {
        let src = app_perf(name, scale);
        let (_, base) = run_cost(&compile_baseline(&src, name), name);
        let (_, naive) = run_cost(&compile_naive(&src, name).0, name);
        let (_, atomig) = run_cost(&compile_atomig(&src, name).0, name);
        (naive as f64 / base as f64, atomig as f64 / base as f64)
    }

    #[test]
    fn all_apps_run_in_all_variants() {
        for name in APPS {
            let (naive, atomig) = slowdowns(name, 30);
            // Small scheduling perturbations (quantum boundaries shifting
            // with the instruction mix) can make a variant a few percent
            // faster; anything below 0.9 would indicate a real bug.
            assert!(naive >= 0.9, "{name}: naive {naive}");
            assert!(atomig >= 0.9, "{name}: atomig {atomig}");
        }
    }

    /// Table 5 shape for the large applications: AtoMig stays within a
    /// few percent everywhere; Naïve is worst on SQLite and LevelDB,
    /// mildest on Memcached.
    #[test]
    fn table5_large_app_shape() {
        let (n_maria, a_maria) = slowdowns("mariadb", 40);
        let (n_pg, a_pg) = slowdowns("postgresql", 40);
        let (n_lvl, a_lvl) = slowdowns("leveldb", 40);
        let (n_mc, a_mc) = slowdowns("memcached", 40);
        let (n_sql, a_sql) = slowdowns("sqlite", 40);
        for (name, a) in [
            ("mariadb", a_maria),
            ("postgresql", a_pg),
            ("leveldb", a_lvl),
            ("memcached", a_mc),
            ("sqlite", a_sql),
        ] {
            assert!(a < 1.15, "{name}: atomig {a}");
        }
        // Naïve ordering: sqlite and leveldb suffer most; memcached least.
        assert!(n_sql > 1.5, "sqlite naive {n_sql}");
        assert!(n_lvl > 1.3, "leveldb naive {n_lvl}");
        assert!(n_mc < 1.15, "memcached naive {n_mc}");
        assert!(n_sql > n_maria && n_sql > n_mc, "{n_sql} {n_maria} {n_mc}");
        assert!(n_lvl > n_mc);
        // AtoMig beats naive on every app.
        for (name, (n, a)) in [
            ("mariadb", (n_maria, a_maria)),
            ("postgresql", (n_pg, a_pg)),
            ("leveldb", (n_lvl, a_lvl)),
            ("memcached", (n_mc, a_mc)),
            ("sqlite", (n_sql, a_sql)),
        ] {
            assert!(a <= n + 0.01, "{name}: atomig {a} vs naive {n}");
        }
    }

    /// Table 4 shape: after the AtoMig port of the memcached kernel, a
    /// single-digit percentage of dynamic accesses are atomic.
    #[test]
    fn table4_memcached_dynamic_counts() {
        let src = memcached_like(60);
        let base = compile_baseline(&src, "memcached");
        let (ported, _) = compile_atomig(&src, "memcached");
        let rb = atomig_wmm::run_default(&base);
        let rp = atomig_wmm::run_default(&ported);
        assert!(rb.ok() && rp.ok());
        // Original: no atomic loads/stores at all (only the lock RMWs).
        assert_eq!(rb.stats.atomic_loads, 0);
        assert_eq!(rb.stats.atomic_stores, 0);
        // Ported: some accesses became atomic, but far fewer than plain.
        assert!(rp.stats.atomic_stores > 0);
        let total_loads = rp.stats.plain_loads + rp.stats.stack_ops + rp.stats.atomic_loads;
        assert!(
            rp.stats.atomic_loads * 5 < total_loads,
            "atomics {} of {total_loads}",
            rp.stats.atomic_loads
        );
    }

    /// The locks in every app kernel are detected as spinloops.
    #[test]
    fn app_locks_are_detected() {
        for name in APPS {
            let (_, report) = compile_atomig(&app_perf(name, 10), name);
            assert!(report.spinloops >= 1, "{name}: {report}");
        }
    }
}
