//! MiniC ports of the Concurrency Kit benchmarks (§4.1, §4.3).
//!
//! Each benchmark provides:
//!
//! * `*_mc()` — a small client with assertions, sized for exhaustive model
//!   checking (Table 2),
//! * `*_perf(iters)` — a deterministic multi-threaded workload for the
//!   cost-model interpreter (Table 5),
//! * `*_expert_perf(iters)` — the upstream expert Arm port, which uses
//!   **explicit** fences (the reason AtoMig's implicit-barrier output beats
//!   it in Table 5).
//!
//! The TSO sources mirror upstream ck's annotation style: `ck_ring` marks
//! its cursors `volatile` (ck_pr casts), `ck_spinlock_cas` uses relaxed
//! atomic builtins, `ck_spinlock_mcs` spins on a *plain* per-node flag
//! (only the tail exchange is a builtin), and `ck_sequence` is entirely
//! plain code — exactly the spread that makes the Table 2 stages differ.

/// The ck_ring SPSC ring buffer, TSO flavour (volatile cursors).
pub fn ring_tso() -> &'static str {
    r#"
    volatile int ring_head;
    volatile int ring_tail;
    int ring_buf[4];

    void ring_enqueue(int v) {
        while (ring_tail - ring_head >= 4) { pause(); }
        ring_buf[ring_tail % 4] = v;
        ring_tail = ring_tail + 1;
    }

    int ring_dequeue() {
        while (ring_head == ring_tail) { pause(); }
        int v = ring_buf[ring_head % 4];
        ring_head = ring_head + 1;
        return v;
    }
    "#
}

/// Model-checking client: producer enqueues 1..=2, consumer asserts FIFO
/// order and value integrity.
pub fn ring_mc() -> String {
    format!(
        r#"{}
    void producer(long n) {{
        ring_enqueue(1);
        ring_enqueue(2);
    }}
    int main() {{
        long t = spawn(producer, 0);
        int a = ring_dequeue();
        assert(a == 1);
        int b = ring_dequeue();
        assert(b == 2);
        join(t);
        return 0;
    }}
    "#,
        ring_tso()
    )
}

/// Performance client: one producer, one consumer, `iters` messages.
pub fn ring_perf(iters: u32) -> String {
    format!(
        r#"{}
    void producer(long n) {{
        for (int i = 1; i <= {iters}; i++) ring_enqueue(i);
    }}
    int main() {{
        long t = spawn(producer, 0);
        long sum = 0;
        for (int i = 1; i <= {iters}; i++) sum = sum + ring_dequeue();
        join(t);
        assert(sum == (long){iters} * ({iters} + 1) / 2);
        return 0;
    }}
    "#,
        ring_tso()
    )
}

/// The expert Arm port of ck_ring: plain cursors with explicit fences
/// (upstream ck uses `ck_pr_fence_store`/`ck_pr_fence_load`).
pub fn ring_expert_perf(iters: u32) -> String {
    format!(
        r#"
    int ring_head;
    int ring_tail;
    int ring_buf[4];

    void ring_enqueue(int v) {{
        while (ring_tail - ring_head >= 4) {{ pause(); }}
        ring_buf[ring_tail % 4] = v;
        fence_explicit(release);
        ring_tail = ring_tail + 1;
    }}

    int ring_dequeue() {{
        while (ring_head == ring_tail) {{ pause(); }}
        fence_explicit(acquire);
        int v = ring_buf[ring_head % 4];
        fence_explicit(release);
        ring_head = ring_head + 1;
        return v;
    }}

    void producer(long n) {{
        for (int i = 1; i <= {iters}; i++) ring_enqueue(i);
    }}
    int main() {{
        long t = spawn(producer, 0);
        long sum = 0;
        for (int i = 1; i <= {iters}; i++) sum = sum + ring_dequeue();
        join(t);
        assert(sum == (long){iters} * ({iters} + 1) / 2);
        return 0;
    }}
    "#
    )
}

/// The ck_spinlock_cas TSO flavour: relaxed atomic builtins (upstream
/// ck_pr_cas / ck_pr_store on x86 compile to plain instructions).
pub fn spinlock_cas_tso() -> &'static str {
    r#"
    int cas_lock_word;
    long cas_counter;

    void cas_lock() {
        while (cmpxchg_explicit(&cas_lock_word, 0, 1, relaxed) != 0) { pause(); }
    }

    void cas_unlock() {
        atomic_store_explicit(&cas_lock_word, 0, relaxed);
    }
    "#
}

/// Model-checking client: two lockers increment a shared counter.
pub fn spinlock_cas_mc() -> String {
    format!(
        r#"{}
    void locker(long n) {{
        cas_lock();
        cas_counter = cas_counter + 1;
        cas_unlock();
    }}
    int main() {{
        long t = spawn(locker, 0);
        cas_lock();
        cas_counter = cas_counter + 1;
        cas_unlock();
        join(t);
        assert(cas_counter == 2);
        return 0;
    }}
    "#,
        spinlock_cas_tso()
    )
}

/// Performance client: `threads` workers, `iters` critical sections each.
pub fn spinlock_cas_perf(threads: u32, iters: u32) -> String {
    format!(
        r#"{}
    void locker(long n) {{
        for (int i = 0; i < {iters}; i++) {{
            cas_lock();
            cas_counter = cas_counter + 1;
            cas_unlock();
        }}
    }}
    int main() {{
        long tids[8];
        for (int t = 0; t < {threads}; t++) tids[t] = spawn(locker, t);
        for (int t = 0; t < {threads}; t++) join(tids[t]);
        assert(cas_counter == (long){threads} * {iters});
        return 0;
    }}
    "#,
        spinlock_cas_tso()
    )
}

/// Expert Arm port of the CAS lock: acquire CAS, explicit release fence
/// before a plain unlock store (upstream `ck_spinlock_cas` Arm barriers).
pub fn spinlock_cas_expert_perf(threads: u32, iters: u32) -> String {
    format!(
        r#"
    int cas_lock_word;
    long cas_counter;

    void cas_lock() {{
        while (cmpxchg_explicit(&cas_lock_word, 0, 1, acquire) != 0) {{ pause(); }}
        fence_explicit(acquire);
    }}

    void cas_unlock() {{
        fence_explicit(release);
        atomic_store_explicit(&cas_lock_word, 0, relaxed);
    }}

    void locker(long n) {{
        for (int i = 0; i < {iters}; i++) {{
            cas_lock();
            cas_counter = cas_counter + 1;
            cas_unlock();
        }}
    }}
    int main() {{
        long tids[8];
        for (int t = 0; t < {threads}; t++) tids[t] = spawn(locker, t);
        for (int t = 0; t < {threads}; t++) join(tids[t]);
        assert(cas_counter == (long){threads} * {iters});
        return 0;
    }}
    "#
    )
}

/// The ck_spinlock_mcs TSO flavour: the tail swap is a builtin (it must
/// be atomic even on x86) but the per-node handoff is plain code.
pub fn spinlock_mcs_tso() -> &'static str {
    r#"
    struct McsNode { int locked; long next; };
    long mcs_tail;
    long mcs_counter;

    void mcs_lock(struct McsNode *me) {
        me->locked = 0;
        me->next = 0;
        long prev = xchg(&mcs_tail, (long)me);
        if (prev != 0) {
            struct McsNode *p = (struct McsNode*)prev;
            p->next = (long)me;
            while (me->locked == 0) { pause(); }
        }
    }

    void mcs_unlock(struct McsNode *me) {
        if (me->next == 0) {
            if (cmpxchg(&mcs_tail, (long)me, 0) == (long)me) return;
            while (me->next == 0) { pause(); }
        }
        struct McsNode *s = (struct McsNode*)me->next;
        s->locked = 1;
    }
    "#
}

/// Model-checking client for the MCS lock.
pub fn spinlock_mcs_mc() -> String {
    format!(
        r#"{}
    void locker(long n) {{
        struct McsNode *me = (struct McsNode*)malloc(sizeof(struct McsNode));
        mcs_lock(me);
        mcs_counter = mcs_counter + 1;
        mcs_unlock(me);
    }}
    int main() {{
        long t = spawn(locker, 0);
        struct McsNode *me = (struct McsNode*)malloc(sizeof(struct McsNode));
        mcs_lock(me);
        mcs_counter = mcs_counter + 1;
        mcs_unlock(me);
        join(t);
        assert(mcs_counter == 2);
        return 0;
    }}
    "#,
        spinlock_mcs_tso()
    )
}

/// Performance client for the MCS lock.
pub fn spinlock_mcs_perf(threads: u32, iters: u32) -> String {
    format!(
        r#"{}
    void locker(long n) {{
        struct McsNode *me = (struct McsNode*)malloc(sizeof(struct McsNode));
        for (int i = 0; i < {iters}; i++) {{
            mcs_lock(me);
            mcs_counter = mcs_counter + 1;
            mcs_unlock(me);
        }}
    }}
    int main() {{
        long tids[8];
        for (int t = 0; t < {threads}; t++) tids[t] = spawn(locker, t);
        for (int t = 0; t < {threads}; t++) join(tids[t]);
        assert(mcs_counter == (long){threads} * {iters});
        return 0;
    }}
    "#,
        spinlock_mcs_tso()
    )
}

/// Expert Arm port of the MCS lock (explicit fences on the handoff).
pub fn spinlock_mcs_expert_perf(threads: u32, iters: u32) -> String {
    format!(
        r#"
    struct McsNode {{ int locked; long next; }};
    long mcs_tail;
    long mcs_counter;

    void mcs_lock(struct McsNode *me) {{
        me->locked = 0;
        me->next = 0;
        long prev = xchg(&mcs_tail, (long)me);
        if (prev != 0) {{
            struct McsNode *p = (struct McsNode*)prev;
            fence_explicit(release);
            p->next = (long)me;
            while (me->locked == 0) {{ pause(); }}
            fence_explicit(acquire);
        }}
    }}

    void mcs_unlock(struct McsNode *me) {{
        if (me->next == 0) {{
            if (cmpxchg(&mcs_tail, (long)me, 0) == (long)me) return;
            while (me->next == 0) {{ pause(); }}
        }}
        fence_explicit(release);
        struct McsNode *s = (struct McsNode*)me->next;
        s->locked = 1;
    }}

    void locker(long n) {{
        struct McsNode *me = (struct McsNode*)malloc(sizeof(struct McsNode));
        for (int i = 0; i < {iters}; i++) {{
            mcs_lock(me);
            mcs_counter = mcs_counter + 1;
            mcs_unlock(me);
        }}
    }}
    int main() {{
        long tids[8];
        for (int t = 0; t < {threads}; t++) tids[t] = spawn(locker, t);
        for (int t = 0; t < {threads}; t++) join(tids[t]);
        assert(mcs_counter == (long){threads} * {iters});
        return 0;
    }}
    "#
    )
}

/// The ck_sequence (seqlock) TSO flavour: entirely plain code.
pub fn sequence_tso() -> &'static str {
    r#"
    int seq_count;
    long seq_val1;
    long seq_val2;

    void seq_write(long v) {
        seq_count = seq_count + 1;
        seq_val1 = v;
        seq_val2 = v;
        seq_count = seq_count + 1;
    }
    "#
}

/// Model-checking client: a consistent snapshot must belong to a single
/// writer generation (value == generation). Kept to one writer round and
/// one data word read in the loop so exhaustive checking stays small.
pub fn sequence_mc() -> String {
    format!(
        r#"{}
    void writer(long n) {{
        seq_write(1);
    }}
    int main() {{
        long t = spawn(writer, 0);
        long a;
        int s1; int s2;
        do {{
            s1 = seq_count;
            a = seq_val1;
            s2 = seq_count;
        }} while (s1 % 2 != 0 || s1 != s2);
        assert(a == s1 / 2);
        join(t);
        return 0;
    }}
    "#,
        sequence_tso()
    )
}

/// Performance client: one writer, one reader, `iters` rounds.
pub fn sequence_perf(iters: u32) -> String {
    format!(
        r#"{}
    void writer(long n) {{
        for (long i = 1; i <= {iters}; i++) seq_write(i);
    }}
    int main() {{
        long t = spawn(writer, 0);
        long a; long b;
        int s1; int s2;
        long checks = 0;
        for (int r = 0; r < {iters}; r++) {{
            do {{
                s1 = seq_count;
                a = seq_val1;
                b = seq_val2;
                s2 = seq_count;
            }} while (s1 % 2 != 0 || s1 != s2);
            assert(a == b);
            checks = checks + 1;
        }}
        join(t);
        assert(checks == {iters});
        return 0;
    }}
    "#,
        sequence_tso()
    )
}

/// Expert Arm port of the seqlock (explicit fences, as upstream).
pub fn sequence_expert_perf(iters: u32) -> String {
    format!(
        r#"
    int seq_count;
    long seq_val1;
    long seq_val2;

    void seq_write(long v) {{
        seq_count = seq_count + 1;
        fence_explicit(release);
        seq_val1 = v;
        seq_val2 = v;
        fence_explicit(release);
        seq_count = seq_count + 1;
    }}

    void writer(long n) {{
        for (long i = 1; i <= {iters}; i++) seq_write(i);
    }}
    int main() {{
        long t = spawn(writer, 0);
        long a; long b;
        int s1; int s2;
        long checks = 0;
        for (int r = 0; r < {iters}; r++) {{
            do {{
                s1 = seq_count;
                fence_explicit(acquire);
                a = seq_val1;
                b = seq_val2;
                fence_explicit(acquire);
                s2 = seq_count;
            }} while (s1 % 2 != 0 || s1 != s2);
            assert(a == b);
            checks = checks + 1;
        }}
        join(t);
        assert(checks == {iters});
        return 0;
    }}
    "#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_arm, compile_stage, STAGES};
    use atomig_core::Stage;

    /// Table 2 expectations per benchmark: (name, [Original, Expl, Spin, AtoMig]).
    fn expect_row(name: &str, src: String, expected: [bool; 4]) {
        for (stage, expect_safe) in STAGES.iter().zip(expected) {
            let (module, _) = compile_stage(&src, name, *stage);
            let v = check_arm(&module);
            assert!(!v.truncated, "{name} at {stage:?} truncated: {v}");
            assert_eq!(
                v.violation.is_none(),
                expect_safe,
                "{name} at {stage:?}: expected safe={expect_safe}, got {v}"
            );
        }
    }

    #[test]
    fn table2_ck_ring_row() {
        expect_row("ck_ring", ring_mc(), [false, true, true, true]);
    }

    #[test]
    fn table2_ck_spinlock_cas_row() {
        expect_row(
            "ck_spinlock_cas",
            spinlock_cas_mc(),
            [false, true, true, true],
        );
    }

    #[test]
    fn table2_ck_spinlock_mcs_row() {
        expect_row(
            "ck_spinlock_mcs",
            spinlock_mcs_mc(),
            [false, false, true, true],
        );
    }

    #[test]
    fn table2_ck_sequence_row() {
        expect_row("ck_sequence", sequence_mc(), [false, false, false, true]);
    }

    #[test]
    fn originals_are_correct_under_tso() {
        // The benchmarks are legacy x86 code: they must pass unported on
        // their home memory model.
        for (name, src) in [
            ("ck_ring", ring_mc()),
            ("ck_spinlock_cas", spinlock_cas_mc()),
            ("ck_spinlock_mcs", spinlock_mcs_mc()),
            ("ck_sequence", sequence_mc()),
        ] {
            let (module, _) = compile_stage(&src, name, Stage::Original);
            let v = atomig_wmm::Checker::new(atomig_wmm::ModelKind::Tso).check(&module, "main");
            assert!(v.passed(), "{name} under TSO: {v}");
        }
    }

    #[test]
    fn perf_programs_run_clean_when_ported() {
        for (name, src) in [
            ("ck_ring", ring_perf(20)),
            ("ck_spinlock_cas", spinlock_cas_perf(2, 20)),
            ("ck_spinlock_mcs", spinlock_mcs_perf(2, 10)),
            ("ck_sequence", sequence_perf(10)),
        ] {
            let (module, report) = compile_stage(&src, name, Stage::Full);
            assert!(report.spinloops > 0, "{name}: no spinloops found");
            let r = atomig_wmm::run_default(&module);
            assert!(r.ok(), "{name}: {:?}", r.failure);
        }
    }

    #[test]
    fn expert_ports_run_clean() {
        for (name, src) in [
            ("ck_ring_expert", ring_expert_perf(20)),
            ("ck_spinlock_cas_expert", spinlock_cas_expert_perf(2, 20)),
            ("ck_spinlock_mcs_expert", spinlock_mcs_expert_perf(2, 10)),
            ("ck_sequence_expert", sequence_expert_perf(10)),
        ] {
            let module = atomig_frontc::compile(&src, name).unwrap();
            // A small quantum forces lock contention so the contended
            // paths (and their fences) actually execute.
            let cfg = atomig_wmm::InterpConfig {
                quantum: 3,
                ..Default::default()
            };
            let r = atomig_wmm::run(&module, &cfg);
            assert!(r.ok(), "{name}: {:?}", r.failure);
            assert!(
                r.stats.fences + r.stats.light_fences > 0,
                "{name}: expert port should fence"
            );
        }
    }
}
