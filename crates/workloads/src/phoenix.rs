//! The Phoenix 2.0 map-reduce kernels of Table 6.
//!
//! "The threads in these programs generally only synchronize using
//! pthread based barriers (i.e., not based on shared memory accesses) in
//! between performing trivially parallel tasks" — so AtoMig's
//! pattern-based port adds (almost) nothing, the Naïve all-SC port slows
//! the kernels in proportion to their *shared*-access density, and the
//! Lasagne-style explicit-fence port is slower still.
//!
//! The five kernels keep their Phoenix access profiles: `histogram` and
//! `string_match` stream shared data per element (high shared density);
//! `kmeans`, `linear_regression` and `matrix_multiply` copy their inputs
//! into thread-private buffers and compute locally (low shared density —
//! the register/cache locality a real `-O2` build gives them).

/// Names in Table 6 order.
pub const KERNELS: [&str; 5] = [
    "histogram",
    "kmeans",
    "linear_regression",
    "matrix_multiply",
    "string_match",
];

/// Returns the MiniC program for `kernel` with `threads` workers.
///
/// # Panics
///
/// Panics on an unknown kernel name.
pub fn kernel(name: &str, threads: u32) -> String {
    match name {
        "histogram" => histogram(threads),
        "kmeans" => kmeans(threads),
        "linear_regression" => linear_regression(threads),
        "matrix_multiply" => matrix_multiply(threads),
        "string_match" => string_match(threads),
        other => panic!("unknown phoenix kernel `{other}`"),
    }
}

/// histogram: every element touches the shared input *and* a shared
/// per-thread bin row — high shared density (Table 6 naive 2.80).
pub fn histogram(threads: u32) -> String {
    let n = 512;
    let m = n * 3;
    format!(
        r#"
    int input[{m}];
    long bins[{threads}][8];
    long total;

    void worker(long tid) {{
        long chunk = {n} / {threads};
        long lo = tid * chunk;
        long hi = lo + chunk;
        barrier_wait({threads});
        long base = lo * 3;
        for (long i = lo; i < hi; i++) {{
            int rb = input[base] % 8;
            int gb = input[base + 1] % 8;
            int bb = input[base + 2] % 8;
            base = base + 3;
            bins[tid][rb] = bins[tid][rb] + 1;
            bins[tid][gb] = bins[tid][gb] + 1;
            bins[tid][bb] = bins[tid][bb] + 1;
        }}
        barrier_wait({threads});
    }}

    int main() {{
        for (int i = 0; i < {m}; i++) input[i] = (i * 37 + 11) % 251;
        long tids[8];
        for (int t = 0; t < {threads}; t++) tids[t] = spawn(worker, t);
        for (int t = 0; t < {threads}; t++) join(tids[t]);
        long sum = 0;
        for (int t = 0; t < {threads}; t++)
            for (int b = 0; b < 8; b++) sum = sum + bins[t][b];
        assert(sum == {n} * 3);
        return 0;
    }}
    "#
    )
}

/// kmeans: points are copied to thread-private buffers; the distance
/// computation is local arithmetic (Table 6 naive 1.07).
pub fn kmeans(threads: u32) -> String {
    let points = 64;
    let dims = 4;
    let clusters = 4;
    format!(
        r#"
    long coords[{n}];
    long centroids[{cn}];
    int assignment[{points}];

    void worker(long tid) {{
        long chunk = {points} / {threads};
        long lo = tid * chunk;
        long hi = lo + chunk;
        long c[{cn}];
        for (int i = 0; i < {cn}; i++) c[i] = centroids[i];
        barrier_wait({threads});
        for (long p = lo; p < hi; p++) {{
            long x[{dims}];
            for (int d = 0; d < {dims}; d++) x[d] = coords[p * {dims} + d];
            long best = 0;
            long bestd = 1000000000;
            for (int k = 0; k < {clusters}; k++) {{
                long dist = 0;
                for (int d = 0; d < {dims}; d++) {{
                    long diff = x[d] - c[k * {dims} + d];
                    dist = dist + diff * diff;
                }}
                if (dist < bestd) {{ bestd = dist; best = k; }}
            }}
            assignment[p] = (int)best;
        }}
        barrier_wait({threads});
    }}

    int main() {{
        for (int i = 0; i < {n}; i++) coords[i] = (i * 13 + 5) % 100;
        for (int i = 0; i < {cn}; i++) centroids[i] = (i * 29 + 3) % 100;
        long tids[8];
        for (int t = 0; t < {threads}; t++) tids[t] = spawn(worker, t);
        for (int t = 0; t < {threads}; t++) join(tids[t]);
        return 0;
    }}
    "#,
        n = points * dims,
        cn = clusters * dims,
    )
}

/// linear_regression: streams the input once into private accumulators
/// that live on the stack (Table 6 naive 1.02).
pub fn linear_regression(threads: u32) -> String {
    let n = 512;
    format!(
        r#"
    long points[{m}];
    long results[{threads}][5];

    void worker(long tid) {{
        long chunk = {n} / {threads};
        long lo = tid * chunk;
        long hi = lo + chunk;
        long buf[16];
        long sx = 0; long sy = 0; long sxx = 0; long syy = 0; long sxy = 0;
        barrier_wait({threads});
        for (long i = lo; i < hi; i = i + 8) {{
            for (int j = 0; j < 16; j++) buf[j] = points[i * 2 + j];
            for (int j = 0; j < 8; j++) {{
                long x = buf[j * 2];
                long y = buf[j * 2 + 1];
                sx = sx + x;
                sy = sy + y;
                sxx = sxx + x * x;
                syy = syy + y * y;
                sxy = sxy + x * y;
            }}
        }}
        results[tid][0] = sx;
        results[tid][1] = sy;
        results[tid][2] = sxx;
        results[tid][3] = syy;
        results[tid][4] = sxy;
        barrier_wait({threads});
    }}

    int main() {{
        for (int i = 0; i < {m}; i++) points[i] = (i * 7 + 1) % 50;
        long tids[8];
        for (int t = 0; t < {threads}; t++) tids[t] = spawn(worker, t);
        for (int t = 0; t < {threads}; t++) join(tids[t]);
        return 0;
    }}
    "#,
        m = n * 2,
    )
}

/// matrix_multiply: each worker copies its row/column panels to private
/// buffers and multiplies locally (Table 6 naive 1.01).
pub fn matrix_multiply(threads: u32) -> String {
    let n = 16;
    format!(
        r#"
    long a[{nn}];
    long b[{nn}];
    long c[{nn}];

    void worker(long tid) {{
        long chunk = {n} / {threads};
        long lo = tid * chunk;
        long hi = lo + chunk;
        long bloc[{nn}];
        for (int i = 0; i < {nn}; i++) bloc[i] = b[i];
        barrier_wait({threads});
        for (long i = lo; i < hi; i++) {{
            long arow[{n}];
            for (int k = 0; k < {n}; k++) arow[k] = a[i * {n} + k];
            for (int j = 0; j < {n}; j++) {{
                long acc = 0;
                for (int k = 0; k < {n}; k++)
                    acc = acc + arow[k] * bloc[k * {n} + j];
                c[i * {n} + j] = acc;
            }}
        }}
        barrier_wait({threads});
    }}

    int main() {{
        for (int i = 0; i < {nn}; i++) {{ a[i] = i % 9 + 1; b[i] = i % 7 + 1; }}
        long tids[8];
        for (int t = 0; t < {threads}; t++) tids[t] = spawn(worker, t);
        for (int t = 0; t < {threads}; t++) join(tids[t]);
        assert(c[0] != 0);
        return 0;
    }}
    "#,
        nn = n * n,
    )
}

/// string_match: compares shared encrypted words against shared keys per
/// character, with a little local bookkeeping (Table 6 naive 1.70).
pub fn string_match(threads: u32) -> String {
    let words = 64;
    let wlen = 8;
    format!(
        r#"
    int dictionary[{m}];
    int keys[{wlen}];
    long matches[{threads}];

    void worker(long tid) {{
        long chunk = {words} / {threads};
        long lo = tid * chunk;
        long hi = lo + chunk;
        long found = 0;
        barrier_wait({threads});
        for (long w = lo; w < hi; w++) {{
            int ok = 1;
            for (int i = 0; i < {wlen}; i++) {{
                int enc = (dictionary[w * {wlen} + i] * 3 + 1) % 97;
                int want = keys[i];
                if (enc != want) {{ ok = 0; }}
            }}
            if (ok) found = found + 1;
        }}
        matches[tid] = found;
        barrier_wait({threads});
    }}

    int main() {{
        for (int i = 0; i < {m}; i++) dictionary[i] = (i * 11 + 3) % 26;
        for (int i = 0; i < {wlen}; i++) keys[i] = (((i + 64 * {wlen}) * 11 + 3) % 26 * 3 + 1) % 97;
        long tids[8];
        for (int t = 0; t < {threads}; t++) tids[t] = spawn(worker, t);
        for (int t = 0; t < {threads}; t++) join(tids[t]);
        return 0;
    }}
    "#,
        m = words * wlen,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile_atomig, compile_baseline, compile_lasagne, compile_naive, run_cost};

    #[test]
    fn all_kernels_run_in_all_variants() {
        for name in KERNELS {
            let src = kernel(name, 2);
            let base = compile_baseline(&src, name);
            let (naive, _) = compile_naive(&src, name);
            let (lasagne, _) = compile_lasagne(&src, name);
            let (atomig, _) = compile_atomig(&src, name);
            run_cost(&base, name);
            run_cost(&naive, name);
            run_cost(&lasagne, name);
            run_cost(&atomig, name);
        }
    }

    /// Table 6 shape: AtoMig ~1.0 on every kernel; naive hurts the
    /// shared-heavy kernels most; Lasagne is worse than naive on average.
    #[test]
    fn table6_shape_holds() {
        let mut naive_prod = 1.0f64;
        let mut lasagne_prod = 1.0f64;
        let mut atomig_prod = 1.0f64;
        let mut count = 0;
        for name in KERNELS {
            let src = kernel(name, 2);
            let (_, base_cost) = run_cost(&compile_baseline(&src, name), name);
            let (_, naive_cost) = run_cost(&compile_naive(&src, name).0, name);
            let (_, lasagne_cost) = run_cost(&compile_lasagne(&src, name).0, name);
            let (_, atomig_cost) = run_cost(&compile_atomig(&src, name).0, name);
            let naive = naive_cost as f64 / base_cost as f64;
            let lasagne = lasagne_cost as f64 / base_cost as f64;
            let atomig = atomig_cost as f64 / base_cost as f64;
            assert!(atomig < 1.10, "{name}: atomig {atomig}");
            assert!(
                naive >= atomig - 0.01,
                "{name}: naive {naive} < atomig {atomig}"
            );
            naive_prod *= naive;
            lasagne_prod *= lasagne;
            atomig_prod *= atomig;
            count += 1;
        }
        let g = 1.0 / count as f64;
        let (naive_gm, lasagne_gm, atomig_gm) = (
            naive_prod.powf(g),
            lasagne_prod.powf(g),
            atomig_prod.powf(g),
        );
        // Paper geomeans: naive 1.39, lasagne 1.73, atomig 1.01.
        assert!(atomig_gm < 1.05, "atomig geomean {atomig_gm}");
        assert!(naive_gm > 1.15, "naive geomean {naive_gm}");
        assert!(
            lasagne_gm > naive_gm,
            "lasagne {lasagne_gm} should exceed naive {naive_gm}"
        );
    }

    /// histogram and string_match are the shared-heavy kernels: naive
    /// hits them hardest (paper: 2.80 and 1.70 vs ~1.0 for the others).
    #[test]
    fn naive_hits_shared_heavy_kernels_hardest() {
        let slow = |name: &str| {
            let src = kernel(name, 2);
            let (_, b) = run_cost(&compile_baseline(&src, name), name);
            let (_, n) = run_cost(&compile_naive(&src, name).0, name);
            n as f64 / b as f64
        };
        let hist = slow("histogram");
        let sm = slow("string_match");
        let mm = slow("matrix_multiply");
        let lr = slow("linear_regression");
        let km = slow("kmeans");
        // Paper: histogram 2.80 and string_match 1.70 are the big losers;
        // kmeans 1.07, linear_regression 1.02, matrix_multiply 1.01 are
        // barely affected. Our magnitudes are smaller (cost-model charges
        // loop arithmetic the real -O2 hides) but the ordering holds.
        assert!(hist > 1.5, "histogram naive {hist}");
        assert!(sm > 1.2, "string_match naive {sm}");
        assert!(mm < 1.25, "matrix_multiply naive {mm}");
        assert!(lr < 1.40, "linear_regression naive {lr}");
        assert!(km < 1.40, "kmeans naive {km}");
        assert!(hist > mm + 0.3 && hist > lr + 0.3 && hist > km + 0.3);
        assert!(sm > mm && sm > lr);
    }
}
