//! The MariaDB lock-free hash (Figure 7) — the benchmark on which AtoMig
//! found a real WMM bug (MDEV-27088).
//!
//! `l_find` snapshots a node's `state` and `key` optimistically and
//! retries if `state` changed; `l_delete` invalidates the node with a CAS
//! and then clears the key. On TSO the snapshot is sound; on WMM the key
//! read can pair with a stale state read, observing `state == VALID` with
//! `key == NULL` — the paper's Figure 7. Making `state` SC (the Spin
//! stage) is not enough on Arm-flavoured hardware; the explicit fences of
//! the optimistic-control transformation are required.

/// Node state: present and readable.
pub const VALID: i64 = 1;
/// Node state: logically deleted.
pub const INVALID: i64 = 2;

/// The TSO source of the lf-hash core.
pub fn lf_hash_tso() -> &'static str {
    r#"
    struct LfNode { long state; long key; };

    long l_find(struct LfNode *n) {
        long st; long k;
        do {
            st = n->state;
            k = n->key;
        } while (st != n->state);
        if (st == 1) {
            assert(k != 0);
        }
        return k;
    }

    void l_delete(struct LfNode *n) {
        if (cmpxchg_explicit(&n->state, 1, 2, relaxed) == 1) {
            n->key = 0;
        }
    }
    "#
}

/// Model-checking client: one finder races one deleter on a single node.
pub fn lf_hash_mc() -> String {
    format!(
        r#"{}
    void deleter(long addr) {{
        l_delete((struct LfNode*)addr);
    }}
    int main() {{
        struct LfNode *n = (struct LfNode*)malloc(sizeof(struct LfNode));
        n->state = 1;
        n->key = 77;
        long t = spawn(deleter, (long)n);
        long k = l_find(n);
        join(t);
        return 0;
    }}
    "#,
        lf_hash_tso()
    )
}

/// Performance client: a small table of nodes; one mutator deletes and
/// re-inserts while two searchers scan (the paper's "parallel searches,
/// insertions and deletions").
pub fn lf_hash_perf(nodes: u32, rounds: u32) -> String {
    format!(
        r#"
    struct LfNode {{ long state; long key; }};
    long table[{nodes}];
    long found_total;

    long l_find(struct LfNode *n) {{
        long st; long k;
        do {{
            st = n->state;
            k = n->key;
        }} while (st != n->state);
        if (st == 1) {{
            assert(k != 0);
        }}
        return k;
    }}

    void l_delete(struct LfNode *n) {{
        if (cmpxchg_explicit(&n->state, 1, 2, relaxed) == 1) {{
            n->key = 0;
        }}
    }}

    void l_insert(struct LfNode *n, long key) {{
        n->key = key;
        atomic_store_explicit(&n->state, 1, relaxed);
    }}

    void mutator(long rounds) {{
        for (long r = 0; r < rounds; r++) {{
            for (int i = 0; i < {nodes}; i++) {{
                long h = hash_key(r + i);
                struct LfNode *n = (struct LfNode*)table[(h + i) % {nodes}];
                l_delete(n);
                l_insert(n, r * {nodes} + i + 1);
            }}
        }}
    }}

    long hash_key(long k) {{
        long h = k;
        for (int i = 0; i < 6; i++) {{
            h = h * 31 + 17;
            h = h % 1000003;
        }}
        return h;
    }}

    void searcher(long rounds) {{
        long acc = 0;
        for (long r = 0; r < rounds; r++) {{
            for (int i = 0; i < {nodes}; i++) {{
                long h = hash_key(r * {nodes} + i);
                acc = acc + l_find((struct LfNode*)table[(h + i) % {nodes}]);
            }}
        }}
        faa(&found_total, acc);
    }}

    int main() {{
        for (int i = 0; i < {nodes}; i++) {{
            struct LfNode *n = (struct LfNode*)malloc(sizeof(struct LfNode));
            n->state = 1;
            n->key = i + 1;
            table[i] = (long)n;
        }}
        long m = spawn(mutator, {rounds});
        long s1 = spawn(searcher, {rounds});
        long s2 = spawn(searcher, {rounds});
        join(m);
        join(s1);
        join(s2);
        return 0;
    }}
    "#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_arm, compile_stage, STAGES};
    use atomig_core::Stage;

    /// Table 2, lf-hash row: x x x Y.
    #[test]
    fn table2_lf_hash_row() {
        let expected = [false, false, false, true];
        for (stage, expect_safe) in STAGES.iter().zip(expected) {
            let (module, _) = compile_stage(&lf_hash_mc(), "lf_hash", *stage);
            let v = check_arm(&module);
            assert!(!v.truncated, "lf-hash at {stage:?} truncated: {v}");
            assert_eq!(
                v.violation.is_none(),
                expect_safe,
                "lf-hash at {stage:?}: expected safe={expect_safe}, got {v}"
            );
        }
    }

    /// The original is correct on its home model (TSO): the bug is
    /// genuinely a WMM porting bug, as the paper reports.
    #[test]
    fn lf_hash_correct_under_tso() {
        let (module, _) = compile_stage(&lf_hash_mc(), "lf_hash", Stage::Original);
        let v = atomig_wmm::Checker::new(atomig_wmm::ModelKind::Tso).check(&module, "main");
        assert!(v.passed(), "lf-hash under TSO: {v}");
    }

    /// The AtoMig port detects the optimistic loop and inserts fences.
    #[test]
    fn atomig_port_adds_fences() {
        let (_, report) = compile_stage(&lf_hash_mc(), "lf_hash", Stage::Full);
        // The loop is counted twice: once in @l_find itself and once in
        // the copy inlined into @main (§3.5 inlining happens first).
        assert!(report.spinloops >= 1);
        assert!(report.optiloops >= 1);
        assert_eq!(report.spinloops, report.optiloops);
        assert!(report.explicit_barriers_added >= 3);
    }

    /// The ported perf client runs to completion (snapshot assertion
    /// holds under the interpreter's SC execution).
    #[test]
    fn perf_client_runs() {
        let (module, _) = compile_stage(&lf_hash_perf(4, 10), "lf_hash_perf", Stage::Full);
        let r = atomig_wmm::run_default(&module);
        assert!(r.ok(), "{:?}", r.failure);
        assert!(r.stats.rmws > 0);
    }
}
