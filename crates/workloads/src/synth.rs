//! The synthetic-codebase generator behind the Table 3 reproduction.
//!
//! Real multi-million-line sources are not available here, so each
//! application is replaced by a seeded, deterministic MiniC codebase with
//! the same *pattern census* at a configurable scale (1:100 by default):
//! the right number of spinloops (message-passing waiters and test-and-set
//! locks), optimistic (seqlock) loops, pre-existing atomics, `volatile`
//! globals, inline-assembly fences, plus non-spinloop decoys (bounded
//! polls and sequential scans) that a sound detector must *not* flag, and
//! plain compute functions to reach the SLOC budget.

use crate::profiles::AppProfile;
use atomig_testutil::Rng;
use std::fmt::Write as _;

/// What to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenConfig {
    /// Message-passing spin waiters.
    pub mp_waiters: u32,
    /// Test-and-set locks (their acquire loops are also spinloops).
    pub tas_locks: u32,
    /// Seqlock (optimistic) reader/writer pairs.
    pub seqlocks: u32,
    /// Pre-existing atomic accesses (relaxed builtins).
    pub atomics: u32,
    /// Volatile globals with accessors.
    pub volatiles: u32,
    /// x86 inline-assembly fences.
    pub asm_fences: u32,
    /// Non-spinloop decoys (bounded polls, sequential scans).
    pub decoys: u32,
    /// Plain compute functions (SLOC filler).
    pub plain_funcs: u32,
    /// RNG seed (determinism).
    pub seed: u64,
}

impl GenConfig {
    /// Derives a generation config from a Table 3 profile at `1:scale`.
    pub fn from_profile(p: &AppProfile, scale: u32) -> GenConfig {
        let div = |x: u32| (x / scale).max(1);
        let spin = div(p.spinloops);
        // Roughly half the spinloops are lock acquires, half MP waits.
        let tas = (spin / 2).max(1);
        let mp = spin.saturating_sub(tas).max(1);
        // ~14 SLOC per plain function; patterns cover the rest.
        let sloc_budget = (p.sloc / scale as u64) as u32;
        let pattern_sloc = (mp + tas) * 10 + div(p.optiloops) * 18 + div(p.orig_bimpl) * 6;
        let plain_funcs = sloc_budget.saturating_sub(pattern_sloc) / 14;
        GenConfig {
            mp_waiters: mp,
            tas_locks: tas,
            seqlocks: div(p.optiloops),
            atomics: div(p.orig_bimpl),
            volatiles: div(p.orig_bimpl) / 4 + 1,
            asm_fences: div(p.orig_bexpl),
            decoys: spin / 2 + 2,
            plain_funcs,
            seed: 0xA70_316 + p.sloc,
        }
    }

    /// Total spinloops a correct detector should report (MP waits, TAS
    /// acquires, and seqlock readers are all spinloops).
    pub fn expected_spinloops(&self) -> u32 {
        self.mp_waiters + self.tas_locks + self.seqlocks
    }

    /// Optimistic loops a correct detector should report.
    pub fn expected_optiloops(&self) -> u32 {
        self.seqlocks
    }
}

/// A generated codebase.
#[derive(Debug, Clone)]
pub struct GeneratedApp {
    /// The MiniC source.
    pub source: String,
    /// The configuration it was generated from.
    pub config: GenConfig,
    /// Non-blank source lines.
    pub sloc: usize,
}

/// Generates a deterministic synthetic codebase.
pub fn generate(config: GenConfig) -> GeneratedApp {
    let mut rng = Rng::new(config.seed);
    let mut out = String::new();

    for i in 0..config.mp_waiters {
        let c: i64 = rng.gen_range(1..100);
        let _ = write!(
            out,
            r#"
int mp_flag_{i};
long mp_data_{i};
void mp_wait_{i}() {{
    while (mp_flag_{i} == 0) {{ pause(); }}
}}
void mp_publish_{i}(long v) {{
    mp_data_{i} = v + {c};
    mp_flag_{i} = 1;
}}
"#
        );
    }

    for i in 0..config.tas_locks {
        let _ = write!(
            out,
            r#"
int tas_lock_{i};
long tas_guarded_{i};
void tas_acquire_{i}() {{
    while (cmpxchg_explicit(&tas_lock_{i}, 0, 1, relaxed) != 0) {{ pause(); }}
}}
void tas_release_{i}() {{
    tas_lock_{i} = 0;
}}
void tas_update_{i}(long v) {{
    tas_acquire_{i}();
    tas_guarded_{i} = tas_guarded_{i} + v;
    tas_release_{i}();
}}
"#
        );
    }

    for i in 0..config.seqlocks {
        let _ = write!(
            out,
            r#"
int sl_seq_{i};
long sl_val_{i};
void sl_write_{i}(long v) {{
    sl_seq_{i} = sl_seq_{i} + 1;
    sl_val_{i} = v;
    sl_seq_{i} = sl_seq_{i} + 1;
}}
long sl_read_{i}() {{
    long v;
    int s1; int s2;
    do {{
        s1 = sl_seq_{i};
        v = sl_val_{i};
        s2 = sl_seq_{i};
    }} while (s1 % 2 != 0 || s1 != s2);
    return v;
}}
"#
        );
    }

    for i in 0..config.atomics {
        let _ = write!(
            out,
            r#"
long at_counter_{i};
long at_bump_{i}(long v) {{
    return faa_explicit(&at_counter_{i}, v, relaxed);
}}
"#
        );
    }

    for i in 0..config.volatiles {
        let _ = write!(
            out,
            r#"
volatile int vol_state_{i};
int vol_get_{i}() {{ return vol_state_{i}; }}
void vol_set_{i}(int v) {{ vol_state_{i} = v; }}
"#
        );
    }

    for i in 0..config.asm_fences {
        let _ = write!(
            out,
            r#"
long fenced_slot_{i};
void fenced_store_{i}(long v) {{
    fenced_slot_{i} = v;
    __asm__ volatile("mfence" ::: "memory");
}}
"#
        );
    }

    // Decoys: loops a sound detector must not flag (Figure 3's
    // non-spinloops).
    for i in 0..config.decoys {
        if i % 2 == 0 {
            // Bounded poll: one exit condition is purely local.
            let target = i % config.mp_waiters.max(1);
            let _ = write!(
                out,
                r#"
int poll_once_{i}() {{
    for (int t = 0; t < 100; t++) {{
        if (mp_flag_{target} == 1) return 1;
    }}
    return 0;
}}
"#
            );
        } else {
            // Sequential scan: the counter store influences the exit.
            let n: i64 = rng.gen_range(8..64);
            let _ = write!(
                out,
                r#"
long scan_table_{i}[{n}];
long scan_find_{i}(long key) {{
    for (int j = 0; j < {n}; j++) {{
        if (scan_table_{i}[j] == key) return j;
    }}
    return -1;
}}
"#
            );
        }
    }

    for i in 0..config.plain_funcs {
        let a: i64 = rng.gen_range(2..50);
        let b: i64 = rng.gen_range(1..30);
        let m: i64 = rng.gen_range(97..10007);
        let _ = write!(
            out,
            r#"
long compute_{i}(long x, long y) {{
    long acc = x * {a} + y;
    long lim = y % {b} + 4;
    for (long j = 0; j < lim; j++) {{
        acc = acc * {a} + j;
        acc = acc % {m};
        if (acc % 2 == 0) {{
            acc = acc + x;
        }} else {{
            acc = acc - y;
        }}
    }}
    return acc;
}}
"#
        );
    }

    let sloc = out.lines().filter(|l| !l.trim().is_empty()).count();
    GeneratedApp {
        source: out,
        config,
        sloc,
    }
}

/// Generates the codebase for a Table 3 profile at `1:scale`.
pub fn generate_for(p: &AppProfile, scale: u32) -> GeneratedApp {
    generate(GenConfig::from_profile(p, scale))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use atomig_core::{AtomigConfig, Pipeline};

    fn small_config() -> GenConfig {
        GenConfig {
            mp_waiters: 4,
            tas_locks: 3,
            seqlocks: 2,
            atomics: 5,
            volatiles: 3,
            asm_fences: 2,
            decoys: 4,
            plain_funcs: 10,
            seed: 42,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(small_config());
        let b = generate(small_config());
        assert_eq!(a.source, b.source);
        assert!(a.sloc > 100);
    }

    #[test]
    fn generated_source_compiles_and_verifies() {
        let app = generate(small_config());
        let m = atomig_frontc::compile(&app.source, "synth").unwrap();
        atomig_mir::verify_module(&m).unwrap();
        assert!(m.funcs.len() > 20);
    }

    #[test]
    fn detector_finds_exactly_the_planted_patterns() {
        let cfg = small_config();
        let app = generate(cfg);
        let mut m = atomig_frontc::compile(&app.source, "synth").unwrap();
        // Inlining is disabled so the census is exact (no duplicated
        // loops from inlined copies).
        let mut pcfg = AtomigConfig::full();
        pcfg.inline = false;
        let report = Pipeline::new(pcfg).port_module(&mut m);
        assert_eq!(
            report.spinloops,
            cfg.expected_spinloops() as usize,
            "{report}"
        );
        assert_eq!(report.optiloops, cfg.expected_optiloops() as usize);
        // Explicit annotations: atomics + volatile accesses (2 per
        // volatile global: getter load + setter store).
        assert!(report.explicit_annotations >= (cfg.atomics + cfg.volatiles) as usize);
    }

    #[test]
    fn profile_scaling_hits_the_census() {
        let p = profiles::MEMCACHED; // smallest: fast test
        let app = generate_for(&p, 10);
        let cfg = app.config;
        let mut m = atomig_frontc::compile(&app.source, "memcached-synth").unwrap();
        let mut pcfg = AtomigConfig::full();
        pcfg.inline = false;
        let report = Pipeline::new(pcfg).port_module(&mut m);
        assert_eq!(report.spinloops, cfg.expected_spinloops() as usize);
        assert!(report.implicit_barriers_added > 0);
        assert!(report.explicit_barriers_added > 0); // seqlock fences
    }

    #[test]
    fn sloc_scales_with_profile() {
        let small = generate_for(&profiles::MEMCACHED, 100);
        let large = generate_for(&profiles::LEVELDB, 100);
        assert!(large.sloc > small.sloc);
        // Within 2x of the 1:100 target.
        let target = (profiles::LEVELDB.sloc / 100) as usize;
        assert!(
            large.sloc > target / 2 && large.sloc < target * 2,
            "sloc {} target {target}",
            large.sloc
        );
    }
}
