//! # atomig-workloads
//!
//! MiniC ports of every benchmark the paper evaluates, plus the synthetic
//! large-application generator:
//!
//! * [`ck`] — Concurrency Kit structures (§4.1, Table 2): `ck_ring`,
//!   `ck_spinlock_cas`, `ck_spinlock_mcs`, `ck_sequence`, each with a
//!   model-checking client, a performance client, and (for Table 5) an
//!   expert Arm port using explicit fences.
//! * [`lf_hash`] — the MariaDB lock-free hash abstraction of Figure 7,
//!   including the real WMM bug AtoMig found (MDEV-27088).
//! * [`clht`] — simplified CLHT lock-based and lock-free hash tables,
//!   x86-only code used to demonstrate end-to-end porting (Table 5).
//! * [`phoenix`] — the five Phoenix 2.0 map-reduce kernels of Table 6.
//! * [`apps`] — workload kernels standing in for the five large
//!   applications (MariaDB, PostgreSQL, LevelDB, Memcached, SQLite) in
//!   the performance experiments (Tables 4 and 5).
//! * [`synth`] + [`profiles`] — the seeded synthetic-codebase generator
//!   reproducing the Table 3 pattern census at 1:100 scale.

pub mod apps;
pub mod ck;
pub mod clht;
pub mod lf_hash;
pub mod phoenix;
pub mod profiles;
pub mod synth;

use atomig_core::{AtomigConfig, Pipeline, PortReport, Stage};
use atomig_mir::Module;
use atomig_wmm::{Checker, ModelKind};

/// Compiles MiniC source and ports it at the given stage.
///
/// # Panics
///
/// Panics on compile errors — workload sources are embedded and must be
/// valid (it is a bug in this crate otherwise).
pub fn compile_stage(source: &str, name: &str, stage: Stage) -> (Module, PortReport) {
    let mut module = atomig_frontc::compile(source, name)
        .unwrap_or_else(|e| panic!("workload `{name}` failed to compile: {e}"));
    let config = match stage {
        Stage::Original => AtomigConfig::original(),
        Stage::Explicit => AtomigConfig::explicit_only(),
        Stage::Spin => AtomigConfig::spin(),
        Stage::Full => AtomigConfig::full(),
    };
    let report = Pipeline::new(config).port_module(&mut module);
    (module, report)
}

/// Compiles MiniC and inlines it (no porting): the fair performance
/// baseline. All performance variants share the same inlining so dynamic
/// op counts are comparable (a real compiler would inline all of them at
/// `-O2` alike).
pub fn compile_baseline(source: &str, name: &str) -> Module {
    let mut module = atomig_frontc::compile(source, name)
        .unwrap_or_else(|e| panic!("workload `{name}` failed to compile: {e}"));
    atomig_analysis::inline_module(&mut module, &atomig_analysis::InlineOptions::default());
    module
}

/// Compiles, inlines, and applies the Naïve port (every shared access SC).
pub fn compile_naive(source: &str, name: &str) -> (Module, atomig_core::naive::NaiveStats) {
    let mut module = compile_baseline(source, name);
    let stats = atomig_core::naive_port(&mut module);
    (module, stats)
}

/// Compiles, inlines, and applies the Lasagne-style port (explicit fences).
pub fn compile_lasagne(source: &str, name: &str) -> (Module, atomig_core::lasagne::LasagneStats) {
    let mut module = compile_baseline(source, name);
    let stats = atomig_core::lasagne_port(&mut module);
    (module, stats)
}

/// Compiles and applies the full AtoMig pipeline (which inlines first).
pub fn compile_atomig(source: &str, name: &str) -> (Module, PortReport) {
    compile_stage(source, name, Stage::Full)
}

/// Runs a module deterministically and returns `(stats, cost)` under the
/// Armv8 cost model, panicking on execution failure.
pub fn run_cost(module: &Module, what: &str) -> (atomig_wmm::ExecStats, u64) {
    let r = atomig_wmm::run_default(module);
    assert!(r.ok(), "{what}: {:?}", r.failure);
    let cost = atomig_wmm::CostModel::ARMV8.cost(&r.stats);
    (r.stats, cost)
}

/// Model-checks a module's `main` under the Arm-flavoured weak model.
pub fn check_arm(module: &Module) -> atomig_wmm::Verdict {
    Checker::new(ModelKind::Arm).check(module, "main")
}

/// The Table 2 stages in order.
pub const STAGES: [Stage; 4] = [Stage::Original, Stage::Explicit, Stage::Spin, Stage::Full];

/// Verdict glyphs used by the table harnesses.
pub fn glyph(safe: bool) -> &'static str {
    if safe {
        "Y"
    } else {
        "x"
    }
}
