//! Simplified CLHT hash tables (§4.3, Table 5): a lock-based and a
//! lock-free variant, written for x86 only ("developed solely for x86",
//! no WMM corrections). The paper uses them to demonstrate end-to-end
//! porting: the baseline is a plain recompile (which is *incorrect* on
//! WMM), so AtoMig's overhead is measured against buggy code and comes
//! out higher than for the other benchmarks (1.10 / 1.40).

/// The lock-based CLHT variant: per-bucket test-and-set locks, plain
/// bucket contents (x86-correct only).
pub fn clht_lb_perf(threads: u32, ops: u32) -> String {
    format!(
        r#"
    struct Bucket {{ int lock; long key0; long val0; long key1; long val1; }};
    struct Bucket buckets[8];
    long hits;

    void bucket_lock(struct Bucket *b) {{
        while (cmpxchg_explicit(&b->lock, 0, 1, relaxed) != 0) {{ pause(); }}
    }}

    void bucket_unlock(struct Bucket *b) {{
        b->lock = 0;
    }}

    void put(long key, long val) {{
        struct Bucket *b = &buckets[key % 8];
        bucket_lock(b);
        if (b->key0 == 0 || b->key0 == key) {{
            b->key0 = key;
            b->val0 = val;
        }} else {{
            b->key1 = key;
            b->val1 = val;
        }}
        bucket_unlock(b);
    }}

    long get(long key) {{
        struct Bucket *b = &buckets[key % 8];
        bucket_lock(b);
        long v = 0;
        if (b->key0 == key) v = b->val0;
        if (b->key1 == key) v = b->val1;
        bucket_unlock(b);
        return v;
    }}

    void worker(long seed) {{
        long found = 0;
        for (long i = 0; i < {ops}; i++) {{
            long key = (seed * 31 + i * 7) % 16 + 1;
            if (i % 4 == 0) {{
                put(key, key * 10);
            }} else {{
                long v = get(key);
                if (v != 0) found = found + 1;
            }}
        }}
        faa(&hits, found);
    }}

    int main() {{
        long tids[8];
        for (int t = 0; t < {threads}; t++) tids[t] = spawn(worker, t + 1);
        for (int t = 0; t < {threads}; t++) join(tids[t]);
        return 0;
    }}
    "#
    )
}

/// The lock-free CLHT variant: CAS-published slots, plain value reads
/// (x86-correct only — on WMM the value read can be stale).
pub fn clht_lf_perf(threads: u32, ops: u32) -> String {
    format!(
        r#"
    struct Slot {{ long key; long val; }};
    struct Slot slots[16];
    long hits;

    void put(long key, long val) {{
        int idx = (int)(key % 16);
        for (int probe = 0; probe < 16; probe++) {{
            struct Slot *s = &slots[(idx + probe) % 16];
            long cur = s->key;
            if (cur == key) {{
                s->val = val;
                return;
            }}
            if (cur == 0) {{
                if (cmpxchg_explicit(&s->key, 0, key, relaxed) == 0) {{
                    s->val = val;
                    return;
                }}
            }}
        }}
    }}

    long get(long key) {{
        int idx = (int)(key % 16);
        for (int probe = 0; probe < 16; probe++) {{
            struct Slot *s = &slots[(idx + probe) % 16];
            long cur = s->key;
            if (cur == key) return s->val;
            if (cur == 0) return 0;
        }}
        return 0;
    }}

    void worker(long seed) {{
        long found = 0;
        for (long i = 0; i < {ops}; i++) {{
            long key = (seed * 31 + i * 7) % 12 + 1;
            if (i % 4 == 0) {{
                put(key, key * 10);
            }} else {{
                long v = get(key);
                if (v != 0) found = found + 1;
            }}
        }}
        faa(&hits, found);
    }}

    int main() {{
        long tids[8];
        for (int t = 0; t < {threads}; t++) tids[t] = spawn(worker, t + 1);
        for (int t = 0; t < {threads}; t++) join(tids[t]);
        return 0;
    }}
    "#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_stage;
    use atomig_core::Stage;

    #[test]
    fn clht_lb_detects_bucket_spinlock() {
        let (module, report) = compile_stage(&clht_lb_perf(2, 40), "clht_lb", Stage::Full);
        assert!(report.spinloops >= 1, "report: {report}");
        let r = atomig_wmm::run_default(&module);
        assert!(r.ok(), "{:?}", r.failure);
    }

    #[test]
    fn clht_lf_runs_both_variants() {
        for stage in [Stage::Original, Stage::Full] {
            let (module, _) = compile_stage(&clht_lf_perf(2, 40), "clht_lf", stage);
            let r = atomig_wmm::run_default(&module);
            assert!(r.ok(), "{stage:?}: {:?}", r.failure);
        }
    }

    #[test]
    fn atomig_port_costs_more_than_unported_baseline() {
        // CLHT's Table 5 baseline is the unported (incorrect) recompile;
        // the AtoMig port must cost more, but far less than naive.
        let orig = crate::compile_baseline(&clht_lb_perf(2, 60), "clht_lb");
        let (ported, _) = compile_stage(&clht_lb_perf(2, 60), "clht_lb", Stage::Full);
        let (naive, _) = crate::compile_naive(&clht_lb_perf(2, 60), "clht_lb");
        let ro = atomig_wmm::run_default(&orig);
        let rp = atomig_wmm::run_default(&ported);
        let rn = atomig_wmm::run_default(&naive);
        assert!(ro.ok() && rp.ok() && rn.ok());
        let cm = atomig_wmm::CostModel::ARMV8;
        let atomig_slow = cm.slowdown(&ro.stats, &rp.stats);
        let naive_slow = cm.slowdown(&ro.stats, &rn.stats);
        assert!(atomig_slow > 1.0, "atomig {atomig_slow}");
        assert!(
            naive_slow > atomig_slow,
            "naive {naive_slow} vs atomig {atomig_slow}"
        );
    }
}
