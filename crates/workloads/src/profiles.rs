//! Per-application profiles: the ground-truth numbers of Table 3, used to
//! parameterize the synthetic-codebase generator and to compare measured
//! against published values in EXPERIMENTS.md.

/// One application row of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppProfile {
    /// Application name.
    pub name: &'static str,
    /// Source lines of code (paper).
    pub sloc: u64,
    /// Spinloops detected by AtoMig (paper).
    pub spinloops: u32,
    /// Optimistic loops detected (paper).
    pub optiloops: u32,
    /// Explicit barriers in the original build (paper).
    pub orig_bexpl: u32,
    /// Implicit barriers in the original build (paper).
    pub orig_bimpl: u32,
    /// Explicit barriers after AtoMig (paper).
    pub atomig_bexpl: u32,
    /// Implicit barriers after AtoMig (paper).
    pub atomig_bimpl: u32,
    /// Implicit barriers under the naïve port (paper).
    pub naive_bimpl: u32,
    /// Original build time in seconds (paper).
    pub build_secs: u32,
    /// AtoMig build time in seconds (paper).
    pub atomig_build_secs: u32,
}

/// MariaDB row.
pub const MARIADB: AppProfile = AppProfile {
    name: "MariaDB",
    sloc: 3_124_265,
    spinloops: 12_880,
    optiloops: 1_970,
    orig_bexpl: 0,
    orig_bimpl: 968,
    atomig_bexpl: 12_361,
    atomig_bimpl: 66_347,
    naive_bimpl: 366_774,
    build_secs: 20 * 60 + 51,
    atomig_build_secs: 40 * 60 + 21,
};

/// PostgreSQL row.
pub const POSTGRESQL: AppProfile = AppProfile {
    name: "PostgreSQL",
    sloc: 880_400,
    spinloops: 1_750,
    optiloops: 544,
    orig_bexpl: 104,
    orig_bimpl: 340,
    atomig_bexpl: 3_455,
    atomig_bimpl: 42_744,
    naive_bimpl: 243_790,
    build_secs: 4 * 60 + 59,
    atomig_build_secs: 10 * 60 + 40,
};

/// LevelDB row.
pub const LEVELDB: AppProfile = AppProfile {
    name: "LevelDB",
    sloc: 82_725,
    spinloops: 458,
    optiloops: 263,
    orig_bexpl: 0,
    orig_bimpl: 390,
    atomig_bexpl: 2_798,
    atomig_bimpl: 11_128,
    naive_bimpl: 65_042,
    build_secs: 77,
    atomig_build_secs: 3 * 60 + 21,
};

/// Memcached row.
pub const MEMCACHED: AppProfile = AppProfile {
    name: "Memcached",
    sloc: 28_957,
    spinloops: 75,
    optiloops: 20,
    orig_bexpl: 2,
    orig_bimpl: 0,
    atomig_bexpl: 231,
    atomig_bimpl: 1_564,
    naive_bimpl: 11_515,
    build_secs: 17,
    atomig_build_secs: 30,
};

/// SQLite row.
pub const SQLITE: AppProfile = AppProfile {
    name: "SQLite",
    sloc: 263_125,
    spinloops: 1_057,
    optiloops: 254,
    orig_bexpl: 1,
    orig_bimpl: 28,
    atomig_bexpl: 4_016,
    atomig_bimpl: 44_860,
    naive_bimpl: 122_611,
    build_secs: 4 * 60 + 1,
    atomig_build_secs: 11 * 60 + 54,
};

/// All Table 3 rows in paper order.
pub fn all() -> Vec<AppProfile> {
    vec![MARIADB, POSTGRESQL, LEVELDB, MEMCACHED, SQLITE]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_table3_aggregates() {
        let ps = all();
        assert_eq!(ps.len(), 5);
        // The paper's headline: millions of lines, thousands of patterns.
        let total_sloc: u64 = ps.iter().map(|p| p.sloc).sum();
        assert!(total_sloc > 4_000_000);
        let maria = &ps[0];
        assert_eq!(maria.spinloops, 12_880);
        // Build-time ratio between 1.7 and 3 everywhere (the paper's
        // "factor between 2 and 3" claim, Memcached rounds to 1.76).
        for p in &ps {
            let ratio = p.atomig_build_secs as f64 / p.build_secs as f64;
            assert!((1.7..3.1).contains(&ratio), "{}: {ratio}", p.name);
        }
    }
}
