//! The Figure 2 workflow: annotations → pattern detection → alias
//! exploration → transformation, producing a [`PortReport`].

use crate::alias::AliasMap;
use crate::annotations::{loc_of, scan_annotations};
use crate::config::{AliasMode, AtomigConfig, Stage};
use crate::optimistic::detect_optimistic;
use crate::report::{BarrierCensus, PortReport};
use crate::spinloop::detect_spinloops;
use crate::trace::{AliasClass, Decision, DecisionLedger, SolverMetrics, TraceAction, TraceCause};
use crate::transform::{self, MarkSet};
use atomig_analysis::{inline_module, InfluenceAnalysis, PointsTo};
use atomig_mir::{FuncId, InstId, InstKind, MemLoc, Module};
use std::collections::{HashMap, HashSet};

/// Appends one ledger decision, resolving the access's span and alias key
/// from the module-wide index built after inlining. An instruction absent
/// from the index (e.g. inserted by a transform after the index was
/// built) is resolved from the current module state instead of silently
/// degrading to `(0, MemLoc::Unknown)`.
fn record(
    ledger: &mut DecisionLedger,
    m: &Module,
    info: &HashMap<(FuncId, InstId), (u32, MemLoc)>,
    f: FuncId,
    i: InstId,
    action: TraceAction,
    cause: TraceCause,
) {
    let (span, loc) = match info.get(&(f, i)) {
        Some((span, loc)) => (*span, loc.clone()),
        None => {
            let func = m.func(f);
            let index = func.inst_index();
            let resolved = func
                .insts()
                .find(|(_, inst)| inst.id == i)
                .map(|(_, inst)| (inst.span, loc_of(func, &index, &inst.kind)));
            debug_assert!(
                resolved.is_some(),
                "ledger decision on unknown instruction {i:?} in @{}",
                func.name
            );
            resolved.unwrap_or((0, MemLoc::Unknown))
        }
    };
    ledger.record(Decision {
        func: f,
        func_name: m.func(f).name.clone(),
        inst: i,
        span,
        loc,
        action,
        cause,
    });
}

/// The AtoMig porting pipeline.
///
/// # Examples
///
/// See the crate-level example; staged configurations reproduce the
/// Table 2 columns:
///
/// ```
/// use atomig_core::{Pipeline, AtomigConfig};
/// use atomig_mir::parse_module;
///
/// let src = r#"
/// global @flag: i32 = 0
/// fn @wait() : void {
/// loop:
///   %f = load i32, @flag
///   %c = cmp eq %f, 0
///   condbr %c, loop, done
/// done:
///   ret
/// }
/// "#;
/// let mut original = parse_module(src).unwrap();
/// let r0 = Pipeline::new(AtomigConfig::original()).port_module(&mut original);
/// assert_eq!(r0.implicit_barriers_added, 0);
///
/// let mut ported = parse_module(src).unwrap();
/// let r1 = Pipeline::new(AtomigConfig::full()).port_module(&mut ported);
/// assert_eq!(r1.spinloops, 1);
/// assert_eq!(r1.implicit_barriers_added, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    config: AtomigConfig,
}

/// Per-function detection results. Computed in parallel on the worker
/// pool (plain owned data, no marks or ledger writes) and merged on the
/// coordinating thread in `FuncId` order.
#[derive(Debug, Default, Clone, PartialEq)]
pub(crate) struct FuncDetect {
    /// §3.2 annotation marks, paired with whether they came from a
    /// volatile access.
    pub(crate) ann_marks: Vec<(crate::annotations::Mark, bool)>,
    /// §6 compiler-barrier hint marks (opt-in).
    pub(crate) hint_marks: Vec<crate::annotations::Mark>,
    /// §3.3 spinloops, with header spans pre-resolved.
    pub(crate) spins: Vec<SpinDetect>,
    /// Optimistic (seqlock-style) loops, with per-control load-ness
    /// pre-resolved so the merge needs no instruction index.
    pub(crate) opts: Vec<OptDetect>,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SpinDetect {
    pub(crate) controls: Vec<InstId>,
    pub(crate) control_locs: Vec<MemLoc>,
    pub(crate) header_span: u32,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct OptDetect {
    pub(crate) spin_index: usize,
    pub(crate) header_span: u32,
    /// (control, is-load): loads get an explicit fence before them, the
    /// rest only seed alias exploration.
    pub(crate) controls: Vec<(InstId, bool)>,
    pub(crate) control_locs: Vec<MemLoc>,
}

impl Pipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: AtomigConfig) -> Pipeline {
        Pipeline { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &AtomigConfig {
        &self.config
    }

    /// Runs the staged detection passes on one function. Pure with
    /// respect to the module — safe to run for many functions in
    /// parallel.
    pub(crate) fn detect_func(&self, m: &Module, fid: FuncId) -> FuncDetect {
        let func = m.func(fid);
        let ann = scan_annotations(func, &self.config.volatile_blacklist);
        let mut det = FuncDetect {
            ann_marks: ann
                .atomics
                .into_iter()
                .map(|mk| (mk, false))
                .chain(ann.volatiles.into_iter().map(|mk| (mk, true)))
                .collect(),
            ..FuncDetect::default()
        };
        if self.config.compiler_barrier_hints {
            det.hint_marks = crate::hints::barrier_adjacent_accesses(func);
        }
        if self.config.stage < Stage::Spin {
            return det;
        }
        let inf = InfluenceAnalysis::new(func);
        let spins = detect_spinloops(func, &inf);
        let header_span_of = |s: &crate::spinloop::SpinLoopInfo| {
            func.block(s.natural.header)
                .insts
                .iter()
                .map(|i| i.span)
                .find(|&sp| sp != 0)
                .unwrap_or(0)
        };
        det.spins = spins
            .iter()
            .map(|s| SpinDetect {
                controls: s.controls.clone(),
                control_locs: s.control_locs.clone(),
                header_span: header_span_of(s),
            })
            .collect();
        if self.config.stage < Stage::Full {
            return det;
        }
        let opts = detect_optimistic(func, &inf, &spins);
        let index = func.inst_index();
        det.opts = opts
            .iter()
            .map(|o| OptDetect {
                spin_index: o.spin_index,
                header_span: det.spins[o.spin_index].header_span,
                controls: o
                    .optimistic_controls
                    .iter()
                    .map(|&c| (c, matches!(index.get(&c), Some(InstKind::Load { .. }))))
                    .collect(),
                control_locs: o.control_locs.clone(),
            })
            .collect();
        det
    }

    /// Runs [`Pipeline::detect_func`] over every function on the worker
    /// pool, consulting the configured artifact cache first. Results come
    /// back in `FuncId` order; cache bookkeeping (puts for misses, the
    /// counter snapshot) happens in the sequential merge, and the path
    /// reads no clock at all, so hit and miss runs stay byte-identical
    /// under a deterministic clock.
    pub(crate) fn detect_all(
        &self,
        m: &Module,
    ) -> (Vec<FuncDetect>, Option<crate::trace::CacheMetrics>) {
        let fids: Vec<FuncId> = m.func_ids().collect();
        let pool = atomig_par::WorkerPool::new(self.config.jobs);
        let Some(store) = &self.config.cache else {
            return (pool.map(&fids, |_, &fid| self.detect_func(m, fid)), None);
        };
        let seed = crate::cache::full_seed(&self.config, m);
        let results = pool.map(&fids, |_, &fid| {
            let body = atomig_mir::printer::print_function(m, m.func(fid));
            let key = crate::cache::func_fingerprint(&seed, &body);
            let cached = store
                .get(key)
                .and_then(|payload| crate::cache::decode_detect(&payload, m.func(fid)));
            match cached {
                Some(det) => (det, None),
                None => (self.detect_func(m, fid), Some(key)),
            }
        });
        let mut metrics = crate::trace::CacheMetrics {
            evictions: store.evictions(),
            ..Default::default()
        };
        let mut dets = Vec::with_capacity(results.len());
        for (det, miss_key) in results {
            match miss_key {
                None => metrics.hits += 1,
                Some(key) => {
                    store.put(key, &crate::cache::encode_detect(&det));
                    metrics.misses += 1;
                }
            }
            dets.push(det);
        }
        (dets, Some(metrics))
    }

    /// Ports `m` in place and reports what happened.
    pub fn port_module(&self, m: &mut Module) -> PortReport {
        let clock = &self.config.clock;
        let t0 = clock.now();
        let mut report = PortReport {
            module: m.name.clone(),
            before: BarrierCensus::of(m),
            ..PortReport::default()
        };
        if self.config.stage == Stage::Original {
            report.after = report.before;
            report.porting_time = clock.now() - t0;
            report.metrics.record("port-total", report.porting_time, 0);
            return report;
        }

        let i0 = clock.now();
        if self.config.inline {
            report.inlined_calls = inline_module(m, &self.config.inline_options);
            report
                .metrics
                .record("inline", clock.now() - i0, report.inlined_calls);
        }

        // Module-wide access index (span + alias key per access), built
        // after inlining so ledger provenance names the analyzed module.
        let mut access_info: HashMap<(FuncId, InstId), (u32, MemLoc)> = HashMap::new();
        for fid in m.func_ids() {
            let func = m.func(fid);
            let index = func.inst_index();
            for (_, inst) in func.insts() {
                if inst.kind.is_memory_access() {
                    access_info.insert(
                        (fid, inst.id),
                        (inst.span, loc_of(func, &index, &inst.kind)),
                    );
                }
            }
        }
        let mut ledger = DecisionLedger::default();

        let mut marks = MarkSet::default();
        // Seed keys in insertion order (a Vec, deduplicated on the side)
        // so sticky-buddy expansion — and with it the ledger — iterates
        // deterministically.
        let mut seed_locs: Vec<MemLoc> = Vec::new();
        let mut seed_seen: HashSet<MemLoc> = HashSet::new();
        // First access that seeded each key / optimistic location, for
        // buddy and writer-fence provenance.
        let mut seed_of_loc: HashMap<MemLoc, (FuncId, InstId)> = HashMap::new();
        let mut seed_of_optimistic: HashMap<MemLoc, (FuncId, InstId)> = HashMap::new();
        let mut optimistic_locs: HashSet<MemLoc> = HashSet::new();
        let mut optimistic_accesses: Vec<(FuncId, InstId)> = Vec::new();
        // Whether a location key may seed sticky-buddy expansion. The
        // paper's scheme uses precise keys only; the coarse pointee-typed
        // buckets are the §3.4 alternative it rejects, kept here as an
        // ablation knob.
        let pointee = self.config.pointee_buddies;
        let seedable =
            |l: &MemLoc| l.is_buddy_key() || (pointee && matches!(l, MemLoc::Pointee(_)));

        // Passes 1-2 and optimistic detection run per function on the
        // worker pool; results come back in `FuncId` order and everything
        // order-sensitive — marks, ledger records, seed bookkeeping — is
        // applied in the sequential merge below, so the ledger is
        // byte-identical for any job count. The injected clock is only
        // read here on the coordinating thread: per-pass timings would
        // require clock reads inside workers, which a deterministic test
        // clock cannot serve reproducibly, so detection is timed as one
        // phase.
        let d0 = clock.now();
        let fids: Vec<FuncId> = m.func_ids().collect();
        let (dets, cache_metrics) = self.detect_all(m);
        report.metrics.cache = cache_metrics;

        for (&fid, det) in fids.iter().zip(&dets) {
            let mut add_seed =
                |loc: &MemLoc, seeder: Option<(FuncId, InstId)>, seed_locs: &mut Vec<MemLoc>| {
                    if seedable(loc) {
                        if let Some(s) = seeder {
                            seed_of_loc.entry(loc.clone()).or_insert(s);
                        }
                        if seed_seen.insert(loc.clone()) {
                            seed_locs.push(loc.clone());
                        }
                    }
                };

            // Pass 1: explicit annotations (§3.2).
            report.explicit_annotations += det.ann_marks.len();
            for (mk, volatile) in &det.ann_marks {
                marks.mark_sc(fid, mk.inst);
                record(
                    &mut ledger,
                    m,
                    &access_info,
                    fid,
                    mk.inst,
                    TraceAction::UpgradeSc,
                    TraceCause::Annotation {
                        volatile: *volatile,
                    },
                );
                add_seed(&mk.loc, Some((fid, mk.inst)), &mut seed_locs);
            }

            // §6 extension (opt-in): compiler barriers as entry points.
            for mk in &det.hint_marks {
                report.barrier_hints += 1;
                marks.mark_sc(fid, mk.inst);
                record(
                    &mut ledger,
                    m,
                    &access_info,
                    fid,
                    mk.inst,
                    TraceAction::UpgradeSc,
                    TraceCause::BarrierHint,
                );
                add_seed(&mk.loc, Some((fid, mk.inst)), &mut seed_locs);
            }

            // Pass 2: implicit synchronization patterns (§3.3).
            report.spinloops += det.spins.len();
            for (si, s) in det.spins.iter().enumerate() {
                for &c in &s.controls {
                    marks.mark_sc(fid, c);
                    record(
                        &mut ledger,
                        m,
                        &access_info,
                        fid,
                        c,
                        TraceAction::UpgradeSc,
                        TraceCause::SpinControl {
                            loop_index: si,
                            header_span: s.header_span,
                        },
                    );
                }
                let c0 = s.controls.first().map(|&c| (fid, c));
                for l in &s.control_locs {
                    add_seed(l, c0, &mut seed_locs);
                }
            }

            report.optiloops += det.opts.len();
            for o in &det.opts {
                for &(c, is_load) in &o.controls {
                    // Explicit barrier before each optimistic-control load
                    // within the optimistic loop (Figure 6, reader side).
                    if is_load {
                        marks.mark_fence_before(fid, c);
                        record(
                            &mut ledger,
                            m,
                            &access_info,
                            fid,
                            c,
                            TraceAction::FenceBefore,
                            TraceCause::OptimisticControl {
                                loop_index: o.spin_index,
                                header_span: o.header_span,
                            },
                        );
                    } else {
                        record(
                            &mut ledger,
                            m,
                            &access_info,
                            fid,
                            c,
                            TraceAction::Seed,
                            TraceCause::OptimisticControl {
                                loop_index: o.spin_index,
                                header_span: o.header_span,
                            },
                        );
                    }
                    optimistic_accesses.push((fid, c));
                }
                let c0 = o.controls.first().map(|&(c, _)| (fid, c));
                for l in &o.control_locs {
                    optimistic_locs.insert(l.clone());
                    if let Some(s) = c0 {
                        seed_of_optimistic.entry(l.clone()).or_insert(s);
                    }
                    add_seed(l, c0, &mut seed_locs);
                }
            }
        }
        report.metrics.record(
            "detect",
            clock.now() - d0,
            report.explicit_annotations
                + report.barrier_hints
                + report.spinloops
                + report.optiloops,
        );

        // Pass 3: alias exploration — once atomic, always atomic (§3.4) —
        // followed by explicit barriers after every store that may hit an
        // optimistic location, module-wide (Figure 6, writer side).
        match self.config.alias_mode {
            AliasMode::TypeBased => {
                if self.config.alias_exploration {
                    let a0 = clock.now();
                    let am = AliasMap::build(m, self.config.pointee_buddies);
                    report
                        .metrics
                        .record("alias-build", clock.now() - a0, am.accesses_scanned);
                    report.seed_locations = seed_locs.len();
                    for loc in &seed_locs {
                        for &(f, i) in am.buddies(loc) {
                            let newly = marks.sc_marks.entry(f).or_default().insert(i);
                            if newly {
                                report.buddy_marks += 1;
                                if let Some(&seed) = seed_of_loc.get(loc) {
                                    record(
                                        &mut ledger,
                                        m,
                                        &access_info,
                                        f,
                                        i,
                                        TraceAction::UpgradeSc,
                                        TraceCause::StickyBuddy {
                                            seed,
                                            class: AliasClass::Key(loc.clone()),
                                            backend: AliasMode::TypeBased,
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
                if !optimistic_locs.is_empty() {
                    for fid in m.func_ids() {
                        let func = m.func(fid);
                        let index = func.inst_index();
                        for (_, inst) in func.insts() {
                            if !inst.kind.may_write() || !inst.kind.is_memory_access() {
                                continue;
                            }
                            let loc = loc_of(func, &index, &inst.kind);
                            if optimistic_locs.contains(&loc) {
                                marks.mark_fence_after(fid, inst.id);
                                marks.mark_sc(fid, inst.id);
                                let seed = seed_of_optimistic.get(&loc).copied();
                                record(
                                    &mut ledger,
                                    m,
                                    &access_info,
                                    fid,
                                    inst.id,
                                    TraceAction::FenceAfter,
                                    TraceCause::OptimisticStore { seed },
                                );
                            }
                        }
                    }
                }
            }
            AliasMode::PointsTo => {
                if self.config.alias_exploration || !optimistic_accesses.is_empty() {
                    let s0 = clock.now();
                    let pt = PointsTo::analyze_with_jobs(m, self.config.jobs);
                    let solve = clock.now() - s0;
                    let mut solver = SolverMetrics::from(pt.stats);
                    // Re-measure with the injected clock so metrics stay
                    // byte-comparable under a deterministic clock.
                    solver.solve_time = solve;
                    report.metrics.solver = Some(solver);
                    report
                        .metrics
                        .record("points-to-solve", solve, pt.stats.iterations);
                    let a0 = clock.now();
                    let am = AliasMap::build_points_to(m, &pt);
                    report
                        .metrics
                        .record("alias-build", clock.now() - a0, am.class_count());
                    if self.config.alias_exploration {
                        // Seeds are the accesses themselves: everything
                        // already marked SC plus the optimistic controls
                        // (which so far only carry fences). Sorted so the
                        // expansion — and the ledger — is deterministic.
                        let mut seeds: Vec<(FuncId, InstId)> = marks
                            .sc_marks
                            .iter()
                            .flat_map(|(&f, is)| is.iter().map(move |&i| (f, i)))
                            .collect();
                        seeds.sort_unstable_by_key(|&(f, i)| (f.0, i.0));
                        seeds.extend(optimistic_accesses.iter().copied());
                        report.seed_locations = seeds.len();
                        for (f, i) in seeds {
                            for &(bf, bi) in am.buddies_of_access(f, i) {
                                let newly = marks.sc_marks.entry(bf).or_default().insert(bi);
                                if newly {
                                    report.buddy_marks += 1;
                                    let class = am
                                        .class_index(bf, bi)
                                        .map(AliasClass::Class)
                                        .unwrap_or(AliasClass::Class(0));
                                    record(
                                        &mut ledger,
                                        m,
                                        &access_info,
                                        bf,
                                        bi,
                                        TraceAction::UpgradeSc,
                                        TraceCause::StickyBuddy {
                                            seed: (f, i),
                                            class,
                                            backend: AliasMode::PointsTo,
                                        },
                                    );
                                }
                            }
                        }
                    }
                    if !optimistic_accesses.is_empty() {
                        let writers: HashSet<(FuncId, InstId)> = m
                            .func_ids()
                            .flat_map(|fid| {
                                m.func(fid)
                                    .insts()
                                    .filter(|(_, i)| {
                                        i.kind.is_memory_access() && i.kind.may_write()
                                    })
                                    .map(move |(_, i)| (fid, i.id))
                            })
                            .collect();
                        let mut fenced: HashSet<(FuncId, InstId)> = HashSet::new();
                        for &(f, i) in &optimistic_accesses {
                            for &(bf, bi) in am.buddies_of_access(f, i) {
                                if writers.contains(&(bf, bi)) {
                                    marks.mark_fence_after(bf, bi);
                                    marks.mark_sc(bf, bi);
                                    if fenced.insert((bf, bi)) {
                                        record(
                                            &mut ledger,
                                            m,
                                            &access_info,
                                            bf,
                                            bi,
                                            TraceAction::FenceAfter,
                                            TraceCause::OptimisticStore { seed: Some((f, i)) },
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        marks.optimistic_locs = optimistic_locs;

        // Pass 4: transformation.
        let x0 = clock.now();
        let stats = transform::apply(m, &marks);
        report.metrics.record(
            "transform",
            clock.now() - x0,
            stats.sc_upgraded + stats.fences_inserted,
        );
        report.implicit_barriers_added = stats.sc_upgraded;
        report.explicit_barriers_added = stats.fences_inserted;
        report.after = BarrierCensus::of(m);
        report.porting_time = clock.now() - t0;
        report
            .metrics
            .record("port-total", report.porting_time, ledger.len());
        report.ledger = ledger;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomig_mir::{parse_module, verify_module, Ordering};

    /// Figure 4: the full pipeline makes the TAS unlock store SC through
    /// alias exploration ("once atomic, always atomic").
    #[test]
    fn tas_lock_unlock_store_marked_via_buddies() {
        let mut m = parse_module(
            r#"
            global @locked: i32 = 0
            fn @lock() : void {
            spin:
              %old = cmpxchg i32 @locked, 0, 1 seq_cst
              %c = cmp ne %old, 0
              condbr %c, spin, done
            done:
              ret
            }
            fn @unlock() : void {
            bb0:
              store i32 0, @locked
              ret
            }
            "#,
        )
        .unwrap();
        let report = Pipeline::new(AtomigConfig::full()).port_module(&mut m);
        assert_eq!(report.spinloops, 1);
        verify_module(&m).unwrap();
        let unlock = m.func(m.func_by_name("unlock").unwrap());
        let store_ord = unlock.blocks[0].insts[0].kind.ordering();
        assert_eq!(store_ord, Some(Ordering::SeqCst));
    }

    /// Figure 5: both the reader's loads of flag and the writer's store
    /// become SC; msg stays plain (protected transitively by the flag).
    #[test]
    fn message_passing_transformation() {
        let mut m = parse_module(
            r#"
            global @flag: i32 = 0
            global @msg: i32 = 0
            fn @reader() : i32 {
            loop:
              %f = load i32, @flag
              %c = cmp ne %f, 1
              condbr %c, loop, done
            done:
              %v = load i32, @msg
              ret %v
            }
            fn @writer() : void {
            bb0:
              store i32 7, @msg
              store i32 1, @flag
              ret
            }
            "#,
        )
        .unwrap();
        let report = Pipeline::new(AtomigConfig::full()).port_module(&mut m);
        assert_eq!(report.spinloops, 1);
        assert_eq!(report.optiloops, 0);
        assert_eq!(report.implicit_barriers_added, 2); // flag load + store
        assert_eq!(report.explicit_barriers_added, 0);
        let writer = m.func(m.func_by_name("writer").unwrap());
        assert_eq!(
            writer.blocks[0].insts[0].kind.ordering(),
            Some(Ordering::NotAtomic)
        ); // msg store untouched
        assert_eq!(
            writer.blocks[0].insts[1].kind.ordering(),
            Some(Ordering::SeqCst)
        );
    }

    /// Figure 6: the seqlock gets SC controls plus explicit fences before
    /// in-loop control loads and after control stores.
    #[test]
    fn seqlock_gets_explicit_fences() {
        let mut m = parse_module(
            r#"
            global @flag: i32 = 0
            global @msg: i32 = 0
            fn @reader() : i32 {
            entry:
              %i = alloca i32
              %data = alloca i32
              br loop
            loop:
              %f1 = load i32, @flag
              store i32 %f1, %i
              %m = load i32, @msg
              store i32 %m, %data
              %iv = load i32, %i
              %odd = rem %iv, 2
              %c1 = cmp ne %odd, 0
              condbr %c1, loop, check2
            check2:
              %iv2 = load i32, %i
              %f2 = load i32, @flag
              %c2 = cmp ne %iv2, %f2
              condbr %c2, loop, done
            done:
              %d = load i32, %data
              ret %d
            }
            fn @writer() : void {
            bb0:
              %f1 = load i32, @flag
              %inc1 = add %f1, 1
              store i32 %inc1, @flag
              store i32 42, @msg
              %f2 = load i32, @flag
              %inc2 = add %f2, 1
              store i32 %inc2, @flag
              ret
            }
            "#,
        )
        .unwrap();
        let report = Pipeline::new(AtomigConfig::full()).port_module(&mut m);
        assert_eq!(report.spinloops, 1);
        assert_eq!(report.optiloops, 1);
        // Fences: before the two in-loop control loads of @flag, and after
        // each of the writer's two stores to @flag.
        assert!(report.explicit_barriers_added >= 4);
        verify_module(&m).unwrap();
        // The writer's flag stores are SC and followed by fences.
        let writer = m.func(m.func_by_name("writer").unwrap());
        let insts = &writer.blocks[0].insts;
        let mut saw_store_fence = 0;
        for w in insts.windows(2) {
            if matches!(
                &w[0].kind,
                InstKind::Store {
                    ord: Ordering::SeqCst,
                    ..
                }
            ) && matches!(&w[1].kind, InstKind::Fence { .. })
            {
                saw_store_fence += 1;
            }
        }
        assert_eq!(saw_store_fence, 2);
    }

    /// On modules whose sharing flows through direct globals, the two
    /// alias backends agree: the MP reader/writer transformation is
    /// identical in points-to mode.
    #[test]
    fn points_to_mode_matches_type_based_on_direct_globals() {
        let src = r#"
            global @flag: i32 = 0
            global @msg: i32 = 0
            fn @reader() : i32 {
            loop:
              %f = load i32, @flag
              %c = cmp ne %f, 1
              condbr %c, loop, done
            done:
              %v = load i32, @msg
              ret %v
            }
            fn @writer() : void {
            bb0:
              store i32 7, @msg
              store i32 1, @flag
              ret
            }
            "#;
        let mut tb = parse_module(src).unwrap();
        let r_tb = Pipeline::new(AtomigConfig::full()).port_module(&mut tb);
        let mut cfg = AtomigConfig::full();
        cfg.alias_mode = crate::config::AliasMode::PointsTo;
        let mut pt = parse_module(src).unwrap();
        let r_pt = Pipeline::new(cfg).port_module(&mut pt);
        assert_eq!(r_pt.implicit_barriers_added, r_tb.implicit_barriers_added);
        assert_eq!(r_pt.explicit_barriers_added, r_tb.explicit_barriers_added);
        assert_eq!(tb, pt, "identical transformed modules");
    }

    /// The precision win: two struct globals handled through pointer
    /// parameters share one type-based `Field` key, so an atomic access
    /// through one handle drags the other handle's accesses to SC.
    /// Points-to keeps the allocation sites apart.
    #[test]
    fn points_to_mode_does_not_over_promote_aliased_handles() {
        let src = r#"
            struct %S { i64, i64 }
            global @a: %S = 0
            global @b: %S = 0
            fn @ta(%h: ptr %S) : void {
            bb0:
              %f = gep %S, %h, 0, 0
              %old = cmpxchg i64 %f, 0, 1 seq_cst
              ret
            }
            fn @tb(%h: ptr %S) : void {
            bb0:
              %f = gep %S, %h, 0, 0
              store i64 2, %f
              ret
            }
            fn @main() : void {
            bb0:
              call void @ta(@a)
              call void @tb(@b)
              ret
            }
            "#;
        let mut cfg = AtomigConfig::full();
        cfg.inline = false;
        let mut tb = parse_module(src).unwrap();
        let r_tb = Pipeline::new(cfg.clone()).port_module(&mut tb);
        cfg.alias_mode = crate::config::AliasMode::PointsTo;
        let mut pt = parse_module(src).unwrap();
        let r_pt = Pipeline::new(cfg).port_module(&mut pt);
        assert_eq!(r_tb.implicit_barriers_added, 1, "{r_tb}");
        assert_eq!(
            r_pt.implicit_barriers_added, 0,
            "points-to keeps @b's store plain: {r_pt}"
        );
        let tb_store = tb.func(tb.func_by_name("tb").unwrap()).blocks[0].insts[1]
            .kind
            .ordering();
        assert_eq!(tb_store, Some(Ordering::SeqCst));
        let pt_store = pt.func(pt.func_by_name("tb").unwrap()).blocks[0].insts[1]
            .kind
            .ordering();
        assert_eq!(pt_store, Some(Ordering::NotAtomic));
    }

    #[test]
    fn staged_configs_are_monotone() {
        let src = r#"
            global @flag: i32 = 0
            global @msg: i32 = 0
            fn @reader() : i32 {
            entry:
              %data = alloca i32
              br loop
            loop:
              %f1 = load i32, @flag volatile
              %m = load i32, @msg
              store i32 %m, %data
              %f2 = load i32, @flag volatile
              %c = cmp ne %f1, %f2
              condbr %c, loop, done
            done:
              %d = load i32, %data
              ret %d
            }
            "#;
        let run = |cfg: AtomigConfig| {
            let mut m = parse_module(src).unwrap();
            let r = Pipeline::new(cfg).port_module(&mut m);
            (r.implicit_barriers_added, r.explicit_barriers_added)
        };
        let (orig_i, orig_e) = run(AtomigConfig::original());
        let (expl_i, expl_e) = run(AtomigConfig::explicit_only());
        let (spin_i, spin_e) = run(AtomigConfig::spin());
        let (full_i, full_e) = run(AtomigConfig::full());
        assert_eq!((orig_i, orig_e), (0, 0));
        assert!(expl_i >= 2); // the two volatile loads
        assert_eq!(expl_e, 0);
        assert!(spin_i >= expl_i);
        assert_eq!(spin_e, 0);
        assert!(full_i >= spin_i);
        assert!(full_e > 0); // optimistic fences only in the full stage
    }

    #[test]
    fn porting_is_idempotent() {
        let mut m = parse_module(
            r#"
            global @flag: i32 = 0
            fn @wait() : void {
            loop:
              %f = load i32, @flag
              %c = cmp eq %f, 0
              condbr %c, loop, done
            done:
              ret
            }
            "#,
        )
        .unwrap();
        let p = Pipeline::new(AtomigConfig::full());
        let r1 = p.port_module(&mut m);
        assert_eq!(r1.implicit_barriers_added, 1);
        let snapshot = m.clone();
        let r2 = p.port_module(&mut m);
        assert_eq!(r2.implicit_barriers_added, 0);
        assert_eq!(m, snapshot);
    }

    /// Regression: a decision on an instruction missing from the access
    /// index — a transform-inserted fence here — must resolve its span
    /// from the current module rather than silently degrading to
    /// `(0, MemLoc::Unknown)`.
    #[test]
    fn record_resolves_transform_inserted_instructions_from_the_module() {
        let mut m = parse_module(
            r#"
            global @flag: i32 = 0
            global @msg: i32 = 0
            fn @reader() : i32 {
            entry:
              %i = alloca i32
              %data = alloca i32
              br loop
            loop:
              %f1 = load i32, @flag
              store i32 %f1, %i
              %m = load i32, @msg
              store i32 %m, %data
              %iv = load i32, %i
              %odd = rem %iv, 2
              %c1 = cmp ne %odd, 0
              condbr %c1, loop, done
            done:
              %d = load i32, %data
              ret %d
            }
            fn @writer() : void {
            bb0:
              %f = load i32, @flag
              %inc = add %f, 1
              store i32 %inc, @flag
              ret
            }
            "#,
        )
        .unwrap();
        let r = Pipeline::new(AtomigConfig::full()).port_module(&mut m);
        assert!(r.explicit_barriers_added > 0, "{r}");
        let (fid, fence_id, fence_span) = m
            .func_ids()
            .find_map(|fid| {
                m.func(fid)
                    .insts()
                    .find(|(_, i)| matches!(i.kind, InstKind::Fence { .. }))
                    .map(|(_, i)| (fid, i.id, i.span))
            })
            .expect("porting inserted a fence");
        // The post-inline access index knows nothing about the fence.
        let mut ledger = DecisionLedger::default();
        record(
            &mut ledger,
            &m,
            &HashMap::new(),
            fid,
            fence_id,
            TraceAction::FenceAfter,
            TraceCause::OptimisticStore { seed: None },
        );
        assert_eq!(ledger.decisions()[0].span, fence_span);

        // Same for a plain store that simply was never indexed: span and
        // alias key both come back from the module.
        let wid = m.func_by_name("writer").unwrap();
        let writer = m.func(wid);
        let (store_id, store_span) = writer
            .insts()
            .find(|(_, i)| matches!(i.kind, InstKind::Store { .. }))
            .map(|(_, i)| (i.id, i.span))
            .unwrap();
        record(
            &mut ledger,
            &m,
            &HashMap::new(),
            wid,
            store_id,
            TraceAction::UpgradeSc,
            TraceCause::BarrierHint,
        );
        let d = &ledger.decisions()[1];
        assert_eq!(d.span, store_span);
        assert!(
            matches!(d.loc, MemLoc::Global(..)),
            "store location resolved from the module, got {:?}",
            d.loc
        );
    }

    #[test]
    fn report_censuses_are_consistent() {
        let mut m = parse_module(
            r#"
            global @flag: i32 = 0
            fn @wait() : void {
            loop:
              %f = load i32, @flag
              %c = cmp eq %f, 0
              condbr %c, loop, done
            done:
              ret
            }
            fn @set() : void {
            bb0:
              store i32 1, @flag
              ret
            }
            "#,
        )
        .unwrap();
        let r = Pipeline::new(AtomigConfig::full()).port_module(&mut m);
        assert_eq!(r.before.implicit, 0);
        assert_eq!(
            r.after.implicit,
            r.before.implicit + r.implicit_barriers_added
        );
        assert_eq!(
            r.after.explicit,
            r.before.explicit + r.explicit_barriers_added
        );
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use atomig_mir::MemLoc;

    const POINTER_SPIN: &str = r#"
        global @flag_storage: i32 = 0
        global @unrelated: i32 = 0
        fn @wait(%w: ptr i32) : void {
        loop:
          %v = load i32, %w
          %c = cmp eq %v, 0
          condbr %c, loop, done
        done:
          ret
        }
        fn @touch(%p: ptr i32) : i32 {
        bb0:
          %v = load i32, %p
          ret %v
        }
        "#;

    /// The coarse pointee-typed buckets (§3.4's rejected alternative,
    /// kept as a knob): a spin through a raw `int*` sweeps in every other
    /// `int*` dereference in the module.
    #[test]
    fn pointee_buddies_expand_raw_pointer_controls() {
        let m0 = atomig_mir::parse_module(POINTER_SPIN).unwrap();

        let mut precise = m0.clone();
        let mut cfg = AtomigConfig::full();
        cfg.inline = false;
        let r1 = Pipeline::new(cfg.clone()).port_module(&mut precise);

        let mut coarse = m0.clone();
        cfg.pointee_buddies = true;
        let r2 = Pipeline::new(cfg).port_module(&mut coarse);

        assert_eq!(r1.spinloops, 1);
        assert_eq!(r2.spinloops, 1);
        assert!(
            r2.implicit_barriers_added > r1.implicit_barriers_added,
            "coarse {r2} vs precise {r1}"
        );
        // The unrelated @touch load became atomic only in the coarse run.
        let touch_sc = |m: &Module| {
            m.func(m.func_by_name("touch").unwrap())
                .insts()
                .any(|(_, i)| i.kind.ordering() == Some(atomig_mir::Ordering::SeqCst))
        };
        assert!(!touch_sc(&precise));
        assert!(touch_sc(&coarse));
    }

    /// §6 compiler-barrier hints: a fenced straight-line publication with
    /// no loop gets its adjacent accesses marked (and their buddies).
    #[test]
    fn compiler_barrier_hints_mark_straightline_publication() {
        let src = r#"
            int ready; long payload;
            void publish(long v) {
                payload = v;
                asm("" ::: "memory");
                ready = 1;
            }
            int consume() { return ready; }
        "#;
        let m0 = atomig_frontc::compile(src, "cb").unwrap();

        let mut plain = m0.clone();
        let mut cfg = AtomigConfig::full();
        cfg.inline = false;
        let r1 = Pipeline::new(cfg.clone()).port_module(&mut plain);
        assert_eq!(r1.barrier_hints, 0);
        assert_eq!(r1.implicit_barriers_added, 0);

        let mut hinted = m0.clone();
        cfg.compiler_barrier_hints = true;
        let r2 = Pipeline::new(cfg).port_module(&mut hinted);
        assert_eq!(r2.barrier_hints, 2);
        // payload store, ready store, plus the buddy load in @consume.
        assert!(r2.implicit_barriers_added >= 3, "{r2}");
    }

    /// The volatile blacklist excludes device-style locations from the
    /// §3.2 conversion.
    #[test]
    fn volatile_blacklist_is_honored() {
        let src = r#"
            volatile int mmio_reg;
            volatile int shared_flag;
            void poke() { mmio_reg = 1; shared_flag = 1; }
        "#;
        let m0 = atomig_frontc::compile(src, "bl").unwrap();
        let mmio = m0.global_by_name("mmio_reg").unwrap();

        let mut cfg = AtomigConfig::full();
        cfg.inline = false;
        cfg.volatile_blacklist = vec![MemLoc::Global(mmio, vec![])];
        let mut m = m0.clone();
        let report = Pipeline::new(cfg).port_module(&mut m);
        assert_eq!(report.explicit_annotations, 1); // only shared_flag
        let f = m.func(m.func_by_name("poke").unwrap());
        let mut orderings = vec![];
        for (_, i) in f.insts() {
            if let Some(addr) = i.kind.address() {
                orderings.push((addr, i.kind.ordering().unwrap()));
            }
        }
        use atomig_mir::{Ordering, Value};
        assert!(orderings.contains(&(Value::Global(mmio), Ordering::NotAtomic)));
    }
}
