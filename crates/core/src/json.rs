//! A minimal JSON value, writer, and parser.
//!
//! The workspace builds offline with zero external dependencies, so the
//! observability sinks (`--emit-metrics` JSONL, `BENCH_*.json` records)
//! carry their own JSON layer: a small [`Value`] enum, a writer that
//! escapes strings per RFC 8259, and a recursive-descent parser used by
//! the schema validator and `atomig metrics`. Numbers are kept as `f64`
//! on parse (ample for counters and nanosecond timings) and written from
//! `u128`/`f64` on emit.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects use a [`BTreeMap`] so emission is deterministic
/// (sorted keys), which keeps metrics files byte-comparable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value of an object key, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array content, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Num(n as f64)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}

impl From<u128> for Value {
    fn from(n: u128) -> Value {
        Value::Num(n as f64)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parses one JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error, or
/// on trailing garbage after the document.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our own
                            // emitter; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("invalid escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = Value::obj(vec![
            ("name", "spin-detect".into()),
            ("nanos", 12345usize.into()),
            ("ok", true.into()),
            ("items", Value::Arr(vec![1usize.into(), 2usize.into()])),
            ("none", Value::Null),
        ]);
        let text = v.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn escapes_and_unescapes_strings() {
        let v = Value::Str("a\"b\\c\nd\te — µs".into());
        let text = v.to_string();
        assert!(text.contains("\\\"") && text.contains("\\n"));
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn object_keys_are_sorted_deterministically() {
        let v = Value::obj(vec![("zeta", 1usize.into()), ("alpha", 2usize.into())]);
        assert_eq!(v.to_string(), r#"{"alpha":2,"zeta":1}"#);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn parses_numbers() {
        assert_eq!(parse("-12").unwrap().as_num(), Some(-12.0));
        assert_eq!(parse("3.5e2").unwrap().as_num(), Some(350.0));
        let big = (1u64 << 40).to_string();
        assert_eq!(parse(&big).unwrap().as_num(), Some((1u64 << 40) as f64));
    }
}
