//! Porting reports and the Table 1 comparison matrix.

use crate::trace::{DecisionLedger, PipelineMetrics};
use atomig_mir::{InstKind, Module};
use std::fmt;
use std::time::Duration;

/// Counts of barriers present in a module, as reported per column in
/// Table 3 (`# B_Expl` / `# B_Impl`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BarrierCensus {
    /// Stand-alone explicit fences.
    pub explicit: usize,
    /// Memory accesses carrying implicit barriers (any atomic ordering).
    pub implicit: usize,
    /// Plain memory accesses.
    pub plain: usize,
}

impl BarrierCensus {
    /// Counts barriers in `m`.
    pub fn of(m: &Module) -> BarrierCensus {
        let mut c = BarrierCensus::default();
        for f in &m.funcs {
            for (_, inst) in f.insts() {
                match &inst.kind {
                    InstKind::Fence { .. } => c.explicit += 1,
                    k if k.is_memory_access() => {
                        if k.ordering().map(|o| o.is_atomic()).unwrap_or(false) {
                            c.implicit += 1;
                        } else {
                            c.plain += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
        c
    }
}

/// The outcome of one AtoMig pipeline run (one row of Table 3).
#[derive(Debug, Clone, Default)]
pub struct PortReport {
    /// Module name.
    pub module: String,
    /// Spinloops detected (§3.3).
    pub spinloops: usize,
    /// Optimistic loops detected (§3.3).
    pub optiloops: usize,
    /// Explicitly annotated accesses found (§3.2): atomics + volatiles.
    pub explicit_annotations: usize,
    /// Accesses marked through the §6 compiler-barrier hint extension
    /// (0 unless [`AtomigConfig::compiler_barrier_hints`] is on).
    ///
    /// [`AtomigConfig::compiler_barrier_hints`]: crate::AtomigConfig::compiler_barrier_hints
    pub barrier_hints: usize,
    /// Call sites inlined before analysis (§3.5).
    pub inlined_calls: usize,
    /// Distinct alias keys seeded for sticky-buddy expansion.
    pub seed_locations: usize,
    /// Accesses marked through sticky-buddy expansion (beyond the seeds).
    pub buddy_marks: usize,
    /// Accesses actually upgraded to SC (implicit barriers added).
    pub implicit_barriers_added: usize,
    /// Explicit fences inserted (around optimistic controls).
    pub explicit_barriers_added: usize,
    /// Barrier census before porting ("Original" columns of Table 3).
    pub before: BarrierCensus,
    /// Barrier census after porting ("AtoMig" columns of Table 3).
    pub after: BarrierCensus,
    /// Wall-clock time of the pipeline itself.
    pub porting_time: Duration,
    /// Per-phase timings and counters ([`crate::trace`]).
    pub metrics: PipelineMetrics,
    /// Every decision the run made, with provenance ([`crate::trace`]).
    pub ledger: DecisionLedger,
}

impl fmt::Display for PortReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "AtoMig port report for `{}`", self.module)?;
        writeln!(f, "  spinloops        : {}", self.spinloops)?;
        writeln!(f, "  optimistic loops : {}", self.optiloops)?;
        writeln!(f, "  explicit annots  : {}", self.explicit_annotations)?;
        writeln!(f, "  inlined calls    : {}", self.inlined_calls)?;
        writeln!(
            f,
            "  barriers before  : {} explicit / {} implicit",
            self.before.explicit, self.before.implicit
        )?;
        writeln!(
            f,
            "  barriers after   : {} explicit / {} implicit",
            self.after.explicit, self.after.implicit
        )?;
        writeln!(
            f,
            "  added            : {} explicit / {} implicit",
            self.explicit_barriers_added, self.implicit_barriers_added
        )?;
        write!(f, "  porting time     : {:?}", self.porting_time)
    }
}

/// A cell of the Table 1 comparison matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fulfil {
    /// ✓ — (mostly) fulfills the property.
    Yes,
    /// ✗ — (mostly) does not.
    No,
    /// = — partly fulfills it.
    Partly,
}

impl fmt::Display for Fulfil {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Fulfil::Yes => "Y",
            Fulfil::No => "x",
            Fulfil::Partly => "=",
        })
    }
}

/// One row of Table 1: approach name and Safe/Efficient/Scalable/Practical.
pub type ApproachRow = (&'static str, [Fulfil; 4]);

/// The Table 1 comparison of porting approaches, verbatim from the paper.
pub fn approach_matrix() -> Vec<ApproachRow> {
    use Fulfil::{No, Partly, Yes};
    vec![
        ("Naive", [Yes, No, Yes, Yes]),
        ("Hardware", [Yes, Partly, Yes, Partly]),
        ("Expert", [Partly, Yes, No, No]),
        ("VSync", [Yes, Yes, No, No]),
        ("Musketeer", [Yes, Partly, Partly, No]),
        ("Lasagne", [Yes, No, Yes, No]),
        ("TSan", [No, Partly, Partly, No]),
        ("AtoMig", [Partly, Yes, Yes, Yes]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomig_mir::parse_module;

    #[test]
    fn census_counts() {
        let m = parse_module(
            r#"
            global @x: i32 = 0
            fn @f() : void {
            bb0:
              %a = load i32, @x
              store i32 1, @x seq_cst
              fence seq_cst
              %b = rmw add i32 @x, 1 acq
              ret
            }
            "#,
        )
        .unwrap();
        let c = BarrierCensus::of(&m);
        assert_eq!(c.explicit, 1);
        assert_eq!(c.implicit, 2);
        assert_eq!(c.plain, 1);
    }

    #[test]
    fn matrix_matches_table1() {
        let rows = approach_matrix();
        assert_eq!(rows.len(), 8);
        let atomig = rows.iter().find(|(n, _)| *n == "AtoMig").unwrap();
        assert_eq!(
            atomig.1,
            [Fulfil::Partly, Fulfil::Yes, Fulfil::Yes, Fulfil::Yes]
        );
        let naive = rows.iter().find(|(n, _)| *n == "Naive").unwrap();
        assert_eq!(naive.1[1], Fulfil::No);
    }

    #[test]
    fn report_display_is_nonempty() {
        let r = PortReport {
            module: "m".into(),
            spinloops: 2,
            ..Default::default()
        };
        let s = r.to_string();
        assert!(s.contains("spinloops        : 2"));
    }
}
