//! # atomig-core
//!
//! The AtoMig passes (§3 of the paper), operating on [`atomig_mir`]
//! modules:
//!
//! 1. [`annotations`] — *analyzing explicit annotations* (§3.2): existing
//!    atomics are upgraded to sequentially consistent, `volatile` accesses
//!    become SC atomics (inline-assembly idioms are normalized to builtins
//!    by the frontend, see `atomig-frontc`).
//! 2. [`spinloop`] — *detecting implicit synchronization patterns* (§3.3):
//!    spinloops and their *spin controls*.
//! 3. [`optimistic`] — optimistic (seqlock-style) loops and *optimistic
//!    controls* (§3.3).
//! 4. [`alias`] — *alias exploration* (§3.4): module-wide type-based
//!    sticky-buddy expansion ("once atomic, always atomic").
//! 5. [`transform`] — the program transformation: SC upgrades plus explicit
//!    fences around optimistic controls.
//!
//! [`pipeline`] wires the passes into the Figure 2 workflow and produces a
//! [`report::PortReport`] with the Table 3 statistics. [`naive`] and
//! [`lasagne`] implement the two baselines the evaluation compares against.
//!
//! # Examples
//!
//! Port the message-passing example (Figure 5):
//!
//! ```
//! use atomig_mir::parse_module;
//! use atomig_core::{Pipeline, AtomigConfig};
//!
//! let mut m = parse_module(r#"
//! global @flag: i32 = 0
//! global @msg: i32 = 0
//! fn @reader() : i32 {
//! loop:
//!   %f = load i32, @flag
//!   %c = cmp ne %f, 1
//!   condbr %c, loop, done
//! done:
//!   %v = load i32, @msg
//!   ret %v
//! }
//! fn @writer() : void {
//! bb0:
//!   store i32 7, @msg
//!   store i32 1, @flag
//!   ret
//! }
//! "#).unwrap();
//! let report = Pipeline::new(AtomigConfig::full()).port_module(&mut m);
//! assert_eq!(report.spinloops, 1);
//! assert!(report.implicit_barriers_added >= 2); // both flag accesses
//! ```

pub mod alias;
pub mod annotations;
pub mod cache;
pub mod config;
pub mod hints;
pub mod json;
pub mod lasagne;
pub mod lint;
pub mod naive;
pub mod optimistic;
pub mod pipeline;
pub mod report;
pub mod spinloop;
pub mod trace;
pub mod transform;

pub use alias::AliasMap;
pub use config::{AliasMode, AtomigConfig, Stage};
pub use lasagne::lasagne_port;
pub use lint::{lint_module, Lint, LintReport, LintRule, Severity};
pub use naive::naive_port;
pub use optimistic::{detect_optimistic, OptimisticLoop};
pub use pipeline::Pipeline;
pub use report::{approach_matrix, BarrierCensus, PortReport};
pub use spinloop::{detect_spinloops, SpinLoopInfo};
pub use trace::{
    validate_metrics_jsonl, CacheMetrics, CheckerMetrics, Clock, Decision, DecisionLedger,
    MetricsTally, PhaseStat, PipelineMetrics, SolverMetrics, TraceAction, TraceCause,
};
