//! Optimistic-loop detection (§3.3, "Optimistic Accesses").
//!
//! "A spinloop is called an optimistic loop if it contains a read of a
//! non-local variable different from all the spin controls that is used by
//! some operation outside the loop." Sequence locks (Figure 6) and the
//! MariaDB lf-hash reader (Figure 7) are the motivating instances.

use crate::annotations::loc_of;
use crate::spinloop::SpinLoopInfo;
use atomig_analysis::InfluenceAnalysis;
use atomig_mir::{Function, InstId, InstKind, MemLoc};
use std::collections::HashSet;

/// A spinloop classified as optimistic.
#[derive(Debug, Clone)]
pub struct OptimisticLoop {
    /// Index of the spinloop in the caller's `Vec<SpinLoopInfo>`.
    pub spin_index: usize,
    /// The optimistic (uncontrolled) non-local reads inside the loop whose
    /// values are used after the loop.
    pub optimistic_reads: Vec<InstId>,
    /// The spin controls of this loop, now promoted to *optimistic
    /// controls*: they receive explicit fences in addition to SC upgrades.
    pub optimistic_controls: Vec<InstId>,
    /// Alias keys of the optimistic controls.
    pub control_locs: Vec<MemLoc>,
}

/// Classifies the given spinloops of `func`, returning the optimistic ones.
pub fn detect_optimistic(
    func: &Function,
    inf: &InfluenceAnalysis<'_>,
    spins: &[SpinLoopInfo],
) -> Vec<OptimisticLoop> {
    let index = func.inst_index();
    let mut out = Vec::new();

    for (spin_index, spin) in spins.iter().enumerate() {
        let body = &spin.natural.body;
        let in_loop: HashSet<InstId> = body
            .iter()
            .flat_map(|&b| func.block(b).insts.iter().map(|i| i.id))
            .collect();
        let control_set: HashSet<InstId> = spin.controls.iter().copied().collect();
        let control_locs: HashSet<&MemLoc> = spin.control_locs.iter().collect();

        // Candidate optimistic reads: in-loop non-local loads that are not
        // spin controls and access a different location than every control.
        let mut optimistic_reads = Vec::new();
        for &b in body {
            for inst in &func.block(b).insts {
                let is_read = matches!(inst.kind, InstKind::Load { .. });
                if !is_read || control_set.contains(&inst.id) {
                    continue;
                }
                let ptr = inst.kind.address().expect("loads have addresses");
                if !inf.escape().is_nonlocal(ptr) {
                    continue;
                }
                let loc = loc_of(func, &index, &inst.kind);
                if control_locs.contains(&loc) {
                    continue;
                }
                if value_used_outside_loop(func, inf, inst.id, &in_loop, body) {
                    optimistic_reads.push(inst.id);
                }
            }
        }
        if optimistic_reads.is_empty() {
            continue;
        }
        optimistic_reads.sort();
        out.push(OptimisticLoop {
            spin_index,
            optimistic_reads,
            optimistic_controls: spin.controls.clone(),
            control_locs: spin.control_locs.clone(),
        });
    }
    out
}

/// Does the value produced by `id` flow to an instruction outside the loop?
///
/// With `-O0` lowering there are no phis, so values can only leave a loop
/// through stack slots: the load's result is stored to a private slot that
/// is read outside the loop (directly or via further slot-to-slot copies).
/// Direct out-of-loop uses are also checked for robustness.
fn value_used_outside_loop(
    func: &Function,
    inf: &InfluenceAnalysis<'_>,
    id: InstId,
    in_loop: &HashSet<InstId>,
    body: &std::collections::BTreeSet<atomig_mir::BlockId>,
) -> bool {
    // Track the set of values carrying the datum: the instruction result
    // itself plus any private slots it is stored into (transitively).
    let mut carrier_insts: HashSet<InstId> = HashSet::new();
    carrier_insts.insert(id);
    let mut carrier_slots: HashSet<InstId> = HashSet::new();
    let mut changed = true;
    while changed {
        changed = false;
        for (_, inst) in func.insts() {
            match &inst.kind {
                InstKind::Store { val, ptr, .. } => {
                    let carries = match val.as_inst() {
                        Some(vid) => carrier_insts.contains(&vid),
                        None => false,
                    };
                    if carries && in_loop.contains(&inst.id) {
                        if let Some(slot) = inf.escape().private_root(*ptr) {
                            changed |= carrier_slots.insert(slot);
                        }
                    }
                }
                InstKind::Load { ptr, .. } => {
                    if let Some(slot) = inf.escape().private_root(*ptr) {
                        if carrier_slots.contains(&slot) && in_loop.contains(&inst.id) {
                            changed |= carrier_insts.insert(inst.id);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // Any direct use of a carrier value outside the loop?
    for (_, inst) in func.insts() {
        if in_loop.contains(&inst.id) {
            continue;
        }
        // A load outside the loop from a carrier slot observes the datum.
        if let InstKind::Load { ptr, .. } = &inst.kind {
            if let Some(slot) = inf.escape().private_root(*ptr) {
                if carrier_slots.contains(&slot) {
                    return true;
                }
            }
        }
        for op in inst.kind.operands() {
            if let Some(vid) = op.as_inst() {
                if carrier_insts.contains(&vid) {
                    return true;
                }
            }
        }
    }
    // Terminator uses (e.g. `ret data`).
    for b in func.block_ids() {
        if body.contains(&b) {
            continue;
        }
        for op in func.block(b).term.operands() {
            if let Some(vid) = op.as_inst() {
                if carrier_insts.contains(&vid) {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spinloop::detect_spinloops;
    use atomig_mir::parse_module;

    fn analyze(src: &str) -> (usize, usize) {
        let m = parse_module(src).unwrap();
        let f = &m.funcs[0];
        let inf = InfluenceAnalysis::new(f);
        let spins = detect_spinloops(f, &inf);
        let opts = detect_optimistic(f, &inf, &spins);
        (spins.len(), opts.len())
    }

    /// Figure 6 reader: the sequence-count loop is optimistic.
    #[test]
    fn seqlock_reader_is_optimistic() {
        let (spins, opts) = analyze(
            r#"
            global @flag: i32 = 0
            global @msg: i32 = 0
            fn @reader() : i32 {
            entry:
              %i = alloca i32
              %data = alloca i32
              br loop
            loop:
              %f1 = load i32, @flag
              store i32 %f1, %i
              %m = load i32, @msg
              store i32 %m, %data
              %iv = load i32, %i
              %odd = rem %iv, 2
              %c1 = cmp ne %odd, 0
              condbr %c1, loop, check2
            check2:
              %iv2 = load i32, %i
              %f2 = load i32, @flag
              %c2 = cmp ne %iv2, %f2
              condbr %c2, loop, done
            done:
              %d = load i32, %data
              ret %d
            }
            "#,
        );
        assert_eq!(spins, 1);
        assert_eq!(opts, 1);
    }

    /// Figure 5 reader: plain message passing is a spinloop but NOT
    /// optimistic (the msg read happens after the loop).
    #[test]
    fn mp_reader_is_not_optimistic() {
        let (spins, opts) = analyze(
            r#"
            global @flag: i32 = 0
            global @msg: i32 = 0
            fn @reader() : i32 {
            entry:
              br loop
            loop:
              %f = load i32, @flag
              %c = cmp ne %f, 1
              condbr %c, loop, done
            done:
              %m = load i32, @msg
              ret %m
            }
            "#,
        );
        assert_eq!(spins, 1);
        assert_eq!(opts, 0);
    }

    /// An in-loop read of another shared variable that is *not* used after
    /// the loop does not make the loop optimistic.
    #[test]
    fn unused_extra_read_is_not_optimistic() {
        let (spins, opts) = analyze(
            r#"
            global @flag: i32 = 0
            global @stats: i32 = 0
            fn @reader() : void {
            entry:
              %tmp = alloca i32
              br loop
            loop:
              %s = load i32, @stats
              store i32 %s, %tmp
              %f = load i32, @flag
              %c = cmp ne %f, 1
              condbr %c, loop, done
            done:
              ret
            }
            "#,
        );
        assert_eq!(spins, 1);
        assert_eq!(opts, 0);
    }

    /// Figure 7 abstraction: the lf-hash l_find loop reading key between
    /// state reads is optimistic.
    #[test]
    fn lf_hash_find_is_optimistic() {
        let (spins, opts) = analyze(
            r#"
            struct %Node { i64, i64 }
            fn @l_find(%n: ptr %Node) : i64 {
            entry:
              %state = alloca i64
              %key = alloca i64
              br loop
            loop:
              %sa = gep %Node, %n, 0, 0
              %sv = load i64, %sa
              store i64 %sv, %state
              %ka = gep %Node, %n, 0, 1
              %kv = load i64, %ka
              store i64 %kv, %key
              %sv1 = load i64, %state
              %sa2 = gep %Node, %n, 0, 0
              %sv2 = load i64, %sa2
              %c = cmp ne %sv1, %sv2
              condbr %c, loop, done
            done:
              %k = load i64, %key
              ret %k
            }
            "#,
        );
        assert_eq!(spins, 1);
        assert_eq!(opts, 1);
    }

    /// The optimistic controls are exactly the loop's spin controls.
    #[test]
    fn optimistic_controls_match_spin_controls() {
        let m = parse_module(
            r#"
            global @seq: i32 = 0
            global @val: i32 = 0
            fn @reader() : i32 {
            entry:
              %data = alloca i32
              br loop
            loop:
              %s1 = load i32, @seq
              %v = load i32, @val
              store i32 %v, %data
              %s2 = load i32, @seq
              %c = cmp ne %s1, %s2
              condbr %c, loop, done
            done:
              %d = load i32, %data
              ret %d
            }
            "#,
        )
        .unwrap();
        let f = &m.funcs[0];
        let inf = InfluenceAnalysis::new(f);
        let spins = detect_spinloops(f, &inf);
        let opts = detect_optimistic(f, &inf, &spins);
        assert_eq!(opts.len(), 1);
        assert_eq!(
            opts[0].optimistic_controls,
            spins[opts[0].spin_index].controls
        );
        assert!(!opts[0].optimistic_reads.is_empty());
    }
}
