//! The Naïve baseline (§2.2): make *every* shared memory access
//! sequentially consistent.
//!
//! "The simplest solution is to make all memory accesses SC by using Arm's
//! implicit SC barriers … This solution fulfills our safety, scalability,
//! and practicality requirements, but introduces significantly high runtime
//! overhead." Accesses provably confined to a private stack slot are left
//! alone (they are unobservable by other threads by construction).

use atomig_analysis::EscapeInfo;
use atomig_mir::{Module, Ordering};

/// Statistics of a naïve port.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NaiveStats {
    /// Accesses upgraded to SC.
    pub upgraded: usize,
    /// Accesses left plain (private stack traffic).
    pub skipped_private: usize,
}

/// Applies the naïve port to the whole module.
pub fn naive_port(m: &mut Module) -> NaiveStats {
    let mut stats = NaiveStats::default();
    for func in &mut m.funcs {
        let escape = EscapeInfo::new(func);
        for block in &mut func.blocks {
            for inst in &mut block.insts {
                if !inst.kind.is_memory_access() {
                    continue;
                }
                let ptr = inst.kind.address().expect("memory access has address");
                if escape.is_nonlocal(ptr) {
                    inst.kind.upgrade_ordering(Ordering::SeqCst);
                    stats.upgraded += 1;
                } else {
                    stats.skipped_private += 1;
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomig_mir::{parse_module, verify_module};

    #[test]
    fn upgrades_all_shared_accesses() {
        let mut m = parse_module(
            r#"
            global @a: i32 = 0
            global @b: i32 = 0
            fn @f(%p: ptr i32) : i32 {
            bb0:
              %x = alloca i32
              store i32 1, %x
              %v = load i32, @a
              store i32 %v, @b
              %w = load i32, %p
              %l = load i32, %x
              %s = add %w, %l
              ret %s
            }
            "#,
        )
        .unwrap();
        let stats = naive_port(&mut m);
        assert_eq!(stats.upgraded, 3); // @a, @b, %p
        assert_eq!(stats.skipped_private, 2); // the two %x accesses
        verify_module(&m).unwrap();
        let f = &m.funcs[0];
        let sc_count = f
            .insts()
            .filter(|(_, i)| i.kind.ordering() == Some(Ordering::SeqCst))
            .count();
        assert_eq!(sc_count, 3);
    }

    #[test]
    fn idempotent() {
        let mut m = parse_module(
            r#"
            global @a: i32 = 0
            fn @f() : void {
            bb0:
              store i32 1, @a
              ret
            }
            "#,
        )
        .unwrap();
        naive_port(&mut m);
        let snapshot = m.clone();
        let stats = naive_port(&mut m);
        assert_eq!(m, snapshot);
        assert_eq!(stats.upgraded, 1); // counted again, but no change
    }
}
