//! Pass 1: analyzing explicit annotations (§3.2).
//!
//! * Existing atomic accesses with orderings weaker than SC are upgraded —
//!   "on TSO, most of the attached memory orders … are indistinguishable,
//!   so it is frequent for code to use insufficiently strong memory
//!   orders. To ensure correctness under WMM, we therefore turn all of
//!   these memory orders into SC."
//! * `volatile` accesses become SC atomics — volatile suppresses compiler
//!   optimizations but "has no influence on how the hardware treats those
//!   accesses".
//! * x86 inline assembly is normalized to builtins by the frontend (see
//!   `atomig_frontc::asm`), so at this level it already appears as atomic
//!   instructions/fences and is covered by the first rule.
//!
//! The pass only *collects* marks; [`crate::transform`] applies them, so
//! that alias exploration can expand the mark set first.

use atomig_mir::{Function, InstId, InstKind, MemLoc, Module};
use std::collections::HashMap;

/// An access marked for SC-atomic conversion, with the location key used
/// for sticky-buddy expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mark {
    /// The marked instruction.
    pub inst: InstId,
    /// Alias key of the accessed location.
    pub loc: MemLoc,
}

/// Result of scanning one function for explicit annotations.
#[derive(Debug, Clone, Default)]
pub struct AnnotationMarks {
    /// Accesses that were already atomic (any ordering).
    pub atomics: Vec<Mark>,
    /// Plain accesses with the `volatile` qualifier.
    pub volatiles: Vec<Mark>,
}

/// Scans `func` for explicitly annotated synchronization accesses.
///
/// `blacklist` suppresses volatile locations that communicate with the
/// *environment* (device registers, signal handlers) rather than with other
/// threads — the paper's volatile blacklisting knob. It was never needed in
/// the paper's experiments and defaults to empty.
pub fn scan_annotations(func: &Function, blacklist: &[MemLoc]) -> AnnotationMarks {
    let index = func.inst_index();
    let mut out = AnnotationMarks::default();
    for (_, inst) in func.insts() {
        let kind = &inst.kind;
        if !kind.is_memory_access() {
            continue;
        }
        let loc = loc_of(func, &index, kind);
        let is_atomic = kind.ordering().map(|o| o.is_atomic()).unwrap_or(false);
        let is_volatile = matches!(
            kind,
            InstKind::Load { volatile: true, .. } | InstKind::Store { volatile: true, .. }
        );
        if is_atomic {
            out.atomics.push(Mark { inst: inst.id, loc });
        } else if is_volatile && !blacklist.contains(&loc) {
            out.volatiles.push(Mark { inst: inst.id, loc });
        }
    }
    out
}

/// Resolves the alias key of a memory access.
pub fn loc_of(func: &Function, index: &HashMap<InstId, &InstKind>, kind: &InstKind) -> MemLoc {
    match kind.address() {
        Some(ptr) => atomig_mir::loc::resolve_loc(func, index, ptr),
        None => MemLoc::Unknown,
    }
}

/// Scans a whole module.
pub fn scan_module(m: &Module, blacklist: &[MemLoc]) -> Vec<(atomig_mir::FuncId, AnnotationMarks)> {
    m.func_ids()
        .map(|fid| (fid, scan_annotations(m.func(fid), blacklist)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomig_mir::{parse_module, GlobalId};

    #[test]
    fn finds_existing_atomics_of_any_order() {
        let m = parse_module(
            r#"
            global @x: i32 = 0
            fn @f() : void {
            bb0:
              %a = load i32, @x rlx
              store i32 1, @x rel
              %b = rmw add i32 @x, 1 acq_rel
              %c = cmpxchg i32 @x, 0, 1 seq_cst
              %d = load i32, @x
              ret
            }
            "#,
        )
        .unwrap();
        let marks = scan_annotations(&m.funcs[0], &[]);
        assert_eq!(marks.atomics.len(), 4);
        assert!(marks.volatiles.is_empty());
        for mk in &marks.atomics {
            assert_eq!(mk.loc, MemLoc::Global(GlobalId(0), vec![]));
        }
    }

    #[test]
    fn finds_volatile_accesses() {
        let m = parse_module(
            r#"
            global @v: i32 = 0
            fn @f() : i32 {
            bb0:
              %a = load i32, @v volatile
              store i32 1, @v volatile
              %b = load i32, @v
              ret %a
            }
            "#,
        )
        .unwrap();
        let marks = scan_annotations(&m.funcs[0], &[]);
        assert_eq!(marks.volatiles.len(), 2);
        assert!(marks.atomics.is_empty());
    }

    #[test]
    fn blacklist_suppresses_device_volatiles() {
        let m = parse_module(
            r#"
            global @mmio: i32 = 0
            global @shared: i32 = 0
            fn @f() : void {
            bb0:
              store i32 1, @mmio volatile
              store i32 1, @shared volatile
              ret
            }
            "#,
        )
        .unwrap();
        let bl = vec![MemLoc::Global(GlobalId(0), vec![])];
        let marks = scan_annotations(&m.funcs[0], &bl);
        assert_eq!(marks.volatiles.len(), 1);
        assert_eq!(marks.volatiles[0].loc, MemLoc::Global(GlobalId(1), vec![]));
    }

    #[test]
    fn plain_accesses_not_marked() {
        let m = parse_module(
            r#"
            global @x: i32 = 0
            fn @f() : void {
            bb0:
              %a = load i32, @x
              store i32 2, @x
              ret
            }
            "#,
        )
        .unwrap();
        let marks = scan_annotations(&m.funcs[0], &[]);
        assert!(marks.atomics.is_empty());
        assert!(marks.volatiles.is_empty());
    }
}
