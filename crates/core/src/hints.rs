//! §6 extension: compiler barriers as additional detection entry points.
//!
//! "Another idea worth exploring is to use the placement of compiler
//! barriers (which are turned into NOPs in the generated assembly code) as
//! additional entry points for detecting synchronization points." A
//! compiler barrier (`asm("" ::: "memory")`) has no hardware effect, but a
//! programmer wrote it precisely because the surrounding accesses are
//! concurrent — so the nearest non-local accesses on either side of the
//! barrier are strong synchronization candidates.
//!
//! Off by default ([`crate::AtomigConfig::compiler_barrier_hints`]); this
//! implements the paper's proposed future work so its effect can be
//! studied (see the `ablation` harness).

use crate::annotations::{loc_of, Mark};
use atomig_analysis::EscapeInfo;
use atomig_mir::{Builtin, Callee, Function, InstKind};

/// Finds the nearest non-local memory access before and after every
/// compiler barrier, within the barrier's basic block.
pub fn barrier_adjacent_accesses(func: &Function) -> Vec<Mark> {
    let escape = EscapeInfo::new(func);
    let index = func.inst_index();
    let mut out = Vec::new();
    for block in &func.blocks {
        for (pos, inst) in block.insts.iter().enumerate() {
            let is_barrier = matches!(
                inst.kind,
                InstKind::Call {
                    callee: Callee::Builtin(Builtin::CompilerBarrier),
                    ..
                }
            );
            if !is_barrier {
                continue;
            }
            // Nearest preceding non-local access.
            for prev in block.insts[..pos].iter().rev() {
                if prev.kind.is_memory_access() {
                    let ptr = prev.kind.address().expect("access has address");
                    if escape.is_nonlocal(ptr) {
                        out.push(Mark {
                            inst: prev.id,
                            loc: loc_of(func, &index, &prev.kind),
                        });
                    }
                    break;
                }
            }
            // Nearest following non-local access.
            for next in &block.insts[pos + 1..] {
                if next.kind.is_memory_access() {
                    let ptr = next.kind.address().expect("access has address");
                    if escape.is_nonlocal(ptr) {
                        out.push(Mark {
                            inst: next.id,
                            loc: loc_of(func, &index, &next.kind),
                        });
                    }
                    break;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomig_mir::MemLoc;

    #[test]
    fn marks_accesses_around_the_barrier() {
        let m = atomig_frontc::compile(
            r#"
            int ready; long payload;
            void publish(long v) {
                payload = v;
                asm("" ::: "memory");
                ready = 1;
            }
            "#,
            "cb",
        )
        .unwrap();
        let marks = barrier_adjacent_accesses(&m.funcs[0]);
        assert_eq!(marks.len(), 2);
        let names: Vec<String> = marks.iter().map(|mk| mk.loc.to_string()).collect();
        // payload (@g1) before, ready (@g0) after.
        assert!(names.iter().any(|n| n.contains("g0")), "{names:?}");
        assert!(names.iter().any(|n| n.contains("g1")), "{names:?}");
    }

    #[test]
    fn local_accesses_are_not_marked() {
        let m = atomig_frontc::compile(
            r#"
            void local_only() {
                int x = 1;
                asm("" ::: "memory");
                x = x + 1;
            }
            "#,
            "cb",
        )
        .unwrap();
        let marks = barrier_adjacent_accesses(&m.funcs[0]);
        assert!(marks.is_empty(), "{marks:?}");
    }

    #[test]
    fn barrier_at_block_edges_is_fine() {
        let m = atomig_frontc::compile(
            r#"
            int g;
            void edge() {
                asm("" ::: "memory");
            }
            "#,
            "cb",
        )
        .unwrap();
        let marks = barrier_adjacent_accesses(&m.funcs[0]);
        assert!(marks.is_empty());
    }

    #[test]
    fn nearest_access_only() {
        let m = atomig_frontc::compile(
            r#"
            int a; int b; int c;
            void three() {
                a = 1;
                b = 2;
                asm("" ::: "memory");
                c = 3;
            }
            "#,
            "cb",
        )
        .unwrap();
        let marks = barrier_adjacent_accesses(&m.funcs[0]);
        assert_eq!(marks.len(), 2);
        // b (nearest before) and c (nearest after); a is untouched.
        let has = |g: u32| {
            marks
                .iter()
                .any(|mk| matches!(&mk.loc, MemLoc::Global(id, _) if id.0 == g))
        };
        assert!(!has(0) && has(1) && has(2));
    }
}
