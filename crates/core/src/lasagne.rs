//! A Lasagne-style baseline (§2.2, Table 6).
//!
//! Lasagne lifts an x86 binary to LLVM IR, makes the program SC by
//! bracketing memory operations with **explicit** fences, and then removes
//! fences it can prove redundant. Working on lifted binaries it cannot see
//! much structure, so "it often does not manage to remove many barriers" —
//! and explicit fences are much slower than the implicit SC accesses the
//! naïve approach uses, which is why it loses to Naïve in Table 6.
//!
//! This reimplementation mirrors that cost structure: explicit `fence
//! seq_cst` before every shared load and around every shared store, then a
//! verified-peephole-style cleanup that (a) collapses adjacent fences and
//! (b) drops fences around provably thread-private stack traffic.

use atomig_analysis::EscapeInfo;
use atomig_mir::{Inst, InstId, InstKind, Module, Ordering};

/// Statistics of a Lasagne-style port.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LasagneStats {
    /// Fences inserted by the SC-by-construction phase.
    pub fences_inserted: usize,
    /// Fences removed by the optimization phase.
    pub fences_removed: usize,
}

impl LasagneStats {
    /// Fences remaining in the output.
    pub fn fences_remaining(&self) -> usize {
        self.fences_inserted - self.fences_removed
    }
}

/// Applies the Lasagne-style port to the whole module.
pub fn lasagne_port(m: &mut Module) -> LasagneStats {
    let mut stats = LasagneStats::default();
    for func in &mut m.funcs {
        let escape = EscapeInfo::new(func);
        let mut next = func.next_inst;
        // Phase 1: bracket shared accesses with explicit fences.
        for block in &mut func.blocks {
            let old = std::mem::take(&mut block.insts);
            let mut out = Vec::with_capacity(old.len() * 2);
            for inst in old {
                let shared = inst.kind.is_memory_access()
                    && escape.is_nonlocal(inst.kind.address().expect("access"));
                if shared {
                    out.push(Inst::with_span(
                        InstId(next),
                        InstKind::Fence {
                            ord: Ordering::SeqCst,
                        },
                        inst.span,
                    ));
                    next += 1;
                    stats.fences_inserted += 1;
                }
                let was_write = inst.kind.may_write() && shared;
                let span = inst.span;
                out.push(inst);
                if was_write {
                    out.push(Inst::with_span(
                        InstId(next),
                        InstKind::Fence {
                            ord: Ordering::SeqCst,
                        },
                        span,
                    ));
                    next += 1;
                    stats.fences_inserted += 1;
                }
            }
            block.insts = out;
        }
        // Phase 2: peephole removal — collapse runs of fences separated
        // only by non-memory instructions.
        for block in &mut func.blocks {
            let old = std::mem::take(&mut block.insts);
            let mut out: Vec<Inst> = Vec::with_capacity(old.len());
            let mut fence_active = false;
            for inst in old {
                match &inst.kind {
                    InstKind::Fence { .. } => {
                        if fence_active {
                            stats.fences_removed += 1;
                            continue;
                        }
                        fence_active = true;
                        out.push(inst);
                    }
                    k if k.is_memory_access() || matches!(k, InstKind::Call { .. }) => {
                        fence_active = false;
                        out.push(inst);
                    }
                    _ => out.push(inst),
                }
            }
            block.insts = out;
        }
        func.next_inst = next;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomig_mir::{parse_module, verify_module};

    fn fence_count(m: &Module) -> usize {
        m.funcs
            .iter()
            .flat_map(|f| f.insts())
            .filter(|(_, i)| matches!(i.kind, InstKind::Fence { .. }))
            .count()
    }

    #[test]
    fn brackets_shared_accesses() {
        let mut m = parse_module(
            r#"
            global @a: i32 = 0
            fn @f() : i32 {
            bb0:
              %v = load i32, @a
              store i32 1, @a
              ret %v
            }
            "#,
        )
        .unwrap();
        let stats = lasagne_port(&mut m);
        // load: 1 before; store: 1 before + 1 after = 3 inserted.
        assert_eq!(stats.fences_inserted, 3);
        // The fence after the load and before the store are adjacent
        // (separated by nothing) -> one removed.
        assert_eq!(stats.fences_removed, 0);
        assert_eq!(fence_count(&m), 3);
        verify_module(&m).unwrap();
    }

    #[test]
    fn adjacent_fences_collapse() {
        let mut m = parse_module(
            r#"
            global @a: i32 = 0
            global @b: i32 = 0
            fn @f() : void {
            bb0:
              store i32 1, @a
              store i32 2, @b
              ret
            }
            "#,
        )
        .unwrap();
        let stats = lasagne_port(&mut m);
        // 2 per store = 4 inserted; fence-after-a and fence-before-b are
        // adjacent -> 1 removed.
        assert_eq!(stats.fences_inserted, 4);
        assert_eq!(stats.fences_removed, 1);
        assert_eq!(fence_count(&m), 3);
        assert_eq!(stats.fences_remaining(), 3);
    }

    #[test]
    fn private_stack_traffic_unfenced() {
        let mut m = parse_module(
            r#"
            fn @f() : i32 {
            bb0:
              %x = alloca i32
              store i32 1, %x
              %v = load i32, %x
              ret %v
            }
            "#,
        )
        .unwrap();
        let stats = lasagne_port(&mut m);
        assert_eq!(stats.fences_inserted, 0);
        assert_eq!(fence_count(&m), 0);
    }

    #[test]
    fn lasagne_uses_more_explicit_fences_than_atomig_would() {
        // On a write-heavy kernel Lasagne's fence count scales with the
        // number of shared accesses.
        let mut m = parse_module(
            r#"
            global @arr: [8 x i64] = 0
            fn @f(%i: i64) : void {
            bb0:
              %e = gep [8 x i64], @arr, 0, %i
              store i64 1, %e
              store i64 2, %e
              store i64 3, %e
              ret
            }
            "#,
        )
        .unwrap();
        let stats = lasagne_port(&mut m);
        assert!(stats.fences_remaining() >= 4);
        verify_module(&m).unwrap();
    }
}
