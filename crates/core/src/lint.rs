//! `atomig lint` — a static WMM-robustness audit.
//!
//! The porting pipeline (Figure 2) *rewrites* a module; this pass only
//! *reads* one and reports, with MiniC source lines, where the module
//! falls short of the transform's contract. It answers two questions
//! without running the model checker:
//!
//! 1. **fence-placement** — re-runs the detection passes (annotations,
//!    spinloops, optimistic loops, sticky-buddy expansion) as a dry run
//!    and checks that every mark the pipeline *would* compute is already
//!    realized in the module: spin/optimistic controls `seq_cst`, every
//!    in-loop optimistic-control load fence-preceded, every store to an
//!    optimistic location fence-followed, every sticky buddy `seq_cst`.
//!    A module that just went through [`Pipeline::port_module`] verifies
//!    clean by the transform's idempotence; the original module gets one
//!    finding per missing upgrade, i.e. "the port would fix this here".
//!
//! 2. **race-candidate** — a genuinely semantic race detector: it
//!    intersects [`ThreadReach`] (which thread roots can reach each
//!    function) with [`PointsTo`] overlap classes
//!    ([`AliasMap::build_points_to`]). A class fires when two distinct
//!    thread roots reach *aliasing* accesses of which at least one is a
//!    plain store; within a firing class, every plain access that is not
//!    *covered* by realized synchronization is reported. Coverage is
//!    instruction-granular and direction-agnostic: an access is covered
//!    when a `seq_cst` access or fence executes before it on **every**
//!    path from the entry, or after it on **every** path to the exit
//!    (must-dataflow over the CFG), the static shape of
//!    acquire-before-read and release-after-write protocols.
//!
//! Every finding carries the source span threaded through lowering, the
//! alias key, the points-to cells the access may touch, and explanation
//! notes saying *why* the pipeline did or did not promote the location
//! (no spin-exit dependency, pointee-typed key with `pointee_buddies`
//! off, nearest non-covering synchronization, …).
//!
//! [`Pipeline::port_module`]: crate::Pipeline::port_module
//! [`ThreadReach`]: atomig_analysis::ThreadReach
//! [`PointsTo`]: atomig_analysis::PointsTo
//! [`AliasMap::build_points_to`]: crate::AliasMap::build_points_to

use crate::alias::AliasMap;
use crate::annotations::loc_of;
use crate::config::{AliasMode, AtomigConfig, Stage};
use crate::trace::{PipelineMetrics, SolverMetrics};
use atomig_analysis::{Cfg, PointsTo, ThreadReach};
use atomig_mir::{FuncId, Function, InstId, InstKind, MemLoc, Module, Ordering};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// The rules `atomig lint` checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintRule {
    /// Two thread roots reach aliasing accesses (points-to overlap) with
    /// ≥1 plain store, and a plain access is not covered by
    /// synchronization on every path before or after it.
    RaceCandidate,
    /// A mark the pipeline would compute that the module does not
    /// realize (missing SC upgrade or missing explicit fence).
    FencePlacement,
}

impl LintRule {
    /// The kebab-case rule name used on the command line.
    pub fn name(&self) -> &'static str {
        match self {
            LintRule::RaceCandidate => "race-candidate",
            LintRule::FencePlacement => "fence-placement",
        }
    }

    /// Parses a rule name. `shared-plain-access` is accepted as the
    /// legacy alias of `race-candidate` (the rule it grew out of).
    pub fn from_name(s: &str) -> Option<LintRule> {
        Some(match s {
            "race-candidate" | "shared-plain-access" => LintRule::RaceCandidate,
            "fence-placement" => LintRule::FencePlacement,
            _ => return None,
        })
    }

    /// All rules, for "accepted values" error messages.
    pub const ALL: &'static [LintRule] = &[LintRule::RaceCandidate, LintRule::FencePlacement];
}

impl fmt::Display for LintRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Finding severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A generic race candidate.
    Warning,
    /// A participant in a detected synchronization pattern.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Lint {
    /// Which rule fired.
    pub rule: LintRule,
    /// How bad it is.
    pub severity: Severity,
    /// Enclosing function name.
    pub func: String,
    /// The offending instruction.
    pub inst: InstId,
    /// The alias key of the access.
    pub loc: MemLoc,
    /// 1-based MiniC source line (`0` = unknown).
    pub span: u32,
    /// The one-line diagnosis.
    pub message: String,
    /// Explanation-engine notes: why the pipeline did / didn't promote.
    pub notes: Vec<String>,
    /// What to do about it.
    pub suggestion: Option<String>,
}

/// The result of [`lint_module`].
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Module name (the diagnostics' "file").
    pub module: String,
    /// All findings, grouped by rule then source order.
    pub lints: Vec<Lint>,
    /// Functions audited.
    pub funcs: usize,
    /// Memory accesses audited.
    pub accesses: usize,
    /// Thread roots found (`main` + spawn targets).
    pub thread_roots: usize,
    /// Wall-clock time of the audit.
    pub analysis_time: std::time::Duration,
    /// Per-phase timings and counters ([`crate::trace`]).
    pub metrics: PipelineMetrics,
}

impl LintReport {
    /// Findings for one rule.
    pub fn count(&self, rule: LintRule) -> usize {
        self.lints.iter().filter(|l| l.rule == rule).count()
    }

    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.lints.is_empty()
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for l in &self.lints {
            if l.span != 0 {
                write!(f, "{}.c:{}: ", self.module, l.span)?;
            } else {
                write!(f, "{}.c:?: ", self.module)?;
            }
            writeln!(
                f,
                "{}[{}]: {} (in @{})",
                l.severity, l.rule, l.message, l.func
            )?;
            for n in &l.notes {
                writeln!(f, "    note: {n}")?;
            }
            if let Some(s) = &l.suggestion {
                writeln!(f, "    help: {s}")?;
            }
        }
        writeln!(
            f,
            "{}: {} finding(s) in {} function(s), {} access(es), {} thread root(s), {:.1?}",
            self.module,
            self.lints.len(),
            self.funcs,
            self.accesses,
            self.thread_roots,
            self.analysis_time
        )
    }
}

/// Where a dry-run mark came from (for diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MarkOrigin {
    Annotation,
    BarrierHint,
    SpinControl,
    OptimisticStore,
    Buddy,
}

impl MarkOrigin {
    fn describe(&self) -> &'static str {
        match self {
            MarkOrigin::Annotation => "explicitly annotated (atomic/volatile, §3.2)",
            MarkOrigin::BarrierHint => "adjacent to a compiler barrier (§6 hint)",
            MarkOrigin::SpinControl => "a spinloop exit depends on it (§3.3)",
            MarkOrigin::OptimisticStore => "it writes an optimistic-loop control location (§3.3)",
            MarkOrigin::Buddy => "sticky-buddy of a synchronization location (§3.4)",
        }
    }
}

/// The would-be marks of a pipeline dry run, plus enough provenance to
/// explain each one.
#[derive(Debug, Default)]
struct DryRun {
    sc: HashMap<FuncId, HashMap<InstId, MarkOrigin>>,
    fence_before: HashMap<FuncId, HashSet<InstId>>,
    fence_after: HashMap<FuncId, HashSet<InstId>>,
    /// Seed keys in insertion order (deduplicated via `seed_seen`) so the
    /// type-based buddy expansion iterates deterministically — a
    /// `HashSet` here made mark origins depend on hash order.
    seed_locs: Vec<MemLoc>,
    seed_seen: HashSet<MemLoc>,
    optimistic_locs: HashSet<MemLoc>,
    /// Artifact-cache counters of the detection sweep, when a store was
    /// configured.
    cache: Option<crate::trace::CacheMetrics>,
}

impl DryRun {
    fn mark_sc(&mut self, f: FuncId, i: InstId, origin: MarkOrigin) {
        // First origin wins: pattern provenance reads better than "buddy".
        self.sc.entry(f).or_default().entry(i).or_insert(origin);
    }

    fn add_seed(&mut self, l: &MemLoc) {
        if self.seed_seen.insert(l.clone()) {
            self.seed_locs.push(l.clone());
        }
    }
}

/// Mirrors [`Pipeline::port_module`]'s detection passes without touching
/// the module. `am_pt` is the points-to alias map used when
/// `config.alias_mode` selects the points-to backend.
///
/// [`Pipeline::port_module`]: crate::Pipeline::port_module
fn dry_run(m: &Module, config: &AtomigConfig, am_pt: &AliasMap) -> DryRun {
    let mut d = DryRun::default();
    if config.stage == Stage::Original {
        return d;
    }
    let pointee = config.pointee_buddies;
    let seedable = |l: &MemLoc| l.is_buddy_key() || (pointee && matches!(l, MemLoc::Pointee(_)));
    let mut optimistic_accesses: Vec<(FuncId, InstId)> = Vec::new();

    // Per-function detection on the worker pool, merged in `FuncId`
    // order — same deterministic-merge contract as the pipeline itself,
    // including the artifact cache consulted before each function.
    let fids: Vec<FuncId> = m.func_ids().collect();
    let pipe = crate::Pipeline::new(config.clone());
    let (dets, cache) = pipe.detect_all(m);
    d.cache = cache;

    for (&fid, det) in fids.iter().zip(&dets) {
        for (mk, _) in &det.ann_marks {
            d.mark_sc(fid, mk.inst, MarkOrigin::Annotation);
            if seedable(&mk.loc) {
                d.add_seed(&mk.loc);
            }
        }
        for mk in &det.hint_marks {
            d.mark_sc(fid, mk.inst, MarkOrigin::BarrierHint);
            if seedable(&mk.loc) {
                d.add_seed(&mk.loc);
            }
        }
        for s in &det.spins {
            for &c in &s.controls {
                d.mark_sc(fid, c, MarkOrigin::SpinControl);
            }
            for l in &s.control_locs {
                if seedable(l) {
                    d.add_seed(l);
                }
            }
        }
        for o in &det.opts {
            for &(c, is_load) in &o.controls {
                if is_load {
                    d.fence_before.entry(fid).or_default().insert(c);
                }
                optimistic_accesses.push((fid, c));
            }
            for l in &o.control_locs {
                d.optimistic_locs.insert(l.clone());
                if seedable(l) {
                    d.add_seed(l);
                }
            }
        }
    }

    match config.alias_mode {
        AliasMode::TypeBased => {
            if config.alias_exploration {
                let am = AliasMap::build(m, pointee);
                for loc in d.seed_locs.clone() {
                    for &(f, i) in am.buddies(&loc) {
                        d.mark_sc(f, i, MarkOrigin::Buddy);
                    }
                }
            }
            if !d.optimistic_locs.is_empty() {
                for fid in m.func_ids() {
                    let func = m.func(fid);
                    let index = func.inst_index();
                    for (_, inst) in func.insts() {
                        if !inst.kind.may_write() || !inst.kind.is_memory_access() {
                            continue;
                        }
                        let loc = loc_of(func, &index, &inst.kind);
                        if d.optimistic_locs.contains(&loc) {
                            d.fence_after.entry(fid).or_default().insert(inst.id);
                            d.mark_sc(fid, inst.id, MarkOrigin::OptimisticStore);
                        }
                    }
                }
            }
        }
        AliasMode::PointsTo => {
            if config.alias_exploration {
                // Sorted so expansion order — and with it first-origin
                // mark provenance — is deterministic, mirroring the
                // pipeline's seed ordering.
                let mut seeds: Vec<(FuncId, InstId)> =
                    d.sc.iter()
                        .flat_map(|(&f, is)| is.keys().map(move |&i| (f, i)))
                        .collect();
                seeds.sort_unstable_by_key(|&(f, i)| (f.0, i.0));
                seeds.extend(optimistic_accesses.iter().copied());
                for (f, i) in seeds {
                    for &(bf, bi) in am_pt.buddies_of_access(f, i) {
                        d.mark_sc(bf, bi, MarkOrigin::Buddy);
                    }
                }
            }
            if !optimistic_accesses.is_empty() {
                for &(f, i) in &optimistic_accesses {
                    for &(bf, bi) in am_pt.buddies_of_access(f, i) {
                        let kind = m
                            .func(bf)
                            .insts()
                            .find(|(_, inst)| inst.id == bi)
                            .map(|(_, inst)| &inst.kind);
                        if kind.is_some_and(|k| k.is_memory_access() && k.may_write()) {
                            d.fence_after.entry(bf).or_default().insert(bi);
                            d.mark_sc(bf, bi, MarkOrigin::OptimisticStore);
                        }
                    }
                }
            }
        }
    }
    d
}

/// Instruction-granular synchronization coverage of one function.
///
/// A *sync point* is a realized `seq_cst` access or `seq_cst` fence. An
/// access is covered when a sync point executes before it on every path
/// from the entry (the acquire shape), or after it on every path to the
/// exit (the release shape). Both directions are must-dataflows over the
/// CFG at block granularity, exact because blocks are straight-line:
///
/// * forward: `in[entry] = false`, `in[b] = ⋀ over preds p of
///   (has_sync(p) ∨ in[p])`,
/// * backward: `out[b] = false` for exit blocks, else `⋀ over succs s of
///   (has_sync(s) ∨ out[s])`,
///
/// both initialized to `true` and iterated down to the greatest fixpoint
/// (loops converge because the transfer functions are monotone on the
/// two-point lattice). Within a block, position decides.
struct Coverage {
    /// Positions of sync points per block, ascending.
    sync_pos: Vec<Vec<usize>>,
    in_cov: Vec<bool>,
    out_cov: Vec<bool>,
    /// Source spans of sync points (for "nearest sync" notes).
    sync_spans: Vec<u32>,
}

impl Coverage {
    fn new(func: &Function) -> Coverage {
        let cfg = Cfg::new(func);
        let n = func.blocks.len();
        let mut sync_pos = vec![Vec::new(); n];
        let mut sync_spans = Vec::new();
        for (bi, b) in func.blocks.iter().enumerate() {
            for (pos, inst) in b.insts.iter().enumerate() {
                let is_sync = matches!(
                    inst.kind,
                    InstKind::Fence {
                        ord: Ordering::SeqCst
                    }
                ) || inst.kind.ordering() == Some(Ordering::SeqCst);
                if is_sync {
                    sync_pos[bi].push(pos);
                    if inst.span != 0 {
                        sync_spans.push(inst.span);
                    }
                }
            }
        }
        let has_sync: Vec<bool> = sync_pos.iter().map(|v| !v.is_empty()).collect();

        let mut in_cov = vec![true; n];
        let mut out_cov = vec![true; n];
        loop {
            let mut changed = false;
            for bi in 0..n {
                let b = atomig_mir::BlockId(bi as u32);
                let preds = cfg.preds(b);
                // Entry and unreachable blocks have no sync "behind" them.
                let new_in = !preds.is_empty()
                    && preds
                        .iter()
                        .all(|p| has_sync[p.0 as usize] || in_cov[p.0 as usize]);
                if new_in != in_cov[bi] {
                    in_cov[bi] = new_in;
                    changed = true;
                }
                let succs = cfg.succs(b);
                let new_out = !succs.is_empty()
                    && succs
                        .iter()
                        .all(|s| has_sync[s.0 as usize] || out_cov[s.0 as usize]);
                if new_out != out_cov[bi] {
                    out_cov[bi] = new_out;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Coverage {
            sync_pos,
            in_cov,
            out_cov,
            sync_spans,
        }
    }

    /// Whether the function contains any sync point at all.
    fn has_any_sync(&self) -> bool {
        self.sync_pos.iter().any(|v| !v.is_empty())
    }

    /// Whether the instruction at `(block index, position)` is covered.
    fn covered(&self, bi: usize, pos: usize) -> bool {
        let before = self.sync_pos[bi].iter().any(|&p| p < pos) || self.in_cov[bi];
        let after = self.sync_pos[bi].iter().any(|&p| p > pos) || self.out_cov[bi];
        before || after
    }

    /// The span of a sync point nearest to source line `span` (for the
    /// "does not cover this access" note).
    fn nearest_sync_span(&self, span: u32) -> Option<u32> {
        self.sync_spans
            .iter()
            .copied()
            .min_by_key(|&s| s.abs_diff(span))
    }
}

/// One audited memory access.
#[derive(Debug, Clone)]
struct Access {
    fid: FuncId,
    inst: InstId,
    span: u32,
    loc: MemLoc,
    write: bool,
    plain: bool,
    /// Block index and in-block position, for coverage queries.
    bi: usize,
    pos: usize,
}

/// Audits `m` against the transform's contract and the race-candidate
/// rule. `config` selects the stages mirrored by the dry run (use
/// [`AtomigConfig::full`] for the complete audit).
pub fn lint_module(m: &Module, config: &AtomigConfig) -> LintReport {
    let clock = &config.clock;
    let t0 = clock.now();
    let mut report = LintReport {
        module: m.name.clone(),
        funcs: m.funcs.len(),
        ..LintReport::default()
    };

    let s0 = clock.now();
    let pt = PointsTo::analyze_with_jobs(m, config.jobs);
    let solve = clock.now() - s0;
    let mut solver = SolverMetrics::from(pt.stats);
    // Re-measure with the injected clock so metrics stay byte-comparable
    // under a deterministic clock.
    solver.solve_time = solve;
    report.metrics.solver = Some(solver);
    report
        .metrics
        .record("points-to-solve", solve, pt.stats.iterations);
    let a0 = clock.now();
    let am_pt = AliasMap::build_points_to(m, &pt);
    report
        .metrics
        .record("alias-build", clock.now() - a0, am_pt.class_count());
    let d0 = clock.now();
    let d = dry_run(m, config, &am_pt);
    report.metrics.record(
        "dry-run",
        clock.now() - d0,
        d.sc.values().map(HashMap::len).sum(),
    );
    report.metrics.cache = d.cache;
    let reach = ThreadReach::new(m);
    report.thread_roots = reach.roots.len();

    let is_sc_fence = |k: &InstKind| {
        matches!(
            k,
            InstKind::Fence {
                ord: Ordering::SeqCst
            }
        )
    };

    // ---- Rule: fence-placement ----------------------------------------
    // Every would-be mark must already be realized in the module.
    let f0 = clock.now();
    let mut lints: Vec<Lint> = Vec::new();
    for fid in m.func_ids() {
        let func = m.func(fid);
        let index = func.inst_index();
        let empty_origin = HashMap::new();
        let empty = HashSet::new();
        let sc = d.sc.get(&fid).unwrap_or(&empty_origin);
        let before = d.fence_before.get(&fid).unwrap_or(&empty);
        let after = d.fence_after.get(&fid).unwrap_or(&empty);
        if sc.is_empty() && before.is_empty() && after.is_empty() {
            continue;
        }
        for b in &func.blocks {
            for (pos, inst) in b.insts.iter().enumerate() {
                let mut notes = Vec::new();
                let mut missing: Vec<String> = Vec::new();
                if let Some(origin) = sc.get(&inst.id) {
                    if inst.kind.ordering() != Some(Ordering::SeqCst) {
                        missing.push(format!(
                            "access is {:?} but should be seq_cst",
                            inst.kind.ordering().unwrap_or(Ordering::NotAtomic)
                        ));
                        notes.push(format!("marked because {}", origin.describe()));
                    }
                }
                if before.contains(&inst.id) {
                    let fenced = pos > 0 && is_sc_fence(&b.insts[pos - 1].kind);
                    if !fenced {
                        missing.push(
                            "missing `fence seq_cst` before this optimistic-control load".into(),
                        );
                    }
                }
                if after.contains(&inst.id) {
                    let fenced = b
                        .insts
                        .get(pos + 1)
                        .map(|n| is_sc_fence(&n.kind))
                        .unwrap_or(false);
                    if !fenced {
                        missing.push(
                            "missing `fence seq_cst` after this store to an optimistic location"
                                .into(),
                        );
                    }
                }
                if missing.is_empty() {
                    continue;
                }
                let loc = loc_of(func, &index, &inst.kind);
                lints.push(Lint {
                    rule: LintRule::FencePlacement,
                    severity: Severity::Error,
                    func: func.name.clone(),
                    inst: inst.id,
                    loc,
                    span: inst.span,
                    message: missing.join("; "),
                    notes,
                    suggestion: Some("run `atomig port` to apply the missing upgrades".into()),
                });
            }
        }
    }

    report
        .metrics
        .record("lint-fence-placement", clock.now() - f0, lints.len());

    // ---- Rule: race-candidate ------------------------------------------
    // Intersect thread reachability with points-to overlap: a class of
    // mutually aliasing accesses fires when two distinct thread roots
    // reach it and a plain store is concurrent with another access.
    // Within a firing class, every plain access not covered by realized
    // synchronization (instruction-granular, either direction) is
    // reported.
    let r0 = clock.now();
    let mut info: HashMap<(FuncId, InstId), Access> = HashMap::new();
    let mut coverage: HashMap<FuncId, Coverage> = HashMap::new();
    for fid in m.func_ids() {
        let func = m.func(fid);
        let index = func.inst_index();
        for (bi, b) in func.blocks.iter().enumerate() {
            for (pos, inst) in b.insts.iter().enumerate() {
                if !inst.kind.is_memory_access() {
                    continue;
                }
                report.accesses += 1;
                info.insert(
                    (fid, inst.id),
                    Access {
                        fid,
                        inst: inst.id,
                        span: inst.span,
                        loc: loc_of(func, &index, &inst.kind),
                        write: inst.kind.may_write(),
                        plain: inst.kind.ordering() == Some(Ordering::NotAtomic),
                        bi,
                        pos,
                    },
                );
            }
        }
        coverage.insert(fid, Coverage::new(func));
    }

    let mut race_lints: Vec<Lint> = Vec::new();
    for class in am_pt.classes() {
        let accesses: Vec<&Access> = class.iter().filter_map(|k| info.get(k)).collect();
        let mut union_roots: HashSet<FuncId> = HashSet::new();
        let mut root_sets: Vec<HashSet<FuncId>> = Vec::new();
        for a in &accesses {
            let rs: HashSet<FuncId> = reach.roots_reaching(a.fid).collect();
            union_roots.extend(rs.iter().copied());
            root_sets.push(rs);
        }
        if union_roots.len() < 2 {
            continue;
        }
        // A plain store must be concurrent with something: either it is
        // itself reached from two roots, or a second root reaches another
        // member of the class.
        let concurrent_store = accesses.iter().zip(&root_sets).any(|(a, rs)| {
            a.plain
                && a.write
                && !rs.is_empty()
                && (rs.len() >= 2
                    || root_sets
                        .iter()
                        .any(|other| other.iter().any(|r| !rs.contains(r))))
        });
        if !concurrent_store {
            continue;
        }
        let pattern = class
            .iter()
            .any(|&(f, i)| d.sc.get(&f).is_some_and(|is| is.contains_key(&i)));
        let context_note = {
            let mut names: Vec<&str> = union_roots
                .iter()
                .map(|&r| m.func(r).name.as_str())
                .collect();
            names.sort_unstable();
            format!(
                "reached from {} thread context(s): {}",
                union_roots.len(),
                names.join(", ")
            )
        };
        for (a, rs) in accesses.iter().zip(&root_sets) {
            if !a.plain || rs.is_empty() {
                continue;
            }
            let cov = &coverage[&a.fid];
            if cov.covered(a.bi, a.pos) {
                continue;
            }
            let func = m.func(a.fid);
            let mut notes = vec![context_note.clone()];
            let cells = pt.cells_of_access(a.fid, a.inst);
            if !cells.is_empty() {
                let descs: Vec<String> = cells.iter().map(|&c| pt.describe_cell(m, c)).collect();
                notes.push(format!("may touch: {}", descs.join(", ")));
            }
            if cov.has_any_sync() {
                if let Some(s) = cov.nearest_sync_span(a.span) {
                    notes.push(format!(
                        "the seq_cst synchronization at line {s} does not cover this access \
                         on every path"
                    ));
                }
            }
            let mut suggestion = None;
            if pattern {
                notes.push(
                    "this location participates in a detected synchronization pattern".into(),
                );
                suggestion = Some("run `atomig port` to promote it".into());
            } else if matches!(a.loc, MemLoc::Pointee(_)) && !config.pointee_buddies {
                notes.push(
                    "alias key is a pointee-typed bucket; sticky-buddy expansion ignores it \
                     unless `pointee_buddies` is enabled"
                        .into(),
                );
            } else {
                notes.push(
                    "no spinloop or optimistic-loop exit depends on this location, so pattern \
                     detection cannot promote it"
                        .into(),
                );
                suggestion =
                    Some("annotate the location `atomic`, or guard it with a detected lock".into());
            }
            race_lints.push(Lint {
                rule: LintRule::RaceCandidate,
                severity: if pattern {
                    Severity::Error
                } else {
                    Severity::Warning
                },
                func: func.name.clone(),
                inst: a.inst,
                loc: a.loc.clone(),
                span: a.span,
                message: format!(
                    "plain {} of a location shared between threads{}",
                    if a.write { "store" } else { "load" },
                    if accesses
                        .iter()
                        .any(|x| x.plain && x.write && x.fid != a.fid)
                        || a.write
                    {
                        " (racing with a plain store)"
                    } else {
                        ""
                    }
                ),
                notes,
                suggestion,
            });
        }
    }
    // Deterministic order: rule, then function, then source position.
    race_lints.sort_by(|a, b| {
        (a.func.as_str(), a.span, a.inst.0).cmp(&(b.func.as_str(), b.span, b.inst.0))
    });
    lints.sort_by(|a, b| {
        (a.func.as_str(), a.span, a.inst.0).cmp(&(b.func.as_str(), b.span, b.inst.0))
    });
    report
        .metrics
        .record("lint-race-candidate", clock.now() - r0, race_lints.len());
    lints.extend(race_lints);

    report.lints = lints;
    report.analysis_time = clock.now() - t0;
    let findings = report.lints.len();
    report
        .metrics
        .record("lint-total", clock.now() - t0, findings);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pipeline;
    use atomig_frontc::compile;

    const MP: &str = r#"
        int flag;
        int msg;
        void writer(long a) {
          msg = 1;
          flag = 1;
        }
        int main() {
          long t = spawn(writer, 0);
          while (flag != 1) {}
          int m = msg;
          join(t);
          return m;
        }
    "#;

    #[test]
    fn original_mp_is_flagged_and_ported_is_clean() {
        let m = compile(MP, "mp").unwrap();
        let cfg = AtomigConfig::full();
        let r = lint_module(&m, &cfg);
        assert!(
            r.count(LintRule::FencePlacement) >= 1,
            "spin control not SC yet:\n{r}"
        );
        // The writer's flag store is a sticky buddy of the spin control;
        // writer has no sync of its own, so the msg store is a candidate
        // only until the port covers it.
        let mut ported = m.clone();
        let mut pcfg = cfg.clone();
        pcfg.inline = false;
        Pipeline::new(pcfg).port_module(&mut ported);
        let r2 = lint_module(&ported, &cfg);
        assert!(r2.is_clean(), "ported module must audit clean:\n{r2}");
    }

    #[test]
    fn naked_race_is_a_warning_even_after_port() {
        let src = r#"
            int counter;
            void worker(long a) { counter = counter + 1; }
            int main() {
              long t = spawn(worker, 0);
              counter = counter + 1;
              join(t);
              return counter;
            }
        "#;
        let m = compile(src, "race").unwrap();
        let cfg = AtomigConfig::full();
        let r = lint_module(&m, &cfg);
        assert!(r.count(LintRule::RaceCandidate) >= 2, "{r}");
        assert!(
            r.lints.iter().all(|l| l.severity == Severity::Warning),
            "no pattern involved:\n{r}"
        );
        // No synchronization pattern exists, so the port cannot fix it
        // and lint keeps warning — that's the point of the rule.
        let mut ported = m.clone();
        let mut pcfg = cfg.clone();
        pcfg.inline = false;
        Pipeline::new(pcfg).port_module(&mut ported);
        let r2 = lint_module(&ported, &cfg);
        assert!(r2.count(LintRule::RaceCandidate) >= 2, "{r2}");
    }

    #[test]
    fn single_threaded_module_is_clean() {
        let src = r#"
            int x;
            void bump() { x = x + 1; }
            int main() { bump(); bump(); return x; }
        "#;
        let m = compile(src, "seq").unwrap();
        let r = lint_module(&m, &AtomigConfig::full());
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn findings_carry_source_spans() {
        let m = compile(MP, "mp").unwrap();
        let r = lint_module(&m, &AtomigConfig::full());
        assert!(!r.lints.is_empty());
        for l in &r.lints {
            assert_ne!(l.span, 0, "finding without a span: {l:?}");
        }
        let text = r.to_string();
        assert!(text.contains("mp.c:"), "{text}");
    }

    #[test]
    fn race_candidates_are_points_to_precise_on_aliased_handles() {
        // `shared` and `scratch` have identical types and are touched
        // through the same helper signatures, but only `shared` is
        // reached from two thread roots. The race rule keys on points-to
        // classes, so the single-threaded staging accesses in @prepare
        // stay silent even though their type-based alias keys collide.
        let src = include_str!("../../../examples/seqlock_alias.c");
        let m = compile(src, "seqlock_alias").unwrap();
        let cfg = AtomigConfig::full();
        let r = lint_module(&m, &cfg);
        assert!(r.count(LintRule::RaceCandidate) >= 2, "{r}");
        assert!(
            r.lints
                .iter()
                .filter(|l| l.rule == LintRule::RaceCandidate)
                .all(|l| l.func != "prepare" && l.func != "main"),
            "single-threaded staging must not be a race candidate:\n{r}"
        );
        // Findings cite the points-to cells they may touch.
        assert!(
            r.lints
                .iter()
                .filter(|l| l.rule == LintRule::RaceCandidate)
                .all(|l| l.notes.iter().any(|n| n.contains("shared"))),
            "{r}"
        );
        // Ported modules audit clean under both alias backends.
        for mode in [crate::AliasMode::TypeBased, crate::AliasMode::PointsTo] {
            let mut ported = m.clone();
            let mut pcfg = cfg.clone();
            pcfg.alias_mode = mode;
            Pipeline::new(pcfg.clone()).port_module(&mut ported);
            let r2 = lint_module(&ported, &pcfg);
            assert!(
                r2.count(LintRule::RaceCandidate) == 0,
                "ported ({}) must have no race candidates:\n{r2}",
                mode.name()
            );
        }
    }

    #[test]
    fn rule_names_round_trip() {
        for r in LintRule::ALL {
            assert_eq!(LintRule::from_name(r.name()), Some(*r));
        }
        assert_eq!(LintRule::from_name("nonsense"), None);
    }
}
