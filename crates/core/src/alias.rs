//! Alias exploration: module-wide sticky-buddy maps (§3.4).
//!
//! "For each detected atomic access, we statically look for other instances
//! of accesses to these identified memory locations and mark them as their
//! *sticky buddies*." The key is type-based — global identity, or the
//! `getelementptr` struct type + constant offsets — so buddy lookup is a
//! constant-time map access, which is what lets AtoMig scale where precise
//! inter-procedural alias analysis exhausts memory (§3.5).

use crate::annotations::loc_of;
use atomig_analysis::PointsTo;
use atomig_mir::{FuncId, InstId, MemLoc, Module};
use std::collections::HashMap;

/// A module-wide map from alias key to every memory access with that key.
///
/// Built once during initialization (the paper: "we only have to populate
/// this map once"); queries are `O(1)` map lookups.
///
/// Two backends fill it (selected by
/// [`AliasMode`](crate::config::AliasMode)):
///
/// * [`AliasMap::build`] — the paper's type-based keys; only the
///   [`MemLoc`]-keyed `map` is populated.
/// * [`AliasMap::build_points_to`] — equivalence classes of accesses whose
///   points-to cells overlap; `classes` and per-access lookup are
///   populated and [`AliasMap::buddies_of_access`] replaces key lookups.
#[derive(Debug, Clone, Default)]
pub struct AliasMap {
    map: HashMap<MemLoc, Vec<(FuncId, InstId)>>,
    /// Overlap classes of shareable accesses (points-to backend only).
    classes: Vec<Vec<(FuncId, InstId)>>,
    /// Class index of each classified access (points-to backend only).
    access_class: HashMap<(FuncId, InstId), usize>,
    /// Number of memory accesses scanned (diagnostics).
    pub accesses_scanned: usize,
}

/// Union-find over dense `u32` ids.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut r = x;
        while self.parent[r as usize] != r {
            r = self.parent[r as usize];
        }
        let mut c = x;
        while self.parent[c as usize] != r {
            let next = self.parent[c as usize];
            self.parent[c as usize] = r;
            c = next;
        }
        r
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb as usize] = ra;
        }
    }
}

impl AliasMap {
    /// Scans all memory accesses of `m` and builds the map.
    ///
    /// When `pointee_buddies` is false (the default, matching the paper),
    /// only precise keys — globals and GEP type+offset signatures —
    /// participate; coarse `Pointee` buckets are skipped.
    pub fn build(m: &Module, pointee_buddies: bool) -> AliasMap {
        let mut map: HashMap<MemLoc, Vec<(FuncId, InstId)>> = HashMap::new();
        let mut accesses_scanned = 0;
        for fid in m.func_ids() {
            let func = m.func(fid);
            let index = func.inst_index();
            for (_, inst) in func.insts() {
                if !inst.kind.is_memory_access() {
                    continue;
                }
                accesses_scanned += 1;
                let loc = loc_of(func, &index, &inst.kind);
                let eligible =
                    loc.is_buddy_key() || (pointee_buddies && matches!(loc, MemLoc::Pointee(_)));
                if eligible {
                    map.entry(loc).or_default().push((fid, inst.id));
                }
            }
        }
        AliasMap {
            map,
            accesses_scanned,
            ..AliasMap::default()
        }
    }

    /// Builds overlap classes from a solved [`PointsTo`] analysis.
    ///
    /// Every memory access whose address resolves to at least one
    /// *shareable* cell (a global, a heap object, or an escaping stack
    /// slot) is placed in an equivalence class with every access it may
    /// alias: the access's own cells are unioned together, and cells of
    /// the same allocation site whose field paths may overlap are unioned
    /// pairwise. The classes are the points-to analogue of the type-based
    /// buddy lists — strictly finer on aliased handles (distinct globals
    /// of the same struct type land in distinct classes) and on distinct
    /// allocation sites.
    pub fn build_points_to(m: &Module, pt: &PointsTo) -> AliasMap {
        let mut accesses_scanned = 0;
        // Collect classified accesses and the cells they use.
        let mut entries: Vec<((FuncId, InstId), Vec<atomig_analysis::CellId>)> = Vec::new();
        let mut used_cells: Vec<atomig_analysis::CellId> = Vec::new();
        for fid in m.func_ids() {
            let func = m.func(fid);
            for (_, inst) in func.insts() {
                if !inst.kind.is_memory_access() {
                    continue;
                }
                accesses_scanned += 1;
                let cells: Vec<_> = pt
                    .cells_of_access(fid, inst.id)
                    .iter()
                    .copied()
                    .filter(|&c| pt.is_shareable(c))
                    .collect();
                if !cells.is_empty() {
                    used_cells.extend(cells.iter().copied());
                    entries.push(((fid, inst.id), cells));
                }
            }
        }
        used_cells.sort_unstable();
        used_cells.dedup();

        // Union overlapping cells (grouped by base: only same-base cells
        // can overlap, so the quadratic pass stays per-site small).
        let mut uf = UnionFind::new(pt.cell_count());
        let mut by_base: HashMap<atomig_analysis::ObjBase, Vec<atomig_analysis::CellId>> =
            HashMap::new();
        for &c in &used_cells {
            by_base.entry(pt.cell(c).base).or_default().push(c);
        }
        for group in by_base.values() {
            for (i, &a) in group.iter().enumerate() {
                for &b in &group[i + 1..] {
                    if pt.cells_overlap(a, b) {
                        uf.union(a.0, b.0);
                    }
                }
            }
        }
        // An access with several candidate cells bridges all of them.
        for (_, cells) in &entries {
            for w in cells.windows(2) {
                uf.union(w[0].0, w[1].0);
            }
        }

        // Group accesses by class root.
        let mut class_of_root: HashMap<u32, usize> = HashMap::new();
        let mut classes: Vec<Vec<(FuncId, InstId)>> = Vec::new();
        let mut access_class = HashMap::new();
        for (acc, cells) in &entries {
            let root = uf.find(cells[0].0);
            let idx = *class_of_root.entry(root).or_insert_with(|| {
                classes.push(Vec::new());
                classes.len() - 1
            });
            classes[idx].push(*acc);
            access_class.insert(*acc, idx);
        }
        for class in &mut classes {
            class.sort_unstable_by_key(|&(f, i)| (f.0, i.0));
        }
        AliasMap {
            map: HashMap::new(),
            classes,
            access_class,
            accesses_scanned,
        }
    }

    /// All accesses sharing the alias key `loc` (the sticky buddies).
    pub fn buddies(&self, loc: &MemLoc) -> &[(FuncId, InstId)] {
        self.map.get(loc).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The overlap class of an access (points-to backend). Empty when the
    /// access was not classified — its address never resolves to a
    /// shareable cell — or when the map was built type-based.
    pub fn buddies_of_access(&self, f: FuncId, i: InstId) -> &[(FuncId, InstId)] {
        self.access_class
            .get(&(f, i))
            .map(|&idx| self.classes[idx].as_slice())
            .unwrap_or(&[])
    }

    /// All overlap classes (points-to backend).
    pub fn classes(&self) -> &[Vec<(FuncId, InstId)>] {
        &self.classes
    }

    /// The overlap-class index of an access (points-to backend), the
    /// `C<n>` the decision ledger names in sticky-buddy provenance.
    pub fn class_index(&self, f: FuncId, i: InstId) -> Option<usize> {
        self.access_class.get(&(f, i)).copied()
    }

    /// Number of overlap classes (points-to backend).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of distinct alias keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Iterates over all `(key, accesses)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&MemLoc, &Vec<(FuncId, InstId)>)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomig_mir::{parse_module, GlobalId, StructId};

    const SRC: &str = r#"
    struct %Node { i64, i64 }
    global @flag: i32 = 0
    fn @a(%n: ptr %Node) : void {
    bb0:
      %f = load i32, @flag
      %sa = gep %Node, %n, 0, 0
      %sv = load i64, %sa
      ret
    }
    fn @b(%n: ptr %Node) : void {
    bb0:
      store i32 1, @flag
      %sa = gep %Node, %n, 0, 0
      store i64 2, %sa
      %ka = gep %Node, %n, 0, 1
      store i64 3, %ka
      ret
    }
    "#;

    #[test]
    fn global_buddies_span_functions() {
        let m = parse_module(SRC).unwrap();
        let am = AliasMap::build(&m, false);
        let buddies = am.buddies(&MemLoc::Global(GlobalId(0), vec![]));
        assert_eq!(buddies.len(), 2);
        let funcs: Vec<u32> = buddies.iter().map(|(f, _)| f.0).collect();
        assert!(funcs.contains(&0) && funcs.contains(&1));
    }

    #[test]
    fn field_buddies_keyed_by_type_and_offset() {
        let m = parse_module(SRC).unwrap();
        let am = AliasMap::build(&m, false);
        let state = am.buddies(&MemLoc::Field(StructId(0), vec![0]));
        assert_eq!(state.len(), 2); // load in @a, store in @b
        let key = am.buddies(&MemLoc::Field(StructId(0), vec![1]));
        assert_eq!(key.len(), 1); // only the store in @b
    }

    #[test]
    fn scan_counts_all_accesses() {
        let m = parse_module(SRC).unwrap();
        let am = AliasMap::build(&m, false);
        assert_eq!(am.accesses_scanned, 5);
        assert_eq!(am.key_count(), 3);
    }

    #[test]
    fn stack_accesses_excluded() {
        let m = parse_module(
            r#"
            fn @f() : i32 {
            bb0:
              %x = alloca i32
              store i32 1, %x
              %v = load i32, %x
              ret %v
            }
            "#,
        )
        .unwrap();
        let am = AliasMap::build(&m, false);
        assert_eq!(am.key_count(), 0);
        assert_eq!(am.accesses_scanned, 2);
    }

    #[test]
    fn pointee_buckets_opt_in() {
        let m = parse_module(
            r#"
            fn @f(%p: ptr i32) : i32 {
            bb0:
              %v = load i32, %p
              ret %v
            }
            "#,
        )
        .unwrap();
        let off = AliasMap::build(&m, false);
        assert_eq!(off.key_count(), 0);
        let on = AliasMap::build(&m, true);
        assert_eq!(on.key_count(), 1);
        assert_eq!(on.buddies(&MemLoc::Pointee(atomig_mir::Type::I32)).len(), 1);
    }

    /// Pointee buckets are keyed by pointee type alone, so raw-pointer
    /// accesses in different functions share one coarse bucket per type.
    #[test]
    fn pointee_buckets_span_functions_per_type() {
        let m = parse_module(
            r#"
            fn @reader(%p: ptr i32) : i32 {
            bb0:
              %v = load i32, %p
              ret %v
            }
            fn @writer(%p: ptr i32) : void {
            bb0:
              store i32 1, %p
              ret
            }
            fn @other(%q: ptr i64) : i64 {
            bb0:
              %v = load i64, %q
              ret %v
            }
            "#,
        )
        .unwrap();
        let am = AliasMap::build(&m, true);
        assert_eq!(am.key_count(), 2); // one bucket per pointee type
        let i32_bucket = am.buddies(&MemLoc::Pointee(atomig_mir::Type::I32));
        assert_eq!(i32_bucket.len(), 2, "reader + writer share the i32 bucket");
        let funcs: Vec<u32> = i32_bucket.iter().map(|(f, _)| f.0).collect();
        assert!(funcs.contains(&0) && funcs.contains(&1));
        assert_eq!(
            am.buddies(&MemLoc::Pointee(atomig_mir::Type::I64)).len(),
            1,
            "i64 pointer access stays in its own bucket"
        );
    }

    /// Coarse pointee buckets coexist with precise `Field` keys: struct
    /// accesses keep their field keys while raw-pointer accesses bucket
    /// by type, and neither key's buddy list leaks into the other.
    #[test]
    fn pointee_buckets_mix_with_field_keys() {
        let m = parse_module(SRC).unwrap();
        let off = AliasMap::build(&m, false);
        let on = AliasMap::build(&m, true);
        // SRC has no raw-pointer accesses, so the same keys exist either way.
        assert_eq!(off.key_count(), on.key_count());
        assert_eq!(
            on.buddies(&MemLoc::Field(StructId(0), vec![0])).len(),
            2,
            "field keys unchanged by the pointee knob"
        );

        let m2 = parse_module(
            r#"
            struct %Node { i64, i64 }
            fn @f(%n: ptr %Node, %p: ptr i64) : void {
            bb0:
              %sa = gep %Node, %n, 0, 0
              store i64 2, %sa
              store i64 3, %p
              ret
            }
            "#,
        )
        .unwrap();
        let am = AliasMap::build(&m2, true);
        // The gep-resolved access keeps its precise Field key; only the
        // raw pointer falls into the coarse bucket.
        assert_eq!(am.buddies(&MemLoc::Field(StructId(0), vec![0])).len(), 1);
        assert_eq!(am.buddies(&MemLoc::Pointee(atomig_mir::Type::I64)).len(), 1);
        assert_eq!(am.key_count(), 2);
    }

    /// The headline precision win: two globals of the same struct type
    /// handled through pointer parameters. Type-based keys merge every
    /// `h->field0` access into one `Field` bucket; points-to keeps the
    /// two handles apart.
    #[test]
    fn points_to_classes_split_aliased_handles() {
        let src = r#"
        struct %S { i64, i64 }
        global @a: %S = 0
        global @b: %S = 0
        fn @ta(%h: ptr %S) : void {
        bb0:
          %f = gep %S, %h, 0, 0
          store i64 1, %f
          ret
        }
        fn @tb(%h: ptr %S) : void {
        bb0:
          %f = gep %S, %h, 0, 0
          store i64 2, %f
          ret
        }
        fn @main() : void {
        bb0:
          call void @ta(@a)
          call void @tb(@b)
          ret
        }
        "#;
        let m = parse_module(src).unwrap();
        // Type-based: one shared Field(S, [0]) bucket with both stores.
        let tb = AliasMap::build(&m, false);
        assert_eq!(tb.buddies(&MemLoc::Field(StructId(0), vec![0])).len(), 2);
        // Points-to: the two stores land in distinct classes.
        let pt = atomig_analysis::PointsTo::analyze(&m);
        let am = AliasMap::build_points_to(&m, &pt);
        assert_eq!(am.class_count(), 2);
        let ta = m.func_by_name("ta").unwrap();
        let store_in = |f| {
            m.func(f)
                .insts()
                .find(|(_, i)| i.kind.may_write())
                .map(|(_, i)| i.id)
                .unwrap()
        };
        assert_eq!(am.buddies_of_access(ta, store_in(ta)).len(), 1);
    }

    #[test]
    fn points_to_classes_are_field_sensitive_and_skip_private_stack() {
        let src = r#"
        struct %S { i64, i64 }
        global @g: %S = 0
        fn @f() : i64 {
        bb0:
          %x = alloca i64
          store i64 0, %x
          %a = gep %S, @g, 0, 0
          store i64 1, %a
          %b = gep %S, @g, 0, 1
          %v = load i64, %b
          %w = load i64, %x
          ret %w
        }
        fn @other() : i64 {
        bb0:
          %a = gep %S, @g, 0, 0
          %v = load i64, %a
          ret %v
        }
        "#;
        let m = parse_module(src).unwrap();
        let pt = atomig_analysis::PointsTo::analyze(&m);
        let am = AliasMap::build_points_to(&m, &pt);
        // g.0 (two accesses across functions) and g.1 form separate
        // classes; the private alloca is not classified at all.
        assert_eq!(am.class_count(), 2);
        assert_eq!(am.accesses_scanned, 5);
        let f = m.func_by_name("f").unwrap();
        let other = m.func_by_name("other").unwrap();
        let f_field0_store = m
            .func(f)
            .insts()
            .filter(|(_, i)| i.kind.may_write())
            .nth(1)
            .map(|(_, i)| i.id)
            .unwrap();
        let class = am.buddies_of_access(f, f_field0_store);
        assert_eq!(class.len(), 2, "g.0 store pairs with the load in @other");
        assert!(class.iter().any(|&(fid, _)| fid == other));
        let alloca_store = m
            .func(f)
            .insts()
            .find(|(_, i)| i.kind.may_write())
            .map(|(_, i)| i.id)
            .unwrap();
        assert!(am.buddies_of_access(f, alloca_store).is_empty());
    }
}
