//! Alias exploration: module-wide sticky-buddy maps (§3.4).
//!
//! "For each detected atomic access, we statically look for other instances
//! of accesses to these identified memory locations and mark them as their
//! *sticky buddies*." The key is type-based — global identity, or the
//! `getelementptr` struct type + constant offsets — so buddy lookup is a
//! constant-time map access, which is what lets AtoMig scale where precise
//! inter-procedural alias analysis exhausts memory (§3.5).

use crate::annotations::loc_of;
use atomig_mir::{FuncId, InstId, MemLoc, Module};
use std::collections::HashMap;

/// A module-wide map from alias key to every memory access with that key.
///
/// Built once during initialization (the paper: "we only have to populate
/// this map once"); queries are `O(1)` map lookups.
#[derive(Debug, Clone, Default)]
pub struct AliasMap {
    map: HashMap<MemLoc, Vec<(FuncId, InstId)>>,
    /// Number of memory accesses scanned (diagnostics).
    pub accesses_scanned: usize,
}

impl AliasMap {
    /// Scans all memory accesses of `m` and builds the map.
    ///
    /// When `pointee_buddies` is false (the default, matching the paper),
    /// only precise keys — globals and GEP type+offset signatures —
    /// participate; coarse `Pointee` buckets are skipped.
    pub fn build(m: &Module, pointee_buddies: bool) -> AliasMap {
        let mut map: HashMap<MemLoc, Vec<(FuncId, InstId)>> = HashMap::new();
        let mut accesses_scanned = 0;
        for fid in m.func_ids() {
            let func = m.func(fid);
            let index = func.inst_index();
            for (_, inst) in func.insts() {
                if !inst.kind.is_memory_access() {
                    continue;
                }
                accesses_scanned += 1;
                let loc = loc_of(func, &index, &inst.kind);
                let eligible =
                    loc.is_buddy_key() || (pointee_buddies && matches!(loc, MemLoc::Pointee(_)));
                if eligible {
                    map.entry(loc).or_default().push((fid, inst.id));
                }
            }
        }
        AliasMap {
            map,
            accesses_scanned,
        }
    }

    /// All accesses sharing the alias key `loc` (the sticky buddies).
    pub fn buddies(&self, loc: &MemLoc) -> &[(FuncId, InstId)] {
        self.map.get(loc).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct alias keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Iterates over all `(key, accesses)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&MemLoc, &Vec<(FuncId, InstId)>)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomig_mir::{parse_module, GlobalId, StructId};

    const SRC: &str = r#"
    struct %Node { i64, i64 }
    global @flag: i32 = 0
    fn @a(%n: ptr %Node) : void {
    bb0:
      %f = load i32, @flag
      %sa = gep %Node, %n, 0, 0
      %sv = load i64, %sa
      ret
    }
    fn @b(%n: ptr %Node) : void {
    bb0:
      store i32 1, @flag
      %sa = gep %Node, %n, 0, 0
      store i64 2, %sa
      %ka = gep %Node, %n, 0, 1
      store i64 3, %ka
      ret
    }
    "#;

    #[test]
    fn global_buddies_span_functions() {
        let m = parse_module(SRC).unwrap();
        let am = AliasMap::build(&m, false);
        let buddies = am.buddies(&MemLoc::Global(GlobalId(0), vec![]));
        assert_eq!(buddies.len(), 2);
        let funcs: Vec<u32> = buddies.iter().map(|(f, _)| f.0).collect();
        assert!(funcs.contains(&0) && funcs.contains(&1));
    }

    #[test]
    fn field_buddies_keyed_by_type_and_offset() {
        let m = parse_module(SRC).unwrap();
        let am = AliasMap::build(&m, false);
        let state = am.buddies(&MemLoc::Field(StructId(0), vec![0]));
        assert_eq!(state.len(), 2); // load in @a, store in @b
        let key = am.buddies(&MemLoc::Field(StructId(0), vec![1]));
        assert_eq!(key.len(), 1); // only the store in @b
    }

    #[test]
    fn scan_counts_all_accesses() {
        let m = parse_module(SRC).unwrap();
        let am = AliasMap::build(&m, false);
        assert_eq!(am.accesses_scanned, 5);
        assert_eq!(am.key_count(), 3);
    }

    #[test]
    fn stack_accesses_excluded() {
        let m = parse_module(
            r#"
            fn @f() : i32 {
            bb0:
              %x = alloca i32
              store i32 1, %x
              %v = load i32, %x
              ret %v
            }
            "#,
        )
        .unwrap();
        let am = AliasMap::build(&m, false);
        assert_eq!(am.key_count(), 0);
        assert_eq!(am.accesses_scanned, 2);
    }

    #[test]
    fn pointee_buckets_opt_in() {
        let m = parse_module(
            r#"
            fn @f(%p: ptr i32) : i32 {
            bb0:
              %v = load i32, %p
              ret %v
            }
            "#,
        )
        .unwrap();
        let off = AliasMap::build(&m, false);
        assert_eq!(off.key_count(), 0);
        let on = AliasMap::build(&m, true);
        assert_eq!(on.key_count(), 1);
        assert_eq!(on.buddies(&MemLoc::Pointee(atomig_mir::Type::I32)).len(), 1);
    }

    /// Pointee buckets are keyed by pointee type alone, so raw-pointer
    /// accesses in different functions share one coarse bucket per type.
    #[test]
    fn pointee_buckets_span_functions_per_type() {
        let m = parse_module(
            r#"
            fn @reader(%p: ptr i32) : i32 {
            bb0:
              %v = load i32, %p
              ret %v
            }
            fn @writer(%p: ptr i32) : void {
            bb0:
              store i32 1, %p
              ret
            }
            fn @other(%q: ptr i64) : i64 {
            bb0:
              %v = load i64, %q
              ret %v
            }
            "#,
        )
        .unwrap();
        let am = AliasMap::build(&m, true);
        assert_eq!(am.key_count(), 2); // one bucket per pointee type
        let i32_bucket = am.buddies(&MemLoc::Pointee(atomig_mir::Type::I32));
        assert_eq!(i32_bucket.len(), 2, "reader + writer share the i32 bucket");
        let funcs: Vec<u32> = i32_bucket.iter().map(|(f, _)| f.0).collect();
        assert!(funcs.contains(&0) && funcs.contains(&1));
        assert_eq!(
            am.buddies(&MemLoc::Pointee(atomig_mir::Type::I64)).len(),
            1,
            "i64 pointer access stays in its own bucket"
        );
    }

    /// Coarse pointee buckets coexist with precise `Field` keys: struct
    /// accesses keep their field keys while raw-pointer accesses bucket
    /// by type, and neither key's buddy list leaks into the other.
    #[test]
    fn pointee_buckets_mix_with_field_keys() {
        let m = parse_module(SRC).unwrap();
        let off = AliasMap::build(&m, false);
        let on = AliasMap::build(&m, true);
        // SRC has no raw-pointer accesses, so the same keys exist either way.
        assert_eq!(off.key_count(), on.key_count());
        assert_eq!(
            on.buddies(&MemLoc::Field(StructId(0), vec![0])).len(),
            2,
            "field keys unchanged by the pointee knob"
        );

        let m2 = parse_module(
            r#"
            struct %Node { i64, i64 }
            fn @f(%n: ptr %Node, %p: ptr i64) : void {
            bb0:
              %sa = gep %Node, %n, 0, 0
              store i64 2, %sa
              store i64 3, %p
              ret
            }
            "#,
        )
        .unwrap();
        let am = AliasMap::build(&m2, true);
        // The gep-resolved access keeps its precise Field key; only the
        // raw pointer falls into the coarse bucket.
        assert_eq!(am.buddies(&MemLoc::Field(StructId(0), vec![0])).len(), 1);
        assert_eq!(am.buddies(&MemLoc::Pointee(atomig_mir::Type::I64)).len(), 1);
        assert_eq!(am.key_count(), 2);
    }
}
