//! Spinloop detection (§3.3).
//!
//! "A loop is a spinloop if (1) all its exit conditions have non-local
//! dependencies, and (2) all the stores in the loop without non-local
//! dependencies do not influence the loop exit conditions" — with the
//! Figure 3 refinement that stores of loop-invariant *constants* cannot
//! influence the exit (they always write the same value).

use crate::annotations::loc_of;
use atomig_analysis::{find_loops, Cfg, DomTree, InfluenceAnalysis, NaturalLoop};
use atomig_mir::{BlockId, Function, InstId, InstKind, MemLoc};
use std::collections::{BTreeSet, HashSet};

/// A detected spinloop with its spin controls.
#[derive(Debug, Clone)]
pub struct SpinLoopInfo {
    /// The underlying natural loop.
    pub natural: NaturalLoop,
    /// Non-local reads inside the loop that the exit conditions depend on
    /// ("spin controls"). These get converted to SC atomics.
    pub controls: Vec<InstId>,
    /// Alias keys of the control locations (for sticky-buddy expansion).
    pub control_locs: Vec<MemLoc>,
}

impl SpinLoopInfo {
    /// The loop header block.
    pub fn header(&self) -> BlockId {
        self.natural.header
    }
}

/// Detects all spinloops in `func`.
///
/// `inf` must be an [`InfluenceAnalysis`] of the same function (callers
/// construct it once and reuse it across passes, §3.5).
pub fn detect_spinloops(func: &Function, inf: &InfluenceAnalysis<'_>) -> Vec<SpinLoopInfo> {
    let cfg = Cfg::new(func);
    let dom = DomTree::new(&cfg);
    let loops = find_loops(func, &cfg, &dom);
    let index = func.inst_index();

    let mut out = Vec::new();
    for natural in loops {
        if natural.exits.is_empty() {
            // No conditional way out: nothing controls the spin; there is
            // no access to transform (and nothing to re-read), skip.
            continue;
        }
        let scope: BTreeSet<BlockId> = natural.body.iter().copied().collect();

        // Rule (1): every exit condition must have a non-local dependency.
        let mut all_deps = atomig_analysis::DepSet::default();
        let mut ok = true;
        for exit in &natural.exits {
            let deps = inf.value_deps(exit.cond, Some(&scope));
            if !deps.has_nonlocal() {
                ok = false;
                break;
            }
            all_deps.merge(deps);
        }
        if !ok {
            continue;
        }

        // Rule (2): no local-only, non-constant store in the loop may
        // influence an exit condition.
        let mut disqualified = false;
        'outer: for &b in &natural.body {
            for inst in &func.block(b).insts {
                if !matches!(inst.kind, InstKind::Store { .. }) {
                    continue;
                }
                if inf.store_is_constant(inst.id) {
                    continue;
                }
                let sdeps = inf.store_deps(inst.id, Some(&scope));
                if sdeps.has_nonlocal() {
                    continue;
                }
                if let Some(slot) = inf.store_target_slot(inst.id) {
                    if all_deps.local_slots_read.contains(&slot) {
                        disqualified = true;
                        break 'outer;
                    }
                }
            }
        }
        if disqualified {
            continue;
        }

        // Spin controls: the non-local reads inside the loop feeding the
        // exit conditions (not their stack copies).
        let in_loop: HashSet<InstId> = natural
            .body
            .iter()
            .flat_map(|&b| func.block(b).insts.iter().map(|i| i.id))
            .collect();
        let mut controls: Vec<InstId> = all_deps
            .nonlocal_reads
            .iter()
            .copied()
            .filter(|id| in_loop.contains(id))
            .collect();
        controls.sort();
        if controls.is_empty() {
            // Exit depends on non-local state read only outside the loop
            // (or through an opaque call): nothing in the loop to mark.
            continue;
        }
        let control_locs: Vec<MemLoc> = controls
            .iter()
            .filter_map(|id| index.get(id).map(|k| loc_of(func, &index, k)))
            .collect();
        out.push(SpinLoopInfo {
            natural,
            controls,
            control_locs,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomig_mir::parse_module;

    fn spins_of(src: &str) -> Vec<SpinLoopInfo> {
        let m = parse_module(src).unwrap();
        let f = &m.funcs[0];
        let inf = InfluenceAnalysis::new(f);
        detect_spinloops(f, &inf)
    }

    /// Figure 3, spinloop 1: `while (flag != DONE) ;`
    #[test]
    fn fig3_spinloop_1() {
        let spins = spins_of(
            r#"
            global @flag: i32 = 0
            fn @f() : void {
            entry:
              br loop
            loop:
              %v = load i32, @flag
              %c = cmp ne %v, 1
              condbr %c, loop, exit
            exit:
              ret
            }
            "#,
        );
        assert_eq!(spins.len(), 1);
        assert_eq!(spins[0].controls.len(), 1);
        assert!(matches!(spins[0].control_locs[0], MemLoc::Global(..)));
    }

    /// Figure 3, spinloop 2: constant store to a local the condition reads.
    #[test]
    fn fig3_spinloop_2_constant_store() {
        let spins = spins_of(
            r#"
            global @flag: i32 = 0
            fn @f() : void {
            entry:
              %lflag = alloca i32
              br loop
            loop:
              store i32 1, %lflag
              %lv = load i32, %lflag
              %fv = load i32, @flag
              %c = cmp ne %lv, %fv
              condbr %c, loop, exit
            exit:
              ret
            }
            "#,
        );
        assert_eq!(spins.len(), 1);
    }

    /// Figure 3, spinloop 3: in-loop dependency through a masked copy.
    #[test]
    fn fig3_spinloop_3_inloop_dep() {
        let spins = spins_of(
            r#"
            global @flag: i32 = 0
            fn @f() : void {
            entry:
              %lflag = alloca i32
              br loop
            loop:
              %fv = load i32, @flag
              %masked = and %fv, 3
              store i32 %masked, %lflag
              %lv = load i32, %lflag
              %c = cmp ne %lv, 2
              condbr %c, loop, exit
            exit:
              ret
            }
            "#,
        );
        assert_eq!(spins.len(), 1);
        // The spin control is the @flag load, not the stack copy.
        assert_eq!(spins[0].controls.len(), 1);
    }

    /// Figure 3, non-spinloop 1: a bounded for-loop with an early break.
    #[test]
    fn fig3_non_spinloop_local_exit() {
        let spins = spins_of(
            r#"
            global @flag: i32 = 0
            fn @f() : void {
            entry:
              %i = alloca i32
              store i32 0, %i
              br header
            header:
              %iv = load i32, %i
              %c = cmp lt %iv, 100
              condbr %c, body, exit
            body:
              %fv = load i32, @flag
              %d = cmp eq %fv, 1
              condbr %d, exit, latch
            latch:
              %iv2 = load i32, %i
              %inc = add %iv2, 1
              store i32 %inc, %i
              br header
            exit:
              ret
            }
            "#,
        );
        assert!(spins.is_empty());
    }

    /// Figure 3, non-spinloop 2: exit depends on a local store (i++).
    #[test]
    fn fig3_non_spinloop_local_store_influences_exit() {
        let spins = spins_of(
            r#"
            global @turns: i32 = 7
            fn @f() : void {
            entry:
              %i = alloca i32
              store i32 0, %i
              br header
            header:
              %iv = load i32, %i
              %tv = load i32, @turns
              %c = cmp lt %iv, %tv
              condbr %c, latch, exit
            latch:
              %iv2 = load i32, %i
              %inc = add %iv2, 1
              store i32 %inc, %i
              br header
            exit:
              ret
            }
            "#,
        );
        assert!(spins.is_empty());
    }

    /// Figure 4: the test-and-set lock acquisition loop.
    #[test]
    fn tas_lock_spin_is_detected() {
        let spins = spins_of(
            r#"
            global @locked: i32 = 0
            fn @lock() : void {
            entry:
              br spin
            spin:
              %old = cmpxchg i32 @locked, 0, 1 seq_cst
              %c = cmp ne %old, 0
              condbr %c, spin, exit
            exit:
              ret
            }
            "#,
        );
        assert_eq!(spins.len(), 1);
        assert_eq!(spins[0].controls.len(), 1);
    }

    /// Spin on a pointer parameter (MCS-style `while (!node->locked)`).
    #[test]
    fn spin_through_pointer_param() {
        let spins = spins_of(
            r#"
            struct %Node { i32, ptr %Node }
            fn @wait(%n: ptr %Node) : void {
            entry:
              br loop
            loop:
              %a = gep %Node, %n, 0, 0
              %v = load i32, %a
              %c = cmp eq %v, 0
              condbr %c, loop, exit
            exit:
              ret
            }
            "#,
        );
        assert_eq!(spins.len(), 1);
        assert!(matches!(spins[0].control_locs[0], MemLoc::Field(..)));
    }

    /// A loop over a private array is not a spinloop.
    #[test]
    fn private_array_scan_is_not_spinloop() {
        let spins = spins_of(
            r#"
            fn @f() : void {
            entry:
              %a = alloca [8 x i32]
              %i = alloca i32
              store i32 0, %i
              br header
            header:
              %iv = load i32, %i
              %e = gep [8 x i32], %a, 0, %iv
              %v = load i32, %e
              %c = cmp ne %v, 0
              condbr %c, latch, exit
            latch:
              %iv2 = load i32, %i
              %inc = add %iv2, 1
              store i32 %inc, %i
              br header
            exit:
              ret
            }
            "#,
        );
        assert!(spins.is_empty());
    }

    /// An infinite loop without conditional exits yields nothing to mark.
    #[test]
    fn infinite_loop_skipped() {
        let spins = spins_of(
            r#"
            global @x: i32 = 0
            fn @f() : void {
            entry:
              br loop
            loop:
              %v = load i32, @x
              br loop
            }
            "#,
        );
        assert!(spins.is_empty());
    }
}
