//! Pipeline configuration: which detection stages run.
//!
//! The stages correspond to the columns of Table 2: *Original* (no
//! transformation), *Expl.* (explicit annotations only), *Spin* (plus
//! spinloop detection) and *AtoMig* (plus optimistic-loop detection).

use atomig_analysis::InlineOptions;

/// The cumulative detection stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// No transformation at all (baseline for model checking).
    Original,
    /// Explicit annotations only (§3.2).
    Explicit,
    /// Explicit annotations + spinloop detection (§3.3, first half).
    Spin,
    /// Everything, including optimistic-loop detection (full AtoMig).
    Full,
}

/// Which alias backend sticky-buddy expansion (§3.4) runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AliasMode {
    /// The paper's scalable scheme: accesses are keyed by global or by
    /// `getelementptr` type+constant-offsets, and equal keys are assumed
    /// to alias. Constant-time per query; over-approximates.
    #[default]
    TypeBased,
    /// Andersen-style inter-procedural points-to sets
    /// ([`atomig_analysis::PointsTo`]): buddies are accesses whose
    /// points-to cells overlap. Strictly more precise on aliased handles
    /// and distinct allocation sites; costs a module-wide fixpoint.
    PointsTo,
}

impl AliasMode {
    /// The CLI-facing name.
    pub fn name(&self) -> &'static str {
        match self {
            AliasMode::TypeBased => "type-based",
            AliasMode::PointsTo => "points-to",
        }
    }

    /// Parses a CLI-facing name.
    pub fn from_name(s: &str) -> Option<AliasMode> {
        match s {
            "type-based" => Some(AliasMode::TypeBased),
            "points-to" => Some(AliasMode::PointsTo),
            _ => None,
        }
    }
}

/// Configuration of the AtoMig pipeline.
#[derive(Debug, Clone)]
pub struct AtomigConfig {
    /// Detection stage to run.
    pub stage: Stage,
    /// Run module-wide sticky-buddy expansion (§3.4). On for every stage
    /// except `Original`; exposed separately for ablation benchmarks.
    pub alias_exploration: bool,
    /// Alias backend used for buddy expansion.
    pub alias_mode: AliasMode,
    /// Inline small functions first so cross-function loops are analyzable
    /// (§3.5).
    pub inline: bool,
    /// Inliner thresholds.
    pub inline_options: InlineOptions,
    /// Also expand buddies keyed only by pointee type (coarse; off by
    /// default, matching the paper's GEP-keyed scheme).
    pub pointee_buddies: bool,
    /// §6 extension: treat compiler barriers (`asm("" ::: "memory")`) as
    /// additional synchronization entry points, marking their adjacent
    /// non-local accesses. Off by default (not part of the evaluated
    /// system).
    pub compiler_barrier_hints: bool,
    /// Volatile locations to *exclude* from the §3.2 volatile conversion
    /// (device registers, signal-handler state). "Throughout all
    /// experiments that we performed, blacklisting of volatile variables
    /// was never necessary" — empty by default.
    pub volatile_blacklist: Vec<atomig_mir::MemLoc>,
    /// The time source behind every phase-timing field. Defaults to the
    /// system monotonic clock; tests inject `atomig_testutil::ManualClock`
    /// via [`crate::trace::Clock::from_fn`] to keep reports
    /// byte-comparable.
    pub clock: crate::trace::Clock,
    /// Worker threads for the parallel phases (per-function detection and
    /// points-to constraint generation). Defaults to the host's available
    /// parallelism; output is byte-identical for any value (the
    /// deterministic-merge contract in `atomig_par`).
    pub jobs: usize,
    /// Content-addressed artifact store consulted before per-function
    /// detection ([`crate::cache`]). `None` (the default) analyzes every
    /// function from scratch; warm-cache output is byte-identical to cold
    /// by construction, so sharing one store across runs is always safe.
    pub cache: Option<std::sync::Arc<atomig_cache::CacheStore>>,
}

impl AtomigConfig {
    /// The identity configuration (Table 2 "Original").
    pub fn original() -> AtomigConfig {
        AtomigConfig {
            stage: Stage::Original,
            alias_exploration: false,
            alias_mode: AliasMode::TypeBased,
            inline: false,
            inline_options: InlineOptions::default(),
            pointee_buddies: false,
            compiler_barrier_hints: false,
            volatile_blacklist: Vec::new(),
            clock: crate::trace::Clock::system(),
            jobs: atomig_par::available_parallelism(),
            cache: None,
        }
    }

    /// Explicit annotations only (Table 2 "Expl.").
    pub fn explicit_only() -> AtomigConfig {
        AtomigConfig {
            stage: Stage::Explicit,
            ..AtomigConfig::full()
        }
    }

    /// Explicit annotations + spinloops (Table 2 "Spin").
    pub fn spin() -> AtomigConfig {
        AtomigConfig {
            stage: Stage::Spin,
            ..AtomigConfig::full()
        }
    }

    /// The full AtoMig pipeline (Table 2 "AtoMig").
    pub fn full() -> AtomigConfig {
        AtomigConfig {
            stage: Stage::Full,
            alias_exploration: true,
            alias_mode: AliasMode::TypeBased,
            inline: true,
            inline_options: InlineOptions::default(),
            pointee_buddies: false,
            compiler_barrier_hints: false,
            volatile_blacklist: Vec::new(),
            clock: crate::trace::Clock::system(),
            jobs: atomig_par::available_parallelism(),
            cache: None,
        }
    }
}

impl Default for AtomigConfig {
    fn default() -> Self {
        AtomigConfig::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_are_ordered() {
        assert!(Stage::Original < Stage::Explicit);
        assert!(Stage::Explicit < Stage::Spin);
        assert!(Stage::Spin < Stage::Full);
    }

    #[test]
    fn presets() {
        assert_eq!(AtomigConfig::original().stage, Stage::Original);
        assert!(!AtomigConfig::original().alias_exploration);
        assert_eq!(AtomigConfig::explicit_only().stage, Stage::Explicit);
        assert!(AtomigConfig::spin().alias_exploration);
        assert_eq!(AtomigConfig::default().stage, Stage::Full);
        assert_eq!(AtomigConfig::default().alias_mode, AliasMode::TypeBased);
    }

    #[test]
    fn alias_mode_names_round_trip() {
        for mode in [AliasMode::TypeBased, AliasMode::PointsTo] {
            assert_eq!(AliasMode::from_name(mode.name()), Some(mode));
        }
        assert_eq!(AliasMode::from_name("precise"), None);
    }
}
