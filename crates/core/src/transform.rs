//! The program transformation (§3.2–§3.4, applied in one pass).
//!
//! Marked accesses become sequentially consistent atomics (implicit
//! barriers — `LDAR`/`STLR` on Arm); optimistic controls additionally get
//! explicit `fence seq_cst` barriers: before each optimistic-control load
//! inside an optimistic loop, and after every store to an optimistic
//! location anywhere in the module (Figure 6's orange marks).

use atomig_mir::{FuncId, Inst, InstId, InstKind, MemLoc, Module, Ordering};
use std::collections::{HashMap, HashSet};

/// The accumulated marks of all detection passes, to be applied at once.
#[derive(Debug, Clone, Default)]
pub struct MarkSet {
    /// Per function: accesses to upgrade to `SeqCst`.
    pub sc_marks: HashMap<FuncId, HashSet<InstId>>,
    /// Alias keys promoted to *optimistic* locations.
    pub optimistic_locs: HashSet<MemLoc>,
    /// Per function: loads that get an explicit fence inserted before them.
    pub fence_before: HashMap<FuncId, HashSet<InstId>>,
    /// Per function: stores that get an explicit fence inserted after them.
    pub fence_after: HashMap<FuncId, HashSet<InstId>>,
}

impl MarkSet {
    /// Adds an SC-upgrade mark.
    pub fn mark_sc(&mut self, f: FuncId, i: InstId) {
        self.sc_marks.entry(f).or_default().insert(i);
    }

    /// Adds a fence-before mark.
    pub fn mark_fence_before(&mut self, f: FuncId, i: InstId) {
        self.fence_before.entry(f).or_default().insert(i);
    }

    /// Adds a fence-after mark.
    pub fn mark_fence_after(&mut self, f: FuncId, i: InstId) {
        self.fence_after.entry(f).or_default().insert(i);
    }

    /// Total number of SC marks.
    pub fn sc_mark_count(&self) -> usize {
        self.sc_marks.values().map(HashSet::len).sum()
    }
}

/// What the transformation changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransformStats {
    /// Accesses whose ordering was actually raised to `SeqCst`.
    pub sc_upgraded: usize,
    /// Accesses already `SeqCst` that were marked (idempotence).
    pub already_sc: usize,
    /// Explicit fences inserted.
    pub fences_inserted: usize,
}

/// Applies `marks` to the module.
pub fn apply(m: &mut Module, marks: &MarkSet) -> TransformStats {
    let mut stats = TransformStats::default();
    for fid in 0..m.funcs.len() as u32 {
        let fid = FuncId(fid);
        let empty = HashSet::new();
        let sc = marks.sc_marks.get(&fid).unwrap_or(&empty);
        let before = marks.fence_before.get(&fid).unwrap_or(&empty);
        let after = marks.fence_after.get(&fid).unwrap_or(&empty);
        if sc.is_empty() && before.is_empty() && after.is_empty() {
            continue;
        }
        let func = m.func_mut(fid);
        let mut next = func.next_inst;
        let is_sc_fence = |i: &Inst| {
            matches!(
                i.kind,
                InstKind::Fence {
                    ord: Ordering::SeqCst
                }
            )
        };
        for block in &mut func.blocks {
            let old = std::mem::take(&mut block.insts);
            let mut new_insts: Vec<Inst> = Vec::with_capacity(old.len());
            let n = old.len();
            for pos in 0..n {
                let mut inst = old[pos].clone();
                // Idempotence: skip insertion when a fence is already
                // adjacent (e.g. from a previous run of the pipeline).
                let already_before = new_insts.last().map(is_sc_fence).unwrap_or(false);
                if before.contains(&inst.id) && !already_before {
                    new_insts.push(Inst::with_span(
                        InstId(next),
                        InstKind::Fence {
                            ord: Ordering::SeqCst,
                        },
                        inst.span,
                    ));
                    next += 1;
                    stats.fences_inserted += 1;
                }
                if sc.contains(&inst.id) {
                    let prev = inst.kind.ordering();
                    inst.kind.upgrade_ordering(Ordering::SeqCst);
                    if prev == Some(Ordering::SeqCst) {
                        stats.already_sc += 1;
                    } else {
                        stats.sc_upgraded += 1;
                    }
                }
                let followed_by_fence = old.get(pos + 1).map(is_sc_fence).unwrap_or(false);
                let fence_here = after.contains(&inst.id) && !followed_by_fence;
                let span = inst.span;
                new_insts.push(inst);
                if fence_here {
                    new_insts.push(Inst::with_span(
                        InstId(next),
                        InstKind::Fence {
                            ord: Ordering::SeqCst,
                        },
                        span,
                    ));
                    next += 1;
                    stats.fences_inserted += 1;
                }
            }
            block.insts = new_insts;
        }
        func.next_inst = next;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomig_mir::{parse_module, verify_module};

    #[test]
    fn upgrades_marked_accesses() {
        let mut m = parse_module(
            r#"
            global @flag: i32 = 0
            fn @w() : void {
            bb0:
              store i32 1, @flag
              ret
            }
            "#,
        )
        .unwrap();
        let sid = m.funcs[0].blocks[0].insts[0].id;
        let mut marks = MarkSet::default();
        marks.mark_sc(FuncId(0), sid);
        let stats = apply(&mut m, &marks);
        assert_eq!(stats.sc_upgraded, 1);
        assert_eq!(stats.fences_inserted, 0);
        assert_eq!(
            m.funcs[0].blocks[0].insts[0].kind.ordering(),
            Some(Ordering::SeqCst)
        );
        verify_module(&m).unwrap();
    }

    #[test]
    fn inserts_fences_around_marked_insts() {
        let mut m = parse_module(
            r#"
            global @seq: i32 = 0
            fn @w() : void {
            bb0:
              %v = load i32, @seq
              store i32 1, @seq
              ret
            }
            "#,
        )
        .unwrap();
        let load_id = m.funcs[0].blocks[0].insts[0].id;
        let store_id = m.funcs[0].blocks[0].insts[1].id;
        let mut marks = MarkSet::default();
        marks.mark_fence_before(FuncId(0), load_id);
        marks.mark_fence_after(FuncId(0), store_id);
        let stats = apply(&mut m, &marks);
        assert_eq!(stats.fences_inserted, 2);
        let kinds: Vec<bool> = m.funcs[0].blocks[0]
            .insts
            .iter()
            .map(|i| matches!(i.kind, InstKind::Fence { .. }))
            .collect();
        assert_eq!(kinds, vec![true, false, false, true]);
        verify_module(&m).unwrap();
    }

    #[test]
    fn marking_is_idempotent() {
        let mut m = parse_module(
            r#"
            global @x: i32 = 0
            fn @f() : void {
            bb0:
              store i32 1, @x seq_cst
              ret
            }
            "#,
        )
        .unwrap();
        let sid = m.funcs[0].blocks[0].insts[0].id;
        let mut marks = MarkSet::default();
        marks.mark_sc(FuncId(0), sid);
        let stats = apply(&mut m, &marks);
        assert_eq!(stats.sc_upgraded, 0);
        assert_eq!(stats.already_sc, 1);
    }

    #[test]
    fn never_downgrades() {
        let mut m = parse_module(
            r#"
            global @x: i32 = 0
            fn @f() : void {
            bb0:
              %v = rmw add i32 @x, 1 seq_cst
              ret
            }
            "#,
        )
        .unwrap();
        let rid = m.funcs[0].blocks[0].insts[0].id;
        let mut marks = MarkSet::default();
        marks.mark_sc(FuncId(0), rid);
        apply(&mut m, &marks);
        assert_eq!(
            m.funcs[0].blocks[0].insts[0].kind.ordering(),
            Some(Ordering::SeqCst)
        );
    }

    #[test]
    fn untouched_functions_unchanged() {
        let mut m = parse_module(
            r#"
            global @x: i32 = 0
            fn @f() : void {
            bb0:
              store i32 1, @x
              ret
            }
            "#,
        )
        .unwrap();
        let before = m.clone();
        let stats = apply(&mut m, &MarkSet::default());
        assert_eq!(stats, TransformStats::default());
        assert_eq!(m, before);
    }
}
