//! The incremental-analysis codec: fingerprints and wire format for the
//! per-function artifacts persisted in an [`atomig_cache::CacheStore`].
//!
//! The store itself is a generic blob store; everything AtoMig-specific
//! lives here. A cached artifact is the [`FuncDetect`] a detection run
//! produced for one function — annotation and hint marks, spinloops,
//! optimistic loops — under one exact analysis input. The fingerprint
//! captures that input completely:
//!
//! * the **config seed** — every [`AtomigConfig`] knob that changes what
//!   detection computes (stage, alias backend and exploration, inliner
//!   settings, pointee buddies, barrier hints, volatile blacklist), plus
//!   [`ARTIFACT_VERSION`] so schema changes invalidate wholesale. `jobs`
//!   and `clock` are deliberately excluded: they never change decisions
//!   (the deterministic-merge contract).
//! * the **module seed** — struct layouts and globals, which alias keys
//!   and annotation scanning depend on. A one-function edit leaves this
//!   unchanged, so only that function's fingerprint moves.
//! * the **function body** — the printed post-inline MIR. The printer
//!   embeds instruction ids and source spans, so an identical print
//!   guarantees identical `InstId`s: artifacts can store bare ids and
//!   decoding can rebuild every [`MemLoc`] from the live function.
//!
//! Decoding is fail-closed: any malformed payload, unknown instruction
//! id, or out-of-range index yields `None` and the caller re-analyzes —
//! a corrupt cache can cost time, never correctness.

use crate::annotations::{loc_of, Mark};
use crate::config::AtomigConfig;
use crate::json::{parse, Value};
use crate::pipeline::{FuncDetect, OptDetect, SpinDetect};
use atomig_mir::{Function, InstId, MemLoc, Module};

/// Version of the artifact schema below. Folded into the config seed so
/// a bump invalidates every existing fingerprint.
pub const ARTIFACT_VERSION: u32 = 1;

/// The decision-relevant configuration knobs, serialized canonically.
pub fn config_seed(cfg: &AtomigConfig) -> String {
    format!(
        "artifact-v{};stage={:?};alias={};exploration={};inline={};inline_opts={:?};\
         pointee={};hints={};blacklist={:?}",
        ARTIFACT_VERSION,
        cfg.stage,
        cfg.alias_mode.name(),
        cfg.alias_exploration,
        cfg.inline,
        cfg.inline_options,
        cfg.pointee_buddies,
        cfg.compiler_barrier_hints,
        cfg.volatile_blacklist,
    )
}

/// The module-level context a function's detection depends on beyond its
/// own body: struct layouts (field offsets behind alias keys) and global
/// declarations. Editing one function leaves this seed unchanged.
pub fn module_seed(m: &Module) -> String {
    format!("{:?}\n{:?}", m.structs, m.globals)
}

/// The combined non-body fingerprint input, computed once per module.
pub fn full_seed(cfg: &AtomigConfig, m: &Module) -> String {
    format!("{}\n{}", config_seed(cfg), module_seed(m))
}

/// The cache key of one function under one analysis input.
pub fn func_fingerprint(seed: &str, body: &str) -> atomig_cache::Fingerprint {
    atomig_cache::Fingerprint::of(&[seed, body])
}

/// Serializes a detection result. Only instruction ids, spans, and flags
/// are stored; locations are rebuilt from the function on decode.
pub(crate) fn encode_detect(det: &FuncDetect) -> String {
    let ann: Vec<Value> = det
        .ann_marks
        .iter()
        .map(|(mk, vol)| Value::Arr(vec![(mk.inst.0 as usize).into(), (*vol).into()]))
        .collect();
    let hints: Vec<Value> = det
        .hint_marks
        .iter()
        .map(|mk| (mk.inst.0 as usize).into())
        .collect();
    let spins: Vec<Value> = det
        .spins
        .iter()
        .map(|s| {
            Value::obj(vec![
                (
                    "controls",
                    Value::Arr(s.controls.iter().map(|c| (c.0 as usize).into()).collect()),
                ),
                ("header", (s.header_span as usize).into()),
            ])
        })
        .collect();
    let opts: Vec<Value> = det
        .opts
        .iter()
        .map(|o| {
            Value::obj(vec![
                ("spin", o.spin_index.into()),
                ("header", (o.header_span as usize).into()),
                (
                    "controls",
                    Value::Arr(
                        o.controls
                            .iter()
                            .map(|&(c, is_load)| {
                                Value::Arr(vec![(c.0 as usize).into(), is_load.into()])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    Value::obj(vec![
        ("ann", Value::Arr(ann)),
        ("hints", Value::Arr(hints)),
        ("spins", Value::Arr(spins)),
        ("opts", Value::Arr(opts)),
    ])
    .to_string()
}

fn as_inst(v: &Value) -> Option<InstId> {
    let n = v.as_num()?;
    if n < 0.0 || n.fract() != 0.0 || n > u32::MAX as f64 {
        return None;
    }
    Some(InstId(n as u32))
}

fn as_span(v: &Value) -> Option<u32> {
    let n = v.as_num()?;
    if n < 0.0 || n.fract() != 0.0 || n > u32::MAX as f64 {
        return None;
    }
    Some(n as u32)
}

fn as_bool(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

/// Deserializes a detection result against the live function, rebuilding
/// every location from the referenced instructions. Returns `None` — a
/// cache miss — on any inconsistency.
pub(crate) fn decode_detect(payload: &str, func: &Function) -> Option<FuncDetect> {
    let v = parse(payload).ok()?;
    let index = func.inst_index();
    // Rebuild a mark exactly as the detection passes would have: the
    // alias key is a pure function of (function, instruction).
    let mark_of = |i: InstId| -> Option<Mark> {
        let kind = index.get(&i)?;
        Some(Mark {
            inst: i,
            loc: loc_of(func, &index, kind),
        })
    };

    let mut det = FuncDetect::default();
    for entry in v.get("ann")?.as_arr()? {
        let pair = entry.as_arr()?;
        if pair.len() != 2 {
            return None;
        }
        let mk = mark_of(as_inst(&pair[0])?)?;
        det.ann_marks.push((mk, as_bool(&pair[1])?));
    }
    for entry in v.get("hints")?.as_arr()? {
        det.hint_marks.push(mark_of(as_inst(entry)?)?);
    }
    for entry in v.get("spins")?.as_arr()? {
        let mut controls = Vec::new();
        for c in entry.get("controls")?.as_arr()? {
            controls.push(as_inst(c)?);
        }
        // Same rebuild as `detect_spinloops`: drop controls without an
        // indexed kind (there are none when the fingerprint matched).
        let control_locs: Vec<MemLoc> = controls
            .iter()
            .filter_map(|id| index.get(id).map(|k| loc_of(func, &index, k)))
            .collect();
        det.spins.push(SpinDetect {
            controls,
            control_locs,
            header_span: as_span(entry.get("header")?)?,
        });
    }
    for entry in v.get("opts")?.as_arr()? {
        let spin_index = entry.get("spin")?.as_num()?;
        if spin_index < 0.0 || spin_index.fract() != 0.0 {
            return None;
        }
        let spin_index = spin_index as usize;
        let mut controls = Vec::new();
        for c in entry.get("controls")?.as_arr()? {
            let pair = c.as_arr()?;
            if pair.len() != 2 {
                return None;
            }
            controls.push((as_inst(&pair[0])?, as_bool(&pair[1])?));
        }
        // Optimistic control locations mirror the underlying spinloop's
        // (see `detect_optimistic`), so reuse the rebuilt vector.
        let control_locs = det.spins.get(spin_index)?.control_locs.clone();
        det.opts.push(OptDetect {
            spin_index,
            header_span: as_span(entry.get("header")?)?,
            controls,
            control_locs,
        });
    }
    Some(det)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pipeline;

    const SEQLOCK: &str = include_str!("../../../examples/seqlock_alias.c");

    fn detect_everything(src: &str, name: &str) -> (Module, Vec<FuncDetect>) {
        let mut m = atomig_frontc::compile(src, name).expect("compiles");
        let mut cfg = AtomigConfig::full();
        cfg.inline = false;
        let pipe = Pipeline::new(cfg);
        let dets = m
            .func_ids()
            .map(|fid| pipe.detect_func(&m, fid))
            .collect::<Vec<_>>();
        // Detection never mutates; keep the module for decode.
        m.name = name.to_string();
        (m, dets)
    }

    #[test]
    fn artifacts_round_trip_for_every_function() {
        let (m, dets) = detect_everything(SEQLOCK, "seqlock_alias");
        let mut nontrivial = 0;
        for (fid, det) in m.func_ids().zip(&dets) {
            let payload = encode_detect(det);
            let back = decode_detect(&payload, m.func(fid)).expect("decodes");
            assert_eq!(&back, det, "round-trip diverged in @{}", m.func(fid).name);
            nontrivial += usize::from(!det.spins.is_empty() || !det.ann_marks.is_empty());
        }
        assert!(nontrivial > 0, "example exercises no detection at all");
    }

    #[test]
    fn corrupt_payloads_decode_to_none() {
        let (m, dets) = detect_everything(SEQLOCK, "seqlock_alias");
        let fid = m.func_ids().next().unwrap();
        let func = m.func(fid);
        for bad in [
            "",
            "not json",
            "{}",
            r#"{"ann":[],"hints":[],"spins":[],"opts":"nope"}"#,
            // Unknown instruction id.
            r#"{"ann":[[99999,false]],"hints":[],"spins":[],"opts":[]}"#,
            // Opt referencing a spin that does not exist.
            r#"{"ann":[],"hints":[],"spins":[],"opts":[{"spin":7,"header":1,"controls":[]}]}"#,
            // Non-integer instruction id.
            r#"{"ann":[[1.5,false]],"hints":[],"spins":[],"opts":[]}"#,
        ] {
            assert!(decode_detect(bad, func).is_none(), "accepted `{bad}`");
        }
        let _ = dets;
    }

    #[test]
    fn fingerprints_track_config_module_and_body() {
        let m = atomig_frontc::compile(SEQLOCK, "seqlock_alias").unwrap();
        let cfg = AtomigConfig::full();
        let seed = full_seed(&cfg, &m);
        let fid = m.func_ids().next().unwrap();
        let body = atomig_mir::printer::print_function(&m, m.func(fid));
        let base = func_fingerprint(&seed, &body);
        assert_eq!(base, func_fingerprint(&seed, &body));

        // A decision-relevant knob moves the fingerprint.
        let mut cfg2 = cfg.clone();
        cfg2.alias_mode = crate::AliasMode::PointsTo;
        assert_ne!(base, func_fingerprint(&full_seed(&cfg2, &m), &body));

        // Jobs and clock do not (they never change decisions).
        let mut cfg3 = cfg.clone();
        cfg3.jobs = 17;
        cfg3.clock = crate::trace::Clock::from_fn(|| std::time::Duration::ZERO);
        assert_eq!(base, func_fingerprint(&full_seed(&cfg3, &m), &body));

        // A body edit moves it.
        assert_ne!(base, func_fingerprint(&seed, &format!("{body} ")));
    }
}
