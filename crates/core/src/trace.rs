//! Decision provenance and pipeline observability.
//!
//! The porting pipeline (Figure 2) upgrades orderings for *reasons* — an
//! access is an explicit annotation (§3.2), a spin or optimistic control
//! (§3.3), or a sticky buddy of one (§3.4) — but until now those reasons
//! died inside `port_module`. This module keeps them alive:
//!
//! * [`DecisionLedger`] — an append-only log of every mark the pipeline
//!   computes, each with its [`TraceCause`]. Causes carry their seeds, so
//!   a sticky-buddy upgrade can be *replayed* back to the spin control
//!   that seeded it: `seqlock_alias.c:!30 → sticky-buddy (alias class C2,
//!   points-to) of !41 → optimistic-control of seqlock L0 in
//!   read_snapshot()`. The `atomig explain` subcommand is a query over
//!   this ledger.
//! * [`PipelineMetrics`] — span-based phase timings and counters
//!   (frontend lowering, inlining, detection passes, alias building, the
//!   points-to solver, transformation, lint rules, checker exploration),
//!   embedded in [`PortReport`] and [`LintReport`].
//! * [`Clock`] — the injectable time source behind every timing field.
//!   Production uses the system monotonic clock; tests inject a manual
//!   tick counter (`atomig_testutil::ManualClock`) so reports stay
//!   byte-comparable.
//! * JSONL sinks — `--emit-metrics` serializes one event per line with a
//!   documented schema (see DESIGN.md §8 "Observability");
//!   [`validate_metrics_jsonl`] is the schema check used by tests and CI.
//!
//! [`PortReport`]: crate::report::PortReport
//! [`LintReport`]: crate::lint::LintReport

use crate::config::AliasMode;
use crate::json::{parse, Value};
use crate::lint::Lint;
use atomig_mir::{FuncId, InstId, MemLoc};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

/// An injectable monotonic time source.
///
/// Every timing field the pipeline produces is measured as the difference
/// of two [`Clock::now`] readings. [`Clock::system`] anchors an
/// [`Instant`] at construction; [`Clock::from_fn`] accepts any closure —
/// in tests, a deterministic tick counter — which makes reports and
/// metrics byte-comparable across runs.
///
/// # Examples
///
/// ```
/// use atomig_core::trace::Clock;
/// use std::time::Duration;
/// let c = Clock::from_fn(|| Duration::from_nanos(42));
/// assert_eq!(c.now(), Duration::from_nanos(42));
/// let s = Clock::system();
/// assert!(s.now() <= s.now());
/// ```
#[derive(Clone)]
pub struct Clock(Arc<dyn Fn() -> Duration + Send + Sync>);

impl Clock {
    /// The real monotonic clock, anchored at construction.
    pub fn system() -> Clock {
        let t0 = Instant::now();
        Clock(Arc::new(move || t0.elapsed()))
    }

    /// A clock backed by an arbitrary closure (deterministic in tests).
    pub fn from_fn(f: impl Fn() -> Duration + Send + Sync + 'static) -> Clock {
        Clock(Arc::new(f))
    }

    /// The current reading.
    pub fn now(&self) -> Duration {
        (self.0)()
    }
}

impl Default for Clock {
    fn default() -> Clock {
        Clock::system()
    }
}

impl fmt::Debug for Clock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Clock(..)")
    }
}

// ---------------------------------------------------------------------------
// Phase metrics
// ---------------------------------------------------------------------------

/// One timed pipeline phase.
#[derive(Debug, Clone, Default)]
pub struct PhaseStat {
    /// Kebab-case phase name (e.g. `spin-detect`, `points-to-solve`).
    pub name: String,
    /// Wall-clock (or injected-clock) duration.
    pub duration: Duration,
    /// Phase-specific item count (loops found, marks made, …).
    pub items: usize,
}

/// Points-to solver statistics, mirrored from
/// [`atomig_analysis::PointsToStats`] so reports do not expose the solver
/// internals directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverMetrics {
    /// Constraint-graph nodes.
    pub nodes: usize,
    /// Distinct abstract memory cells.
    pub cells: usize,
    /// Base constraints generated from the MIR.
    pub constraints: usize,
    /// Worklist pops until fixpoint.
    pub iterations: usize,
    /// Fixpoint passes: the maximum number of times any single node was
    /// re-popped from the worklist.
    pub passes: usize,
    /// Constraint generation + solving time.
    pub solve_time: Duration,
}

impl From<atomig_analysis::PointsToStats> for SolverMetrics {
    fn from(s: atomig_analysis::PointsToStats) -> SolverMetrics {
        SolverMetrics {
            nodes: s.nodes,
            cells: s.cells,
            constraints: s.constraints,
            iterations: s.iterations,
            passes: s.passes,
            solve_time: s.solve_time,
        }
    }
}

/// Model-checker exploration counters (filled in by `atomig check`; the
/// core crate does not depend on the checker, so the fields are plain).
#[derive(Debug, Clone, Default)]
pub struct CheckerMetrics {
    /// Model name (`SC`, `TSO`, `WMM`, `ARM`).
    pub model: String,
    /// Distinct states visited.
    pub states: usize,
    /// Completed executions.
    pub executions: u64,
    /// States reached again and pruned.
    pub revisits: u64,
    /// Peak number of frontier states tracked at once.
    pub peak_tracked: usize,
    /// Whether limits cut the exploration short.
    pub truncated: bool,
}

/// Artifact-cache counters for one pipeline (or lint) run, mirrored from
/// the `atomig-cache` store consulted during per-function detection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheMetrics {
    /// Functions whose detection artifact was served from the cache.
    pub hits: usize,
    /// Functions that were analyzed and stored.
    pub misses: usize,
    /// Stale-format entries evicted when the store was opened.
    pub evictions: usize,
}

/// Phase timings and counters of one pipeline (or lint, or check) run.
#[derive(Debug, Clone, Default)]
pub struct PipelineMetrics {
    /// Timed phases, in execution order.
    pub phases: Vec<PhaseStat>,
    /// Points-to solver statistics, when that backend ran.
    pub solver: Option<SolverMetrics>,
    /// Checker counters, when a check ran.
    pub checker: Option<CheckerMetrics>,
    /// Artifact-cache counters, when a cache store was configured.
    /// Deliberately excluded from `Display`: reports must stay
    /// byte-identical between cold and warm cache runs, so the counters
    /// surface only through `--trace` and the JSONL sink.
    pub cache: Option<CacheMetrics>,
}

impl PipelineMetrics {
    /// Appends a timed phase.
    pub fn record(&mut self, name: &str, duration: Duration, items: usize) {
        self.phases.push(PhaseStat {
            name: name.to_string(),
            duration,
            items,
        });
    }

    /// The first phase with the given name.
    pub fn phase(&self, name: &str) -> Option<&PhaseStat> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Sum of all phase durations.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|p| p.duration).sum()
    }
}

impl fmt::Display for PipelineMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.phases {
            writeln!(
                f,
                "  {:<20} {:>12.1?}  ({} item(s))",
                p.name, p.duration, p.items
            )?;
        }
        if let Some(s) = &self.solver {
            writeln!(
                f,
                "  solver: {} cells, {} constraints, {} iterations, {} passes",
                s.cells, s.constraints, s.iterations, s.passes
            )?;
        }
        if let Some(c) = &self.checker {
            writeln!(
                f,
                "  checker: {} — {} states, {} executions, {} revisits, peak {}",
                c.model, c.states, c.executions, c.revisits, c.peak_tracked
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Decision ledger
// ---------------------------------------------------------------------------

/// What the pipeline decided to do to an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceAction {
    /// Upgrade the access's ordering to `seq_cst`.
    UpgradeSc,
    /// Insert an explicit `fence seq_cst` before the access.
    FenceBefore,
    /// Insert an explicit `fence seq_cst` after the access.
    FenceAfter,
    /// Identify the access as a synchronization seed without rewriting it
    /// directly (optimistic controls feed the alias arm this way).
    Seed,
}

impl TraceAction {
    /// Kebab-case name used in the JSONL sink.
    pub fn name(&self) -> &'static str {
        match self {
            TraceAction::UpgradeSc => "upgrade-sc",
            TraceAction::FenceBefore => "fence-before",
            TraceAction::FenceAfter => "fence-after",
            TraceAction::Seed => "seed",
        }
    }
}

/// The alias grouping through which a sticky-buddy upgrade propagated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AliasClass {
    /// Type-based backend: the shared [`MemLoc`] key.
    Key(MemLoc),
    /// Points-to backend: the overlap-class index (printed `C<n>`).
    Class(usize),
}

impl fmt::Display for AliasClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AliasClass::Key(loc) => write!(f, "{loc}"),
            AliasClass::Class(i) => write!(f, "C{i}"),
        }
    }
}

/// Why the pipeline made a decision. Causes that propagate from another
/// access carry the seed's `(function, instruction)` so chains can be
/// replayed through the ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceCause {
    /// Explicitly annotated (§3.2): already atomic, or `volatile`.
    Annotation {
        /// `true` for the volatile conversion, `false` for existing
        /// atomics.
        volatile: bool,
    },
    /// Adjacent to a compiler barrier (§6 hint extension).
    BarrierHint,
    /// A spinloop exit depends on the access (§3.3).
    SpinControl {
        /// Loop index within the function, in detection order.
        loop_index: usize,
        /// Source span of the loop header (`0` = unknown).
        header_span: u32,
    },
    /// An optimistic (seqlock-style) loop control (§3.3).
    OptimisticControl {
        /// Loop index within the function, in detection order.
        loop_index: usize,
        /// Source span of the loop header (`0` = unknown).
        header_span: u32,
    },
    /// A store to an optimistic-control location (Figure 6, writer side).
    OptimisticStore {
        /// The optimistic control this store pairs with, when known.
        seed: Option<(FuncId, InstId)>,
    },
    /// Sticky-buddy expansion from `seed` through `class` (§3.4).
    StickyBuddy {
        /// The already-marked access the expansion started from.
        seed: (FuncId, InstId),
        /// The alias grouping that connected seed and buddy.
        class: AliasClass,
        /// Which alias backend computed the grouping.
        backend: AliasMode,
    },
}

impl TraceCause {
    /// Kebab-case cause kind used in the JSONL sink.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceCause::Annotation { .. } => "annotation",
            TraceCause::BarrierHint => "barrier-hint",
            TraceCause::SpinControl { .. } => "spin-control",
            TraceCause::OptimisticControl { .. } => "optimistic-control",
            TraceCause::OptimisticStore { .. } => "optimistic-store",
            TraceCause::StickyBuddy { .. } => "sticky-buddy",
        }
    }

    /// The access this cause propagated from, if any.
    pub fn seed(&self) -> Option<(FuncId, InstId)> {
        match self {
            TraceCause::OptimisticStore { seed } => *seed,
            TraceCause::StickyBuddy { seed, .. } => Some(*seed),
            _ => None,
        }
    }
}

/// One recorded pipeline decision.
#[derive(Debug, Clone)]
pub struct Decision {
    /// Function containing the access.
    pub func: FuncId,
    /// The function's name (post-inlining).
    pub func_name: String,
    /// The access.
    pub inst: InstId,
    /// 1-based MiniC source line (`0` = unknown), printed `!N`.
    pub span: u32,
    /// The access's alias key.
    pub loc: MemLoc,
    /// What was decided.
    pub action: TraceAction,
    /// Why.
    pub cause: TraceCause,
}

impl Decision {
    /// `file.c:!span` (or `file.c:?` when the span is unknown).
    fn site(&self, module: &str) -> String {
        if self.span != 0 {
            format!("{module}.c:!{}", self.span)
        } else {
            format!("{module}.c:?")
        }
    }

    /// One human-readable line: site, action, location, function, cause.
    pub fn describe(&self, module: &str) -> String {
        format!(
            "{} {} {} in {}() — {}",
            self.site(module),
            self.action.name(),
            self.loc,
            self.func_name,
            describe_cause(&self.cause)
        )
    }
}

fn describe_cause(cause: &TraceCause) -> String {
    match cause {
        TraceCause::Annotation { volatile: true } => "declared volatile (§3.2)".into(),
        TraceCause::Annotation { volatile: false } => "explicitly annotated atomic (§3.2)".into(),
        TraceCause::BarrierHint => "adjacent to a compiler barrier (§6 hint)".into(),
        TraceCause::SpinControl {
            loop_index,
            header_span,
        } => format!("spin-control of spinloop L{loop_index} (header !{header_span}, §3.3)"),
        TraceCause::OptimisticControl {
            loop_index,
            header_span,
        } => format!(
            "optimistic-control of seqlock loop L{loop_index} (header !{header_span}, §3.3)"
        ),
        TraceCause::OptimisticStore { .. } => {
            "store to an optimistic-control location (Figure 6, writer side)".into()
        }
        TraceCause::StickyBuddy { class, backend, .. } => format!(
            "sticky-buddy via alias class {class} ({} backend, §3.4)",
            backend.name()
        ),
    }
}

/// The append-only log of every decision one pipeline run made.
#[derive(Debug, Clone, Default)]
pub struct DecisionLedger {
    decisions: Vec<Decision>,
    by_access: HashMap<(FuncId, InstId), Vec<usize>>,
}

impl DecisionLedger {
    /// Appends a decision.
    pub fn record(&mut self, d: Decision) {
        self.by_access
            .entry((d.func, d.inst))
            .or_default()
            .push(self.decisions.len());
        self.decisions.push(d);
    }

    /// All decisions, in recording order.
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// Number of decisions recorded.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// Decisions affecting one access, in recording order.
    pub fn for_access(&self, f: FuncId, i: InstId) -> impl Iterator<Item = &Decision> {
        self.by_access
            .get(&(f, i))
            .into_iter()
            .flatten()
            .map(|&idx| &self.decisions[idx])
    }

    /// Decisions whose source span equals `line`.
    pub fn at_line(&self, line: u32) -> Vec<&Decision> {
        self.decisions.iter().filter(|d| d.span == line).collect()
    }

    /// The provenance chain of one decision: the decision itself, then —
    /// following [`TraceCause::seed`] links through the ledger — the
    /// decisions that caused it, each one indentation level deeper.
    pub fn chain(&self, d: &Decision, module: &str) -> Vec<String> {
        let mut out = Vec::new();
        self.chain_into(d, module, 0, &mut out);
        out
    }

    fn chain_into(&self, d: &Decision, module: &str, depth: usize, out: &mut Vec<String>) {
        let indent = "    ".repeat(depth);
        let arrow = if depth == 0 { "" } else { "<- " };
        out.push(format!("{indent}{arrow}{}", d.describe(module)));
        if depth >= 8 {
            out.push(format!("{indent}    <- … (chain truncated)"));
            return;
        }
        if let Some((sf, si)) = d.cause.seed() {
            // Prefer the seed's *pattern* decision (how it was first
            // identified) over derived buddy marks on the same access.
            let seed_decisions: Vec<&Decision> = self.for_access(sf, si).collect();
            match seed_decisions.first() {
                Some(seed) => self.chain_into(seed, module, depth + 1, out),
                None => out.push(format!(
                    "{indent}    <- seed access has no recorded decision"
                )),
            }
        }
    }

    /// The human-readable trace tree behind `--trace`: every decision
    /// whose cause is not itself derived, with derived decisions
    /// (buddies, optimistic stores) attached beneath their seeds.
    pub fn render_tree(&self, module: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "decision trace for `{module}` ({} decision(s))\n",
            self.decisions.len()
        ));
        for d in &self.decisions {
            match d.cause.seed() {
                None => {
                    out.push_str(&format!("  {}\n", d.describe(module)));
                }
                Some(_) => {
                    for line in self.chain(d, module) {
                        out.push_str("  ");
                        out.push_str(&line);
                        out.push('\n');
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// JSONL sink
// ---------------------------------------------------------------------------

/// The `event` kinds the metrics JSONL schema defines.
pub const EVENT_KINDS: &[&str] = &[
    "meta", "phase", "solver", "checker", "cache", "decision", "finding", "summary",
];

/// A `meta` event: which command produced this stream.
pub fn meta_event(command: &str, module: &str, backend: Option<&str>) -> Value {
    let mut pairs = vec![
        ("event", "meta".into()),
        ("tool", "atomig".into()),
        ("command", command.into()),
        ("module", module.into()),
    ];
    if let Some(b) = backend {
        pairs.push(("backend", b.into()));
    }
    Value::obj(pairs)
}

/// A `phase` event (durations are nanoseconds, so tiny phases never
/// round to zero).
pub fn phase_event(p: &PhaseStat) -> Value {
    Value::obj(vec![
        ("event", "phase".into()),
        ("name", p.name.as_str().into()),
        ("nanos", p.duration.as_nanos().into()),
        ("items", p.items.into()),
    ])
}

/// A `solver` event.
pub fn solver_event(s: &SolverMetrics) -> Value {
    Value::obj(vec![
        ("event", "solver".into()),
        ("nodes", s.nodes.into()),
        ("cells", s.cells.into()),
        ("constraints", s.constraints.into()),
        ("iterations", s.iterations.into()),
        ("passes", s.passes.into()),
        ("nanos", s.solve_time.as_nanos().into()),
    ])
}

/// A `checker` event.
pub fn checker_event(c: &CheckerMetrics) -> Value {
    Value::obj(vec![
        ("event", "checker".into()),
        ("model", c.model.as_str().into()),
        ("states", c.states.into()),
        ("executions", c.executions.into()),
        ("revisits", c.revisits.into()),
        ("peak_tracked", c.peak_tracked.into()),
        ("truncated", c.truncated.into()),
    ])
}

/// A `cache` event (artifact-cache counters of one run).
pub fn cache_event(c: &CacheMetrics) -> Value {
    Value::obj(vec![
        ("event", "cache".into()),
        ("hits", c.hits.into()),
        ("misses", c.misses.into()),
        ("evictions", c.evictions.into()),
    ])
}

/// A `decision` event.
pub fn decision_event(d: &Decision) -> Value {
    let mut pairs = vec![
        ("event", "decision".into()),
        ("func", d.func_name.as_str().into()),
        ("inst", (d.inst.0 as usize).into()),
        ("span", d.span.into()),
        ("loc", d.loc.to_string().into()),
        ("action", d.action.name().into()),
        ("cause", d.cause.kind().into()),
    ];
    match &d.cause {
        TraceCause::SpinControl {
            loop_index,
            header_span,
        }
        | TraceCause::OptimisticControl {
            loop_index,
            header_span,
        } => {
            pairs.push(("loop", (*loop_index).into()));
            pairs.push(("header_span", (*header_span).into()));
        }
        TraceCause::StickyBuddy {
            seed,
            class,
            backend,
        } => {
            pairs.push(("seed_func", (seed.0 .0 as usize).into()));
            pairs.push(("seed_inst", (seed.1 .0 as usize).into()));
            pairs.push(("class", class.to_string().into()));
            pairs.push(("backend", backend.name().into()));
        }
        TraceCause::OptimisticStore { seed: Some(seed) } => {
            pairs.push(("seed_func", (seed.0 .0 as usize).into()));
            pairs.push(("seed_inst", (seed.1 .0 as usize).into()));
        }
        _ => {}
    }
    Value::obj(pairs)
}

/// A `finding` event (one lint).
pub fn finding_event(l: &Lint) -> Value {
    Value::obj(vec![
        ("event", "finding".into()),
        ("rule", l.rule.name().into()),
        ("severity", l.severity.to_string().into()),
        ("func", l.func.as_str().into()),
        ("span", l.span.into()),
        ("message", l.message.as_str().into()),
    ])
}

/// A `summary` event closing the stream: arbitrary counters plus the
/// command's total time in nanoseconds.
pub fn summary_event(total: Duration, counters: Vec<(&str, Value)>) -> Value {
    let mut pairs = vec![
        ("event", "summary".into()),
        ("total_nanos", total.as_nanos().into()),
    ];
    pairs.extend(counters);
    Value::obj(pairs)
}

/// Serializes events as JSONL (one compact object per line, trailing
/// newline).
pub fn to_jsonl(events: &[Value]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

/// What [`validate_metrics_jsonl`] tallies from a valid stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsTally {
    /// Total events.
    pub events: usize,
    /// `phase` events.
    pub phases: usize,
    /// `decision` events.
    pub decisions: usize,
    /// `finding` events.
    pub findings: usize,
    /// `solver` events.
    pub solvers: usize,
    /// `checker` events.
    pub checkers: usize,
    /// `cache` events.
    pub caches: usize,
    /// Sum of all `cache.hits`.
    pub cache_hits: usize,
    /// Sum of all `cache.misses`.
    pub cache_misses: usize,
    /// Sum of all `phase.nanos`.
    pub total_phase_nanos: u128,
    /// Names of the phases seen, in order.
    pub phase_names: Vec<String>,
}

impl MetricsTally {
    /// The summed nanoseconds of one named phase.
    pub fn phase_nanos(&self, _name: &str) -> u128 {
        // Per-phase sums are not tracked; use total_phase_nanos or parse
        // the stream directly for finer queries.
        self.total_phase_nanos
    }
}

fn expect_num(v: &Value, key: &str, line: usize) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_num)
        .ok_or_else(|| format!("line {line}: missing numeric `{key}`"))
}

fn expect_str<'a>(v: &'a Value, key: &str, line: usize) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("line {line}: missing string `{key}`"))
}

/// Validates a metrics JSONL stream against the documented schema.
///
/// Every line must parse as a JSON object with a known `event` kind and
/// that kind's required fields; the stream must open with a `meta` event
/// and close with a `summary` event.
///
/// # Errors
///
/// Returns the first schema violation with its 1-based line number.
pub fn validate_metrics_jsonl(text: &str) -> Result<MetricsTally, String> {
    let mut tally = MetricsTally::default();
    let mut first_kind = None;
    let mut last_kind = String::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let v = parse(raw).map_err(|e| format!("line {line}: {e}"))?;
        let kind = expect_str(&v, "event", line)?.to_string();
        if !EVENT_KINDS.contains(&kind.as_str()) {
            return Err(format!("line {line}: unknown event kind `{kind}`"));
        }
        match kind.as_str() {
            "meta" => {
                expect_str(&v, "command", line)?;
                expect_str(&v, "module", line)?;
            }
            "phase" => {
                let name = expect_str(&v, "name", line)?.to_string();
                let nanos = expect_num(&v, "nanos", line)?;
                expect_num(&v, "items", line)?;
                if nanos < 0.0 {
                    return Err(format!("line {line}: negative phase duration"));
                }
                tally.phases += 1;
                tally.total_phase_nanos += nanos as u128;
                tally.phase_names.push(name);
            }
            "solver" => {
                for k in ["cells", "constraints", "iterations", "passes"] {
                    expect_num(&v, k, line)?;
                }
                tally.solvers += 1;
            }
            "checker" => {
                expect_str(&v, "model", line)?;
                for k in ["states", "executions", "revisits", "peak_tracked"] {
                    expect_num(&v, k, line)?;
                }
                tally.checkers += 1;
            }
            "cache" => {
                for k in ["hits", "misses", "evictions"] {
                    expect_num(&v, k, line)?;
                }
                tally.caches += 1;
                tally.cache_hits += expect_num(&v, "hits", line)? as usize;
                tally.cache_misses += expect_num(&v, "misses", line)? as usize;
            }
            "decision" => {
                expect_str(&v, "func", line)?;
                expect_num(&v, "span", line)?;
                let action = expect_str(&v, "action", line)?;
                if !["upgrade-sc", "fence-before", "fence-after", "seed"].contains(&action) {
                    return Err(format!("line {line}: unknown action `{action}`"));
                }
                let cause = expect_str(&v, "cause", line)?;
                if ![
                    "annotation",
                    "barrier-hint",
                    "spin-control",
                    "optimistic-control",
                    "optimistic-store",
                    "sticky-buddy",
                ]
                .contains(&cause)
                {
                    return Err(format!("line {line}: unknown cause `{cause}`"));
                }
                tally.decisions += 1;
            }
            "finding" => {
                expect_str(&v, "rule", line)?;
                expect_str(&v, "func", line)?;
                expect_num(&v, "span", line)?;
                tally.findings += 1;
            }
            "summary" => {
                expect_num(&v, "total_nanos", line)?;
            }
            _ => unreachable!("kind checked against EVENT_KINDS"),
        }
        if first_kind.is_none() {
            first_kind = Some(kind.clone());
        }
        last_kind = kind;
        tally.events += 1;
    }
    if tally.events == 0 {
        return Err("empty metrics stream".into());
    }
    if first_kind.as_deref() != Some("meta") {
        return Err("stream must open with a `meta` event".into());
    }
    if last_kind != "summary" {
        return Err("stream must close with a `summary` event".into());
    }
    Ok(tally)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(span: u32, cause: TraceCause) -> Decision {
        Decision {
            func: FuncId(0),
            func_name: "writer".into(),
            inst: InstId(span),
            span,
            loc: MemLoc::Global(atomig_mir::GlobalId(0), vec![]),
            action: TraceAction::UpgradeSc,
            cause,
        }
    }

    #[test]
    fn clock_is_injectable_and_deterministic() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let ticks = Arc::new(AtomicU64::new(0));
        let t = ticks.clone();
        let c = Clock::from_fn(move || {
            Duration::from_nanos(t.fetch_add(1000, Ordering::Relaxed) + 1000)
        });
        assert_eq!(c.now(), Duration::from_nanos(1000));
        assert_eq!(c.now(), Duration::from_nanos(2000));
    }

    #[test]
    fn ledger_chains_buddy_to_spin_seed() {
        let mut ledger = DecisionLedger::default();
        ledger.record(decision(
            17,
            TraceCause::SpinControl {
                loop_index: 2,
                header_span: 16,
            },
        ));
        let mut buddy = decision(
            30,
            TraceCause::StickyBuddy {
                seed: (FuncId(0), InstId(17)),
                class: AliasClass::Class(3),
                backend: AliasMode::PointsTo,
            },
        );
        buddy.inst = InstId(30);
        ledger.record(buddy);

        let chain = ledger.chain(&ledger.decisions()[1], "seqlock_alias");
        assert_eq!(chain.len(), 2, "{chain:?}");
        assert!(chain[0].contains("seqlock_alias.c:!30"), "{chain:?}");
        assert!(chain[0].contains("alias class C3"), "{chain:?}");
        assert!(chain[0].contains("points-to"), "{chain:?}");
        assert!(chain[1].contains("spin-control"), "{chain:?}");
        assert!(chain[1].contains("L2"), "{chain:?}");
    }

    #[test]
    fn metrics_jsonl_round_trips_through_the_validator() {
        let mut metrics = PipelineMetrics::default();
        metrics.record("spin-detect", Duration::from_nanos(1200), 2);
        metrics.record("transform", Duration::from_nanos(800), 5);
        let ledger = {
            let mut l = DecisionLedger::default();
            l.record(decision(4, TraceCause::Annotation { volatile: true }));
            l
        };
        let mut events = vec![meta_event("port", "mp", Some("type-based"))];
        events.extend(metrics.phases.iter().map(phase_event));
        events.push(cache_event(&CacheMetrics {
            hits: 3,
            misses: 1,
            evictions: 0,
        }));
        events.extend(ledger.decisions().iter().map(decision_event));
        events.push(summary_event(
            Duration::from_nanos(2000),
            vec![("decisions", ledger.len().into())],
        ));
        let text = to_jsonl(&events);
        let tally = validate_metrics_jsonl(&text).unwrap();
        assert_eq!(tally.events, 6);
        assert_eq!(tally.phases, 2);
        assert_eq!(tally.decisions, 1);
        assert_eq!(tally.caches, 1);
        assert_eq!((tally.cache_hits, tally.cache_misses), (3, 1));
        assert_eq!(tally.total_phase_nanos, 2000);
        assert_eq!(tally.phase_names, vec!["spin-detect", "transform"]);
    }

    #[test]
    fn validator_rejects_malformed_streams() {
        assert!(validate_metrics_jsonl("").is_err());
        assert!(validate_metrics_jsonl("not json\n").is_err());
        // Unknown event kind.
        let bad = "{\"event\":\"bogus\"}\n";
        assert!(validate_metrics_jsonl(bad).is_err());
        // Missing required field.
        let bad = "{\"event\":\"meta\",\"command\":\"port\"}\n";
        assert!(validate_metrics_jsonl(bad).is_err());
        // No summary terminator.
        let bad = "{\"event\":\"meta\",\"command\":\"port\",\"module\":\"m\"}\n";
        assert!(validate_metrics_jsonl(bad).is_err());
        // Must open with meta.
        let bad = "{\"event\":\"summary\",\"total_nanos\":1}\n";
        assert!(validate_metrics_jsonl(bad).is_err());
    }

    #[test]
    fn tree_renders_every_decision() {
        let mut ledger = DecisionLedger::default();
        ledger.record(decision(3, TraceCause::Annotation { volatile: false }));
        ledger.record(decision(
            9,
            TraceCause::OptimisticControl {
                loop_index: 0,
                header_span: 8,
            },
        ));
        let tree = ledger.render_tree("m");
        assert!(tree.contains("2 decision(s)"), "{tree}");
        assert!(tree.contains("m.c:!3"), "{tree}");
        assert!(tree.contains("seqlock loop L0"), "{tree}");
    }
}
