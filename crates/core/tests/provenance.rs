//! Decision-ledger provenance on the aliasing stress test.
//!
//! `examples/seqlock_alias.c` exercises every cause the ledger can record:
//! the seqlock loop in `read_snapshot` seeds spin-control and
//! optimistic-control decisions, sticky-buddy expansion drags the writer's
//! accesses along, and a lightly annotated tail covers the §3.2 entry
//! point. Each chain must be reconstructible under both alias backends,
//! and with an injected deterministic clock the whole report — including
//! the JSONL metrics stream — must be byte-comparable across runs.

use atomig_core::trace::{
    decision_event, meta_event, phase_event, solver_event, summary_event, to_jsonl,
};
use atomig_core::{AliasMode, AtomigConfig, Clock, Pipeline, PortReport};
use atomig_testutil::ManualClock;

const SEQLOCK: &str = include_str!("../../../examples/seqlock_alias.c");

/// The example plus an annotated tail: appended at the end so the
/// original line numbers (`!30` = writer epoch bump, `!41` = reader
/// epoch load) are unchanged.
fn annotated_source() -> String {
    format!(
        "{SEQLOCK}\nvolatile int vflag;\n_Atomic int aflag;\n\
         void poke(long u) {{ vflag = 1; aflag = 2; }}\n"
    )
}

fn port(alias: AliasMode, clock: Option<Clock>) -> PortReport {
    let mut m = atomig_frontc::compile(&annotated_source(), "seqlock_alias").unwrap();
    let mut cfg = AtomigConfig::full();
    cfg.alias_mode = alias;
    // Keep original function names in the ledger, as `atomig explain` does.
    cfg.inline = false;
    if let Some(c) = clock {
        cfg.clock = c;
    }
    Pipeline::new(cfg).port_module(&mut m)
}

#[test]
fn all_four_provenance_kinds_are_reconstructible() {
    for alias in [AliasMode::TypeBased, AliasMode::PointsTo] {
        let report = port(alias, None);
        let ledger = &report.ledger;
        for kind in [
            "annotation",
            "spin-control",
            "optimistic-control",
            "sticky-buddy",
        ] {
            assert!(
                ledger.decisions().iter().any(|d| d.cause.kind() == kind),
                "{}: no {kind} decision in\n{}",
                alias.name(),
                ledger.render_tree("seqlock_alias")
            );
        }
    }
}

#[test]
fn buddy_chains_end_at_their_spin_control_seed() {
    for alias in [AliasMode::TypeBased, AliasMode::PointsTo] {
        let report = port(alias, None);
        let buddies: Vec<_> = report
            .ledger
            .decisions()
            .iter()
            .filter(|d| d.cause.kind() == "sticky-buddy")
            .collect();
        assert!(!buddies.is_empty(), "{}: no buddy upgrades", alias.name());
        // The writer's epoch bump on line 30 is never a control itself;
        // it must be dragged in by the reader's seed.
        let epoch_bump = buddies
            .iter()
            .find(|d| d.span == 30)
            .unwrap_or_else(|| panic!("{}: line 30 not buddy-upgraded", alias.name()));
        let chain = report.ledger.chain(epoch_bump, "seqlock_alias");
        let joined = chain.join("\n");
        assert!(chain.len() >= 2, "chain too short:\n{joined}");
        assert!(joined.contains("seqlock_alias.c:!30"), "{joined}");
        assert!(joined.contains("alias class"), "{joined}");
        assert!(joined.contains(alias.name()), "{joined}");
        assert!(joined.contains("spin-control"), "{joined}");
        assert!(joined.contains("read_snapshot"), "{joined}");
    }
}

#[test]
fn annotation_decisions_name_their_qualifier() {
    let report = port(AliasMode::PointsTo, None);
    let texts: Vec<String> = report
        .ledger
        .decisions()
        .iter()
        .filter(|d| d.cause.kind() == "annotation")
        .map(|d| d.describe("seqlock_alias"))
        .collect();
    assert!(texts.iter().any(|t| t.contains("volatile")), "{texts:?}");
    assert!(
        texts.iter().any(|t| t.contains("annotated atomic")),
        "{texts:?}"
    );
    assert!(texts.iter().all(|t| t.contains("poke")), "{texts:?}");
}

#[test]
fn optimistic_control_decisions_point_at_the_seqlock_loop() {
    let report = port(AliasMode::TypeBased, None);
    let opt: Vec<String> = report
        .ledger
        .decisions()
        .iter()
        .filter(|d| d.cause.kind() == "optimistic-control")
        .map(|d| d.describe("seqlock_alias"))
        .collect();
    assert!(!opt.is_empty());
    assert!(opt.iter().all(|t| t.contains("seqlock loop")), "{opt:?}");
    assert!(opt.iter().any(|t| t.contains("read_snapshot")), "{opt:?}");
}

fn manual_clock() -> Clock {
    let mc = ManualClock::new(1_000);
    Clock::from_fn(move || mc.now())
}

fn jsonl_of(report: &PortReport) -> String {
    let mut events = vec![meta_event("port", "seqlock_alias", Some("points-to"))];
    if let Some(s) = &report.metrics.solver {
        events.push(solver_event(s));
    }
    for p in &report.metrics.phases {
        events.push(phase_event(p));
    }
    for d in report.ledger.decisions() {
        events.push(decision_event(d));
    }
    events.push(summary_event(
        report.metrics.total(),
        vec![("decisions", report.ledger.len().into())],
    ));
    to_jsonl(&events)
}

#[test]
fn injected_clock_makes_reports_byte_comparable() {
    let a = port(AliasMode::PointsTo, Some(manual_clock()));
    let b = port(AliasMode::PointsTo, Some(manual_clock()));
    assert_eq!(format!("{a}"), format!("{b}"));
    assert_eq!(format!("{}", a.metrics), format!("{}", b.metrics));
    assert_eq!(
        a.ledger.render_tree("seqlock_alias"),
        b.ledger.render_tree("seqlock_alias")
    );
    let (ja, jb) = (jsonl_of(&a), jsonl_of(&b));
    assert_eq!(ja, jb);
    // The manual clock still yields strictly nonzero phase timings.
    assert!(a.metrics.phases.iter().all(|p| !p.duration.is_zero()));
    atomig_core::validate_metrics_jsonl(&ja).unwrap();
}
