//! Pass throughput over synthetic modules of increasing size — the
//! scalability curve behind Table 3 (the paper's "within minutes" /
//! "2–3x build time" claim).

use atomig_core::{AtomigConfig, Pipeline};
use atomig_workloads::synth::{generate, GenConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn config_of_size(k: u32) -> GenConfig {
    GenConfig {
        mp_waiters: 2 * k,
        tas_locks: k,
        seqlocks: k / 2 + 1,
        atomics: k,
        volatiles: k / 2 + 1,
        asm_fences: k / 4 + 1,
        decoys: k,
        plain_funcs: 20 * k,
        seed: 7,
    }
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for k in [1u32, 4, 16] {
        let app = generate(config_of_size(k));
        let module = atomig_frontc::compile(&app.source, "synth").expect("compiles");
        group.throughput(criterion::Throughput::Elements(module.inst_count() as u64));
        group.bench_with_input(BenchmarkId::new("full_port", app.sloc), &module, |b, m| {
            b.iter(|| {
                let mut cfg = AtomigConfig::full();
                cfg.inline = false;
                let mut cloned = m.clone();
                Pipeline::new(cfg).port_module(&mut cloned)
            })
        });
    }
    group.finish();
}

fn bench_alias_map(c: &mut Criterion) {
    let app = generate(config_of_size(8));
    let module = atomig_frontc::compile(&app.source, "synth").expect("compiles");
    c.bench_function("alias_map_build", |b| {
        b.iter(|| atomig_core::AliasMap::build(&module, false))
    });
}

criterion_group!(benches, bench_pipeline, bench_alias_map);
criterion_main!(benches);
