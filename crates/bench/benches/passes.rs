//! Pass throughput over synthetic modules of increasing size — the
//! scalability curve behind Table 3 (the paper's "within minutes" /
//! "2–3x build time" claim). Self-timed: `cargo bench -p atomig-bench`.

use atomig_core::{AtomigConfig, Pipeline};
use atomig_workloads::synth::{generate, GenConfig};
use std::time::Instant;

fn config_of_size(k: u32) -> GenConfig {
    GenConfig {
        mp_waiters: 2 * k,
        tas_locks: k,
        seqlocks: k / 2 + 1,
        atomics: k,
        volatiles: k / 2 + 1,
        asm_fences: k / 4 + 1,
        decoys: k,
        plain_funcs: 20 * k,
        seed: 7,
    }
}

fn main() {
    for k in [1u32, 4, 16] {
        let app = generate(config_of_size(k));
        let module = atomig_frontc::compile(&app.source, "synth").expect("compiles");
        let iters = 10;
        let t0 = Instant::now();
        for _ in 0..iters {
            let mut cfg = AtomigConfig::full();
            cfg.inline = false;
            let mut cloned = module.clone();
            let _ = Pipeline::new(cfg).port_module(&mut cloned);
        }
        let per = t0.elapsed().as_secs_f64() / iters as f64;
        println!(
            "pipeline/full_port sloc={:<8} {:>10.3} ms/iter   {:>10.0} insts/s",
            app.sloc,
            per * 1e3,
            module.inst_count() as f64 / per
        );
    }

    let app = generate(config_of_size(8));
    let module = atomig_frontc::compile(&app.source, "synth").expect("compiles");
    let iters = 50;
    let t0 = Instant::now();
    for _ in 0..iters {
        let _ = atomig_core::AliasMap::build(&module, false);
    }
    let per = t0.elapsed().as_secs_f64() / iters as f64;
    println!("alias_map_build              {:>10.3} ms/iter", per * 1e3);
}
