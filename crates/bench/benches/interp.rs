//! Deterministic-interpreter throughput (the machinery behind Tables 4–6).
//! Self-timed: `cargo bench -p atomig-bench`.

use atomig_workloads::{apps, compile_baseline, phoenix};
use std::time::Instant;

fn main() {
    for name in ["memcached", "sqlite"] {
        let module = compile_baseline(&apps::app_perf(name, 40), name);
        let probe = atomig_wmm::run_default(&module);
        assert!(probe.ok());
        let iters = 10;
        let t0 = Instant::now();
        for _ in 0..iters {
            let _ = atomig_wmm::run_default(&module);
        }
        let per = t0.elapsed().as_secs_f64() / iters as f64;
        println!(
            "interp/app/{name:<16} {:>10.3} ms/iter   {:>10.0} steps/s",
            per * 1e3,
            probe.steps as f64 / per
        );
    }
    for name in ["histogram", "matrix_multiply"] {
        let module = compile_baseline(&phoenix::kernel(name, 2), name);
        let iters = 10;
        let t0 = Instant::now();
        for _ in 0..iters {
            let _ = atomig_wmm::run_default(&module);
        }
        let per = t0.elapsed().as_secs_f64() / iters as f64;
        println!("interp/phoenix/{name:<16} {:>10.3} ms/iter", per * 1e3);
    }
}
