//! Deterministic-interpreter throughput (the machinery behind Tables 4–6).

use atomig_workloads::{apps, compile_baseline, phoenix};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_apps(c: &mut Criterion) {
    let mut group = c.benchmark_group("interp");
    group.sample_size(10);
    for name in ["memcached", "sqlite"] {
        let module = compile_baseline(&apps::app_perf(name, 40), name);
        let probe = atomig_wmm::run_default(&module);
        assert!(probe.ok());
        group.throughput(Throughput::Elements(probe.steps));
        group.bench_function(format!("app/{name}"), |b| {
            b.iter(|| atomig_wmm::run_default(&module))
        });
    }
    group.finish();
}

fn bench_phoenix(c: &mut Criterion) {
    let mut group = c.benchmark_group("interp_phoenix");
    group.sample_size(10);
    for name in ["histogram", "matrix_multiply"] {
        let module = compile_baseline(&phoenix::kernel(name, 2), name);
        group.bench_function(name, |b| b.iter(|| atomig_wmm::run_default(&module)));
    }
    group.finish();
}

criterion_group!(benches, bench_apps, bench_phoenix);
criterion_main!(benches);
