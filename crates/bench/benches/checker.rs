//! Model-checker throughput on the litmus suite and the Table 2 clients
//! (the machinery behind §4.1). Self-timed: `cargo bench -p atomig-bench`.

use atomig_core::Stage;
use atomig_wmm::{litmus, Checker, ModelKind};
use atomig_workloads::{ck, compile_stage};
use std::time::Instant;

fn bench<F: FnMut()>(name: &str, iters: u32, mut f: F) {
    f(); // warm-up
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = t0.elapsed() / iters;
    println!("{name:<40} {per:>12.2?}/iter  ({iters} iters)");
}

fn main() {
    for lit in litmus::all() {
        let m = lit.module();
        bench(&format!("checker/arm/{}", lit.name), 20, || {
            let _ = Checker::new(ModelKind::Arm).check(&m, "main");
        });
    }
    let (ring, _) = compile_stage(&ck::ring_mc(), "ck_ring", Stage::Full);
    bench("table2/ck_ring/full", 10, || {
        let _ = Checker::new(ModelKind::Arm).check(&ring, "main");
    });
    let (seq, _) = compile_stage(&ck::sequence_mc(), "ck_sequence", Stage::Full);
    bench("table2/ck_sequence/full", 10, || {
        let _ = Checker::new(ModelKind::Arm).check(&seq, "main");
    });
}
