//! Model-checker throughput on the litmus suite and the Table 2 clients
//! (the machinery behind §4.1).

use atomig_core::Stage;
use atomig_wmm::{litmus, Checker, ModelKind};
use atomig_workloads::{ck, compile_stage};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_litmus(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker");
    group.sample_size(20);
    for lit in litmus::all() {
        let m = lit.module();
        group.bench_function(format!("arm/{}", lit.name), |b| {
            b.iter(|| Checker::new(ModelKind::Arm).check(&m, "main"))
        });
    }
    group.finish();
}

fn bench_table2_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    let (ring, _) = compile_stage(&ck::ring_mc(), "ck_ring", Stage::Full);
    group.bench_function("ck_ring/full", |b| {
        b.iter(|| Checker::new(ModelKind::Arm).check(&ring, "main"))
    });
    let (seq, _) = compile_stage(&ck::sequence_mc(), "ck_sequence", Stage::Full);
    group.bench_function("ck_sequence/full", |b| {
        b.iter(|| Checker::new(ModelKind::Arm).check(&seq, "main"))
    });
    group.finish();
}

criterion_group!(benches, bench_litmus, bench_table2_rows);
criterion_main!(benches);
