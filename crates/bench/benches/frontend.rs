//! MiniC frontend throughput (the "initial compilation" column of the
//! Table 3 build-time story). Self-timed: `cargo bench -p atomig-bench`.

use atomig_workloads::synth::{generate, GenConfig};
use std::time::Instant;

fn main() {
    let app = generate(GenConfig {
        mp_waiters: 8,
        tas_locks: 4,
        seqlocks: 2,
        atomics: 8,
        volatiles: 4,
        asm_fences: 2,
        decoys: 8,
        plain_funcs: 120,
        seed: 3,
    });
    let bytes = app.source.len() as f64;

    let iters = 20;
    let t0 = Instant::now();
    for _ in 0..iters {
        atomig_frontc::compile(&app.source, "synth").expect("compiles");
    }
    let per = t0.elapsed().as_secs_f64() / iters as f64;
    println!(
        "frontend/compile_synth   {:>10.3} ms/iter   {:>8.1} MB/s",
        per * 1e3,
        bytes / per / 1e6
    );

    let t0 = Instant::now();
    for _ in 0..iters {
        let toks = atomig_frontc::lex(&app.source).expect("lexes");
        atomig_frontc::parse(&toks).expect("parses");
    }
    let per = t0.elapsed().as_secs_f64() / iters as f64;
    println!(
        "frontend/lex_parse_only  {:>10.3} ms/iter   {:>8.1} MB/s",
        per * 1e3,
        bytes / per / 1e6
    );
}
