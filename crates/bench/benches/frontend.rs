//! MiniC frontend throughput (the "initial compilation" column of the
//! Table 3 build-time story).

use atomig_workloads::synth::{generate, GenConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_compile(c: &mut Criterion) {
    let app = generate(GenConfig {
        mp_waiters: 8,
        tas_locks: 4,
        seqlocks: 2,
        atomics: 8,
        volatiles: 4,
        asm_fences: 2,
        decoys: 8,
        plain_funcs: 120,
        seed: 3,
    });
    let mut group = c.benchmark_group("frontend");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(app.source.len() as u64));
    group.bench_function("compile_synth", |b| {
        b.iter(|| atomig_frontc::compile(&app.source, "synth").expect("compiles"))
    });
    group.bench_function("lex_parse_only", |b| {
        b.iter(|| {
            let toks = atomig_frontc::lex(&app.source).expect("lexes");
            atomig_frontc::parse(&toks).expect("parses")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
