//! # atomig-bench
//!
//! Harnesses that regenerate every table of the AtoMig paper:
//!
//! | Binary  | Reproduces |
//! |---------|------------|
//! | `table1` | The qualitative comparison of porting approaches |
//! | `table2` | GenMC-style verdicts per detection stage |
//! | `table3` | Pattern census, build times and barrier counts on the five (synthetic) large applications |
//! | `table4` | Dynamically executed barrier counts on the Memcached kernel |
//! | `table5` | Naïve vs AtoMig slowdowns on all twelve benchmarks |
//! | `table6` | Phoenix: Naïve vs Lasagne vs AtoMig |
//!
//! Run e.g. `cargo run -p atomig-bench --release --bin table2`. The
//! Criterion benches (`cargo bench`) measure the *machinery*: pass
//! throughput over growing modules, model-checker throughput, interpreter
//! throughput, and frontend throughput.

use atomig_core::json::Value;
use atomig_core::{BarrierCensus, PipelineMetrics};
use std::fmt::Write as _;
use std::time::Instant;

/// Renders an ASCII table: a header row plus data rows.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let line: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let _ = writeln!(out, "+{line}+");
    let hdr: Vec<String> = header
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!(" {h:<w$} "))
        .collect();
    let _ = writeln!(out, "|{}|", hdr.join("|"));
    let _ = writeln!(out, "+{line}+");
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!(" {c:<w$} "))
            .collect();
        let _ = writeln!(out, "|{}|", cells.join("|"));
    }
    let _ = writeln!(out, "+{line}+");
    out
}

/// Formats a slowdown factor like the paper (two decimals).
pub fn factor(x: f64) -> String {
    format!("{x:.2}")
}

/// Collects one table-bin run into a `BENCH_<name>.json` machine-readable
/// companion: total wall time, barrier censuses, per-phase timings, and
/// whatever bin-specific counters the harness adds.
///
/// The file lands in the current directory, or in `$ATOMIG_BENCH_DIR`
/// when set (CI puts them all in one artifact folder).
pub struct BenchRecorder {
    name: String,
    t0: Instant,
    fields: Vec<(String, Value)>,
}

impl BenchRecorder {
    /// Starts recording; the wall-time clock runs from here.
    pub fn new(name: &str) -> BenchRecorder {
        BenchRecorder {
            name: name.to_string(),
            t0: Instant::now(),
            fields: Vec::new(),
        }
    }

    /// Adds one top-level field.
    pub fn put(&mut self, key: &str, value: Value) {
        self.fields.push((key.to_string(), value));
    }

    /// Adds the per-phase timings of a pipeline run under `key`.
    pub fn phases(&mut self, key: &str, metrics: &PipelineMetrics) {
        let arr: Vec<Value> = metrics
            .phases
            .iter()
            .map(|p| {
                Value::obj(vec![
                    ("name", p.name.as_str().into()),
                    ("nanos", p.duration.as_nanos().into()),
                    ("items", p.items.into()),
                ])
            })
            .collect();
        self.put(key, Value::Arr(arr));
        if let Some(s) = &metrics.solver {
            self.put(
                &format!("{key}_solver"),
                Value::obj(vec![
                    ("nodes", s.nodes.into()),
                    ("cells", s.cells.into()),
                    ("constraints", s.constraints.into()),
                    ("iterations", s.iterations.into()),
                    ("passes", s.passes.into()),
                    ("nanos", s.solve_time.as_nanos().into()),
                ]),
            );
        }
    }

    /// Adds a barrier census under `key`.
    pub fn census(&mut self, key: &str, c: &BarrierCensus) {
        self.put(
            key,
            Value::obj(vec![
                ("explicit", c.explicit.into()),
                ("implicit", c.implicit.into()),
                ("plain", c.plain.into()),
            ]),
        );
    }

    /// Finalizes the record (stamps `bench` and `wall_nanos`).
    pub fn finish(self) -> Value {
        let mut pairs = vec![
            ("bench".to_string(), Value::from(self.name.as_str())),
            (
                "wall_nanos".to_string(),
                Value::from(self.t0.elapsed().as_nanos()),
            ),
        ];
        pairs.extend(self.fields);
        Value::Obj(pairs.into_iter().collect())
    }

    /// Writes `BENCH_<name>.json` and returns its path.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write(self) -> std::io::Result<String> {
        let dir = std::env::var("ATOMIG_BENCH_DIR").unwrap_or_else(|_| ".".into());
        std::fs::create_dir_all(&dir)?;
        let path = format!("{dir}/BENCH_{}.json", self.name);
        let record = self.finish();
        std::fs::write(&path, format!("{record}\n"))?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rectangular_tables() {
        let t = render_table(
            "T",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(t.contains("| 333 | 4  |"));
        assert!(t.starts_with("T\n"));
    }

    #[test]
    fn factor_formats_two_decimals() {
        assert_eq!(factor(1.005), "1.00");
        assert_eq!(factor(2.491), "2.49");
    }

    #[test]
    fn recorder_produces_parseable_records() {
        let mut rec = BenchRecorder::new("unit");
        rec.put("rows", Value::from(3usize));
        rec.census(
            "census",
            &BarrierCensus {
                explicit: 1,
                implicit: 2,
                plain: 3,
            },
        );
        let mut metrics = PipelineMetrics::default();
        metrics.record("phase-a", std::time::Duration::from_nanos(5), 7);
        rec.phases("phases", &metrics);
        let record = rec.finish();
        let text = record.to_string();
        let back = atomig_core::json::parse(&text).unwrap();
        assert_eq!(back.get("bench").and_then(Value::as_str), Some("unit"));
        assert_eq!(back.get("rows").and_then(Value::as_num), Some(3.0));
        assert_eq!(
            back.get("census")
                .and_then(|c| c.get("implicit"))
                .and_then(Value::as_num),
            Some(2.0)
        );
        let phases = back.get("phases").and_then(Value::as_arr).unwrap();
        assert_eq!(phases.len(), 1);
        assert_eq!(
            phases[0].get("name").and_then(Value::as_str),
            Some("phase-a")
        );
    }
}
