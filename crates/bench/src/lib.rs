//! # atomig-bench
//!
//! Harnesses that regenerate every table of the AtoMig paper:
//!
//! | Binary  | Reproduces |
//! |---------|------------|
//! | `table1` | The qualitative comparison of porting approaches |
//! | `table2` | GenMC-style verdicts per detection stage |
//! | `table3` | Pattern census, build times and barrier counts on the five (synthetic) large applications |
//! | `table4` | Dynamically executed barrier counts on the Memcached kernel |
//! | `table5` | Naïve vs AtoMig slowdowns on all twelve benchmarks |
//! | `table6` | Phoenix: Naïve vs Lasagne vs AtoMig |
//!
//! Run e.g. `cargo run -p atomig-bench --release --bin table2`. The
//! Criterion benches (`cargo bench`) measure the *machinery*: pass
//! throughput over growing modules, model-checker throughput, interpreter
//! throughput, and frontend throughput.

use std::fmt::Write as _;

/// Renders an ASCII table: a header row plus data rows.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let line: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let _ = writeln!(out, "+{line}+");
    let hdr: Vec<String> = header
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!(" {h:<w$} "))
        .collect();
    let _ = writeln!(out, "|{}|", hdr.join("|"));
    let _ = writeln!(out, "+{line}+");
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!(" {c:<w$} "))
            .collect();
        let _ = writeln!(out, "|{}|", cells.join("|"));
    }
    let _ = writeln!(out, "+{line}+");
    out
}

/// Formats a slowdown factor like the paper (two decimals).
pub fn factor(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rectangular_tables() {
        let t = render_table(
            "T",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(t.contains("| 333 | 4  |"));
        assert!(t.starts_with("T\n"));
    }

    #[test]
    fn factor_formats_two_decimals() {
        assert_eq!(factor(1.005), "1.00");
        assert_eq!(factor(2.491), "2.49");
    }
}
