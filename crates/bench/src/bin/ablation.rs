//! Ablation study over AtoMig's design choices (§3.5, §6).
//!
//! Knocks individual design decisions in and out and reports their effect
//! on detection counts, barrier counts, and simulated performance:
//!
//! 1. **Alias exploration off** — "once atomic, always atomic" disabled:
//!    spin controls are marked but their sticky buddies (e.g. the TAS
//!    unlock store) are not, breaking correctness.
//! 2. **Inlining off** — loops spanning functions stay invisible to the
//!    intra-procedural analysis.
//! 3. **Pointee buddies on** — the coarse type-only alias buckets the
//!    paper rejects: more marks, more overhead.
//! 4. **Compiler-barrier hints on** — the §6 future-work extension.
//! 5. **Flat barrier costs** — a machine where implicit barriers cost as
//!    much as explicit fences: AtoMig's implicit-barrier advantage
//!    disappears, motivating the paper's reliance on Liu et al.'s ratios.
//! 6. **Type-based vs points-to aliasing** — the §3.4 trade-off the paper
//!    decides on scalability grounds: the Andersen-style backend promotes
//!    strictly fewer accesses on aliased handles at identical checker
//!    verdicts, but costs a module-wide fixpoint (timed on Table-3-scale
//!    synthetic codebases).
//!
//! Usage: `ablation [--profile small|large] [--assert-equivalent]`.
//! `--profile` selects the synthetic codebases for the wall-time section
//! (small = Memcached-scale, large = MariaDB + PostgreSQL). With
//! `--assert-equivalent` the binary exits non-zero unless both alias
//! backends reach identical verdicts on every comparison program and
//! points-to promotes strictly fewer accesses on the aliased-handles
//! example (the CI gate).

use atomig_analysis::PointsTo;
use atomig_bench::{factor, render_table, BenchRecorder};
use atomig_core::json::Value;
use atomig_core::{AliasMode, AtomigConfig, Pipeline};
use atomig_wmm::{Checker, CostModel, ModelKind};
use atomig_workloads::{ck, compile_baseline, lf_hash, profiles, synth};
use std::time::Instant;

fn port_with(
    src: &str,
    name: &str,
    cfg: AtomigConfig,
) -> (atomig_mir::Module, atomig_core::PortReport) {
    let mut m = atomig_frontc::compile(src, name).expect("compiles");
    let report = Pipeline::new(cfg).port_module(&mut m);
    (m, report)
}

fn usage_error(msg: &str) -> ! {
    eprintln!("{msg}\nusage: ablation [--profile small|large] [--assert-equivalent]");
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile = String::from("small");
    let mut assert_equivalent = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--assert-equivalent" => assert_equivalent = true,
            "--profile" => {
                i += 1;
                match args.get(i) {
                    Some(v) => profile = v.clone(),
                    None => usage_error("--profile needs a value"),
                }
            }
            other => usage_error(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    let wall_profiles: Vec<profiles::AppProfile> = match profile.as_str() {
        "small" => vec![profiles::MEMCACHED],
        "large" => vec![profiles::MARIADB, profiles::POSTGRESQL],
        other => usage_error(&format!(
            "unknown profile `{other}` (accepted: small, large)"
        )),
    };

    // ---- 1 & 2: correctness effect of alias exploration and inlining,
    // on message passing where the spin reads through a getter (a
    // cross-function loop with no explicit annotations anywhere).
    let tas_src = r#"
        int flag;
        int msg;
        int get_flag() { return flag; }
        void writer(long u) {
            msg = 42;
            flag = 1;
        }
        int main() {
            long t = spawn(writer, 0);
            while (get_flag() == 0) { pause(); }
            assert(msg == 42);
            join(t);
            return 0;
        }
    "#;
    let mut rows = Vec::new();
    for (label, cfg) in [
        ("full AtoMig", AtomigConfig::full()),
        (
            "no alias exploration",
            AtomigConfig {
                alias_exploration: false,
                ..AtomigConfig::full()
            },
        ),
        (
            "no inlining",
            AtomigConfig {
                inline: false,
                ..AtomigConfig::full()
            },
        ),
    ] {
        let (m, report) = port_with(tas_src, "mp", cfg);
        let verdict = Checker::new(ModelKind::Arm).check(&m, "main");
        rows.push(vec![
            label.to_string(),
            report.spinloops.to_string(),
            report.implicit_barriers_added.to_string(),
            if verdict.passed() { "Y" } else { "x" }.to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Ablation A: correctness of a cross-function MP port",
            &[
                "Configuration",
                "Spinloops",
                "Impl. added",
                "Correct on ARM"
            ],
            &rows,
        )
    );
    println!();

    // ---- 3 & 4: marking aggressiveness — the coarse pointee-typed
    // buckets (the §3.4 alternative the paper rejects) and the §6
    // compiler-barrier hints, on code where each knob bites: a spinloop
    // through a raw int pointer, unrelated int derefs, and a fenced
    // straight-line publication with no loop at all.
    let knob_src = r#"
        int flag_storage;
        int stats_a;
        int stats_b;
        long published; long ready_word;
        void wait_through_pointer(int *w) {
            while (*w == 0) { pause(); }
        }
        int read_stat(int *p) { return *p; }
        void straightline_publish(long v) {
            published = v;
            asm("" ::: "memory");
            ready_word = 1;
        }
        void driver(long n) {
            wait_through_pointer(&flag_storage);
            int x = read_stat(&stats_a) + read_stat(&stats_b);
            straightline_publish(x);
        }
    "#;
    let mut rows = Vec::new();
    for (label, cfg) in [
        (
            "full AtoMig",
            AtomigConfig {
                inline: false,
                ..AtomigConfig::full()
            },
        ),
        (
            "pointee buddies on",
            AtomigConfig {
                inline: false,
                pointee_buddies: true,
                ..AtomigConfig::full()
            },
        ),
        (
            "compiler-barrier hints on",
            AtomigConfig {
                inline: false,
                compiler_barrier_hints: true,
                ..AtomigConfig::full()
            },
        ),
    ] {
        let (_, report) = port_with(knob_src, "knobs", cfg);
        rows.push(vec![
            label.to_string(),
            report.spinloops.to_string(),
            report.barrier_hints.to_string(),
            report.implicit_barriers_added.to_string(),
            report.buddy_marks.to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Ablation B: marking aggressiveness (pointer spin + fenced straight-line code)",
            &[
                "Configuration",
                "Spinloops",
                "Hints",
                "Impl. added",
                "Buddy marks"
            ],
            &rows,
        )
    );
    println!(
        "(pointee buckets sweep in the unrelated int derefs; barrier hints catch the          straight-line publication the loop heuristics cannot see)"
    );
    println!();

    // ---- 5: what if implicit barriers were as expensive as explicit
    // ones? (The counterfactual behind the paper's reliance on [48].)
    let ring_tso = ck::ring_perf(200);
    let ring_expert = ck::ring_expert_perf(200);
    let expert = compile_baseline(&ring_expert, "ck_ring_expert");
    let (mut ported, _) = port_with(&ring_tso, "ck_ring", AtomigConfig::full());
    atomig_analysis::inline_module(&mut ported, &Default::default());
    let re = atomig_wmm::run_default(&expert);
    let rp = atomig_wmm::run_default(&ported);
    assert!(re.ok() && rp.ok());
    let mut rows = Vec::new();
    for (label, cm) in [
        ("Armv8 ratios (implicit cheap)", CostModel::ARMV8),
        (
            "flat barriers (implicit = explicit)",
            CostModel::FLAT_BARRIERS,
        ),
    ] {
        rows.push(vec![
            label.to_string(),
            factor(cm.cost(&rp.stats) as f64 / cm.cost(&re.stats) as f64),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Ablation C: ck_ring AtoMig-vs-expert under different barrier cost models",
            &["Cost model", "AtoMig / expert"],
            &rows,
        )
    );
    println!(
        "(with flat barrier costs the implicit-barrier advantage the paper builds on disappears)"
    );
    println!();

    // ---- 6: type-based vs points-to buddy expansion, on programs that
    // exercise the trade-off: Figure-3-shaped spin programs (where both
    // backends must agree), the Figure-7 lf-hash (pointer-heavy, inlined),
    // and the aliased-handles seqlock where type-based keys over-promote
    // a thread-private staging object.
    let seqlock_alias = include_str!("../../../../examples/seqlock_alias.c");
    let lf_hash_src = lf_hash::lf_hash_mc();
    let gallery_mp = r#"
        int flag; int msg;
        void w(long u) { msg = 1; flag = 1; }
        int main() {
          long t = spawn(w, 0);
          while (flag != 1) { }
          assert(msg == 1);
          join(t); return 0;
        }
    "#;
    let gallery_do = r#"
        int flag; int msg;
        void w(long u) { msg = 7; flag = 1; }
        int main() {
          long t = spawn(w, 0);
          int l;
          do { l = flag; } while (l != 1);
          assert(msg == 7);
          join(t); return 0;
        }
    "#;
    let gallery_tas = r#"
        int locked; int hits;
        void worker(long u) {
          while (cmpxchg(&locked, 0, 1) != 0) { }
          hits = hits + 1;
          locked = 0;
        }
        int main() {
          long t = spawn(worker, 0);
          while (cmpxchg(&locked, 0, 1) != 0) { }
          hits = hits + 1;
          locked = 0;
          join(t);
          return 0;
        }
    "#;
    // (name, source, inline) — lf-hash needs inlining for its
    // cross-function loops; the handle demos must keep calls outlined so
    // the aliasing question stays open at analysis time.
    let programs: [(&str, &str, bool); 5] = [
        ("mp_while", gallery_mp, false),
        ("mp_do", gallery_do, false),
        ("tas_lock", gallery_tas, false),
        ("lf_hash", &lf_hash_src, true),
        ("seqlock_alias", seqlock_alias, false),
    ];
    // The ten (program, alias-mode) port+check units are independent:
    // fan them out over ATOMIG_JOBS workers, merge in unit order.
    let jobs = match atomig_par::jobs_from_env("ATOMIG_JOBS") {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let pool = atomig_par::WorkerPool::new(jobs);
    let units: Vec<(&str, &str, bool, AliasMode)> = programs
        .iter()
        .flat_map(|&(name, src, inline)| {
            [AliasMode::TypeBased, AliasMode::PointsTo]
                .into_iter()
                .map(move |mode| (name, src, inline, mode))
        })
        .collect();
    let checked = pool.map(&units, |_, &(name, src, inline, mode)| {
        let cfg = AtomigConfig {
            inline,
            alias_mode: mode,
            ..AtomigConfig::full()
        };
        let (m, report) = port_with(src, name, cfg);
        let verdict = Checker::new(ModelKind::Arm).check(&m, "main");
        (report, verdict)
    });

    let mut rows = Vec::new();
    let mut equivalent = true;
    let mut seqlock_impl = [0usize; 2];
    for (chunk_units, chunk) in units.chunks(2).zip(checked.chunks(2)) {
        let name = chunk_units[0].0;
        let mut verdicts = Vec::new();
        for (mi, ((.., mode), (report, verdict))) in chunk_units.iter().zip(chunk).enumerate() {
            if name == "seqlock_alias" {
                seqlock_impl[mi] = report.implicit_barriers_added;
            }
            rows.push(vec![
                name.to_string(),
                mode.name().to_string(),
                report.spinloops.to_string(),
                report.optiloops.to_string(),
                report.implicit_barriers_added.to_string(),
                report.explicit_barriers_added.to_string(),
                if verdict.passed() { "Y" } else { "x" }.to_string(),
            ]);
            verdicts.push(verdict.passed());
        }
        if verdicts[0] != verdicts[1] {
            equivalent = false;
            eprintln!("ablation: verdict mismatch between alias modes on `{name}`");
        }
    }
    print!(
        "{}",
        render_table(
            "Ablation D: type-based vs points-to buddy expansion",
            &[
                "Program",
                "Alias mode",
                "Spin",
                "Opti",
                "Impl. added",
                "Expl. added",
                "Correct on ARM"
            ],
            &rows,
        )
    );
    println!(
        "(same verdict everywhere; on seqlock_alias the points-to backend skips the \
         thread-private staging copy: {} vs {} implicit barriers)",
        seqlock_impl[1], seqlock_impl[0]
    );
    println!();

    // ---- Wall time: what the points-to fixpoint costs at Table-3 scale.
    // Profiles run concurrently; records merge in profile order.
    let mut rec = BenchRecorder::new("ablation");
    rec.put("profile", Value::from(profile.as_str()));
    rec.put("jobs", Value::from(jobs));
    rec.put(
        "seqlock_implicit",
        Value::obj(vec![
            ("type_based", seqlock_impl[0].into()),
            ("points_to", seqlock_impl[1].into()),
        ]),
    );
    rec.put("verdicts_equivalent", Value::from(equivalent));
    let walls = pool.map(&wall_profiles, |_, p| {
        let app = synth::generate_for(p, 100);
        let m0 = atomig_frontc::compile(&app.source, p.name).expect("synthetic app compiles");
        let t = Instant::now();
        let pt = PointsTo::analyze(&m0);
        let pt_time = t.elapsed();
        let mut ports = Vec::new();
        for mode in [AliasMode::TypeBased, AliasMode::PointsTo] {
            let cfg = AtomigConfig {
                alias_mode: mode,
                ..AtomigConfig::full()
            };
            let mut m = m0.clone();
            let t = Instant::now();
            let report = Pipeline::new(cfg).port_module(&mut m);
            ports.push((mode, t.elapsed(), report));
        }
        (app, pt, pt_time, ports)
    });
    let mut rows = Vec::new();
    for (p, (app, pt, pt_time, ports)) in wall_profiles.iter().zip(walls) {
        for (mode, port_time, report) in ports {
            rec.put(
                &format!("{}_{}_port_nanos", p.name, mode.name()),
                Value::from(port_time.as_nanos()),
            );
            rec.phases(
                &format!("{}_{}_phases", p.name, mode.name()),
                &report.metrics,
            );
            rows.push(vec![
                p.name.to_string(),
                app.sloc.to_string(),
                mode.name().to_string(),
                report.implicit_barriers_added.to_string(),
                report.explicit_barriers_added.to_string(),
                format!("{port_time:.1?}"),
            ]);
        }
        println!(
            "{}: points-to solved {} cells / {} constraints in {} iterations / {} passes ({:.1?})",
            p.name,
            pt.stats.cells,
            pt.stats.constraints,
            pt.stats.iterations,
            pt.stats.passes,
            pt_time
        );
    }
    print!(
        "{}",
        render_table(
            &format!("Ablation E: alias-backend wall time ({profile} profile)"),
            &[
                "Profile",
                "SLOC",
                "Alias mode",
                "Impl.",
                "Expl.",
                "Port time"
            ],
            &rows,
        )
    );

    let path = rec.write().expect("write bench record");
    println!("wrote {path}");

    if assert_equivalent {
        assert!(
            equivalent,
            "alias backends must reach identical checker verdicts"
        );
        assert!(
            seqlock_impl[1] < seqlock_impl[0],
            "points-to must promote strictly fewer accesses than type-based \
             on seqlock_alias ({} vs {})",
            seqlock_impl[1],
            seqlock_impl[0]
        );
        println!("\nequivalence gate: OK (identical verdicts, points-to strictly tighter)");
    }
}
