//! Ablation study over AtoMig's design choices (§3.5, §6).
//!
//! Knocks individual design decisions in and out and reports their effect
//! on detection counts, barrier counts, and simulated performance:
//!
//! 1. **Alias exploration off** — "once atomic, always atomic" disabled:
//!    spin controls are marked but their sticky buddies (e.g. the TAS
//!    unlock store) are not, breaking correctness.
//! 2. **Inlining off** — loops spanning functions stay invisible to the
//!    intra-procedural analysis.
//! 3. **Pointee buddies on** — the coarse type-only alias buckets the
//!    paper rejects: more marks, more overhead.
//! 4. **Compiler-barrier hints on** — the §6 future-work extension.
//! 5. **Flat barrier costs** — a machine where implicit barriers cost as
//!    much as explicit fences: AtoMig's implicit-barrier advantage
//!    disappears, motivating the paper's reliance on Liu et al.'s ratios.

use atomig_bench::{factor, render_table};
use atomig_core::{AtomigConfig, Pipeline};
use atomig_wmm::{Checker, CostModel, ModelKind};
use atomig_workloads::{ck, compile_baseline};

fn port_with(
    src: &str,
    name: &str,
    cfg: AtomigConfig,
) -> (atomig_mir::Module, atomig_core::PortReport) {
    let mut m = atomig_frontc::compile(src, name).expect("compiles");
    let report = Pipeline::new(cfg).port_module(&mut m);
    (m, report)
}

fn main() {
    // ---- 1 & 2: correctness effect of alias exploration and inlining,
    // on message passing where the spin reads through a getter (a
    // cross-function loop with no explicit annotations anywhere).
    let tas_src = r#"
        int flag;
        int msg;
        int get_flag() { return flag; }
        void writer(long u) {
            msg = 42;
            flag = 1;
        }
        int main() {
            long t = spawn(writer, 0);
            while (get_flag() == 0) { pause(); }
            assert(msg == 42);
            join(t);
            return 0;
        }
    "#;
    let mut rows = Vec::new();
    for (label, cfg) in [
        ("full AtoMig", AtomigConfig::full()),
        (
            "no alias exploration",
            AtomigConfig {
                alias_exploration: false,
                ..AtomigConfig::full()
            },
        ),
        (
            "no inlining",
            AtomigConfig {
                inline: false,
                ..AtomigConfig::full()
            },
        ),
    ] {
        let (m, report) = port_with(tas_src, "mp", cfg);
        let verdict = Checker::new(ModelKind::Arm).check(&m, "main");
        rows.push(vec![
            label.to_string(),
            report.spinloops.to_string(),
            report.implicit_barriers_added.to_string(),
            if verdict.passed() { "Y" } else { "x" }.to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Ablation A: correctness of a cross-function MP port",
            &[
                "Configuration",
                "Spinloops",
                "Impl. added",
                "Correct on ARM"
            ],
            &rows,
        )
    );
    println!();

    // ---- 3 & 4: marking aggressiveness — the coarse pointee-typed
    // buckets (the §3.4 alternative the paper rejects) and the §6
    // compiler-barrier hints, on code where each knob bites: a spinloop
    // through a raw int pointer, unrelated int derefs, and a fenced
    // straight-line publication with no loop at all.
    let knob_src = r#"
        int flag_storage;
        int stats_a;
        int stats_b;
        long published; long ready_word;
        void wait_through_pointer(int *w) {
            while (*w == 0) { pause(); }
        }
        int read_stat(int *p) { return *p; }
        void straightline_publish(long v) {
            published = v;
            asm("" ::: "memory");
            ready_word = 1;
        }
        void driver(long n) {
            wait_through_pointer(&flag_storage);
            int x = read_stat(&stats_a) + read_stat(&stats_b);
            straightline_publish(x);
        }
    "#;
    let mut rows = Vec::new();
    for (label, cfg) in [
        (
            "full AtoMig",
            AtomigConfig {
                inline: false,
                ..AtomigConfig::full()
            },
        ),
        (
            "pointee buddies on",
            AtomigConfig {
                inline: false,
                pointee_buddies: true,
                ..AtomigConfig::full()
            },
        ),
        (
            "compiler-barrier hints on",
            AtomigConfig {
                inline: false,
                compiler_barrier_hints: true,
                ..AtomigConfig::full()
            },
        ),
    ] {
        let (_, report) = port_with(knob_src, "knobs", cfg);
        rows.push(vec![
            label.to_string(),
            report.spinloops.to_string(),
            report.barrier_hints.to_string(),
            report.implicit_barriers_added.to_string(),
            report.buddy_marks.to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Ablation B: marking aggressiveness (pointer spin + fenced straight-line code)",
            &[
                "Configuration",
                "Spinloops",
                "Hints",
                "Impl. added",
                "Buddy marks"
            ],
            &rows,
        )
    );
    println!(
        "(pointee buckets sweep in the unrelated int derefs; barrier hints catch the          straight-line publication the loop heuristics cannot see)"
    );
    println!();

    // ---- 5: what if implicit barriers were as expensive as explicit
    // ones? (The counterfactual behind the paper's reliance on [48].)
    let ring_tso = ck::ring_perf(200);
    let ring_expert = ck::ring_expert_perf(200);
    let expert = compile_baseline(&ring_expert, "ck_ring_expert");
    let (mut ported, _) = port_with(&ring_tso, "ck_ring", AtomigConfig::full());
    atomig_analysis::inline_module(&mut ported, &Default::default());
    let re = atomig_wmm::run_default(&expert);
    let rp = atomig_wmm::run_default(&ported);
    assert!(re.ok() && rp.ok());
    let mut rows = Vec::new();
    for (label, cm) in [
        ("Armv8 ratios (implicit cheap)", CostModel::ARMV8),
        (
            "flat barriers (implicit = explicit)",
            CostModel::FLAT_BARRIERS,
        ),
    ] {
        rows.push(vec![
            label.to_string(),
            factor(cm.cost(&rp.stats) as f64 / cm.cost(&re.stats) as f64),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Ablation C: ck_ring AtoMig-vs-expert under different barrier cost models",
            &["Cost model", "AtoMig / expert"],
            &rows,
        )
    );
    println!(
        "(with flat barrier costs the implicit-barrier advantage the paper builds on disappears)"
    );
}
