//! Regenerates Table 3: AtoMig statistics for large applications.
//!
//! Each application is a synthetic MiniC codebase generated at 1:100 of
//! the real pattern census (see `atomig_workloads::synth`). "Build" is
//! compiling MiniC to MIR; "AtoMig" is build + the full porting pipeline,
//! mirroring the paper's build-system integration (§3.1). Detected
//! pattern counts are reported at generation scale; multiply by 100 to
//! compare against the paper column (also shown).

use atomig_bench::{render_table, BenchRecorder};
use atomig_core::json::Value;
use atomig_core::{naive_port, AtomigConfig, Pipeline};
use atomig_workloads::{profiles, synth};
use std::time::Instant;

const SCALE: u32 = 100;

fn main() {
    let mut rec = BenchRecorder::new("table3");
    // Each application profile builds and ports independently: fan them
    // out over ATOMIG_JOBS workers, then record and render in profile
    // order so the table and the JSON record stay deterministic.
    let jobs = match atomig_par::jobs_from_env("ATOMIG_JOBS") {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let pool = atomig_par::WorkerPool::new(jobs);
    rec.put("jobs", Value::from(jobs));
    let all = profiles::all();
    let built = pool.map(&all, |_, profile| {
        let app = synth::generate_for(profile, SCALE);

        // Original build: frontend only.
        let t0 = Instant::now();
        let module =
            atomig_frontc::compile(&app.source, profile.name).expect("generated source compiles");
        let build_time = t0.elapsed();

        // AtoMig build: frontend + the porting pipeline (inlining off so
        // the census is exact; the paper reports statically distinct
        // patterns).
        let t1 = Instant::now();
        let mut ported =
            atomig_frontc::compile(&app.source, profile.name).expect("generated source compiles");
        let mut cfg = AtomigConfig::full();
        cfg.inline = false;
        let report = Pipeline::new(cfg).port_module(&mut ported);
        let atomig_time = t1.elapsed();

        // Naïve port (for the last column).
        let mut naive = module.clone();
        naive_port(&mut naive);
        let naive_census = atomig_core::BarrierCensus::of(&naive);
        (app, build_time, atomig_time, report, naive_census)
    });

    let mut rows = Vec::new();
    for (profile, (app, build_time, atomig_time, report, naive_census)) in all.iter().zip(built) {
        rec.put(
            &format!("{}_build_nanos", profile.name),
            Value::from(build_time.as_nanos()),
        );
        rec.put(
            &format!("{}_atomig_nanos", profile.name),
            Value::from(atomig_time.as_nanos()),
        );
        rec.phases(&format!("{}_phases", profile.name), &report.metrics);
        rec.census(&format!("{}_census_before", profile.name), &report.before);
        rec.census(&format!("{}_census_after", profile.name), &report.after);

        rows.push(vec![
            profile.name.to_string(),
            format!("{} (paper {})", app.sloc, profile.sloc),
            format!("{} (paper {})", report.spinloops, profile.spinloops),
            format!("{} (paper {})", report.optiloops, profile.optiloops),
            format!("{:.2?}", build_time),
            format!(
                "{:.2?} ({:.1}x)",
                atomig_time,
                atomig_time.as_secs_f64() / build_time.as_secs_f64().max(1e-9)
            ),
            format!("{}/{}", report.before.explicit, report.before.implicit),
            format!("{}/{}", report.after.explicit, report.after.implicit),
            naive_census.implicit.to_string(),
        ]);
    }

    print!(
        "{}",
        render_table(
            &format!(
                "Table 3: AtoMig statistics for large applications (synthetic, 1:{SCALE} scale)"
            ),
            &[
                "Application",
                "SLOC",
                "#Spinloops",
                "#Optiloops",
                "Build",
                "AtoMig build",
                "Orig BE/BI",
                "AtoMig BE/BI",
                "Naive BI",
            ],
            &rows,
        )
    );
    println!(
        "(BE = explicit barriers, BI = implicit barriers; counts at 1:{SCALE} scale — multiply by {SCALE} to compare with the paper)"
    );
    let path = rec.write().expect("write bench record");
    println!("wrote {path}");
}
