//! Regenerates Table 1: comparison of porting approaches.

use atomig_bench::render_table;
use atomig_core::approach_matrix;

fn main() {
    let rows: Vec<Vec<String>> = approach_matrix()
        .into_iter()
        .map(|(name, cells)| {
            let mut row = vec![name.to_string()];
            row.extend(cells.iter().map(|c| c.to_string()));
            row
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Table 1: Comparison of Porting Approaches (Y = yes, x = no, = partly)",
            &["Approach", "Safe", "Efficient", "Scalable", "Practical"],
            &rows,
        )
    );
}
