//! Regenerates Table 1: comparison of porting approaches.

use atomig_bench::{render_table, BenchRecorder};
use atomig_core::approach_matrix;
use atomig_core::json::Value;

fn main() {
    let mut rec = BenchRecorder::new("table1");
    let rows: Vec<Vec<String>> = approach_matrix()
        .into_iter()
        .map(|(name, cells)| {
            let mut row = vec![name.to_string()];
            row.extend(cells.iter().map(|c| c.to_string()));
            row
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Table 1: Comparison of Porting Approaches (Y = yes, x = no, = partly)",
            &["Approach", "Safe", "Efficient", "Scalable", "Practical"],
            &rows,
        )
    );
    rec.put("approaches", Value::from(rows.len()));
    let path = rec.write().expect("write bench record");
    println!("wrote {path}");
}
