//! Regenerates Table 6: Phoenix benchmark, Naïve vs Lasagne vs AtoMig,
//! normalized to each kernel's plain build, plus the geometric mean.

use atomig_bench::{factor, render_table, BenchRecorder};
use atomig_core::json::Value;
use atomig_workloads::{
    compile_atomig, compile_baseline, compile_lasagne, compile_naive, phoenix, run_cost,
};

fn main() {
    let paper: [(&str, f64, f64, f64); 5] = [
        ("histogram", 2.80, 2.51, 1.00),
        ("kmeans", 1.07, 1.60, 1.03),
        ("linear_regression", 1.02, 1.90, 1.00),
        ("matrix_multiply", 1.01, 1.49, 1.01),
        ("string_match", 1.70, 1.35, 1.01),
    ];

    // The five kernels are independent: compute each row's cost triple on
    // the worker pool and fold the geometric mean in kernel order.
    let jobs = match atomig_par::jobs_from_env("ATOMIG_JOBS") {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let pool = atomig_par::WorkerPool::new(jobs);
    let factors = pool.map(&paper, |_, &(name, ..)| {
        let src = phoenix::kernel(name, 2);
        let (_, base) = run_cost(&compile_baseline(&src, name), name);
        let (_, naive) = run_cost(&compile_naive(&src, name).0, name);
        let (_, lasagne) = run_cost(&compile_lasagne(&src, name).0, name);
        let (_, atomig) = run_cost(&compile_atomig(&src, name).0, name);
        (
            naive as f64 / base as f64,
            lasagne as f64 / base as f64,
            atomig as f64 / base as f64,
        )
    });

    let mut rows = Vec::new();
    let (mut gn, mut gl, mut ga) = (1.0f64, 1.0f64, 1.0f64);
    for ((name, p_naive, p_lasagne, p_atomig), (n, l, a)) in paper.into_iter().zip(factors) {
        gn *= n;
        gl *= l;
        ga *= a;
        rows.push(vec![
            name.to_string(),
            factor(n),
            factor(l),
            factor(a),
            format!("{p_naive:.2} / {p_lasagne:.2} / {p_atomig:.2}"),
        ]);
    }
    let k = 1.0 / 5.0;
    rows.push(vec![
        "geometric mean".to_string(),
        factor(gn.powf(k)),
        factor(gl.powf(k)),
        factor(ga.powf(k)),
        "1.39 / 1.73 / 1.01".to_string(),
    ]);

    print!(
        "{}",
        render_table(
            "Table 6: Phoenix benchmark slowdowns (Armv8 cost model)",
            &["Benchmark", "Naive", "Lasagne", "AtoMig", "paper (N/L/A)"],
            &rows,
        )
    );
    let mut rec = BenchRecorder::new("table6");
    let records: Vec<Value> = rows
        .iter()
        .map(|r| {
            Value::obj(vec![
                ("benchmark", r[0].as_str().into()),
                ("naive", r[1].parse::<f64>().unwrap_or(0.0).into()),
                ("lasagne", r[2].parse::<f64>().unwrap_or(0.0).into()),
                ("atomig", r[3].parse::<f64>().unwrap_or(0.0).into()),
            ])
        })
        .collect();
    rec.put("jobs", jobs.into());
    rec.put("slowdowns", Value::Arr(records));
    let path = rec.write().expect("write bench record");
    println!("wrote {path}");
}
