//! Regenerates Table 2: verification results on ck and lf-hash.
//!
//! Each benchmark's model-checking client is ported at the four detection
//! stages (Original / Expl. / Spin / AtoMig) and exhaustively checked
//! under the Arm-flavoured weak memory model. `Y` = no violation found
//! (exploration complete), `x` = a weak-memory assertion violation.

use atomig_bench::{render_table, BenchRecorder};
use atomig_core::json::Value;
use atomig_workloads::{check_arm, compile_stage, glyph, STAGES};

fn main() {
    let benchmarks: Vec<(&str, String, [&str; 4])> = vec![
        (
            "ck_ring",
            atomig_workloads::ck::ring_mc(),
            ["x", "Y", "Y", "Y"],
        ),
        (
            "ck_spinlock_cas",
            atomig_workloads::ck::spinlock_cas_mc(),
            ["x", "Y", "Y", "Y"],
        ),
        (
            "ck_spinlock_mcs",
            atomig_workloads::ck::spinlock_mcs_mc(),
            ["x", "x", "Y", "Y"],
        ),
        (
            "ck_sequence",
            atomig_workloads::ck::sequence_mc(),
            ["x", "x", "x", "Y"],
        ),
        (
            "lf-hash",
            atomig_workloads::lf_hash::lf_hash_mc(),
            ["x", "x", "x", "Y"],
        ),
    ];

    let mut rec = BenchRecorder::new("table2");
    // Every (benchmark, stage) compile+check is independent: fan the 20
    // units out over ATOMIG_JOBS workers and merge in unit order, so the
    // table and record are identical to the sequential run.
    let jobs = match atomig_par::jobs_from_env("ATOMIG_JOBS") {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let pool = atomig_par::WorkerPool::new(jobs);
    let units: Vec<(&str, &str, atomig_core::Stage)> = benchmarks
        .iter()
        .flat_map(|(name, src, _)| {
            STAGES
                .iter()
                .map(move |&stage| (*name, src.as_str(), stage))
        })
        .collect();
    let verdicts = pool.map(&units, |_, &(name, src, stage)| {
        let (module, _) = compile_stage(src, name, stage);
        check_arm(&module)
    });

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for ((name, _, paper), chunk) in benchmarks.iter().zip(verdicts.chunks(STAGES.len())) {
        let mut row = vec![name.to_string()];
        for (stage, verdict) in STAGES.iter().zip(chunk) {
            assert!(!verdict.truncated, "{name} at {stage:?}: {verdict}");
            row.push(glyph(verdict.violation.is_none()).to_string());
            records.push(Value::obj(vec![
                ("benchmark", (*name).into()),
                ("stage", format!("{stage:?}").as_str().into()),
                ("passed", verdict.violation.is_none().into()),
                ("states", verdict.states.into()),
                ("executions", verdict.executions.into()),
                ("revisits", verdict.revisits.into()),
                ("peak_tracked", verdict.peak_tracked.into()),
            ]));
        }
        row.push(format!(
            "{} {} {} {}",
            paper[0], paper[1], paper[2], paper[3]
        ));
        rows.push(row);
    }

    print!(
        "{}",
        render_table(
            "Table 2: Verification results on ck and lf-hash (model: ARM view machine)",
            &["Benchmark", "Original", "Expl.", "Spin", "AtoMig", "paper"],
            &rows,
        )
    );
    rec.put("jobs", jobs.into());
    rec.put("checks", Value::Arr(records));
    let path = rec.write().expect("write bench record");
    println!("wrote {path}");
}
