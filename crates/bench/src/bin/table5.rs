//! Regenerates Table 5: performance impact of Naïve vs AtoMig porting,
//! normalized to each benchmark's original.
//!
//! Baselines follow the paper: the five large applications and lf-hash
//! normalize against their plain (inlined) builds; the ck benchmarks
//! normalize against *expert Arm ports* (explicit fences) — which is why
//! AtoMig's implicit-barrier output lands **below 1.0** there; CLHT has
//! no WMM-correct version, so its baseline is the (incorrect) plain
//! recompile.

use atomig_bench::{factor, render_table, BenchRecorder};
use atomig_core::json::Value;
use atomig_wmm::CostModel;
use atomig_workloads::{
    apps, ck, clht, compile_atomig, compile_baseline, compile_naive, lf_hash, run_cost,
};

fn main() {
    let cm = CostModel::ARMV8;
    let _ = cm;
    let mut rows: Vec<Vec<String>> = Vec::new();

    // --- Large applications: baseline = plain build.
    let paper_apps = [
        ("MariaDB", "mariadb", 1.27, 1.01),
        ("PostgreSQL", "postgresql", 1.35, 1.04),
        ("LevelDB", "leveldb", 1.66, 1.01),
        ("Memcached", "memcached", 1.01, 1.00),
        ("SQLite", "sqlite", 2.49, 1.03),
    ];
    for (label, key, p_naive, p_atomig) in paper_apps {
        let src = apps::app_perf(key, 60);
        let (_, base) = run_cost(&compile_baseline(&src, key), key);
        let (_, naive) = run_cost(&compile_naive(&src, key).0, key);
        let (_, atomig) = run_cost(&compile_atomig(&src, key).0, key);
        rows.push(vec![
            label.to_string(),
            factor(naive as f64 / base as f64),
            factor(atomig as f64 / base as f64),
            format!("{p_naive:.2} / {p_atomig:.2}"),
        ]);
    }

    // --- ck benchmarks: baseline = expert Arm port (explicit fences).
    let ck_rows: Vec<(&str, String, String, f64, f64)> = vec![
        (
            "ck_ring",
            ck::ring_expert_perf(300),
            ck::ring_perf(300),
            4.43,
            0.85,
        ),
        (
            "ck_sequence",
            ck::sequence_expert_perf(200),
            ck::sequence_perf(200),
            5.35,
            0.91,
        ),
        (
            "ck_spinlock_cas",
            ck::spinlock_cas_expert_perf(2, 200),
            ck::spinlock_cas_perf(2, 200),
            3.75,
            0.63,
        ),
        (
            "ck_spinlock_mcs",
            ck::spinlock_mcs_expert_perf(2, 100),
            ck::spinlock_mcs_perf(2, 100),
            5.29,
            0.64,
        ),
    ];
    for (name, expert_src, tso_src, p_naive, p_atomig) in ck_rows {
        let expert = atomig_frontc::compile(&expert_src, name).map(|mut m| {
            atomig_analysis::inline_module(&mut m, &Default::default());
            m
        });
        let expert = expert.expect("expert source compiles");
        let (_, base) = run_cost(&expert, name);
        let (_, naive) = run_cost(&compile_naive(&tso_src, name).0, name);
        let (_, atomig) = run_cost(&compile_atomig(&tso_src, name).0, name);
        rows.push(vec![
            name.to_string(),
            factor(naive as f64 / base as f64),
            factor(atomig as f64 / base as f64),
            format!("{p_naive:.2} / {p_atomig:.2}"),
        ]);
    }

    // --- lf-hash: baseline = plain build.
    {
        let src = lf_hash::lf_hash_perf(8, 60);
        let (_, base) = run_cost(&compile_baseline(&src, "lf-hash"), "lf-hash");
        let (_, naive) = run_cost(&compile_naive(&src, "lf-hash").0, "lf-hash");
        let (_, atomig) = run_cost(&compile_atomig(&src, "lf-hash").0, "lf-hash");
        rows.push(vec![
            "lf-hash".to_string(),
            factor(naive as f64 / base as f64),
            factor(atomig as f64 / base as f64),
            "3.05 / 1.01".to_string(),
        ]);
    }

    // --- CLHT: baseline = unported recompile (no WMM corrections).
    for (name, src, p_naive, p_atomig) in [
        ("clht_lb", clht::clht_lb_perf(2, 150), 1.89, 1.10),
        ("clht_lf", clht::clht_lf_perf(2, 150), 2.01, 1.40),
    ] {
        let (_, base) = run_cost(&compile_baseline(&src, name), name);
        let (_, naive) = run_cost(&compile_naive(&src, name).0, name);
        let (_, atomig) = run_cost(&compile_atomig(&src, name).0, name);
        rows.push(vec![
            name.to_string(),
            factor(naive as f64 / base as f64),
            factor(atomig as f64 / base as f64),
            format!("{p_naive:.2} / {p_atomig:.2}"),
        ]);
    }

    print!(
        "{}",
        render_table(
            "Table 5: performance impact, Naive and AtoMig vs originals (Armv8 cost model)",
            &["Benchmark", "Naive", "AtoMig", "paper (Naive/AtoMig)"],
            &rows,
        )
    );
    println!(
        "(ck baselines are expert Arm ports with explicit fences; \
         CLHT baselines have no WMM corrections, as in the paper)"
    );
    let mut rec = BenchRecorder::new("table5");
    let records: Vec<Value> = rows
        .iter()
        .map(|r| {
            Value::obj(vec![
                ("benchmark", r[0].as_str().into()),
                ("naive", r[1].parse::<f64>().unwrap_or(0.0).into()),
                ("atomig", r[2].parse::<f64>().unwrap_or(0.0).into()),
            ])
        })
        .collect();
    rec.put("slowdowns", Value::Arr(records));
    let path = rec.write().expect("write bench record");
    println!("wrote {path}");
}
