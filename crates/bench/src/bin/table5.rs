//! Regenerates Table 5: performance impact of Naïve vs AtoMig porting,
//! normalized to each benchmark's original.
//!
//! Baselines follow the paper: the five large applications and lf-hash
//! normalize against their plain (inlined) builds; the ck benchmarks
//! normalize against *expert Arm ports* (explicit fences) — which is why
//! AtoMig's implicit-barrier output lands **below 1.0** there; CLHT has
//! no WMM-correct version, so its baseline is the (incorrect) plain
//! recompile.
//!
//! Every row is an independent compile+run-cost triple, so the rows are
//! computed on `ATOMIG_JOBS` workers and merged in row order — the table
//! is identical to the sequential run.

use atomig_bench::{factor, render_table, BenchRecorder};
use atomig_core::json::Value;
use atomig_wmm::CostModel;
use atomig_workloads::{
    apps, ck, clht, compile_atomig, compile_baseline, compile_naive, lf_hash, run_cost,
};

/// One benchmark row: the baseline source (and how to build it), the TSO
/// source both ports start from, and the paper's reference factors.
struct RowSpec {
    label: &'static str,
    key: &'static str,
    baseline_src: String,
    /// ck rows: the baseline is an expert Arm port compiled verbatim
    /// (inlined, no transformation) rather than `compile_baseline`.
    expert_baseline: bool,
    tso_src: String,
    paper: String,
}

impl RowSpec {
    fn plain(
        label: &'static str,
        key: &'static str,
        src: String,
        p_naive: f64,
        p_atomig: f64,
    ) -> RowSpec {
        RowSpec {
            label,
            key,
            baseline_src: src.clone(),
            expert_baseline: false,
            tso_src: src,
            paper: format!("{p_naive:.2} / {p_atomig:.2}"),
        }
    }

    fn expert(
        name: &'static str,
        expert_src: String,
        tso_src: String,
        p_naive: f64,
        p_atomig: f64,
    ) -> RowSpec {
        RowSpec {
            label: name,
            key: name,
            baseline_src: expert_src,
            expert_baseline: true,
            tso_src,
            paper: format!("{p_naive:.2} / {p_atomig:.2}"),
        }
    }
}

fn row_of(spec: &RowSpec) -> Vec<String> {
    let base_module = if spec.expert_baseline {
        let mut m =
            atomig_frontc::compile(&spec.baseline_src, spec.key).expect("expert source compiles");
        atomig_analysis::inline_module(&mut m, &Default::default());
        m
    } else {
        compile_baseline(&spec.baseline_src, spec.key)
    };
    let (_, base) = run_cost(&base_module, spec.key);
    let (_, naive) = run_cost(&compile_naive(&spec.tso_src, spec.key).0, spec.key);
    let (_, atomig) = run_cost(&compile_atomig(&spec.tso_src, spec.key).0, spec.key);
    vec![
        spec.label.to_string(),
        factor(naive as f64 / base as f64),
        factor(atomig as f64 / base as f64),
        spec.paper.clone(),
    ]
}

fn main() {
    let cm = CostModel::ARMV8;
    let _ = cm;

    let specs: Vec<RowSpec> = vec![
        // --- Large applications: baseline = plain build.
        RowSpec::plain(
            "MariaDB",
            "mariadb",
            apps::app_perf("mariadb", 60),
            1.27,
            1.01,
        ),
        RowSpec::plain(
            "PostgreSQL",
            "postgresql",
            apps::app_perf("postgresql", 60),
            1.35,
            1.04,
        ),
        RowSpec::plain(
            "LevelDB",
            "leveldb",
            apps::app_perf("leveldb", 60),
            1.66,
            1.01,
        ),
        RowSpec::plain(
            "Memcached",
            "memcached",
            apps::app_perf("memcached", 60),
            1.01,
            1.00,
        ),
        RowSpec::plain("SQLite", "sqlite", apps::app_perf("sqlite", 60), 2.49, 1.03),
        // --- ck benchmarks: baseline = expert Arm port (explicit fences).
        RowSpec::expert(
            "ck_ring",
            ck::ring_expert_perf(300),
            ck::ring_perf(300),
            4.43,
            0.85,
        ),
        RowSpec::expert(
            "ck_sequence",
            ck::sequence_expert_perf(200),
            ck::sequence_perf(200),
            5.35,
            0.91,
        ),
        RowSpec::expert(
            "ck_spinlock_cas",
            ck::spinlock_cas_expert_perf(2, 200),
            ck::spinlock_cas_perf(2, 200),
            3.75,
            0.63,
        ),
        RowSpec::expert(
            "ck_spinlock_mcs",
            ck::spinlock_mcs_expert_perf(2, 100),
            ck::spinlock_mcs_perf(2, 100),
            5.29,
            0.64,
        ),
        // --- lf-hash: baseline = plain build.
        RowSpec::plain(
            "lf-hash",
            "lf-hash",
            lf_hash::lf_hash_perf(8, 60),
            3.05,
            1.01,
        ),
        // --- CLHT: baseline = unported recompile (no WMM corrections).
        RowSpec::plain("clht_lb", "clht_lb", clht::clht_lb_perf(2, 150), 1.89, 1.10),
        RowSpec::plain("clht_lf", "clht_lf", clht::clht_lf_perf(2, 150), 2.01, 1.40),
    ];

    let jobs = match atomig_par::jobs_from_env("ATOMIG_JOBS") {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let pool = atomig_par::WorkerPool::new(jobs);
    let rows: Vec<Vec<String>> = pool.map(&specs, |_, spec| row_of(spec));

    print!(
        "{}",
        render_table(
            "Table 5: performance impact, Naive and AtoMig vs originals (Armv8 cost model)",
            &["Benchmark", "Naive", "AtoMig", "paper (Naive/AtoMig)"],
            &rows,
        )
    );
    println!(
        "(ck baselines are expert Arm ports with explicit fences; \
         CLHT baselines have no WMM corrections, as in the paper)"
    );
    let mut rec = BenchRecorder::new("table5");
    let records: Vec<Value> = rows
        .iter()
        .map(|r| {
            Value::obj(vec![
                ("benchmark", r[0].as_str().into()),
                ("naive", r[1].parse::<f64>().unwrap_or(0.0).into()),
                ("atomig", r[2].parse::<f64>().unwrap_or(0.0).into()),
            ])
        })
        .collect();
    rec.put("jobs", jobs.into());
    rec.put("slowdowns", Value::Arr(records));
    let path = rec.write().expect("write bench record");
    println!("wrote {path}");
}
