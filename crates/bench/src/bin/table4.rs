//! Regenerates Table 4: dynamically executed barriers on Memcached.
//!
//! Runs the memtier-style workload on the Memcached kernel, original and
//! AtoMig-ported, and reports the dynamic access counts. Stack (register)
//! traffic is included in the non-atomic rows, as a hardware counter
//! would.

use atomig_bench::{render_table, BenchRecorder};
use atomig_core::json::Value;
use atomig_workloads::{apps, compile_atomig, compile_baseline};

fn main() {
    let mut rec = BenchRecorder::new("table4");
    let src = apps::memcached_like(400);

    // The original and the ported build+run are independent: do both
    // concurrently on the worker pool.
    let jobs = match atomig_par::jobs_from_env("ATOMIG_JOBS") {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let pool = atomig_par::WorkerPool::new(jobs);
    let mut results = pool
        .map(&[false, true], |_, &port| {
            if port {
                let (ported, report) = compile_atomig(&src, "memcached");
                (atomig_wmm::run_default(&ported), Some(report))
            } else {
                let original = compile_baseline(&src, "memcached");
                (atomig_wmm::run_default(&original), None)
            }
        })
        .into_iter();
    let (ro, _) = results.next().expect("original run");
    let (rp, port_report) = results.next().expect("ported run");
    let port_report = port_report.expect("ported unit carries the report");
    assert!(ro.ok() && rp.ok(), "{:?} / {:?}", ro.failure, rp.failure);
    rec.put("jobs", Value::from(jobs));

    let row = |name: &str, orig: u64, atomig: u64| {
        vec![name.to_string(), orig.to_string(), atomig.to_string()]
    };
    let rows = vec![
        row(
            "non-atomic loads",
            ro.stats.plain_loads + ro.stats.stack_ops / 2,
            rp.stats.plain_loads + rp.stats.stack_ops / 2,
        ),
        row(
            "non-atomic stores",
            ro.stats.plain_stores + ro.stats.stack_ops / 2,
            rp.stats.plain_stores + rp.stats.stack_ops / 2,
        ),
        row("atomic loads", ro.stats.atomic_loads, rp.stats.atomic_loads),
        row(
            "atomic stores",
            ro.stats.atomic_stores,
            rp.stats.atomic_stores,
        ),
        row("rmw/cas", ro.stats.rmws, rp.stats.rmws),
        row("explicit fences", ro.stats.fences, rp.stats.fences),
    ];

    print!(
        "{}",
        render_table(
            "Table 4: dynamically executed barriers, Memcached kernel (memtier-style workload)",
            &["Memcached", "Original", "AtoMig"],
            &rows,
        )
    );
    println!(
        "(paper shape: ported run turns a single-digit % of accesses atomic; \
         paper: 19.9M/377M loads, 5.5M/127M stores)"
    );
    rec.phases("port_phases", &port_report.metrics);
    rec.census("census_before", &port_report.before);
    rec.census("census_after", &port_report.after);
    for (label, r) in [("original", &ro), ("atomig", &rp)] {
        rec.put(
            &format!("{label}_dynamic"),
            Value::obj(vec![
                ("plain_loads", r.stats.plain_loads.into()),
                ("plain_stores", r.stats.plain_stores.into()),
                ("atomic_loads", r.stats.atomic_loads.into()),
                ("atomic_stores", r.stats.atomic_stores.into()),
                ("rmws", r.stats.rmws.into()),
                ("fences", r.stats.fences.into()),
            ]),
        );
    }
    let path = rec.write().expect("write bench record");
    println!("wrote {path}");
}
