//! Measures the incremental-analysis cache: cold vs warm porting time
//! and hit rate over the synthetic application profiles.
//!
//! Each profile is generated once, then ported twice against the same
//! content-addressed store — the first run populates it (all misses),
//! the second re-ports the identical module (all hits, zero detection
//! work). The record lands in `BENCH_cache.json` with per-profile
//! cold/warm nanos, the speedup factor, and the warm hit rate; the warm
//! report is asserted byte-identical to the cold one, so the speedup is
//! never bought with divergent output.

use atomig_bench::{factor, render_table, BenchRecorder};
use atomig_core::json::Value;
use atomig_core::{AtomigConfig, Pipeline};
use atomig_workloads::{profiles, synth};
use std::time::Instant;

const SCALE: u32 = 100;

fn main() {
    let mut rec = BenchRecorder::new("cache");
    let jobs = match atomig_par::jobs_from_env("ATOMIG_JOBS") {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    rec.put("jobs", Value::from(jobs));
    let cache_root =
        std::env::temp_dir().join(format!("atomig-cache-bench-{}", std::process::id()));
    let cache_root = cache_root.to_string_lossy().into_owned();

    let mut rows = Vec::new();
    let (mut total_cold, mut total_warm) = (0u128, 0u128);
    for profile in profiles::all() {
        let app = synth::generate_for(&profile, SCALE);
        let dir = format!("{cache_root}/{}", profile.name);
        let store = std::sync::Arc::new(
            atomig_cache::CacheStore::open(Some(&dir)).expect("cache dir opens"),
        );
        let mut cfg = AtomigConfig::full();
        cfg.inline = false;
        cfg.jobs = jobs;
        cfg.cache = Some(store);

        let mut port = |tag: &str| {
            let mut m = atomig_frontc::compile(&app.source, profile.name)
                .expect("generated source compiles");
            // Fresh fixed-step clock per run: the report's embedded phase
            // timings become a function of clock *reads*, so the cold and
            // warm reports can be compared byte-for-byte below while real
            // wall time is still measured with `Instant` outside.
            let mut cfg = cfg.clone();
            let ticks = std::sync::atomic::AtomicU64::new(0);
            cfg.clock = atomig_core::trace::Clock::from_fn(move || {
                let t = ticks.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                std::time::Duration::from_millis(t)
            });
            let t0 = Instant::now();
            let report = Pipeline::new(cfg).port_module(&mut m);
            let nanos = t0.elapsed().as_nanos();
            rec.put(&format!("{}_{tag}_nanos", profile.name), Value::from(nanos));
            (nanos, report)
        };
        let (cold_nanos, cold) = port("cold");
        let (warm_nanos, warm) = port("warm");
        let c = warm.metrics.cache.expect("cache metrics present");
        assert_eq!(
            format!("{cold}"),
            format!("{warm}"),
            "warm report diverged for {}",
            profile.name
        );
        assert_eq!(c.misses, 0, "warm run re-analyzed {} functions", c.misses);
        let hit_rate = c.hits as f64 / (c.hits + c.misses).max(1) as f64;
        let speedup = cold_nanos as f64 / (warm_nanos as f64).max(1.0);
        rec.put(&format!("{}_hits", profile.name), Value::from(c.hits));
        rec.put(&format!("{}_misses", profile.name), Value::from(c.misses));
        rec.put(&format!("{}_speedup", profile.name), Value::from(speedup));
        total_cold += cold_nanos;
        total_warm += warm_nanos;
        rows.push(vec![
            profile.name.to_string(),
            app.sloc.to_string(),
            format!("{:.2?}", std::time::Duration::from_nanos(cold_nanos as u64)),
            format!("{:.2?}", std::time::Duration::from_nanos(warm_nanos as u64)),
            factor(speedup),
            format!(
                "{}/{} ({:.0}%)",
                c.hits,
                c.hits + c.misses,
                hit_rate * 100.0
            ),
        ]);
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&cache_root).ok();

    rec.put("total_cold_nanos", Value::from(total_cold));
    rec.put("total_warm_nanos", Value::from(total_warm));
    rec.put(
        "total_speedup",
        Value::from(total_cold as f64 / (total_warm as f64).max(1.0)),
    );
    print!(
        "{}",
        render_table(
            &format!("Incremental cache: cold vs warm port (synthetic, 1:{SCALE} scale)"),
            &["Application", "SLOC", "Cold", "Warm", "Speedup", "Hit rate"],
            &rows,
        )
    );
    println!(
        "overall: {:.2?} cold vs {:.2?} warm ({}x)",
        std::time::Duration::from_nanos(total_cold as u64),
        std::time::Duration::from_nanos(total_warm as u64),
        factor(total_cold as f64 / (total_warm as f64).max(1.0)),
    );
    let path = rec.write().expect("write bench record");
    println!("wrote {path}");
}
