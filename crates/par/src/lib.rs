//! A zero-dependency scoped-thread worker pool with a deterministic merge.
//!
//! Every parallel phase in the pipeline follows the same contract: work
//! items are *indexed*, workers pull items off a shared cursor and return
//! `(index, result)` pairs, and the pool places the results into slots so
//! the caller always sees them in item order — byte-identical output for
//! any thread count. Anything order-sensitive (ledger records, metric
//! sums, report counters) happens in the sequential reduce that follows,
//! never inside a worker.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The number of workers the host can usefully run, with a safe fallback
/// when the platform cannot tell us.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolve a job count from an environment variable (e.g. `ATOMIG_JOBS`).
/// Unset, empty, or `0` fall back to [`available_parallelism`] ("auto");
/// anything else must parse as a positive integer.
///
/// # Errors
///
/// Returns a named parse error — consistent with the CLI's `--jobs N`
/// diagnostics — instead of silently ignoring a typo like
/// `ATOMIG_JOBS=lots`.
pub fn jobs_from_env(var: &str) -> Result<usize, String> {
    match std::env::var(var) {
        Ok(v) if !v.trim().is_empty() => match v.trim().parse::<usize>() {
            Ok(0) => Ok(available_parallelism()),
            Ok(n) => Ok(n),
            Err(_) => Err(format!("{var}: `{v}` is not a thread count")),
        },
        _ => Ok(available_parallelism()),
    }
}

/// A fixed-width pool of scoped workers. The pool owns no threads between
/// calls: each [`WorkerPool::map`] spawns up to `jobs` scoped threads,
/// joins them all, and returns results in item order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    jobs: usize,
}

impl WorkerPool {
    /// A pool that runs `jobs` workers; `0` is clamped to `1`.
    pub fn new(jobs: usize) -> WorkerPool {
        WorkerPool { jobs: jobs.max(1) }
    }

    /// A pool sized to the host.
    pub fn host() -> WorkerPool {
        WorkerPool::new(available_parallelism())
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Apply `f` to every item and return the results in item order.
    ///
    /// `f` receives the item index and a reference to the item. With one
    /// job (or at most one item) this runs inline on the caller's thread;
    /// otherwise workers race down a shared cursor, collect
    /// `(index, result)` pairs locally, and the results are placed into
    /// index slots after all workers join. A panic in any worker is
    /// propagated to the caller after the scope unwinds.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.jobs.min(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut batches: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            local.push((i, f(i, item)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(local) => local,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in batches.drain(..).flatten() {
            debug_assert!(slots[i].is_none(), "duplicate result for item {i}");
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.unwrap_or_else(|| panic!("worker pool lost item {i}")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order_for_any_width() {
        let items: Vec<usize> = (0..257).collect();
        let expect: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for jobs in [1, 2, 4, 16, 64] {
            let got = WorkerPool::new(jobs).map(&items, |i, &x| {
                assert_eq!(i, x);
                x * 3 + 1
            });
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn zero_jobs_clamps_to_one_and_empty_input_is_fine() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.jobs(), 1);
        let got: Vec<u8> = pool.map(&[] as &[u8], |_, &b| b);
        assert!(got.is_empty());
        assert_eq!(WorkerPool::new(8).map(&[5u8], |_, &b| b + 1), vec![6]);
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        let items: Vec<usize> = (0..64).collect();
        let res = std::panic::catch_unwind(|| {
            WorkerPool::new(4).map(&items, |_, &x| {
                assert!(x != 17, "boom");
                x
            })
        });
        assert!(res.is_err());
    }

    #[test]
    fn env_job_resolution_prefers_positive_integers() {
        assert!(available_parallelism() >= 1);
        std::env::set_var("ATOMIG_PAR_TEST_JOBS", "3");
        assert_eq!(jobs_from_env("ATOMIG_PAR_TEST_JOBS"), Ok(3));
        // `0` and empty mean "auto", like an absent variable.
        std::env::set_var("ATOMIG_PAR_TEST_JOBS", "0");
        assert_eq!(
            jobs_from_env("ATOMIG_PAR_TEST_JOBS"),
            Ok(available_parallelism())
        );
        std::env::set_var("ATOMIG_PAR_TEST_JOBS", " ");
        assert_eq!(
            jobs_from_env("ATOMIG_PAR_TEST_JOBS"),
            Ok(available_parallelism())
        );
        std::env::remove_var("ATOMIG_PAR_TEST_JOBS");
        assert_eq!(
            jobs_from_env("ATOMIG_PAR_TEST_JOBS"),
            Ok(available_parallelism())
        );
        // A typo is an error, not a silent fallback.
        std::env::set_var("ATOMIG_PAR_TEST_JOBS", "lots");
        let err = jobs_from_env("ATOMIG_PAR_TEST_JOBS").unwrap_err();
        assert!(
            err.contains("ATOMIG_PAR_TEST_JOBS") && err.contains("`lots`"),
            "{err}"
        );
        std::env::set_var("ATOMIG_PAR_TEST_JOBS", "-2");
        assert!(jobs_from_env("ATOMIG_PAR_TEST_JOBS").is_err());
        std::env::remove_var("ATOMIG_PAR_TEST_JOBS");
    }
}
