//! # atomig-testutil
//!
//! A tiny, dependency-free, deterministic pseudo-random number generator
//! used by the synthetic-codebase generator and the seeded generative
//! tests. The whole suite must build offline, so this replaces the usual
//! `rand` / `proptest` stack with an explicit SplitMix64 stream: the same
//! seed always produces the same sequence, on every platform and in every
//! release, which is exactly what reproducible workload generation and
//! shrunk-regression pinning need.

/// A deterministic SplitMix64 generator.
///
/// SplitMix64 (Steele, Lea & Flood, OOPSLA '14) passes BigCrush, needs
/// only one `u64` of state, and — unlike library generators — its stream
/// is trivially stable across versions, so generated MiniC codebases are
/// reproducible byte-for-byte from their seed.
///
/// # Examples
///
/// ```
/// use atomig_testutil::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let v = a.gen_range(10..20);
/// assert!((10..20).contains(&v));
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<i64>) -> i64 {
        assert!(range.start < range.end, "gen_range: empty range {range:?}");
        let width = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add((self.next_u64() % width) as i64)
    }

    /// A uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_usize: empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// A coin flip that is `true` with probability `num / denom`.
    pub fn gen_ratio(&mut self, num: u64, denom: u64) -> bool {
        assert!(denom > 0 && num <= denom);
        self.next_u64() % denom < num
    }
}

/// A deterministic clock for byte-comparable timing fields.
///
/// Every [`ManualClock::now`] reading advances an atomic tick counter by a
/// fixed step, so successive readings are strictly monotone and identical
/// across runs. Wire it into `atomig_core` with
/// `Clock::from_fn(move || clock.now())` (this crate stays dependency-free,
/// so the adapter lives with the caller).
///
/// # Examples
///
/// ```
/// use atomig_testutil::ManualClock;
/// use std::time::Duration;
/// let c = ManualClock::new(1000);
/// assert_eq!(c.now(), Duration::from_nanos(1000));
/// assert_eq!(c.now(), Duration::from_nanos(2000));
/// ```
#[derive(Debug)]
pub struct ManualClock {
    ticks: std::sync::atomic::AtomicU64,
    step: u64,
}

impl ManualClock {
    /// A clock advancing `step_nanos` nanoseconds per reading.
    pub fn new(step_nanos: u64) -> ManualClock {
        ManualClock {
            ticks: std::sync::atomic::AtomicU64::new(0),
            step: step_nanos,
        }
    }

    /// The next reading (strictly after every previous one).
    pub fn now(&self) -> std::time::Duration {
        let t = self
            .ticks
            .fetch_add(self.step, std::sync::atomic::Ordering::Relaxed);
        std::time::Duration::from_nanos(t + self.step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_monotone_and_reproducible() {
        let a = ManualClock::new(500);
        let b = ManualClock::new(500);
        let mut last = std::time::Duration::ZERO;
        for _ in 0..8 {
            let (ta, tb) = (a.now(), b.now());
            assert_eq!(ta, tb);
            assert!(ta > last);
            last = ta;
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = Rng::new(99);
        for _ in 0..1000 {
            let v = r.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let u = r.gen_usize(3);
            assert!(u < 3);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = Rng::new(3);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[r.gen_usize(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn ratio_edges() {
        let mut r = Rng::new(5);
        assert!(!r.gen_ratio(0, 10));
        assert!(r.gen_ratio(10, 10));
    }
}
