//! Implementation of the `atomig` command-line tool.
//!
//! Mirrors the paper's workflow (Figure 2) as a CLI:
//!
//! ```console
//! $ atomig port prog.c              # port and print the transformed IR
//! $ atomig port prog.c --report     # print the porting report instead
//! $ atomig port prog.c --stage spin # stop after spinloop detection
//! $ atomig check prog.c --model arm # exhaustively model-check @main
//! $ atomig run prog.c               # run deterministically, print cost
//! $ atomig lint prog.c              # static WMM-robustness audit
//! $ atomig explain prog.c:41        # why was line 41 rewritten?
//! $ atomig metrics run.jsonl        # validate an --emit-metrics stream
//! ```

use atomig_core::trace::{
    self, cache_event, checker_event, decision_event, finding_event, meta_event, phase_event,
    solver_event, summary_event, to_jsonl,
};
use atomig_core::{
    lint_module, AliasMode, AtomigConfig, CacheMetrics, CheckerMetrics, LintRule, PhaseStat,
    Pipeline, Stage,
};
use atomig_wmm::{Checker, CostModel, ModelKind};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `atomig port <file> [--stage s] [--alias a] [--report]
    /// [--naive|--lasagne] [--trace] [--emit-metrics out]`
    Port {
        /// Input path.
        file: String,
        /// Detection stage.
        stage: Stage,
        /// Alias backend for sticky-buddy expansion.
        alias: AliasMode,
        /// Print the report instead of the transformed IR.
        report_only: bool,
        /// Apply the Naïve baseline instead of AtoMig.
        naive: bool,
        /// Apply the Lasagne-style baseline instead of AtoMig.
        lasagne: bool,
        /// Append the human-readable decision trace tree.
        trace: bool,
        /// Write the JSONL metrics stream to this path.
        emit_metrics: Option<String>,
        /// Worker threads; `None` means host parallelism. Output is
        /// byte-identical for any value.
        jobs: Option<usize>,
        /// Artifact-cache directory; `None` disables caching for this
        /// single-file run (`atomig batch` caches by default instead).
        cache_dir: Option<String>,
    },
    /// `atomig check <file> [--model m] [--ported] [--emit-metrics out]
    /// [--jobs n]`
    Check {
        /// Input path.
        file: String,
        /// Memory model to explore.
        model: ModelKind,
        /// Port with full AtoMig before checking.
        ported: bool,
        /// Write the JSONL metrics stream to this path.
        emit_metrics: Option<String>,
        /// Worker threads; `None` means host parallelism. The verdict is
        /// identical for any value.
        jobs: Option<usize>,
    },
    /// `atomig run <file> [--ported]`
    Run {
        /// Input path.
        file: String,
        /// Port with full AtoMig before running.
        ported: bool,
    },
    /// `atomig lint <file> [--ported] [--alias a] [--deny rule]*
    /// [--emit-metrics out]`
    Lint {
        /// Input path.
        file: String,
        /// Port with full AtoMig before auditing (should then be clean).
        ported: bool,
        /// Alias backend mirrored by the fence-placement dry run.
        alias: AliasMode,
        /// Rules whose findings make the exit status non-zero.
        deny: Vec<LintRule>,
        /// Write the JSONL metrics stream to this path.
        emit_metrics: Option<String>,
        /// Worker threads; `None` means host parallelism. Output is
        /// byte-identical for any value.
        jobs: Option<usize>,
        /// Artifact-cache directory; `None` disables caching for this
        /// single-file run (`atomig batch` caches by default instead).
        cache_dir: Option<String>,
    },
    /// `atomig batch <manifest|dir> [--stage s] [--alias a] [--jobs n]
    /// [--emit-metrics out] [--cache-dir d | --no-cache]`
    Batch {
        /// A directory scanned recursively for `.c` files, a single `.c`
        /// file, or a manifest listing one path per line (`#` comments).
        path: String,
        /// Detection stage applied to every module.
        stage: Stage,
        /// Alias backend applied to every module.
        alias: AliasMode,
        /// Worker threads fanning out across modules; `None` resolves
        /// `ATOMIG_JOBS`, then host parallelism.
        jobs: Option<usize>,
        /// Write the combined JSONL metrics stream to this path.
        emit_metrics: Option<String>,
        /// Artifact-cache directory override (default:
        /// `$ATOMIG_CACHE_DIR`, then `.atomig-cache/`).
        cache_dir: Option<String>,
        /// Run without the artifact cache.
        no_cache: bool,
    },
    /// `atomig explain <file[:line]> [--alias a]`
    Explain {
        /// Input path.
        file: String,
        /// Source line to explain; `None` prints the whole decision tree.
        line: Option<u32>,
        /// Alias backend for sticky-buddy expansion.
        alias: AliasMode,
    },
    /// `atomig metrics <file.jsonl>`
    Metrics {
        /// Path of a stream produced by `--emit-metrics`.
        file: String,
    },
    /// `atomig help`
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
atomig — port legacy x86 (TSO) programs to weak memory models

USAGE:
    atomig port  <file.c> [--stage original|expl|spin|full] [--report]
                          [--alias type-based|points-to]
                          [--naive | --lasagne] [--trace]
                          [--emit-metrics <out.jsonl>] [--jobs <N>]
                          [--cache-dir <dir>]
    atomig check <file.c> [--model sc|tso|wmm|arm] [--ported]
                          [--emit-metrics <out.jsonl>] [--jobs <N>]
    atomig run   <file.c> [--ported]
    atomig lint  <file.c> [--ported] [--alias type-based|points-to]
                          [--deny race-candidate|fence-placement]
                          [--emit-metrics <out.jsonl>] [--jobs <N>]
                          [--cache-dir <dir>]
    atomig batch <dir|manifest|file.c>
                          [--stage original|expl|spin|full]
                          [--alias type-based|points-to] [--jobs <N>]
                          [--emit-metrics <out.jsonl>]
                          [--cache-dir <dir> | --no-cache]
    atomig explain <file.c[:LINE]> [--alias type-based|points-to]
    atomig metrics <run.jsonl>

`port` prints the transformed IR (or, with --report, the Table-3 style
porting statistics). `check` exhaustively model-checks @main and reports
the first assertion violation. `run` executes @main deterministically and
prints the Armv8 cost-model summary. `lint` statically audits the module
for WMM-portability hazards and prints sourced diagnostics; findings for
a --deny'd rule make the exit status non-zero (for CI). `--alias` picks
the buddy-expansion backend: the paper's type-based keys (default) or the
Andersen-style points-to analysis.

Observability: `--trace` appends the decision-provenance tree to `port`
output; `--emit-metrics` writes a JSONL stream of phase timings, solver
and checker counters, decisions, and findings (see DESIGN.md for the
schema). `explain` replays the decision ledger for one source line —
every rewrite is traced back through sticky-buddy alias classes to the
annotation or loop pattern that seeded it, with pre-port race-candidate
context. `metrics` validates a JSONL stream and prints its tally.

Parallelism: `--jobs N` sets the worker-thread count for the analysis
and exploration phases (default: host parallelism; `batch` also reads
ATOMIG_JOBS). Reports, metrics, ledgers, and verdicts are byte-identical
for every N — workers only compute, and results are merged in a fixed
order. Set ATOMIG_DETERMINISTIC=1 to replace the phase-timing clock with
a fixed-step counter so the output is also byte-identical across *runs*
(for diffing in CI).

Incremental analysis: `batch` ports every `.c` file under a directory
(or listed in a manifest, one path per line, `#` comments) and prints
one combined report. Per-function detection artifacts are cached in a
content-addressed store — `--cache-dir <dir>`, else $ATOMIG_CACHE_DIR,
else `.atomig-cache/` — so a warm rerun re-analyzes only functions whose
body or configuration changed; `--no-cache` disables the store. Warm
output is byte-identical to cold: hit/miss/eviction counters surface
only via `--trace`, the `cache` JSONL event, and `atomig metrics`.
`port` and `lint` join the cache when given `--cache-dir` explicitly.";

/// Parses a command line (without the program name).
///
/// # Errors
///
/// Returns a message suitable for printing on unknown flags or commands.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let cmd = match it.next() {
        None => return Ok(Command::Help),
        Some(c) => c.as_str(),
    };
    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "port" => {
            let mut file = None;
            let mut stage = Stage::Full;
            let mut alias = AliasMode::TypeBased;
            let mut report_only = false;
            let mut naive = false;
            let mut lasagne = false;
            let mut trace = false;
            let mut emit_metrics = None;
            let mut jobs = None;
            let mut cache_dir = None;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--report" => report_only = true,
                    "--naive" => naive = true,
                    "--lasagne" => lasagne = true,
                    "--trace" => trace = true,
                    "--stage" => {
                        let v = it.next().ok_or("--stage needs a value")?;
                        stage = parse_stage(v)?;
                    }
                    "--alias" => {
                        let v = it.next().ok_or("--alias needs a value")?;
                        alias = parse_alias(v)?;
                    }
                    "--emit-metrics" => {
                        let v = it.next().ok_or("--emit-metrics needs a path")?;
                        emit_metrics = Some(v.to_string());
                    }
                    "--jobs" => {
                        let v = it.next().ok_or("--jobs needs a value")?;
                        jobs = Some(parse_jobs(v)?);
                    }
                    "--cache-dir" => {
                        let v = it.next().ok_or("--cache-dir needs a directory")?;
                        cache_dir = Some(v.to_string());
                    }
                    f if !f.starts_with('-') && file.is_none() => file = Some(f.to_string()),
                    other => return Err(format!("unknown argument `{other}`")),
                }
            }
            if naive && lasagne {
                return Err("--naive and --lasagne are mutually exclusive".into());
            }
            Ok(Command::Port {
                file: file.ok_or("port: missing input file")?,
                stage,
                alias,
                report_only,
                naive,
                lasagne,
                trace,
                emit_metrics,
                jobs,
                cache_dir,
            })
        }
        "check" => {
            let mut file = None;
            let mut model = ModelKind::Arm;
            let mut ported = false;
            let mut emit_metrics = None;
            let mut jobs = None;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--ported" => ported = true,
                    "--model" => {
                        let v = it.next().ok_or("--model needs a value")?;
                        model = parse_model(v)?;
                    }
                    "--emit-metrics" => {
                        let v = it.next().ok_or("--emit-metrics needs a path")?;
                        emit_metrics = Some(v.to_string());
                    }
                    "--jobs" => {
                        let v = it.next().ok_or("--jobs needs a value")?;
                        jobs = Some(parse_jobs(v)?);
                    }
                    f if !f.starts_with('-') && file.is_none() => file = Some(f.to_string()),
                    other => return Err(format!("unknown argument `{other}`")),
                }
            }
            Ok(Command::Check {
                file: file.ok_or("check: missing input file")?,
                model,
                ported,
                emit_metrics,
                jobs,
            })
        }
        "run" => {
            let mut file = None;
            let mut ported = false;
            for a in it {
                match a.as_str() {
                    "--ported" => ported = true,
                    f if !f.starts_with('-') && file.is_none() => file = Some(f.to_string()),
                    other => return Err(format!("unknown argument `{other}`")),
                }
            }
            Ok(Command::Run {
                file: file.ok_or("run: missing input file")?,
                ported,
            })
        }
        "lint" => {
            let mut file = None;
            let mut ported = false;
            let mut alias = AliasMode::TypeBased;
            let mut deny = Vec::new();
            let mut emit_metrics = None;
            let mut jobs = None;
            let mut cache_dir = None;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--ported" => ported = true,
                    "--alias" => {
                        let v = it.next().ok_or("--alias needs a value")?;
                        alias = parse_alias(v)?;
                    }
                    "--deny" => {
                        let v = it.next().ok_or("--deny needs a value")?;
                        let rule = LintRule::from_name(v).ok_or_else(|| {
                            format!(
                                "unknown lint rule `{v}` (accepted: {})",
                                rule_names().join(", ")
                            )
                        })?;
                        if !deny.contains(&rule) {
                            deny.push(rule);
                        }
                    }
                    "--emit-metrics" => {
                        let v = it.next().ok_or("--emit-metrics needs a path")?;
                        emit_metrics = Some(v.to_string());
                    }
                    "--jobs" => {
                        let v = it.next().ok_or("--jobs needs a value")?;
                        jobs = Some(parse_jobs(v)?);
                    }
                    "--cache-dir" => {
                        let v = it.next().ok_or("--cache-dir needs a directory")?;
                        cache_dir = Some(v.to_string());
                    }
                    f if !f.starts_with('-') && file.is_none() => file = Some(f.to_string()),
                    other => return Err(format!("unknown argument `{other}`")),
                }
            }
            Ok(Command::Lint {
                file: file.ok_or("lint: missing input file")?,
                ported,
                alias,
                deny,
                emit_metrics,
                jobs,
                cache_dir,
            })
        }
        "batch" => {
            let mut path = None;
            let mut stage = Stage::Full;
            let mut alias = AliasMode::TypeBased;
            let mut jobs = None;
            let mut emit_metrics = None;
            let mut cache_dir = None;
            let mut no_cache = false;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--no-cache" => no_cache = true,
                    "--stage" => {
                        let v = it.next().ok_or("--stage needs a value")?;
                        stage = parse_stage(v)?;
                    }
                    "--alias" => {
                        let v = it.next().ok_or("--alias needs a value")?;
                        alias = parse_alias(v)?;
                    }
                    "--jobs" => {
                        let v = it.next().ok_or("--jobs needs a value")?;
                        jobs = Some(parse_jobs(v)?);
                    }
                    "--emit-metrics" => {
                        let v = it.next().ok_or("--emit-metrics needs a path")?;
                        emit_metrics = Some(v.to_string());
                    }
                    "--cache-dir" => {
                        let v = it.next().ok_or("--cache-dir needs a directory")?;
                        cache_dir = Some(v.to_string());
                    }
                    f if !f.starts_with('-') && path.is_none() => path = Some(f.to_string()),
                    other => return Err(format!("unknown argument `{other}`")),
                }
            }
            if no_cache && cache_dir.is_some() {
                return Err("--cache-dir and --no-cache are mutually exclusive".into());
            }
            Ok(Command::Batch {
                path: path.ok_or("batch: missing input directory, manifest, or file")?,
                stage,
                alias,
                jobs,
                emit_metrics,
                cache_dir,
                no_cache,
            })
        }
        "explain" => {
            let mut target = None;
            let mut alias = AliasMode::TypeBased;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--alias" => {
                        let v = it.next().ok_or("--alias needs a value")?;
                        alias = parse_alias(v)?;
                    }
                    f if !f.starts_with('-') && target.is_none() => target = Some(f.to_string()),
                    other => return Err(format!("unknown argument `{other}`")),
                }
            }
            let target = target.ok_or("explain: missing input location (file.c[:LINE])")?;
            let (file, line) = match target.rsplit_once(':') {
                Some(("", _)) => {
                    return Err(format!(
                        "explain: `{target}` has no file before the `:` \
                         (expected file.c[:LINE])"
                    ));
                }
                Some((_, "")) => {
                    return Err(format!(
                        "explain: `{target}` has a trailing `:` but no line number \
                         (expected file.c[:LINE])"
                    ));
                }
                Some((f, l)) => {
                    let n = l
                        .parse::<u32>()
                        .map_err(|_| format!("explain: `{l}` is not a line number"))?;
                    if n == 0 {
                        return Err("explain: line numbers are 1-based; 0 never matches".into());
                    }
                    (f.to_string(), Some(n))
                }
                None => (target, None),
            };
            Ok(Command::Explain { file, line, alias })
        }
        "metrics" => {
            let mut file = None;
            for a in it {
                match a.as_str() {
                    f if !f.starts_with('-') && file.is_none() => file = Some(f.to_string()),
                    other => return Err(format!("unknown argument `{other}`")),
                }
            }
            Ok(Command::Metrics {
                file: file.ok_or("metrics: missing input file")?,
            })
        }
        other => Err(format!("unknown command `{other}` (try `atomig help`)")),
    }
}

fn rule_names() -> Vec<&'static str> {
    LintRule::ALL.iter().map(|r| r.name()).collect()
}

fn parse_stage(s: &str) -> Result<Stage, String> {
    Ok(match s {
        "original" => Stage::Original,
        "expl" | "explicit" => Stage::Explicit,
        "spin" => Stage::Spin,
        "full" | "atomig" => Stage::Full,
        other => {
            return Err(format!(
                "unknown stage `{other}` (accepted: original, expl, spin, full)"
            ))
        }
    })
}

fn parse_alias(s: &str) -> Result<AliasMode, String> {
    AliasMode::from_name(s)
        .ok_or_else(|| format!("unknown alias mode `{s}` (accepted: type-based, points-to)"))
}

fn parse_jobs(s: &str) -> Result<usize, String> {
    match s.parse::<usize>() {
        Ok(0) => Err("--jobs must be at least 1".into()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("--jobs: `{s}` is not a thread count")),
    }
}

fn parse_model(s: &str) -> Result<ModelKind, String> {
    Ok(match s {
        "sc" => ModelKind::Sc,
        "tso" => ModelKind::Tso,
        "wmm" => ModelKind::Wmm,
        "arm" => ModelKind::Arm,
        other => {
            return Err(format!(
                "unknown model `{other}` (accepted: sc, tso, wmm, arm)"
            ))
        }
    })
}

fn config_for(stage: Stage) -> AtomigConfig {
    match stage {
        Stage::Original => AtomigConfig::original(),
        Stage::Explicit => AtomigConfig::explicit_only(),
        Stage::Spin => AtomigConfig::spin(),
        Stage::Full => AtomigConfig::full(),
    }
}

/// With `ATOMIG_DETERMINISTIC` set (to anything but `""`/`0`), a
/// fixed-step counter clock: every read advances one millisecond. Phase
/// timings then depend only on the number of clock reads, making metrics
/// streams byte-comparable across runs (and job counts) in CI.
fn deterministic_clock() -> Option<trace::Clock> {
    match std::env::var("ATOMIG_DETERMINISTIC") {
        Ok(v) if !v.is_empty() && v != "0" => {
            let ticks = std::sync::atomic::AtomicU64::new(0);
            Some(trace::Clock::from_fn(move || {
                let t = ticks.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                std::time::Duration::from_millis(t)
            }))
        }
        _ => None,
    }
}

fn write_metrics(path: &str, events: &[atomig_core::json::Value]) -> Result<String, String> {
    std::fs::write(path, to_jsonl(events))
        .map_err(|e| format!("cannot write metrics to `{path}`: {e}"))?;
    Ok(format!(
        "metrics: wrote {} event(s) to {path}",
        events.len()
    ))
}

fn stage_name(stage: Stage) -> &'static str {
    match stage {
        Stage::Original => "original",
        Stage::Explicit => "expl",
        Stage::Spin => "spin",
        Stage::Full => "full",
    }
}

fn open_cache(dir: Option<&str>) -> Result<std::sync::Arc<atomig_cache::CacheStore>, String> {
    Ok(std::sync::Arc::new(atomig_cache::CacheStore::open(dir)?))
}

/// The one-line trace rendering of cache counters. Deliberately absent
/// from reports: warm output must stay byte-identical to cold.
fn cache_line(c: &CacheMetrics) -> String {
    format!(
        "cache: {} hit(s), {} miss(es), {} evicted",
        c.hits, c.misses, c.evictions
    )
}

/// The module name of a source path: final component without `.c`.
pub fn module_name(file: &str) -> &str {
    file.rsplit('/')
        .next()
        .unwrap_or(file)
        .trim_end_matches(".c")
}

/// Reads one source file for the single-file subcommands.
///
/// # Errors
///
/// A directory gets a named error pointing at `atomig batch` instead of
/// the raw `Is a directory` I/O failure; other failures keep the OS text.
pub fn read_source(file: &str) -> Result<String, String> {
    let p = std::path::Path::new(file);
    if p.is_dir() {
        return Err(format!(
            "`{file}` is a directory, not a source file \
             (use `atomig batch {file}` to process every .c file under it)"
        ));
    }
    std::fs::read_to_string(p).map_err(|e| format!("cannot read `{file}`: {e}"))
}

/// One module of a batch run: its name and loaded source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchInput {
    /// Module name (file stem).
    pub name: String,
    /// Source text.
    pub source: String,
}

fn collect_c_files(dir: &std::path::Path, out: &mut Vec<std::path::PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory `{}`: {e}", dir.display()))?;
    for entry in entries {
        let p = entry
            .map_err(|e| format!("cannot read directory `{}`: {e}", dir.display()))?
            .path();
        if p.is_dir() {
            collect_c_files(&p, out)?;
        } else if p.extension().is_some_and(|x| x == "c") {
            out.push(p);
        }
    }
    Ok(())
}

/// Resolves a `batch` argument into loaded inputs: a directory is
/// scanned recursively for `.c` files (sorted by path, so the combined
/// report order is stable), a `.c` path is a single input, and anything
/// else is read as a manifest listing one path per line (relative to the
/// manifest's directory; blank lines and `#` comments are skipped).
///
/// # Errors
///
/// Names the unreadable path; an empty result is reported by
/// [`execute_batch`], not here.
pub fn discover_batch_inputs(path: &str) -> Result<Vec<BatchInput>, String> {
    let p = std::path::Path::new(path);
    let mut files = Vec::new();
    if p.is_dir() {
        collect_c_files(p, &mut files)?;
        files.sort();
    } else if path.ends_with(".c") {
        files.push(p.to_path_buf());
    } else {
        let text = std::fs::read_to_string(p)
            .map_err(|e| format!("cannot read manifest `{path}`: {e}"))?;
        let base = p.parent().unwrap_or_else(|| std::path::Path::new("."));
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            files.push(base.join(line));
        }
    }
    let mut inputs = Vec::with_capacity(files.len());
    for f in files {
        let fs = f.to_string_lossy().into_owned();
        let source = std::fs::read_to_string(&f).map_err(|e| format!("cannot read `{fs}`: {e}"))?;
        inputs.push(BatchInput {
            name: module_name(&fs).to_string(),
            source,
        });
    }
    Ok(inputs)
}

/// Executes `atomig batch` over already-loaded inputs, returning the
/// combined report (discovery is separate for testability).
///
/// Modules fan out across the worker pool; each worker runs a
/// single-threaded pipeline with its own deterministic clock, so
/// per-module output is independent of scheduling and the sequential
/// merge below is order-fixed. Cache counters stay out of the report —
/// they surface via the `cache` JSONL event only — so a warm rerun is
/// byte-identical to the cold one.
///
/// # Errors
///
/// Aggregates per-module compile/verify failures into one message;
/// an empty input set and cache/metrics I/O failures are also errors.
pub fn execute_batch(cmd: &Command, inputs: &[BatchInput]) -> Result<String, String> {
    let Command::Batch {
        path,
        stage,
        alias,
        jobs,
        emit_metrics,
        cache_dir,
        no_cache,
    } = cmd
    else {
        return Err("execute_batch: not a batch command".into());
    };
    if inputs.is_empty() {
        return Err(format!("batch: no .c files found under `{path}`"));
    }
    let store = if *no_cache {
        None
    } else {
        Some(open_cache(cache_dir.as_deref())?)
    };
    let jobs = match jobs {
        Some(n) => *n,
        None => atomig_par::jobs_from_env("ATOMIG_JOBS")?,
    };
    let pool = atomig_par::WorkerPool::new(jobs);
    let results = pool.map(inputs, |_, inp| {
        let mut cfg = config_for(*stage);
        cfg.alias_mode = *alias;
        cfg.jobs = 1;
        cfg.cache = store.clone();
        if let Some(c) = deterministic_clock() {
            cfg.clock = c;
        }
        let mut m = atomig_frontc::compile(&inp.source, &inp.name)?;
        let report = Pipeline::new(cfg).port_module(&mut m);
        atomig_mir::verify_module(&m).map_err(|e| e.to_string())?;
        Ok::<_, String>(report)
    });

    let mut failures = Vec::new();
    let mut reports = Vec::new();
    for (inp, res) in inputs.iter().zip(results) {
        match res {
            Ok(r) => reports.push((inp.name.as_str(), r)),
            Err(e) => failures.push(format!("  {}: {e}", inp.name)),
        }
    }
    if !failures.is_empty() {
        return Err(format!(
            "batch: {} of {} module(s) failed\n{}",
            failures.len(),
            inputs.len(),
            failures.join("\n")
        ));
    }

    let mut out = format!(
        "batch report: {} module(s) from `{path}` (stage {}, {} alias, cache {})\n",
        reports.len(),
        stage_name(*stage),
        alias.name(),
        if store.is_some() { "on" } else { "off" },
    );
    let (mut spins, mut opts, mut sc, mut fences) = (0usize, 0usize, 0usize, 0usize);
    let mut total = std::time::Duration::ZERO;
    let mut cache: Option<CacheMetrics> = None;
    for (mod_name, r) in &reports {
        out.push_str(&format!(
            "  {mod_name:<24} {:>3} spinloop(s) {:>3} optimistic {:>4} sc-upgrade(s) \
             {:>4} fence(s) {:>12?}\n",
            r.spinloops,
            r.optiloops,
            r.implicit_barriers_added,
            r.explicit_barriers_added,
            r.porting_time,
        ));
        spins += r.spinloops;
        opts += r.optiloops;
        sc += r.implicit_barriers_added;
        fences += r.explicit_barriers_added;
        total += r.porting_time;
        if let Some(c) = &r.metrics.cache {
            // Hits and misses are per-module and sum; evictions are a
            // store-wide count every module observed, so take the max
            // instead of overcounting.
            let agg = cache.get_or_insert_with(CacheMetrics::default);
            agg.hits += c.hits;
            agg.misses += c.misses;
            agg.evictions = agg.evictions.max(c.evictions);
        }
    }
    out.push_str(&format!(
        "totals: {spins} spinloop(s), {opts} optimistic loop(s), \
         {sc} sc-upgrade(s), {fences} fence(s), {total:?} porting"
    ));
    if let Some(p) = emit_metrics {
        let mut events = vec![meta_event("batch", path, Some(alias.name()))];
        for (mod_name, r) in &reports {
            events.push(phase_event(&PhaseStat {
                name: format!("port:{mod_name}"),
                duration: r.porting_time,
                items: r.implicit_barriers_added + r.explicit_barriers_added,
            }));
        }
        if let Some(c) = &cache {
            events.push(cache_event(c));
        }
        events.push(summary_event(
            total,
            vec![
                ("modules", reports.len().into()),
                ("spinloops", spins.into()),
                ("optiloops", opts.into()),
                ("sc_upgraded", sc.into()),
                ("fences_inserted", fences.into()),
                ("cache_hits", cache.map_or(0, |c| c.hits).into()),
                ("cache_misses", cache.map_or(0, |c| c.misses).into()),
            ],
        ));
        out.push('\n');
        out.push_str(&write_metrics(p, &events)?);
    }
    Ok(out)
}

/// Executes a command against already-loaded source text, returning the
/// text to print (separated from I/O for testability).
///
/// # Errors
///
/// Returns compile errors, check violations and trap messages as strings.
pub fn execute(cmd: &Command, source: &str, name: &str) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Port {
            stage,
            alias,
            report_only,
            naive,
            lasagne,
            trace,
            emit_metrics,
            jobs,
            cache_dir,
            ..
        } => {
            let mut module = atomig_frontc::compile(source, name)?;
            if (*naive || *lasagne) && (*trace || emit_metrics.is_some() || cache_dir.is_some()) {
                return Err(
                    "--trace/--emit-metrics/--cache-dir need the AtoMig pipeline \
                     (drop --naive/--lasagne)"
                        .into(),
                );
            }
            let mut pipeline_report = None;
            let summary = if *naive {
                let stats = atomig_core::naive_port(&mut module);
                format!(
                    "naive port: {} accesses upgraded, {} private skipped",
                    stats.upgraded, stats.skipped_private
                )
            } else if *lasagne {
                let stats = atomig_core::lasagne_port(&mut module);
                format!(
                    "lasagne port: {} fences inserted, {} removed",
                    stats.fences_inserted, stats.fences_removed
                )
            } else {
                let mut cfg = config_for(*stage);
                cfg.alias_mode = *alias;
                if let Some(j) = jobs {
                    cfg.jobs = *j;
                }
                if let Some(c) = deterministic_clock() {
                    cfg.clock = c;
                }
                if let Some(d) = cache_dir {
                    cfg.cache = Some(open_cache(Some(d))?);
                }
                let report = Pipeline::new(cfg).port_module(&mut module);
                let s = format!("{report}");
                pipeline_report = Some(report);
                s
            };
            atomig_mir::verify_module(&module).map_err(|e| e.to_string())?;
            let mut out = if *report_only {
                summary
            } else {
                atomig_mir::printer::print_module(&module)
            };
            if let Some(report) = &pipeline_report {
                if *trace {
                    out.push_str("\n\n");
                    out.push_str(&report.ledger.render_tree(name));
                    if let Some(c) = &report.metrics.cache {
                        out.push('\n');
                        out.push_str(&cache_line(c));
                    }
                }
                if let Some(path) = emit_metrics {
                    let mut events = vec![meta_event("port", name, Some(alias.name()))];
                    if let Some(s) = &report.metrics.solver {
                        events.push(solver_event(s));
                    }
                    for p in &report.metrics.phases {
                        events.push(phase_event(p));
                    }
                    if let Some(c) = &report.metrics.cache {
                        events.push(cache_event(c));
                    }
                    for d in report.ledger.decisions() {
                        events.push(decision_event(d));
                    }
                    events.push(summary_event(
                        report.metrics.total(),
                        vec![
                            ("decisions", report.ledger.len().into()),
                            ("sc_upgraded", report.implicit_barriers_added.into()),
                            ("fences_inserted", report.explicit_barriers_added.into()),
                        ],
                    ));
                    out.push('\n');
                    out.push_str(&write_metrics(path, &events)?);
                }
            }
            Ok(out)
        }
        Command::Check {
            model,
            ported,
            emit_metrics,
            jobs,
            ..
        } => {
            let mut module = atomig_frontc::compile(source, name)?;
            let clock = deterministic_clock().unwrap_or_else(trace::Clock::system);
            let mut port_report = None;
            if *ported {
                let mut cfg = AtomigConfig::full();
                if let Some(j) = jobs {
                    cfg.jobs = *j;
                }
                cfg.clock = clock.clone();
                port_report = Some(Pipeline::new(cfg).port_module(&mut module));
            }
            if module.func_by_name("main").is_none() {
                return Err("check: the program has no `main`".into());
            }
            let mut checker = Checker::new(*model);
            if let Some(j) = jobs {
                checker.config.jobs = *j;
            }
            let t0 = clock.now();
            let verdict = checker.check(&module, "main");
            let explore = clock.now() - t0;
            let mut note = String::new();
            if let Some(path) = emit_metrics {
                let cm = CheckerMetrics {
                    model: model.to_string(),
                    states: verdict.states,
                    executions: verdict.executions,
                    revisits: verdict.revisits,
                    peak_tracked: verdict.peak_tracked,
                    truncated: verdict.truncated,
                };
                let mut events = vec![meta_event("check", name, None)];
                let mut total = explore;
                if let Some(r) = &port_report {
                    total += r.metrics.total();
                    if let Some(s) = &r.metrics.solver {
                        events.push(solver_event(s));
                    }
                    for p in &r.metrics.phases {
                        events.push(phase_event(p));
                    }
                }
                events.push(phase_event(&PhaseStat {
                    name: "check-explore".into(),
                    duration: explore,
                    items: verdict.states,
                }));
                events.push(checker_event(&cm));
                events.push(summary_event(
                    total,
                    vec![
                        ("states", verdict.states.into()),
                        ("executions", verdict.executions.into()),
                        ("revisits", verdict.revisits.into()),
                        ("peak_tracked", verdict.peak_tracked.into()),
                    ],
                ));
                note = format!("\n{}", write_metrics(path, &events)?);
            }
            // A found violation is a non-zero exit, so `atomig check`
            // can gate CI.
            if verdict.violation.is_some() {
                Err(format!("{model}: {verdict}{note}"))
            } else {
                Ok(format!("{model}: {verdict}{note}"))
            }
        }
        Command::Lint {
            ported,
            alias,
            deny,
            emit_metrics,
            jobs,
            cache_dir,
            ..
        } => {
            let mut module = atomig_frontc::compile(source, name)?;
            let mut cfg = AtomigConfig::full();
            cfg.alias_mode = *alias;
            if let Some(j) = jobs {
                cfg.jobs = *j;
            }
            if let Some(c) = deterministic_clock() {
                cfg.clock = c;
            }
            if let Some(d) = cache_dir {
                cfg.cache = Some(open_cache(Some(d))?);
            }
            if *ported {
                Pipeline::new(cfg.clone()).port_module(&mut module);
            }
            let report = lint_module(&module, &cfg);
            let mut out = report.to_string();
            if let Some(path) = emit_metrics {
                let mut events = vec![meta_event("lint", name, Some(alias.name()))];
                if let Some(s) = &report.metrics.solver {
                    events.push(solver_event(s));
                }
                for p in &report.metrics.phases {
                    events.push(phase_event(p));
                }
                if let Some(c) = &report.metrics.cache {
                    events.push(cache_event(c));
                }
                for l in &report.lints {
                    events.push(finding_event(l));
                }
                events.push(summary_event(
                    report.metrics.total(),
                    vec![
                        ("findings", report.lints.len().into()),
                        ("funcs", report.funcs.into()),
                        ("accesses", report.accesses.into()),
                    ],
                ));
                out.push_str(&write_metrics(path, &events)?);
                out.push('\n');
            }
            let denied: Vec<&LintRule> = deny.iter().filter(|r| report.count(**r) > 0).collect();
            if !denied.is_empty() {
                let names: Vec<&str> = denied.iter().map(|r| r.name()).collect();
                return Err(format!(
                    "{out}lint: denied rule(s) fired: {}",
                    names.join(", ")
                ));
            }
            Ok(out)
        }
        Command::Explain { line, alias, .. } => {
            let module = atomig_frontc::compile(source, name)?;
            let mut cfg = AtomigConfig::full();
            cfg.alias_mode = *alias;
            // Keep original function names in the ledger: decisions are
            // reported where the source says they are, not post-inline.
            cfg.inline = false;
            let mut ported = module.clone();
            let report = Pipeline::new(cfg.clone()).port_module(&mut ported);
            let mut out = String::new();
            match line {
                Some(l) => {
                    let ds = report.ledger.at_line(*l);
                    if ds.is_empty() {
                        out.push_str(&format!(
                            "no porting decision at {name}.c:{l} \
                             (run `atomig explain {name}.c` for the full tree)\n"
                        ));
                    } else {
                        out.push_str(&format!("{} decision(s) at {name}.c:{l}\n", ds.len()));
                        for d in ds {
                            for step in report.ledger.chain(d, name) {
                                out.push_str(&step);
                                out.push('\n');
                            }
                        }
                    }
                }
                None => out.push_str(&report.ledger.render_tree(name)),
            }
            // Pre-port race-candidate context: which shared accesses the
            // audit saw, and the nearest non-covering synchronization.
            let audit = lint_module(&module, &cfg);
            let context: Vec<&atomig_core::Lint> = audit
                .lints
                .iter()
                .filter(|l| l.rule == LintRule::RaceCandidate)
                .filter(|l| match line {
                    Some(n) => l.span == *n,
                    None => true,
                })
                .collect();
            if !context.is_empty() {
                out.push_str("\nrace-candidate context (pre-port audit):\n");
                for l in context {
                    out.push_str(&format!(
                        "  {name}.c:{} {}(): {}\n",
                        l.span, l.func, l.message
                    ));
                    for n in &l.notes {
                        out.push_str(&format!("    note: {n}\n"));
                    }
                }
            }
            Ok(out)
        }
        Command::Metrics { .. } => {
            let tally =
                trace::validate_metrics_jsonl(source).map_err(|e| format!("metrics: {e}"))?;
            let mut out = format!(
                "valid metrics stream: {} event(s) — {} phase(s), {} decision(s), \
                 {} finding(s), {} solver, {} checker; {} ns across phases\nphases: {}",
                tally.events,
                tally.phases,
                tally.decisions,
                tally.findings,
                tally.solvers,
                tally.checkers,
                tally.total_phase_nanos,
                tally.phase_names.join(", ")
            );
            if tally.caches > 0 {
                out.push_str(&format!(
                    "\ncache: {} hit(s), {} miss(es)",
                    tally.cache_hits, tally.cache_misses
                ));
            }
            Ok(out)
        }
        Command::Batch { path, .. } => Err(format!(
            "batch: `{path}` must be resolved with `discover_batch_inputs` \
             and run through `execute_batch`"
        )),
        Command::Run { ported, .. } => {
            let mut module = atomig_frontc::compile(source, name)?;
            if *ported {
                Pipeline::new(AtomigConfig::full()).port_module(&mut module);
            }
            if module.func_by_name("main").is_none() {
                return Err("run: the program has no `main`".into());
            }
            let r = atomig_wmm::run_default(&module);
            if let Some(f) = &r.failure {
                return Err(format!("execution failed: {f}"));
            }
            let cm = CostModel::ARMV8;
            let mut out = String::new();
            for v in &r.output {
                out.push_str(&format!("{v}\n"));
            }
            out.push_str(&format!(
                "exit {} | {} visible steps | {} accesses ({} atomic, {} rmw, {} fences) | cost {}",
                r.exit_value,
                r.steps,
                r.stats.total_accesses(),
                r.stats.atomic_loads + r.stats.atomic_stores,
                r.stats.rmws,
                r.stats.fences + r.stats.light_fences,
                cm.cost(&r.stats)
            ));
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    const MP: &str = r#"
        int flag; int msg;
        void writer(long u) { msg = 1; flag = 1; }
        int main() {
            long t = spawn(writer, 0);
            while (flag == 0) { }
            assert(msg == 1);
            join(t);
            return 0;
        }
    "#;

    #[test]
    fn parses_commands() {
        assert_eq!(parse_args(&args("help")).unwrap(), Command::Help);
        assert_eq!(
            parse_args(&args("port a.c --stage spin --report")).unwrap(),
            Command::Port {
                file: "a.c".into(),
                stage: Stage::Spin,
                alias: AliasMode::TypeBased,
                report_only: true,
                naive: false,
                lasagne: false,
                trace: false,
                emit_metrics: None,
                jobs: None,
                cache_dir: None,
            }
        );
        assert_eq!(
            parse_args(&args(
                "port a.c --alias points-to --trace --emit-metrics m.jsonl"
            ))
            .unwrap(),
            Command::Port {
                file: "a.c".into(),
                stage: Stage::Full,
                alias: AliasMode::PointsTo,
                report_only: false,
                naive: false,
                lasagne: false,
                trace: true,
                emit_metrics: Some("m.jsonl".into()),
                jobs: None,
                cache_dir: None,
            }
        );
        assert_eq!(
            parse_args(&args("check a.c --model tso --ported")).unwrap(),
            Command::Check {
                file: "a.c".into(),
                model: ModelKind::Tso,
                ported: true,
                emit_metrics: None,
                jobs: None,
            }
        );
        assert!(parse_args(&args("port")).is_err());
        assert!(parse_args(&args("port a.c --bogus")).is_err());
        assert!(parse_args(&args("frobnicate")).is_err());
        assert!(parse_args(&args("port a.c --naive --lasagne")).is_err());
    }

    #[test]
    fn port_prints_transformed_ir() {
        let cmd = parse_args(&args("port mp.c")).unwrap();
        let out = execute(&cmd, MP, "mp").unwrap();
        assert!(out.contains("seq_cst"), "{out}");
    }

    #[test]
    fn port_report_prints_statistics() {
        let cmd = parse_args(&args("port mp.c --report")).unwrap();
        let out = execute(&cmd, MP, "mp").unwrap();
        assert!(out.contains("spinloops        : 1"), "{out}");
    }

    #[test]
    fn check_finds_and_fixes_the_bug() {
        // A violation is an Err so the binary exits non-zero (CI gating).
        let broken = parse_args(&args("check mp.c --model arm")).unwrap();
        let out = execute(&broken, MP, "mp").unwrap_err();
        assert!(out.contains("VIOLATION"), "{out}");
        let fixed = parse_args(&args("check mp.c --model arm --ported")).unwrap();
        let out = execute(&fixed, MP, "mp").unwrap();
        assert!(out.contains("PASS"), "{out}");
    }

    #[test]
    fn run_reports_cost_summary() {
        let cmd = parse_args(&args("run mp.c --ported")).unwrap();
        let out = execute(&cmd, MP, "mp").unwrap();
        assert!(out.contains("cost "), "{out}");
        assert!(out.contains("exit 0"), "{out}");
    }

    #[test]
    fn compile_errors_surface() {
        let cmd = parse_args(&args("run bad.c")).unwrap();
        let err = execute(&cmd, "int main() { return nope; }", "bad").unwrap_err();
        assert!(err.contains("nope"), "{err}");
    }

    #[test]
    fn parse_errors_name_value_and_accepted_set() {
        let err = parse_args(&args("port a.c --stage bogus")).unwrap_err();
        assert!(err.contains("bogus"), "{err}");
        assert!(err.contains("original") && err.contains("full"), "{err}");
        let err = parse_args(&args("check a.c --model fast")).unwrap_err();
        assert!(err.contains("fast"), "{err}");
        assert!(err.contains("sc") && err.contains("arm"), "{err}");
        let err = parse_args(&args("lint a.c --deny everything")).unwrap_err();
        assert!(err.contains("everything"), "{err}");
        assert!(
            err.contains("race-candidate") && err.contains("fence-placement"),
            "{err}"
        );
        let err = parse_args(&args("port a.c --alias bogus")).unwrap_err();
        assert!(err.contains("bogus"), "{err}");
        assert!(
            err.contains("type-based") && err.contains("points-to"),
            "{err}"
        );
        let err = parse_args(&args("lint a.c --alias precise")).unwrap_err();
        assert!(err.contains("precise"), "{err}");
    }

    #[test]
    fn parses_lint_command() {
        // `shared-plain-access` is the legacy alias of `race-candidate`.
        assert_eq!(
            parse_args(&args("lint a.c --ported --deny shared-plain-access")).unwrap(),
            Command::Lint {
                file: "a.c".into(),
                ported: true,
                alias: AliasMode::TypeBased,
                deny: vec![LintRule::RaceCandidate],
                emit_metrics: None,
                jobs: None,
                cache_dir: None,
            }
        );
        assert_eq!(
            parse_args(&args("lint a.c --alias points-to --deny race-candidate")).unwrap(),
            Command::Lint {
                file: "a.c".into(),
                ported: false,
                alias: AliasMode::PointsTo,
                deny: vec![LintRule::RaceCandidate],
                emit_metrics: None,
                jobs: None,
                cache_dir: None,
            }
        );
        assert!(parse_args(&args("lint")).is_err());
        assert!(parse_args(&args("lint a.c --deny")).is_err());
        assert!(parse_args(&args("lint a.c --alias")).is_err());
        assert!(parse_args(&args("lint a.c --bogus")).is_err());
    }

    #[test]
    fn lint_flags_original_and_clears_ported() {
        let cmd = parse_args(&args("lint mp.c")).unwrap();
        let out = execute(&cmd, MP, "mp").unwrap();
        assert!(out.contains("fence-placement"), "{out}");
        assert!(out.contains("mp.c:"), "{out}");
        let cmd = parse_args(&args("lint mp.c --ported")).unwrap();
        let out = execute(&cmd, MP, "mp").unwrap();
        assert!(out.contains("0 finding(s)"), "{out}");
    }

    #[test]
    fn lint_deny_gates_exit_status() {
        // Denied rule fires on the original module → Err (non-zero exit).
        let cmd = parse_args(&args("lint mp.c --deny fence-placement")).unwrap();
        let err = execute(&cmd, MP, "mp").unwrap_err();
        assert!(
            err.contains("denied rule(s) fired: fence-placement"),
            "{err}"
        );
        // Ported module is clean, so the same deny passes.
        let cmd = parse_args(&args(
            "lint mp.c --ported --deny fence-placement --deny shared-plain-access",
        ))
        .unwrap();
        assert!(execute(&cmd, MP, "mp").is_ok());
    }

    const SEQLOCK: &str = include_str!("../../../examples/seqlock_alias.c");

    fn tmp(tag: &str) -> String {
        std::env::temp_dir()
            .join(format!("atomig-cli-{tag}-{}.jsonl", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn parses_explain_and_metrics() {
        assert_eq!(
            parse_args(&args("explain a.c:41 --alias points-to")).unwrap(),
            Command::Explain {
                file: "a.c".into(),
                line: Some(41),
                alias: AliasMode::PointsTo,
            }
        );
        assert_eq!(
            parse_args(&args("explain a.c")).unwrap(),
            Command::Explain {
                file: "a.c".into(),
                line: None,
                alias: AliasMode::TypeBased,
            }
        );
        assert_eq!(
            parse_args(&args("metrics run.jsonl")).unwrap(),
            Command::Metrics {
                file: "run.jsonl".into(),
            }
        );
        assert!(parse_args(&args("explain")).is_err());
        assert!(parse_args(&args("explain a.c:forty")).is_err());
        assert!(parse_args(&args("explain a.c --bogus")).is_err());
        assert!(parse_args(&args("metrics")).is_err());
        assert!(parse_args(&args("port a.c --emit-metrics")).is_err());
    }

    #[test]
    fn explain_rejects_malformed_targets_by_name() {
        // Trailing colon: previously split into ("a.c", "") and surfaced
        // as a confusing empty-string parse error.
        let err = parse_args(&args("explain a.c:")).unwrap_err();
        assert!(err.contains("trailing `:`"), "{err}");
        assert!(err.contains("a.c:"), "{err}");
        // No file before the colon: previously treated `:41` as a file
        // named ":41" and silently explained nothing.
        let err = parse_args(&args("explain :41")).unwrap_err();
        assert!(err.contains("no file before"), "{err}");
        // Line 0 can never match a 1-based source span.
        let err = parse_args(&args("explain a.c:0")).unwrap_err();
        assert!(err.contains("1-based"), "{err}");
        // Non-numeric suffix keeps the existing named error.
        let err = parse_args(&args("explain a.c:forty")).unwrap_err();
        assert!(err.contains("forty"), "{err}");
    }

    #[test]
    fn jobs_flag_parses_and_rejects_bad_counts() {
        assert_eq!(
            parse_args(&args("port a.c --jobs 4")).unwrap(),
            Command::Port {
                file: "a.c".into(),
                stage: Stage::Full,
                alias: AliasMode::TypeBased,
                report_only: false,
                naive: false,
                lasagne: false,
                trace: false,
                emit_metrics: None,
                jobs: Some(4),
                cache_dir: None,
            }
        );
        match parse_args(&args("check a.c --jobs 2")).unwrap() {
            Command::Check { jobs, .. } => assert_eq!(jobs, Some(2)),
            other => panic!("{other:?}"),
        }
        match parse_args(&args("lint a.c --jobs 1")).unwrap() {
            Command::Lint { jobs, .. } => assert_eq!(jobs, Some(1)),
            other => panic!("{other:?}"),
        }
        let err = parse_args(&args("port a.c --jobs 0")).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = parse_args(&args("port a.c --jobs many")).unwrap_err();
        assert!(err.contains("many"), "{err}");
        assert!(parse_args(&args("port a.c --jobs")).is_err());
        // `run` has no parallel phase, so it takes no --jobs.
        assert!(parse_args(&args("run a.c --jobs 2")).is_err());
    }

    #[test]
    fn explain_traces_a_buddy_upgrade_to_its_spin_seed() {
        // Acceptance: the h->epoch store on line 30 of seqlock_alias.c is
        // upgraded by sticky-buddy expansion; the chain must name the
        // alias class, the backend, and end at the spin-control seed.
        let cmd = parse_args(&args("explain seqlock_alias.c:30 --alias points-to")).unwrap();
        let out = execute(&cmd, SEQLOCK, "seqlock_alias").unwrap();
        assert!(out.contains("decision(s) at seqlock_alias.c:30"), "{out}");
        assert!(out.contains("sticky-buddy"), "{out}");
        assert!(out.contains("alias class"), "{out}");
        assert!(out.contains("points-to"), "{out}");
        assert!(out.contains("spin-control"), "{out}");
        assert!(out.contains("writer_step"), "{out}");
        // Same chain under the paper's type-based keys.
        let cmd = parse_args(&args("explain seqlock_alias.c:30")).unwrap();
        let out = execute(&cmd, SEQLOCK, "seqlock_alias").unwrap();
        assert!(out.contains("sticky-buddy"), "{out}");
        assert!(out.contains("type-based"), "{out}");
    }

    #[test]
    fn explain_without_line_prints_the_full_tree() {
        let cmd = parse_args(&args("explain mp.c")).unwrap();
        let out = execute(&cmd, MP, "mp").unwrap();
        assert!(out.contains("decision trace for `mp`"), "{out}");
        assert!(out.contains("spin-control"), "{out}");
        // Pre-port audit context rides along for shared plain accesses.
        assert!(out.contains("race-candidate context"), "{out}");
    }

    #[test]
    fn explain_reports_lines_without_decisions() {
        let cmd = parse_args(&args("explain mp.c:1")).unwrap();
        let out = execute(&cmd, MP, "mp").unwrap();
        assert!(out.contains("no porting decision at mp.c:1"), "{out}");
    }

    #[test]
    fn trace_flag_appends_the_decision_tree() {
        let cmd = parse_args(&args("port mp.c --report --trace")).unwrap();
        let out = execute(&cmd, MP, "mp").unwrap();
        assert!(out.contains("spinloops        : 1"), "{out}");
        assert!(out.contains("decision trace for `mp`"), "{out}");
        assert!(out.contains("spin-control"), "{out}");
    }

    #[test]
    fn emit_metrics_streams_validate_with_nonzero_timings() {
        // Acceptance: port, lint, and check streams all round-trip
        // through the schema validator with nonzero phase timings.
        let p_port = tmp("port");
        let cmd = parse_args(&args(&format!(
            "port mp.c --report --emit-metrics {p_port}"
        )))
        .unwrap();
        let out = execute(&cmd, MP, "mp").unwrap();
        assert!(out.contains("metrics: wrote"), "{out}");
        let text = std::fs::read_to_string(&p_port).unwrap();
        std::fs::remove_file(&p_port).ok();
        let tally = atomig_core::validate_metrics_jsonl(&text).unwrap();
        assert!(tally.total_phase_nanos > 0, "{tally:?}");
        assert!(tally.decisions > 0, "{tally:?}");
        assert!(tally.phase_names.iter().any(|n| n == "port-total"));
        // The `metrics` subcommand accepts what `--emit-metrics` wrote.
        let cmd = parse_args(&args("metrics m.jsonl")).unwrap();
        let out = execute(&cmd, &text, "m").unwrap();
        assert!(out.contains("valid metrics stream"), "{out}");

        let p_lint = tmp("lint");
        let cmd = parse_args(&args(&format!("lint mp.c --emit-metrics {p_lint}"))).unwrap();
        execute(&cmd, MP, "mp").unwrap();
        let text = std::fs::read_to_string(&p_lint).unwrap();
        std::fs::remove_file(&p_lint).ok();
        let tally = atomig_core::validate_metrics_jsonl(&text).unwrap();
        assert!(tally.total_phase_nanos > 0, "{tally:?}");
        assert!(tally.findings > 0 && tally.solvers == 1, "{tally:?}");
        assert!(tally.phase_names.iter().any(|n| n == "lint-total"));

        let p_check = tmp("check");
        let cmd = parse_args(&args(&format!(
            "check mp.c --ported --emit-metrics {p_check}"
        )))
        .unwrap();
        execute(&cmd, MP, "mp").unwrap();
        let text = std::fs::read_to_string(&p_check).unwrap();
        std::fs::remove_file(&p_check).ok();
        let tally = atomig_core::validate_metrics_jsonl(&text).unwrap();
        assert!(tally.total_phase_nanos > 0, "{tally:?}");
        assert!(tally.checkers == 1, "{tally:?}");
        assert!(tally.phase_names.iter().any(|n| n == "check-explore"));
    }

    #[test]
    fn metrics_rejects_malformed_streams() {
        let cmd = parse_args(&args("metrics bad.jsonl")).unwrap();
        let err = execute(&cmd, "{\"event\":\"phase\"}\n", "bad").unwrap_err();
        assert!(err.contains("metrics:"), "{err}");
    }

    #[test]
    fn baselines_reject_observability_flags() {
        let cmd = parse_args(&args("port mp.c --naive --trace")).unwrap();
        let err = execute(&cmd, MP, "mp").unwrap_err();
        assert!(err.contains("AtoMig pipeline"), "{err}");
    }

    #[test]
    fn baselines_apply() {
        let cmd = parse_args(&args("port mp.c --naive --report")).unwrap();
        let out = execute(&cmd, MP, "mp").unwrap();
        assert!(out.contains("naive port"), "{out}");
        let cmd = parse_args(&args("port mp.c --lasagne --report")).unwrap();
        let out = execute(&cmd, MP, "mp").unwrap();
        assert!(out.contains("lasagne port"), "{out}");
    }

    fn tmp_dir(tag: &str) -> String {
        let d = std::env::temp_dir().join(format!("atomig-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.to_string_lossy().into_owned()
    }

    #[test]
    fn parses_batch_command() {
        assert_eq!(
            parse_args(&args("batch examples --jobs 2 --alias points-to")).unwrap(),
            Command::Batch {
                path: "examples".into(),
                stage: Stage::Full,
                alias: AliasMode::PointsTo,
                jobs: Some(2),
                emit_metrics: None,
                cache_dir: None,
                no_cache: false,
            }
        );
        assert_eq!(
            parse_args(&args(
                "batch list.txt --stage spin --no-cache --emit-metrics b.jsonl"
            ))
            .unwrap(),
            Command::Batch {
                path: "list.txt".into(),
                stage: Stage::Spin,
                alias: AliasMode::TypeBased,
                jobs: None,
                emit_metrics: Some("b.jsonl".into()),
                cache_dir: None,
                no_cache: true,
            }
        );
        assert!(parse_args(&args("batch")).is_err());
        assert!(parse_args(&args("batch d --bogus")).is_err());
        let err = parse_args(&args("batch d --cache-dir c --no-cache")).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn cache_dir_flag_round_trips_on_port_and_lint() {
        match parse_args(&args("port a.c --cache-dir .cache")).unwrap() {
            Command::Port { cache_dir, .. } => assert_eq!(cache_dir.as_deref(), Some(".cache")),
            other => panic!("{other:?}"),
        }
        match parse_args(&args("lint a.c --cache-dir .cache")).unwrap() {
            Command::Lint { cache_dir, .. } => assert_eq!(cache_dir.as_deref(), Some(".cache")),
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&args("port a.c --cache-dir")).is_err());
        // `check` has no detection phase to cache.
        assert!(parse_args(&args("check a.c --cache-dir c")).is_err());
        // Baselines skip the pipeline entirely, so a cache is an error.
        let cmd = parse_args(&args("port mp.c --naive --cache-dir c")).unwrap();
        let err = execute(&cmd, MP, "mp").unwrap_err();
        assert!(err.contains("AtoMig pipeline"), "{err}");
    }

    #[test]
    fn read_source_names_directories_and_suggests_batch() {
        let d = tmp_dir("readdir");
        let err = read_source(&d).unwrap_err();
        assert!(err.contains("is a directory"), "{err}");
        assert!(err.contains(&format!("atomig batch {d}")), "{err}");
        std::fs::remove_dir_all(&d).ok();
        // Regular missing files keep the OS error text.
        let err = read_source("definitely-missing.c").unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }

    #[test]
    fn discover_handles_dirs_files_and_manifests() {
        let d = tmp_dir("discover");
        std::fs::create_dir_all(format!("{d}/sub")).unwrap();
        std::fs::write(format!("{d}/b.c"), "int main() { return 0; }").unwrap();
        std::fs::write(format!("{d}/sub/a.c"), "int x;").unwrap();
        std::fs::write(format!("{d}/notes.txt"), "not C").unwrap();
        let got = discover_batch_inputs(&d).unwrap();
        assert_eq!(
            got.iter().map(|i| i.name.as_str()).collect::<Vec<_>>(),
            vec!["b", "a"],
            "sorted by path: {d}/b.c before {d}/sub/a.c"
        );
        // A single .c file is a one-module batch.
        let got = discover_batch_inputs(&format!("{d}/b.c")).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].name, "b");
        // A manifest resolves entries relative to its own directory.
        std::fs::write(format!("{d}/list.txt"), "# comment\n\nb.c\nsub/a.c\n").unwrap();
        let got = discover_batch_inputs(&format!("{d}/list.txt")).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].name, "b");
        assert_eq!(got[1].name, "a");
        assert!(discover_batch_inputs(&format!("{d}/missing.txt")).is_err());
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn batch_runs_cold_then_warm_with_identical_reports() {
        let cache = tmp_dir("batch-cache");
        let cmd = Command::Batch {
            path: "mem".into(),
            stage: Stage::Full,
            alias: AliasMode::TypeBased,
            jobs: Some(2),
            emit_metrics: None,
            cache_dir: Some(cache.clone()),
            no_cache: false,
        };
        let inputs = vec![
            BatchInput {
                name: "mp".into(),
                source: MP.into(),
            },
            BatchInput {
                name: "seqlock_alias".into(),
                source: SEQLOCK.into(),
            },
        ];
        std::env::set_var("ATOMIG_DETERMINISTIC", "1");
        let cold = execute_batch(&cmd, &inputs).unwrap();
        let warm = execute_batch(&cmd, &inputs).unwrap();
        std::env::remove_var("ATOMIG_DETERMINISTIC");
        assert_eq!(cold, warm, "warm batch output must be byte-identical");
        assert!(cold.contains("batch report: 2 module(s)"), "{cold}");
        assert!(cold.contains("totals:"), "{cold}");
        assert!(!cold.contains("cache:"), "counters must stay out: {cold}");

        // The metrics stream is where the counters live: warm = all hits.
        let p = tmp("batch-metrics");
        let with_metrics = Command::Batch {
            path: "mem".into(),
            stage: Stage::Full,
            alias: AliasMode::TypeBased,
            jobs: Some(2),
            emit_metrics: Some(p.clone()),
            cache_dir: Some(cache.clone()),
            no_cache: false,
        };
        std::env::set_var("ATOMIG_DETERMINISTIC", "1");
        execute_batch(&with_metrics, &inputs).unwrap();
        std::env::remove_var("ATOMIG_DETERMINISTIC");
        let text = std::fs::read_to_string(&p).unwrap();
        std::fs::remove_file(&p).ok();
        std::fs::remove_dir_all(&cache).ok();
        let tally = atomig_core::validate_metrics_jsonl(&text).unwrap();
        assert_eq!(tally.caches, 1, "{text}");
        assert!(tally.cache_hits > 0 && tally.cache_misses == 0, "{text}");
        assert!(tally.phase_names.iter().any(|n| n == "port:mp"), "{text}");
        // The metrics subcommand surfaces the tallied counters.
        let out = execute(&parse_args(&args("metrics b.jsonl")).unwrap(), &text, "b").unwrap();
        assert!(out.contains("cache:") && out.contains("hit(s)"), "{out}");
    }

    #[test]
    fn batch_rejects_empty_input_sets_and_aggregates_failures() {
        let cmd = Command::Batch {
            path: "empty".into(),
            stage: Stage::Full,
            alias: AliasMode::TypeBased,
            jobs: Some(1),
            emit_metrics: None,
            cache_dir: None,
            no_cache: true,
        };
        let err = execute_batch(&cmd, &[]).unwrap_err();
        assert!(err.contains("no .c files"), "{err}");
        let inputs = vec![
            BatchInput {
                name: "good".into(),
                source: "int main() { return 0; }".into(),
            },
            BatchInput {
                name: "bad".into(),
                source: "int main() { return nope; }".into(),
            },
        ];
        let err = execute_batch(&cmd, &inputs).unwrap_err();
        assert!(err.contains("1 of 2 module(s) failed"), "{err}");
        assert!(err.contains("bad:"), "{err}");
    }

    #[test]
    fn port_trace_appends_cache_counters_only_with_a_cache() {
        let cache = tmp_dir("port-cache");
        let cmd = parse_args(&args(&format!(
            "port mp.c --report --trace --cache-dir {cache}"
        )))
        .unwrap();
        let cold = execute(&cmd, MP, "mp").unwrap();
        assert!(cold.contains("cache: 0 hit(s)"), "{cold}");
        let warm = execute(&cmd, MP, "mp").unwrap();
        std::fs::remove_dir_all(&cache).ok();
        assert!(warm.contains("miss(es)"), "{warm}");
        assert!(!warm.contains(" 0 hit(s)"), "warm run must hit: {warm}");
        // Without --cache-dir the trace has no cache line at all.
        let cmd = parse_args(&args("port mp.c --report --trace")).unwrap();
        let out = execute(&cmd, MP, "mp").unwrap();
        assert!(!out.contains("cache:"), "{out}");
    }
}
