//! Implementation of the `atomig` command-line tool.
//!
//! Mirrors the paper's workflow (Figure 2) as a CLI:
//!
//! ```console
//! $ atomig port prog.c              # port and print the transformed IR
//! $ atomig port prog.c --report     # print the porting report instead
//! $ atomig port prog.c --stage spin # stop after spinloop detection
//! $ atomig check prog.c --model arm # exhaustively model-check @main
//! $ atomig run prog.c               # run deterministically, print cost
//! $ atomig lint prog.c              # static WMM-robustness audit
//! ```

use atomig_core::{lint_module, AliasMode, AtomigConfig, LintRule, Pipeline, Stage};
use atomig_wmm::{Checker, CostModel, ModelKind};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `atomig port <file> [--stage s] [--alias a] [--report]
    /// [--naive|--lasagne]`
    Port {
        /// Input path.
        file: String,
        /// Detection stage.
        stage: Stage,
        /// Alias backend for sticky-buddy expansion.
        alias: AliasMode,
        /// Print the report instead of the transformed IR.
        report_only: bool,
        /// Apply the Naïve baseline instead of AtoMig.
        naive: bool,
        /// Apply the Lasagne-style baseline instead of AtoMig.
        lasagne: bool,
    },
    /// `atomig check <file> [--model m] [--ported]`
    Check {
        /// Input path.
        file: String,
        /// Memory model to explore.
        model: ModelKind,
        /// Port with full AtoMig before checking.
        ported: bool,
    },
    /// `atomig run <file> [--ported]`
    Run {
        /// Input path.
        file: String,
        /// Port with full AtoMig before running.
        ported: bool,
    },
    /// `atomig lint <file> [--ported] [--alias a] [--deny rule]*`
    Lint {
        /// Input path.
        file: String,
        /// Port with full AtoMig before auditing (should then be clean).
        ported: bool,
        /// Alias backend mirrored by the fence-placement dry run.
        alias: AliasMode,
        /// Rules whose findings make the exit status non-zero.
        deny: Vec<LintRule>,
    },
    /// `atomig help`
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
atomig — port legacy x86 (TSO) programs to weak memory models

USAGE:
    atomig port  <file.c> [--stage original|expl|spin|full] [--report]
                          [--alias type-based|points-to]
                          [--naive | --lasagne]
    atomig check <file.c> [--model sc|tso|wmm|arm] [--ported]
    atomig run   <file.c> [--ported]
    atomig lint  <file.c> [--ported] [--alias type-based|points-to]
                          [--deny race-candidate|fence-placement]

`port` prints the transformed IR (or, with --report, the Table-3 style
porting statistics). `check` exhaustively model-checks @main and reports
the first assertion violation. `run` executes @main deterministically and
prints the Armv8 cost-model summary. `lint` statically audits the module
for WMM-portability hazards and prints sourced diagnostics; findings for
a --deny'd rule make the exit status non-zero (for CI). `--alias` picks
the buddy-expansion backend: the paper's type-based keys (default) or the
Andersen-style points-to analysis.";

/// Parses a command line (without the program name).
///
/// # Errors
///
/// Returns a message suitable for printing on unknown flags or commands.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let cmd = match it.next() {
        None => return Ok(Command::Help),
        Some(c) => c.as_str(),
    };
    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "port" => {
            let mut file = None;
            let mut stage = Stage::Full;
            let mut alias = AliasMode::TypeBased;
            let mut report_only = false;
            let mut naive = false;
            let mut lasagne = false;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--report" => report_only = true,
                    "--naive" => naive = true,
                    "--lasagne" => lasagne = true,
                    "--stage" => {
                        let v = it.next().ok_or("--stage needs a value")?;
                        stage = parse_stage(v)?;
                    }
                    "--alias" => {
                        let v = it.next().ok_or("--alias needs a value")?;
                        alias = parse_alias(v)?;
                    }
                    f if !f.starts_with('-') && file.is_none() => file = Some(f.to_string()),
                    other => return Err(format!("unknown argument `{other}`")),
                }
            }
            if naive && lasagne {
                return Err("--naive and --lasagne are mutually exclusive".into());
            }
            Ok(Command::Port {
                file: file.ok_or("port: missing input file")?,
                stage,
                alias,
                report_only,
                naive,
                lasagne,
            })
        }
        "check" => {
            let mut file = None;
            let mut model = ModelKind::Arm;
            let mut ported = false;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--ported" => ported = true,
                    "--model" => {
                        let v = it.next().ok_or("--model needs a value")?;
                        model = parse_model(v)?;
                    }
                    f if !f.starts_with('-') && file.is_none() => file = Some(f.to_string()),
                    other => return Err(format!("unknown argument `{other}`")),
                }
            }
            Ok(Command::Check {
                file: file.ok_or("check: missing input file")?,
                model,
                ported,
            })
        }
        "run" => {
            let mut file = None;
            let mut ported = false;
            for a in it {
                match a.as_str() {
                    "--ported" => ported = true,
                    f if !f.starts_with('-') && file.is_none() => file = Some(f.to_string()),
                    other => return Err(format!("unknown argument `{other}`")),
                }
            }
            Ok(Command::Run {
                file: file.ok_or("run: missing input file")?,
                ported,
            })
        }
        "lint" => {
            let mut file = None;
            let mut ported = false;
            let mut alias = AliasMode::TypeBased;
            let mut deny = Vec::new();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--ported" => ported = true,
                    "--alias" => {
                        let v = it.next().ok_or("--alias needs a value")?;
                        alias = parse_alias(v)?;
                    }
                    "--deny" => {
                        let v = it.next().ok_or("--deny needs a value")?;
                        let rule = LintRule::from_name(v).ok_or_else(|| {
                            format!(
                                "unknown lint rule `{v}` (accepted: {})",
                                rule_names().join(", ")
                            )
                        })?;
                        if !deny.contains(&rule) {
                            deny.push(rule);
                        }
                    }
                    f if !f.starts_with('-') && file.is_none() => file = Some(f.to_string()),
                    other => return Err(format!("unknown argument `{other}`")),
                }
            }
            Ok(Command::Lint {
                file: file.ok_or("lint: missing input file")?,
                ported,
                alias,
                deny,
            })
        }
        other => Err(format!("unknown command `{other}` (try `atomig help`)")),
    }
}

fn rule_names() -> Vec<&'static str> {
    LintRule::ALL.iter().map(|r| r.name()).collect()
}

fn parse_stage(s: &str) -> Result<Stage, String> {
    Ok(match s {
        "original" => Stage::Original,
        "expl" | "explicit" => Stage::Explicit,
        "spin" => Stage::Spin,
        "full" | "atomig" => Stage::Full,
        other => {
            return Err(format!(
                "unknown stage `{other}` (accepted: original, expl, spin, full)"
            ))
        }
    })
}

fn parse_alias(s: &str) -> Result<AliasMode, String> {
    AliasMode::from_name(s)
        .ok_or_else(|| format!("unknown alias mode `{s}` (accepted: type-based, points-to)"))
}

fn parse_model(s: &str) -> Result<ModelKind, String> {
    Ok(match s {
        "sc" => ModelKind::Sc,
        "tso" => ModelKind::Tso,
        "wmm" => ModelKind::Wmm,
        "arm" => ModelKind::Arm,
        other => {
            return Err(format!(
                "unknown model `{other}` (accepted: sc, tso, wmm, arm)"
            ))
        }
    })
}

fn config_for(stage: Stage) -> AtomigConfig {
    match stage {
        Stage::Original => AtomigConfig::original(),
        Stage::Explicit => AtomigConfig::explicit_only(),
        Stage::Spin => AtomigConfig::spin(),
        Stage::Full => AtomigConfig::full(),
    }
}

/// Executes a command against already-loaded source text, returning the
/// text to print (separated from I/O for testability).
///
/// # Errors
///
/// Returns compile errors, check violations and trap messages as strings.
pub fn execute(cmd: &Command, source: &str, name: &str) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Port {
            stage,
            alias,
            report_only,
            naive,
            lasagne,
            ..
        } => {
            let mut module = atomig_frontc::compile(source, name)?;
            let summary = if *naive {
                let stats = atomig_core::naive_port(&mut module);
                format!(
                    "naive port: {} accesses upgraded, {} private skipped",
                    stats.upgraded, stats.skipped_private
                )
            } else if *lasagne {
                let stats = atomig_core::lasagne_port(&mut module);
                format!(
                    "lasagne port: {} fences inserted, {} removed",
                    stats.fences_inserted, stats.fences_removed
                )
            } else {
                let mut cfg = config_for(*stage);
                cfg.alias_mode = *alias;
                let report = Pipeline::new(cfg).port_module(&mut module);
                format!("{report}")
            };
            atomig_mir::verify_module(&module).map_err(|e| e.to_string())?;
            if *report_only {
                Ok(summary)
            } else {
                Ok(atomig_mir::printer::print_module(&module))
            }
        }
        Command::Check { model, ported, .. } => {
            let mut module = atomig_frontc::compile(source, name)?;
            if *ported {
                Pipeline::new(AtomigConfig::full()).port_module(&mut module);
            }
            if module.func_by_name("main").is_none() {
                return Err("check: the program has no `main`".into());
            }
            let verdict = Checker::new(*model).check(&module, "main");
            // A found violation is a non-zero exit, so `atomig check`
            // can gate CI.
            if verdict.violation.is_some() {
                Err(format!("{model}: {verdict}"))
            } else {
                Ok(format!("{model}: {verdict}"))
            }
        }
        Command::Lint {
            ported,
            alias,
            deny,
            ..
        } => {
            let mut module = atomig_frontc::compile(source, name)?;
            let mut cfg = AtomigConfig::full();
            cfg.alias_mode = *alias;
            if *ported {
                Pipeline::new(cfg.clone()).port_module(&mut module);
            }
            let report = lint_module(&module, &cfg);
            let out = report.to_string();
            let denied: Vec<&LintRule> = deny.iter().filter(|r| report.count(**r) > 0).collect();
            if !denied.is_empty() {
                let names: Vec<&str> = denied.iter().map(|r| r.name()).collect();
                return Err(format!(
                    "{out}lint: denied rule(s) fired: {}",
                    names.join(", ")
                ));
            }
            Ok(out)
        }
        Command::Run { ported, .. } => {
            let mut module = atomig_frontc::compile(source, name)?;
            if *ported {
                Pipeline::new(AtomigConfig::full()).port_module(&mut module);
            }
            if module.func_by_name("main").is_none() {
                return Err("run: the program has no `main`".into());
            }
            let r = atomig_wmm::run_default(&module);
            if let Some(f) = &r.failure {
                return Err(format!("execution failed: {f}"));
            }
            let cm = CostModel::ARMV8;
            let mut out = String::new();
            for v in &r.output {
                out.push_str(&format!("{v}\n"));
            }
            out.push_str(&format!(
                "exit {} | {} visible steps | {} accesses ({} atomic, {} rmw, {} fences) | cost {}",
                r.exit_value,
                r.steps,
                r.stats.total_accesses(),
                r.stats.atomic_loads + r.stats.atomic_stores,
                r.stats.rmws,
                r.stats.fences + r.stats.light_fences,
                cm.cost(&r.stats)
            ));
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    const MP: &str = r#"
        int flag; int msg;
        void writer(long u) { msg = 1; flag = 1; }
        int main() {
            long t = spawn(writer, 0);
            while (flag == 0) { }
            assert(msg == 1);
            join(t);
            return 0;
        }
    "#;

    #[test]
    fn parses_commands() {
        assert_eq!(parse_args(&args("help")).unwrap(), Command::Help);
        assert_eq!(
            parse_args(&args("port a.c --stage spin --report")).unwrap(),
            Command::Port {
                file: "a.c".into(),
                stage: Stage::Spin,
                alias: AliasMode::TypeBased,
                report_only: true,
                naive: false,
                lasagne: false,
            }
        );
        assert_eq!(
            parse_args(&args("port a.c --alias points-to")).unwrap(),
            Command::Port {
                file: "a.c".into(),
                stage: Stage::Full,
                alias: AliasMode::PointsTo,
                report_only: false,
                naive: false,
                lasagne: false,
            }
        );
        assert_eq!(
            parse_args(&args("check a.c --model tso --ported")).unwrap(),
            Command::Check {
                file: "a.c".into(),
                model: ModelKind::Tso,
                ported: true,
            }
        );
        assert!(parse_args(&args("port")).is_err());
        assert!(parse_args(&args("port a.c --bogus")).is_err());
        assert!(parse_args(&args("frobnicate")).is_err());
        assert!(parse_args(&args("port a.c --naive --lasagne")).is_err());
    }

    #[test]
    fn port_prints_transformed_ir() {
        let cmd = parse_args(&args("port mp.c")).unwrap();
        let out = execute(&cmd, MP, "mp").unwrap();
        assert!(out.contains("seq_cst"), "{out}");
    }

    #[test]
    fn port_report_prints_statistics() {
        let cmd = parse_args(&args("port mp.c --report")).unwrap();
        let out = execute(&cmd, MP, "mp").unwrap();
        assert!(out.contains("spinloops        : 1"), "{out}");
    }

    #[test]
    fn check_finds_and_fixes_the_bug() {
        // A violation is an Err so the binary exits non-zero (CI gating).
        let broken = parse_args(&args("check mp.c --model arm")).unwrap();
        let out = execute(&broken, MP, "mp").unwrap_err();
        assert!(out.contains("VIOLATION"), "{out}");
        let fixed = parse_args(&args("check mp.c --model arm --ported")).unwrap();
        let out = execute(&fixed, MP, "mp").unwrap();
        assert!(out.contains("PASS"), "{out}");
    }

    #[test]
    fn run_reports_cost_summary() {
        let cmd = parse_args(&args("run mp.c --ported")).unwrap();
        let out = execute(&cmd, MP, "mp").unwrap();
        assert!(out.contains("cost "), "{out}");
        assert!(out.contains("exit 0"), "{out}");
    }

    #[test]
    fn compile_errors_surface() {
        let cmd = parse_args(&args("run bad.c")).unwrap();
        let err = execute(&cmd, "int main() { return nope; }", "bad").unwrap_err();
        assert!(err.contains("nope"), "{err}");
    }

    #[test]
    fn parse_errors_name_value_and_accepted_set() {
        let err = parse_args(&args("port a.c --stage bogus")).unwrap_err();
        assert!(err.contains("bogus"), "{err}");
        assert!(err.contains("original") && err.contains("full"), "{err}");
        let err = parse_args(&args("check a.c --model fast")).unwrap_err();
        assert!(err.contains("fast"), "{err}");
        assert!(err.contains("sc") && err.contains("arm"), "{err}");
        let err = parse_args(&args("lint a.c --deny everything")).unwrap_err();
        assert!(err.contains("everything"), "{err}");
        assert!(
            err.contains("race-candidate") && err.contains("fence-placement"),
            "{err}"
        );
        let err = parse_args(&args("port a.c --alias bogus")).unwrap_err();
        assert!(err.contains("bogus"), "{err}");
        assert!(
            err.contains("type-based") && err.contains("points-to"),
            "{err}"
        );
        let err = parse_args(&args("lint a.c --alias precise")).unwrap_err();
        assert!(err.contains("precise"), "{err}");
    }

    #[test]
    fn parses_lint_command() {
        // `shared-plain-access` is the legacy alias of `race-candidate`.
        assert_eq!(
            parse_args(&args("lint a.c --ported --deny shared-plain-access")).unwrap(),
            Command::Lint {
                file: "a.c".into(),
                ported: true,
                alias: AliasMode::TypeBased,
                deny: vec![LintRule::RaceCandidate],
            }
        );
        assert_eq!(
            parse_args(&args("lint a.c --alias points-to --deny race-candidate")).unwrap(),
            Command::Lint {
                file: "a.c".into(),
                ported: false,
                alias: AliasMode::PointsTo,
                deny: vec![LintRule::RaceCandidate],
            }
        );
        assert!(parse_args(&args("lint")).is_err());
        assert!(parse_args(&args("lint a.c --deny")).is_err());
        assert!(parse_args(&args("lint a.c --alias")).is_err());
        assert!(parse_args(&args("lint a.c --bogus")).is_err());
    }

    #[test]
    fn lint_flags_original_and_clears_ported() {
        let cmd = parse_args(&args("lint mp.c")).unwrap();
        let out = execute(&cmd, MP, "mp").unwrap();
        assert!(out.contains("fence-placement"), "{out}");
        assert!(out.contains("mp.c:"), "{out}");
        let cmd = parse_args(&args("lint mp.c --ported")).unwrap();
        let out = execute(&cmd, MP, "mp").unwrap();
        assert!(out.contains("0 finding(s)"), "{out}");
    }

    #[test]
    fn lint_deny_gates_exit_status() {
        // Denied rule fires on the original module → Err (non-zero exit).
        let cmd = parse_args(&args("lint mp.c --deny fence-placement")).unwrap();
        let err = execute(&cmd, MP, "mp").unwrap_err();
        assert!(
            err.contains("denied rule(s) fired: fence-placement"),
            "{err}"
        );
        // Ported module is clean, so the same deny passes.
        let cmd = parse_args(&args(
            "lint mp.c --ported --deny fence-placement --deny shared-plain-access",
        ))
        .unwrap();
        assert!(execute(&cmd, MP, "mp").is_ok());
    }

    #[test]
    fn baselines_apply() {
        let cmd = parse_args(&args("port mp.c --naive --report")).unwrap();
        let out = execute(&cmd, MP, "mp").unwrap();
        assert!(out.contains("naive port"), "{out}");
        let cmd = parse_args(&args("port mp.c --lasagne --report")).unwrap();
        let out = execute(&cmd, MP, "mp").unwrap();
        assert!(out.contains("lasagne port"), "{out}");
    }
}
