//! The `atomig` binary. See [`atomig_cli`] for the command surface.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match atomig_cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", atomig_cli::USAGE);
            return ExitCode::from(2);
        }
    };
    let file = match &cmd {
        atomig_cli::Command::Help => {
            println!("{}", atomig_cli::USAGE);
            return ExitCode::SUCCESS;
        }
        atomig_cli::Command::Port { file, .. }
        | atomig_cli::Command::Check { file, .. }
        | atomig_cli::Command::Run { file, .. }
        | atomig_cli::Command::Lint { file, .. }
        | atomig_cli::Command::Explain { file, .. }
        | atomig_cli::Command::Metrics { file } => file.clone(),
    };
    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read `{file}`: {e}");
            return ExitCode::from(2);
        }
    };
    let name = file
        .rsplit('/')
        .next()
        .unwrap_or(&file)
        .trim_end_matches(".c");
    match atomig_cli::execute(&cmd, &source, name) {
        Ok(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
