//! The `atomig` binary. See [`atomig_cli`] for the command surface.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match atomig_cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", atomig_cli::USAGE);
            return ExitCode::from(2);
        }
    };
    let file = match &cmd {
        atomig_cli::Command::Help => {
            println!("{}", atomig_cli::USAGE);
            return ExitCode::SUCCESS;
        }
        atomig_cli::Command::Batch { path, .. } => {
            let inputs = match atomig_cli::discover_batch_inputs(path) {
                Ok(i) => i,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            return match atomig_cli::execute_batch(&cmd, &inputs) {
                Ok(out) => {
                    println!("{out}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
        atomig_cli::Command::Port { file, .. }
        | atomig_cli::Command::Check { file, .. }
        | atomig_cli::Command::Run { file, .. }
        | atomig_cli::Command::Lint { file, .. }
        | atomig_cli::Command::Explain { file, .. }
        | atomig_cli::Command::Metrics { file } => file.clone(),
    };
    let source = match atomig_cli::read_source(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match atomig_cli::execute(&cmd, &source, atomig_cli::module_name(&file)) {
        Ok(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
