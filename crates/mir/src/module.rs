//! Modules, globals and named struct types.

use crate::func::Function;
use crate::types::Type;
use std::fmt;

/// Id of a global variable, indexing [`Module::globals`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

impl fmt::Display for GlobalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@g{}", self.0)
    }
}

/// Id of a function, indexing [`Module::funcs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@f{}", self.0)
    }
}

/// Id of a named struct type, indexing [`Module::structs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructId(pub u32);

impl fmt::Display for StructId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%s{}", self.0)
    }
}

/// A named struct type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Source-level name (`Node`, `lf_slot`, ...).
    pub name: String,
    /// Field types in declaration order.
    pub fields: Vec<Type>,
}

/// A module-level global variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDef {
    /// Source-level name, unique within the module (without `@`).
    pub name: String,
    /// Variable type.
    pub ty: Type,
    /// Flat initializer, one `i64` per scalar slot (zero-filled if short).
    pub init: Vec<i64>,
}

/// A linked program: the unit AtoMig's link-time passes operate on (§3.1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Module {
    /// Module name (informational).
    pub name: String,
    /// Named struct types.
    pub structs: Vec<StructDef>,
    /// Global variables.
    pub globals: Vec<GlobalDef>,
    /// Function definitions.
    pub funcs: Vec<Function>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            ..Module::default()
        }
    }

    /// Adds a struct, returning its id.
    pub fn add_struct(&mut self, def: StructDef) -> StructId {
        let id = StructId(self.structs.len() as u32);
        self.structs.push(def);
        id
    }

    /// Adds a global, returning its id.
    pub fn add_global(&mut self, def: GlobalDef) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(def);
        id
    }

    /// Adds a function, returning its id.
    pub fn add_func(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(f);
        id
    }

    /// Struct lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn strukt(&self, id: StructId) -> &StructDef {
        &self.structs[id.0 as usize]
    }

    /// Global lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn global(&self, id: GlobalId) -> &GlobalDef {
        &self.globals[id.0 as usize]
    }

    /// Function lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Mutable function lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.0 as usize]
    }

    /// Finds a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Finds a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    /// Finds a struct by name.
    pub fn struct_by_name(&self, name: &str) -> Option<StructId> {
        self.structs
            .iter()
            .position(|s| s.name == name)
            .map(|i| StructId(i as u32))
    }

    /// Function ids in index order.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> + '_ {
        (0..self.funcs.len() as u32).map(FuncId)
    }

    /// Precomputed slot sizes for all structs, in id order. Handles structs
    /// referring to earlier-declared structs; a forward reference counts as
    /// a single slot (pointers are how cycles appear in practice).
    pub fn struct_slot_sizes(&self) -> Vec<u32> {
        let mut sizes = vec![0u32; self.structs.len()];
        for (i, s) in self.structs.iter().enumerate() {
            let mut total = 0;
            for fld in &s.fields {
                total += match fld {
                    Type::Struct(sid) if (sid.0 as usize) < i => sizes[sid.0 as usize],
                    Type::Struct(_) => 1,
                    other => other.slot_count(&sizes),
                };
            }
            sizes[i] = total;
        }
        sizes
    }

    /// Total instruction count across all functions (scalability metrics).
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(Function::inst_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut m = Module::new("m");
        let s = m.add_struct(StructDef {
            name: "Node".into(),
            fields: vec![Type::I64, Type::ptr_to(Type::I64)],
        });
        let g = m.add_global(GlobalDef {
            name: "flag".into(),
            ty: Type::I32,
            init: vec![0],
        });
        let f = m.add_func(Function::new("main", vec![], Type::I32));
        assert_eq!(m.strukt(s).name, "Node");
        assert_eq!(m.global(g).name, "flag");
        assert_eq!(m.func(f).name, "main");
        assert_eq!(m.func_by_name("main"), Some(f));
        assert_eq!(m.global_by_name("flag"), Some(g));
        assert_eq!(m.struct_by_name("Node"), Some(s));
        assert_eq!(m.func_by_name("absent"), None);
    }

    #[test]
    fn struct_slot_sizes_nested() {
        let mut m = Module::new("m");
        let inner = m.add_struct(StructDef {
            name: "Inner".into(),
            fields: vec![Type::I32, Type::I32],
        });
        m.add_struct(StructDef {
            name: "Outer".into(),
            fields: vec![Type::Struct(inner), Type::I64, Type::array_of(Type::I8, 3)],
        });
        let sizes = m.struct_slot_sizes();
        assert_eq!(sizes, vec![2, 6]);
    }

    #[test]
    fn empty_module_counts() {
        let m = Module::new("empty");
        assert_eq!(m.inst_count(), 0);
        assert_eq!(m.struct_slot_sizes(), Vec::<u32>::new());
    }
}
