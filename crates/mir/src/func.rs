//! Functions and basic blocks.

use crate::inst::{Inst, InstKind, Terminator};
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;

/// A function-unique instruction id. Doubles as the result's SSA name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%t{}", self.0)
    }
}

/// A basic-block id, indexing into [`Function::blocks`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A basic block: a straight-line instruction sequence plus a terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Human-readable label (parser/printer; not semantically meaningful).
    pub name: String,
    /// Instructions in execution order.
    pub insts: Vec<Inst>,
    /// Control transfer out of the block.
    pub term: Terminator,
}

impl Block {
    /// Creates an empty block ending in `unreachable` (builder fills it in).
    pub fn new(name: impl Into<String>) -> Block {
        Block {
            name: name.into(),
            insts: Vec::new(),
            term: Terminator::Unreachable,
        }
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Name, unique within the module (without the `@` sigil).
    pub name: String,
    /// Parameter names and types.
    pub params: Vec<(String, Type)>,
    /// Return type.
    pub ret: Type,
    /// Basic blocks; `blocks[0]` is the entry block.
    pub blocks: Vec<Block>,
    /// Next unassigned instruction id.
    pub next_inst: u32,
}

impl Function {
    /// Creates a function with a single empty entry block.
    pub fn new(name: impl Into<String>, params: Vec<(String, Type)>, ret: Type) -> Function {
        Function {
            name: name.into(),
            params,
            ret,
            blocks: vec![Block::new("entry")],
            next_inst: 0,
        }
    }

    /// The entry block id (always `bb0`).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Allocates a fresh instruction id.
    pub fn fresh_inst_id(&mut self) -> InstId {
        let id = InstId(self.next_inst);
        self.next_inst += 1;
        id
    }

    /// Looks up a block by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Mutable block lookup.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.0 as usize]
    }

    /// All block ids in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Iterates over `(block, inst)` pairs in layout order.
    pub fn insts(&self) -> impl Iterator<Item = (BlockId, &Inst)> + '_ {
        self.block_ids()
            .flat_map(move |b| self.block(b).insts.iter().map(move |i| (b, i)))
    }

    /// Builds a map from instruction id to its defining kind. O(n); callers
    /// that query repeatedly should keep the map (the paper's influence
    /// analysis caches exactly this, §3.5).
    pub fn inst_index(&self) -> HashMap<InstId, &InstKind> {
        let mut m = HashMap::with_capacity(self.next_inst as usize);
        for (_, inst) in self.insts() {
            m.insert(inst.id, &inst.kind);
        }
        m
    }

    /// Finds the block containing instruction `id`, with its position.
    pub fn position_of(&self, id: InstId) -> Option<(BlockId, usize)> {
        for b in self.block_ids() {
            if let Some(pos) = self.block(b).insts.iter().position(|i| i.id == id) {
                return Some((b, pos));
            }
        }
        None
    }

    /// Total number of instructions across all blocks.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{InstKind, Ordering};
    use crate::value::Value;

    fn sample() -> Function {
        let mut f = Function::new("f", vec![("x".into(), Type::ptr_to(Type::I32))], Type::Void);
        let id0 = f.fresh_inst_id();
        let id1 = f.fresh_inst_id();
        f.block_mut(BlockId(0)).insts.push(Inst::new(
            id0,
            InstKind::Load {
                ptr: Value::Param(0),
                ty: Type::I32,
                ord: Ordering::NotAtomic,
                volatile: false,
            },
        ));
        f.block_mut(BlockId(0)).insts.push(Inst::new(
            id1,
            InstKind::Store {
                ptr: Value::Param(0),
                val: Value::Inst(id0),
                ty: Type::I32,
                ord: Ordering::NotAtomic,
                volatile: false,
            },
        ));
        f.block_mut(BlockId(0)).term = Terminator::Ret(None);
        f
    }

    #[test]
    fn fresh_ids_are_sequential() {
        let mut f = Function::new("g", vec![], Type::Void);
        assert_eq!(f.fresh_inst_id(), InstId(0));
        assert_eq!(f.fresh_inst_id(), InstId(1));
        assert_eq!(f.next_inst, 2);
    }

    #[test]
    fn inst_iteration_and_index() {
        let f = sample();
        assert_eq!(f.inst_count(), 2);
        let idx = f.inst_index();
        assert!(idx[&InstId(0)].may_read());
        assert!(idx[&InstId(1)].may_write());
    }

    #[test]
    fn position_lookup() {
        let f = sample();
        assert_eq!(f.position_of(InstId(1)), Some((BlockId(0), 1)));
        assert_eq!(f.position_of(InstId(99)), None);
    }

    #[test]
    fn entry_is_block_zero() {
        let f = sample();
        assert_eq!(f.entry(), BlockId(0));
        assert_eq!(f.block(f.entry()).name, "entry");
    }
}
