//! Memory-location keys for the paper's type-based alias exploration (§3.4).
//!
//! AtoMig finds "sticky buddies" of an access without a precise points-to
//! analysis: accesses to globals are keyed by the global; pointer-based
//! accesses are keyed by the *type and constant offsets* of the
//! `getelementptr` instruction computing the address. Two accesses with the
//! same key are assumed to (possibly) alias; this over-approximates but is
//! constant-time per query, which is what makes AtoMig scale (§3.5).

use crate::func::{Function, InstId};
use crate::inst::{GepIndex, InstKind};
use crate::module::{GlobalId, StructId};
use crate::types::Type;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// A module-wide key approximating "which memory does this access touch".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MemLoc {
    /// A module global accessed directly (possibly through a constant-index
    /// GEP into it; the field path is folded into the key).
    Global(GlobalId, Vec<i64>),
    /// A field of a named struct reached through a pointer: keyed by struct
    /// type and the constant index path, exactly like the paper keys
    /// `getelementptr` type+offsets.
    Field(StructId, Vec<i64>),
    /// An element of an array of `elem` type with a dynamic index.
    ArrayElem(Type),
    /// A non-escaping stack slot of the given function-local alloca.
    Stack(InstId),
    /// A plain dereference of a pointer that is not a GEP (e.g. an `i32*`
    /// parameter). Keyed by pointee type; too coarse for buddy expansion by
    /// default but still identifies the access for marking.
    Pointee(Type),
    /// Nothing statically known.
    Unknown,
}

impl MemLoc {
    /// Whether this key is precise enough to participate in sticky-buddy
    /// expansion (§3.4). `Pointee`/`Unknown` buckets are excluded by
    /// default because they would sweep in unrelated accesses of the same
    /// scalar type; `Stack` slots are thread-local and never need barriers.
    pub fn is_buddy_key(&self) -> bool {
        matches!(
            self,
            MemLoc::Global(..) | MemLoc::Field(..) | MemLoc::ArrayElem(_)
        )
    }

    /// Whether the location is provably local to one thread's stack.
    pub fn is_stack(&self) -> bool {
        matches!(self, MemLoc::Stack(_))
    }
}

impl fmt::Display for MemLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemLoc::Global(g, path) if path.is_empty() => write!(f, "{g}"),
            MemLoc::Global(g, path) => write!(f, "{g}+{path:?}"),
            MemLoc::Field(s, path) => write!(f, "{s}@{path:?}"),
            MemLoc::ArrayElem(t) => write!(f, "[{t}]"),
            MemLoc::Stack(i) => write!(f, "stack({i})"),
            MemLoc::Pointee(t) => write!(f, "*({t})"),
            MemLoc::Unknown => write!(f, "?"),
        }
    }
}

/// Resolves the [`MemLoc`] of a pointer value inside `func`.
///
/// Walks back through GEPs and casts. `inst_index` must be
/// [`Function::inst_index`] of the same function (callers cache it).
pub fn resolve_loc(func: &Function, inst_index: &HashMap<InstId, &InstKind>, ptr: Value) -> MemLoc {
    resolve_loc_depth(func, inst_index, ptr, 16)
}

fn resolve_loc_depth(
    func: &Function,
    inst_index: &HashMap<InstId, &InstKind>,
    ptr: Value,
    depth: u32,
) -> MemLoc {
    if depth == 0 {
        return MemLoc::Unknown;
    }
    match ptr {
        Value::Global(g) => MemLoc::Global(g, Vec::new()),
        Value::Param(i) => match func.params.get(i as usize) {
            Some((_, Type::Ptr(p))) => MemLoc::Pointee((**p).clone()),
            _ => MemLoc::Unknown,
        },
        Value::Inst(id) => match inst_index.get(&id) {
            Some(InstKind::Alloca { .. }) => MemLoc::Stack(id),
            Some(InstKind::Gep {
                base,
                base_ty,
                indices,
            }) => resolve_gep(func, inst_index, *base, base_ty, indices, depth - 1),
            Some(InstKind::Cast { value, .. }) => {
                resolve_loc_depth(func, inst_index, *value, depth - 1)
            }
            // A pointer loaded from memory or returned by a call: all we
            // know is its type.
            Some(InstKind::Load {
                ty: Type::Ptr(p), ..
            })
            | Some(InstKind::Call {
                ret_ty: Type::Ptr(p),
                ..
            }) => MemLoc::Pointee((**p).clone()),
            _ => MemLoc::Unknown,
        },
        _ => MemLoc::Unknown,
    }
}

fn resolve_gep(
    func: &Function,
    inst_index: &HashMap<InstId, &InstKind>,
    base: Value,
    base_ty: &Type,
    indices: &[GepIndex],
    depth: u32,
) -> MemLoc {
    let const_path: Option<Vec<i64>> = indices.iter().map(GepIndex::as_const).collect();
    let base_loc = resolve_loc_depth(func, inst_index, base, depth);
    match (&base_loc, base_ty) {
        // GEP into a global: fold the (constant) path into the global key.
        (MemLoc::Global(g, prefix), _) => match const_path {
            Some(path) => {
                let mut full = prefix.clone();
                full.extend(path);
                MemLoc::Global(*g, full)
            }
            None => elem_key(base_ty, indices),
        },
        // GEP through an arbitrary pointer to a struct: type+offset key,
        // the paper's signature scheme.
        (_, Type::Struct(sid)) => match const_path {
            // Leading index scales whole objects; drop it from the field key
            // (node[i].field and node->field are the same field).
            Some(path) if path.len() > 1 => MemLoc::Field(*sid, path[1..].to_vec()),
            _ => MemLoc::Field(*sid, Vec::new()),
        },
        (_, Type::Array(elem, _)) => MemLoc::ArrayElem((**elem).clone()),
        // GEP through a scalar pointer (pointer arithmetic on T*): treat as
        // a dynamic element of a T array.
        (_, other) => elem_key(other, indices),
    }
}

fn elem_key(base_ty: &Type, _indices: &[GepIndex]) -> MemLoc {
    match base_ty {
        Type::Array(elem, _) => MemLoc::ArrayElem((**elem).clone()),
        other => MemLoc::ArrayElem(other.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::GepIndex;

    #[test]
    fn global_direct() {
        let b = FunctionBuilder::new("f", vec![], Type::Void);
        let f = b.finish();
        let idx = f.inst_index();
        assert_eq!(
            resolve_loc(&f, &idx, Value::Global(GlobalId(3))),
            MemLoc::Global(GlobalId(3), vec![])
        );
    }

    #[test]
    fn alloca_is_stack() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let a = b.alloca(Type::I32, "x");
        b.ret(None);
        let f = b.finish();
        let idx = f.inst_index();
        let loc = resolve_loc(&f, &idx, a);
        assert!(loc.is_stack());
        assert!(!loc.is_buddy_key());
    }

    #[test]
    fn struct_field_key_ignores_leading_index() {
        let sid = StructId(0);
        let mut b = FunctionBuilder::new(
            "f",
            vec![("n".into(), Type::ptr_to(Type::Struct(sid)))],
            Type::Void,
        );
        // n->field1  and  n[5].field1 must produce the same key
        let a1 = b.gep(
            Type::Struct(sid),
            Value::Param(0),
            vec![GepIndex::Const(0), GepIndex::Const(1)],
        );
        let a2 = b.gep(
            Type::Struct(sid),
            Value::Param(0),
            vec![GepIndex::Const(5), GepIndex::Const(1)],
        );
        b.ret(None);
        let f = b.finish();
        let idx = f.inst_index();
        let l1 = resolve_loc(&f, &idx, a1);
        let l2 = resolve_loc(&f, &idx, a2);
        assert_eq!(l1, MemLoc::Field(sid, vec![1]));
        assert_eq!(l1, l2);
        assert!(l1.is_buddy_key());
    }

    #[test]
    fn gep_into_global_folds_path() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let a = b.gep(
            Type::array_of(Type::I32, 8),
            Value::Global(GlobalId(0)),
            vec![GepIndex::Const(0), GepIndex::Const(3)],
        );
        b.ret(None);
        let f = b.finish();
        let idx = f.inst_index();
        assert_eq!(
            resolve_loc(&f, &idx, a),
            MemLoc::Global(GlobalId(0), vec![0, 3])
        );
    }

    #[test]
    fn dynamic_array_index_keys_by_elem_type() {
        let mut b = FunctionBuilder::new("f", vec![("i".into(), Type::I64)], Type::Void);
        let a = b.gep(
            Type::array_of(Type::I64, 16),
            Value::Global(GlobalId(1)),
            vec![GepIndex::Const(0), GepIndex::Dyn(Value::Param(0))],
        );
        b.ret(None);
        let f = b.finish();
        let idx = f.inst_index();
        assert_eq!(resolve_loc(&f, &idx, a), MemLoc::ArrayElem(Type::I64));
    }

    #[test]
    fn param_pointer_is_pointee() {
        let b = FunctionBuilder::new("f", vec![("p".into(), Type::ptr_to(Type::I32))], Type::Void);
        let f = b.finish();
        let idx = f.inst_index();
        let loc = resolve_loc(&f, &idx, Value::Param(0));
        assert_eq!(loc, MemLoc::Pointee(Type::I32));
        assert!(!loc.is_buddy_key());
    }

    #[test]
    fn loaded_pointer_is_pointee_typed() {
        let sid = StructId(2);
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let slot = b.alloca(Type::ptr_to(Type::Struct(sid)), "node");
        let p = b.load(Type::ptr_to(Type::Struct(sid)), slot);
        // node->field0
        let a = b.gep(
            Type::Struct(sid),
            p,
            vec![GepIndex::Const(0), GepIndex::Const(0)],
        );
        b.ret(None);
        let f = b.finish();
        let idx = f.inst_index();
        assert_eq!(resolve_loc(&f, &idx, a), MemLoc::Field(sid, vec![0]));
    }

    #[test]
    fn cast_is_transparent() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let c = b.cast(Value::Global(GlobalId(7)), Type::ptr_to(Type::I8));
        b.ret(None);
        let f = b.finish();
        let idx = f.inst_index();
        assert_eq!(
            resolve_loc(&f, &idx, c),
            MemLoc::Global(GlobalId(7), vec![])
        );
    }
}
