//! The MIR type system.
//!
//! Deliberately small: integers of a few widths, typed pointers, named
//! structs and fixed-size arrays. Typed pointers (rather than LLVM's modern
//! opaque pointers) are kept because the paper's type-based alias
//! exploration keys on the *pointee type and offsets* of `getelementptr`
//! instructions (§3.4).

use crate::module::StructId;
use std::fmt;

/// A MIR type.
///
/// # Examples
///
/// ```
/// use atomig_mir::Type;
///
/// let p = Type::ptr_to(Type::I32);
/// assert!(p.is_ptr());
/// assert_eq!(p.pointee(), Some(&Type::I32));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// The absence of a value (function returns only).
    Void,
    /// A 1-bit boolean.
    I1,
    /// An 8-bit integer.
    I8,
    /// A 16-bit integer.
    I16,
    /// A 32-bit integer.
    I32,
    /// A 64-bit integer.
    I64,
    /// A pointer to a value of the contained type.
    Ptr(Box<Type>),
    /// A named struct declared in the enclosing [`Module`](crate::Module).
    Struct(StructId),
    /// A fixed-size array `[len x elem]`.
    Array(Box<Type>, u32),
}

impl Type {
    /// Returns a pointer type to `pointee`.
    pub fn ptr_to(pointee: Type) -> Type {
        Type::Ptr(Box::new(pointee))
    }

    /// Returns an array type `[len x elem]`.
    pub fn array_of(elem: Type, len: u32) -> Type {
        Type::Array(Box::new(elem), len)
    }

    /// Returns `true` if this is any integer type (including `i1`).
    pub fn is_int(&self) -> bool {
        matches!(
            self,
            Type::I1 | Type::I8 | Type::I16 | Type::I32 | Type::I64
        )
    }

    /// Returns `true` if this is a pointer type.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// Returns `true` if the type is a first-class scalar (int or pointer),
    /// i.e. something a load/store can move in one access.
    pub fn is_scalar(&self) -> bool {
        self.is_int() || self.is_ptr()
    }

    /// The pointee of a pointer type, or `None` for non-pointers.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(p) => Some(p),
            _ => None,
        }
    }

    /// Bit width of an integer type, or `None` for non-integers.
    pub fn bit_width(&self) -> Option<u32> {
        match self {
            Type::I1 => Some(1),
            Type::I8 => Some(8),
            Type::I16 => Some(16),
            Type::I32 => Some(32),
            Type::I64 => Some(64),
            _ => None,
        }
    }

    /// Number of scalar slots this type occupies in the flat memory model
    /// used by the interpreter. Structs are resolved via `struct_sizes`,
    /// which maps [`StructId`] to a precomputed slot count.
    pub fn slot_count(&self, struct_sizes: &[u32]) -> u32 {
        match self {
            Type::Void => 0,
            Type::I1 | Type::I8 | Type::I16 | Type::I32 | Type::I64 | Type::Ptr(_) => 1,
            Type::Struct(sid) => struct_sizes.get(sid.0 as usize).copied().unwrap_or(0),
            Type::Array(elem, n) => elem.slot_count(struct_sizes) * n,
        }
    }

    /// An integer constant's natural truncation mask for this type, used by
    /// the interpreter to model wrap-around. Returns `u64::MAX` for
    /// pointers/other.
    pub fn value_mask(&self) -> u64 {
        match self.bit_width() {
            Some(64) | None => u64::MAX,
            Some(w) => (1u64 << w) - 1,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::I1 => write!(f, "i1"),
            Type::I8 => write!(f, "i8"),
            Type::I16 => write!(f, "i16"),
            Type::I32 => write!(f, "i32"),
            Type::I64 => write!(f, "i64"),
            Type::Ptr(p) => write!(f, "ptr {p}"),
            Type::Struct(sid) => write!(f, "%s{}", sid.0),
            Type::Array(e, n) => write!(f, "[{n} x {e}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_classification() {
        assert!(Type::I32.is_int());
        assert!(Type::I32.is_scalar());
        assert!(Type::ptr_to(Type::I8).is_scalar());
        assert!(!Type::Void.is_scalar());
        assert!(!Type::array_of(Type::I32, 3).is_scalar());
    }

    #[test]
    fn pointee_access() {
        let t = Type::ptr_to(Type::ptr_to(Type::I64));
        assert_eq!(t.pointee().and_then(Type::pointee), Some(&Type::I64));
        assert_eq!(Type::I8.pointee(), None);
    }

    #[test]
    fn slot_counts() {
        let sizes = vec![3u32]; // one struct with 3 slots
        assert_eq!(Type::I32.slot_count(&sizes), 1);
        assert_eq!(Type::array_of(Type::I64, 4).slot_count(&sizes), 4);
        assert_eq!(Type::Struct(StructId(0)).slot_count(&sizes), 3);
        assert_eq!(
            Type::array_of(Type::Struct(StructId(0)), 2).slot_count(&sizes),
            6
        );
    }

    #[test]
    fn masks() {
        assert_eq!(Type::I1.value_mask(), 1);
        assert_eq!(Type::I8.value_mask(), 0xff);
        assert_eq!(Type::I64.value_mask(), u64::MAX);
        assert_eq!(Type::ptr_to(Type::I8).value_mask(), u64::MAX);
    }

    #[test]
    fn display() {
        assert_eq!(Type::ptr_to(Type::I32).to_string(), "ptr i32");
        assert_eq!(Type::array_of(Type::I8, 16).to_string(), "[16 x i8]");
    }
}
