//! A structural verifier for modules.
//!
//! Run after construction, parsing, or transformation to catch malformed IR
//! early: dangling value references, out-of-range block targets, calls with
//! wrong arity, non-scalar loads, etc.

use crate::func::{Function, InstId};
use crate::inst::{Builtin, Callee, InstKind, Terminator};
use crate::module::Module;
use crate::types::Type;
use crate::value::Value;
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the problem was found (if any).
    pub func: Option<String>,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.func {
            Some(name) => write!(f, "in @{}: {}", name, self.msg),
            None => f.write_str(&self.msg),
        }
    }
}

impl Error for VerifyError {}

/// Verifies structural well-formedness of a module.
///
/// # Errors
///
/// Returns the first problem found.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    // Unique names.
    let mut seen = HashSet::new();
    for f in &m.funcs {
        if !seen.insert(&f.name) {
            return Err(VerifyError {
                func: None,
                msg: format!("duplicate function name `{}`", f.name),
            });
        }
    }
    let mut seen_g = HashSet::new();
    for g in &m.globals {
        if !seen_g.insert(&g.name) {
            return Err(VerifyError {
                func: None,
                msg: format!("duplicate global name `{}`", g.name),
            });
        }
    }
    for f in &m.funcs {
        verify_function(m, f).map_err(|msg| VerifyError {
            func: Some(f.name.clone()),
            msg,
        })?;
    }
    Ok(())
}

fn verify_function(m: &Module, f: &Function) -> Result<(), String> {
    if f.blocks.is_empty() {
        return Err("function has no blocks".into());
    }
    // Collect definitions and check id uniqueness.
    let mut defined: HashSet<InstId> = HashSet::new();
    for (_, inst) in f.insts() {
        if !defined.insert(inst.id) {
            return Err(format!("duplicate instruction id {}", inst.id));
        }
        if inst.id.0 >= f.next_inst {
            return Err(format!(
                "instruction id {} not below next_inst {}",
                inst.id, f.next_inst
            ));
        }
    }

    let check_value = |v: Value| -> Result<(), String> {
        match v {
            Value::Inst(id) if !defined.contains(&id) => {
                Err(format!("reference to undefined instruction {id}"))
            }
            Value::Param(i) if i as usize >= f.params.len() => {
                Err(format!("parameter index {i} out of range"))
            }
            Value::Global(g) if g.0 as usize >= m.globals.len() => {
                Err(format!("global {g} out of range"))
            }
            Value::Func(fid) if fid.0 as usize >= m.funcs.len() => {
                Err(format!("function ref {fid} out of range"))
            }
            _ => Ok(()),
        }
    };

    for (bid, inst) in f.insts() {
        for op in inst.kind.operands() {
            check_value(op).map_err(|e| format!("{e} (in {bid})"))?;
        }
        match &inst.kind {
            InstKind::Load { ty, .. } if !ty.is_scalar() => {
                return Err(format!("load of non-scalar type {ty} ({bid})"));
            }
            InstKind::Store { ty, .. } if !ty.is_scalar() => {
                return Err(format!("store of non-scalar type {ty} ({bid})"));
            }
            InstKind::Cmpxchg { ty, .. } | InstKind::Rmw { ty, .. } if !ty.is_scalar() => {
                return Err(format!("atomic access of non-scalar type {ty} ({bid})"));
            }
            InstKind::Gep {
                base_ty, indices, ..
            } => {
                if indices.is_empty() {
                    return Err(format!("gep with no indices ({bid})"));
                }
                if let Type::Struct(sid) = base_ty {
                    if sid.0 as usize >= m.structs.len() {
                        return Err(format!("gep into unknown struct {sid} ({bid})"));
                    }
                    // Constant field indices must be in range.
                    if let Some(fi) = indices.get(1).and_then(|i| i.as_const()) {
                        let nfields = m.strukt(*sid).fields.len() as i64;
                        if fi < 0 || fi >= nfields {
                            return Err(format!(
                                "gep field index {fi} out of range for %{} ({bid})",
                                m.strukt(*sid).name
                            ));
                        }
                    }
                }
            }
            InstKind::Call { callee, args, .. } => match callee {
                Callee::Func(fid) => {
                    if fid.0 as usize >= m.funcs.len() {
                        return Err(format!("call to unknown function {fid} ({bid})"));
                    }
                    let target = m.func(*fid);
                    if target.params.len() != args.len() {
                        return Err(format!(
                            "call to @{} with {} args, expected {} ({bid})",
                            target.name,
                            args.len(),
                            target.params.len()
                        ));
                    }
                }
                Callee::Builtin(b) => {
                    let expect = builtin_arity(*b);
                    if let Some(n) = expect {
                        if args.len() != n {
                            return Err(format!(
                                "builtin @{} takes {n} args, got {} ({bid})",
                                b.name(),
                                args.len()
                            ));
                        }
                    }
                }
            },
            _ => {}
        }
    }
    // Terminators.
    for b in f.block_ids() {
        let term = &f.block(b).term;
        for v in term.operands() {
            check_value(v).map_err(|e| format!("{e} (terminator of {b})"))?;
        }
        for succ in term.successors() {
            if succ.0 as usize >= f.blocks.len() {
                return Err(format!("branch to unknown block {succ} (from {b})"));
            }
        }
        if let Terminator::Ret(v) = term {
            match (v, &f.ret) {
                (None, Type::Void) => {}
                (Some(_), Type::Void) => {
                    return Err(format!("returning a value from a void function ({b})"))
                }
                (None, _) => return Err(format!("missing return value ({b})")),
                (Some(_), _) => {}
            }
        }
    }
    Ok(())
}

fn builtin_arity(b: Builtin) -> Option<usize> {
    Some(match b {
        Builtin::Spawn => 2,
        Builtin::Join => 1,
        Builtin::Assert => 1,
        Builtin::Assume => 1,
        Builtin::BarrierWait => 1,
        Builtin::Malloc => 1,
        Builtin::Free => 1,
        Builtin::Pause => 0,
        Builtin::CompilerBarrier => 0,
        Builtin::Nondet => 0,
        Builtin::Print => 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::module::GlobalDef;
    use crate::parse_module;

    #[test]
    fn accepts_wellformed_module() {
        let m = parse_module(
            r#"
            global @x: i32 = 0
            fn @main() : i32 {
            bb0:
              %v = load i32, @x
              ret %v
            }
            "#,
        )
        .unwrap();
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn rejects_duplicate_function_names() {
        let mut m = Module::new("m");
        m.add_func(Function::new("f", vec![], Type::Void));
        m.add_func(Function::new("f", vec![], Type::Void));
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("duplicate function"));
    }

    #[test]
    fn rejects_dangling_value() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        // Reference an instruction id that is never defined.
        b.store(Type::I32, Value::Inst(InstId(99)), Value::Const(0));
        b.ret(None);
        let mut f = b.finish();
        f.next_inst = 100;
        m.add_func(f);
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("undefined instruction"));
    }

    #[test]
    fn rejects_out_of_range_param() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        b.store(Type::I32, Value::Param(3), Value::Const(0));
        b.ret(None);
        m.add_func(b.finish());
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn rejects_bad_call_arity() {
        let mut m = Module::new("m");
        m.add_func(Function::new(
            "callee",
            vec![("a".into(), Type::I32)],
            Type::Void,
        ));
        let mut b = FunctionBuilder::new("caller", vec![], Type::Void);
        b.call(Callee::Func(crate::module::FuncId(0)), vec![], Type::Void);
        b.ret(None);
        m.add_func(b.finish());
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("args"));
    }

    #[test]
    fn rejects_void_return_mismatch() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Type::I32);
        b.ret(None);
        m.add_func(b.finish());
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("missing return value"));
    }

    #[test]
    fn rejects_gep_field_out_of_range() {
        let mut m = Module::new("m");
        let sid = m.add_struct(crate::module::StructDef {
            name: "S".into(),
            fields: vec![Type::I32],
        });
        m.add_global(GlobalDef {
            name: "s".into(),
            ty: Type::Struct(sid),
            init: vec![0],
        });
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        b.field_addr(
            Type::Struct(sid),
            Value::Global(crate::module::GlobalId(0)),
            5,
        );
        b.ret(None);
        m.add_func(b.finish());
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("out of range"));
    }

    #[test]
    fn rejects_builtin_arity() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        b.call_builtin(Builtin::Assert, vec![], Type::Void);
        b.ret(None);
        m.add_func(b.finish());
        assert!(verify_module(&m).is_err());
    }
}
