//! # atomig-mir
//!
//! An LLVM-flavoured mini intermediate representation (MIR) used by the
//! AtoMig reproduction.
//!
//! The paper implements AtoMig as a set of LLVM link-time passes that run on
//! modules compiled with `clang -O0`. This crate reproduces the slice of
//! LLVM IR those passes observe:
//!
//! * typed instructions with **atomic orderings** and **volatile flags** on
//!   loads/stores ([`Ordering`], [`InstKind::Load`], [`InstKind::Store`]),
//! * `cmpxchg`/`atomicrmw`/`fence` ([`InstKind::Cmpxchg`], [`InstKind::Rmw`],
//!   [`InstKind::Fence`]),
//! * `getelementptr`-style typed address computation ([`InstKind::Gep`]) —
//!   the key ingredient of the paper's type-based alias exploration (§3.4),
//! * `-O0`-style lowering: every source variable is an [`InstKind::Alloca`]
//!   stack slot, so there are no phi nodes and dependence chains flow
//!   through memory exactly as the paper's influence analysis expects.
//!
//! The crate provides a [`Module`] container, a [`builder::FunctionBuilder`]
//! for programmatic construction, a textual [`parser`] and printer for
//! writing test programs by hand, memory-location keys ([`MemLoc`]) used by
//! alias exploration, and a [`verify`] pass.
//!
//! # Examples
//!
//! Parse the message-passing writer of the paper's Figure 5 and print it
//! back:
//!
//! ```
//! use atomig_mir::parse_module;
//!
//! let m = parse_module(
//!     r#"
//!     module "mp"
//!     global @flag: i32 = 0
//!     global @msg: i32 = 0
//!     fn @writer() : void {
//!     bb0:
//!       store i32 1, @msg
//!       store i32 1, @flag
//!       ret
//!     }
//!     "#,
//! )?;
//! assert_eq!(m.funcs.len(), 1);
//! assert_eq!(m.globals.len(), 2);
//! # Ok::<(), atomig_mir::parser::ParseError>(())
//! ```

pub mod builder;
pub mod func;
pub mod inst;
pub mod loc;
pub mod module;
pub mod parser;
pub mod printer;
pub mod types;
pub mod value;
pub mod verify;

pub use builder::FunctionBuilder;
pub use func::{Block, BlockId, Function, InstId};
pub use inst::{
    BinOp, Builtin, Callee, CmpPred, GepIndex, Inst, InstKind, Ordering, RmwOp, Terminator,
};
pub use loc::MemLoc;
pub use module::{FuncId, GlobalDef, GlobalId, Module, StructDef, StructId};
pub use parser::parse_module;
pub use types::Type;
pub use value::Value;
pub use verify::{verify_module, VerifyError};
