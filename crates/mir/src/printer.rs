//! Textual printing of modules (the inverse of [`crate::parser`]).

use crate::func::Function;
use crate::inst::{Callee, GepIndex, InstKind, Ordering, Terminator};
use crate::module::Module;
use crate::types::Type;
use crate::value::Value;
use std::fmt::Write as _;

/// Prints a whole module in the textual format accepted by
/// [`parse_module`](crate::parse_module).
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module \"{}\"", m.name);
    for s in &m.structs {
        let fields: Vec<String> = s.fields.iter().map(|t| type_str(m, t)).collect();
        let _ = writeln!(out, "struct %{} {{ {} }}", s.name, fields.join(", "));
    }
    for g in &m.globals {
        let init = if g.init.iter().all(|&v| v == 0) {
            "0".to_string()
        } else if g.init.len() == 1 {
            g.init[0].to_string()
        } else {
            format!(
                "[{}]",
                g.init
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        let _ = writeln!(out, "global @{}: {} = {}", g.name, type_str(m, &g.ty), init);
    }
    for f in &m.funcs {
        out.push_str(&print_function(m, f));
    }
    out
}

/// Prints one function.
pub fn print_function(m: &Module, f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .map(|(n, t)| format!("%{}: {}", n, type_str(m, t)))
        .collect();
    let _ = writeln!(
        out,
        "fn @{}({}) : {} {{",
        f.name,
        params.join(", "),
        type_str(m, &f.ret)
    );
    for (i, b) in f.blocks.iter().enumerate() {
        let _ = writeln!(out, "bb{}:", i);
        for inst in &b.insts {
            let _ = write!(out, "  {}", inst_str(m, f, &inst.kind, inst.id.0));
            if inst.span != 0 {
                let _ = write!(out, " !{}", inst.span);
            }
            out.push('\n');
        }
        let _ = writeln!(out, "  {}", term_str(m, f, &b.term));
    }
    out.push_str("}\n");
    out
}

/// Prints a type, naming structs.
pub fn type_str(m: &Module, t: &Type) -> String {
    match t {
        Type::Struct(sid) => match m.structs.get(sid.0 as usize) {
            Some(s) => format!("%{}", s.name),
            None => format!("%s{}", sid.0),
        },
        Type::Ptr(p) => format!("ptr {}", type_str(m, p)),
        Type::Array(e, n) => format!("[{} x {}]", n, type_str(m, e)),
        other => other.to_string(),
    }
}

/// Prints a value, naming params/globals/functions.
pub fn value_str(m: &Module, f: &Function, v: Value) -> String {
    match v {
        Value::Const(c) => c.to_string(),
        Value::Null => "null".to_string(),
        Value::Global(g) => match m.globals.get(g.0 as usize) {
            Some(def) => format!("@{}", def.name),
            None => format!("@g{}", g.0),
        },
        Value::Param(i) => match f.params.get(i as usize) {
            Some((n, _)) => format!("%{n}"),
            None => format!("%arg{i}"),
        },
        Value::Inst(id) => format!("%t{}", id.0),
        Value::Func(fid) => match m.funcs.get(fid.0 as usize) {
            Some(def) => format!("@{}", def.name),
            None => format!("@f{}", fid.0),
        },
    }
}

fn ord_suffix(ord: Ordering) -> String {
    if ord == Ordering::NotAtomic {
        String::new()
    } else {
        format!(" {}", ord.keyword())
    }
}

fn vol_suffix(volatile: bool) -> &'static str {
    if volatile {
        " volatile"
    } else {
        ""
    }
}

fn inst_str(m: &Module, f: &Function, kind: &InstKind, id: u32) -> String {
    let v = |val: Value| value_str(m, f, val);
    match kind {
        InstKind::Alloca { ty, name } => {
            let _ = name; // cosmetic; dropped so print/parse is a fixpoint
            format!("%t{id} = alloca {}", type_str(m, ty))
        }
        InstKind::Load {
            ptr,
            ty,
            ord,
            volatile,
        } => format!(
            "%t{id} = load {}, {}{}{}",
            type_str(m, ty),
            v(*ptr),
            ord_suffix(*ord),
            vol_suffix(*volatile)
        ),
        InstKind::Store {
            ptr,
            val,
            ty,
            ord,
            volatile,
        } => format!(
            "store {} {}, {}{}{}",
            type_str(m, ty),
            v(*val),
            v(*ptr),
            ord_suffix(*ord),
            vol_suffix(*volatile)
        ),
        InstKind::Cmpxchg {
            ptr,
            expected,
            new,
            ty,
            ord,
        } => format!(
            "%t{id} = cmpxchg {} {}, {}, {}{}",
            type_str(m, ty),
            v(*ptr),
            v(*expected),
            v(*new),
            ord_suffix(*ord)
        ),
        InstKind::Rmw {
            op,
            ptr,
            val,
            ty,
            ord,
        } => format!(
            "%t{id} = rmw {} {} {}, {}{}",
            op.mnemonic(),
            type_str(m, ty),
            v(*ptr),
            v(*val),
            ord_suffix(*ord)
        ),
        InstKind::Fence { ord } => format!("fence {}", ord.keyword()),
        InstKind::Gep {
            base,
            base_ty,
            indices,
        } => {
            let idxs: Vec<String> = indices
                .iter()
                .map(|i| match i {
                    GepIndex::Const(c) => c.to_string(),
                    GepIndex::Dyn(val) => v(*val),
                })
                .collect();
            format!(
                "%t{id} = gep {}, {}, {}",
                type_str(m, base_ty),
                v(*base),
                idxs.join(", ")
            )
        }
        InstKind::Bin { op, lhs, rhs } => {
            format!("%t{id} = {} {}, {}", op.mnemonic(), v(*lhs), v(*rhs))
        }
        InstKind::Cmp { pred, lhs, rhs } => {
            format!("%t{id} = cmp {} {}, {}", pred.mnemonic(), v(*lhs), v(*rhs))
        }
        InstKind::Cast { value, to } => {
            format!("%t{id} = cast {} to {}", v(*value), type_str(m, to))
        }
        InstKind::Call {
            callee,
            args,
            ret_ty,
        } => {
            let name = match callee {
                Callee::Func(fid) => match m.funcs.get(fid.0 as usize) {
                    Some(def) => def.name.clone(),
                    None => format!("f{}", fid.0),
                },
                Callee::Builtin(b) => b.name().to_string(),
            };
            let args: Vec<String> = args.iter().map(|a| v(*a)).collect();
            if *ret_ty == Type::Void {
                format!("call void @{}({})", name, args.join(", "))
            } else {
                format!(
                    "%t{id} = call {} @{}({})",
                    type_str(m, ret_ty),
                    name,
                    args.join(", ")
                )
            }
        }
    }
}

fn term_str(m: &Module, f: &Function, t: &Terminator) -> String {
    match t {
        Terminator::Br(b) => format!("br bb{}", b.0),
        Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        } => format!(
            "condbr {}, bb{}, bb{}",
            value_str(m, f, *cond),
            then_bb.0,
            else_bb.0
        ),
        Terminator::Ret(None) => "ret".to_string(),
        Terminator::Ret(Some(v)) => format!("ret {}", value_str(m, f, *v)),
        Terminator::Unreachable => "unreachable".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::module::GlobalDef;

    #[test]
    fn prints_simple_module() {
        let mut m = Module::new("mp");
        let flag = m.add_global(GlobalDef {
            name: "flag".into(),
            ty: Type::I32,
            init: vec![0],
        });
        let mut b = FunctionBuilder::new("writer", vec![], Type::Void);
        b.store_ord(
            Type::I32,
            Value::Global(flag),
            Value::Const(1),
            Ordering::SeqCst,
            false,
        );
        b.ret(None);
        m.add_func(b.finish());
        let text = print_module(&m);
        assert!(text.contains("module \"mp\""));
        assert!(text.contains("global @flag: i32 = 0"));
        assert!(text.contains("store i32 1, @flag seq_cst"));
        assert!(text.contains("fn @writer() : void {"));
    }

    #[test]
    fn prints_volatile_and_fence() {
        let mut m = Module::new("v");
        let g = m.add_global(GlobalDef {
            name: "x".into(),
            ty: Type::I64,
            init: vec![7],
        });
        let mut b = FunctionBuilder::new("r", vec![], Type::I64);
        let v = b.load_ord(Type::I64, Value::Global(g), Ordering::NotAtomic, true);
        b.fence(Ordering::SeqCst);
        b.ret(Some(v));
        m.add_func(b.finish());
        let text = print_module(&m);
        assert!(text.contains("load i64, @x volatile"));
        assert!(text.contains("fence seq_cst"));
        assert!(text.contains("global @x: i64 = 7"));
    }
}
