//! SSA values: the operands of MIR instructions.

use crate::func::InstId;
use crate::module::{FuncId, GlobalId};
use std::fmt;

/// An operand of an instruction.
///
/// Because the frontend lowers like `clang -O0` (every source variable is a
/// stack slot), values are either constants, addresses of globals, function
/// parameters, instruction results, or function references.
///
/// # Examples
///
/// ```
/// use atomig_mir::Value;
///
/// let c = Value::Const(42);
/// assert!(c.is_const());
/// assert_eq!(c.as_const(), Some(42));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// An integer constant. The type is implied by the using instruction.
    Const(i64),
    /// The null pointer.
    Null,
    /// The address of a module-level global.
    Global(GlobalId),
    /// The `n`-th parameter of the enclosing function.
    Param(u32),
    /// The result of an instruction in the enclosing function.
    Inst(InstId),
    /// The address of a function (used as spawn targets / call operands).
    Func(FuncId),
}

impl Value {
    /// Returns `true` for [`Value::Const`] and [`Value::Null`].
    pub fn is_const(&self) -> bool {
        matches!(self, Value::Const(_) | Value::Null)
    }

    /// The constant payload, if this is a [`Value::Const`] (`Null` reads as 0).
    pub fn as_const(&self) -> Option<i64> {
        match self {
            Value::Const(c) => Some(*c),
            Value::Null => Some(0),
            _ => None,
        }
    }

    /// The instruction id, if this value is an instruction result.
    pub fn as_inst(&self) -> Option<InstId> {
        match self {
            Value::Inst(i) => Some(*i),
            _ => None,
        }
    }

    /// The global id, if this value is the address of a global.
    pub fn as_global(&self) -> Option<GlobalId> {
        match self {
            Value::Global(g) => Some(*g),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Const(c) => write!(f, "{c}"),
            Value::Null => write!(f, "null"),
            Value::Global(g) => write!(f, "@g{}", g.0),
            Value::Param(i) => write!(f, "%arg{i}"),
            Value::Inst(i) => write!(f, "%t{}", i.0),
            Value::Func(fid) => write!(f, "@f{}", fid.0),
        }
    }
}

impl From<i64> for Value {
    fn from(c: i64) -> Self {
        Value::Const(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_helpers() {
        assert_eq!(Value::Const(7).as_const(), Some(7));
        assert_eq!(Value::Null.as_const(), Some(0));
        assert_eq!(Value::Param(0).as_const(), None);
        assert!(Value::Null.is_const());
        assert!(!Value::Param(1).is_const());
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Inst(InstId(3)).as_inst(), Some(InstId(3)));
        assert_eq!(Value::Global(GlobalId(2)).as_global(), Some(GlobalId(2)));
        assert_eq!(Value::Const(0).as_inst(), None);
    }

    #[test]
    fn from_i64() {
        let v: Value = 5i64.into();
        assert_eq!(v, Value::Const(5));
    }
}
